//! Traced mixed workload → Chrome trace export → validation.
//!
//! Runs a scaled §3.6-style mixed workload (analytic scans, point updates,
//! columnstore maintenance) with tracing enabled, writes the Chrome
//! trace-event JSON to `target/hpd-trace.json` (loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev>), then validates the
//! export with a minimal JSON scanner: it must parse, and the span
//! taxonomy must contain the full query lifecycle plus background roots.
//! Exits non-zero on any validation failure — CI runs this as a gate.
//!
//! ```console
//! $ cargo run --release --example trace_export
//! ```

use std::process::ExitCode;

use hybrid_physical_designs::engine::{Database, DbConfig};
use hybrid_physical_designs::workloads::tpch::{
    load_lineitem, q4_update, q5_scan_range, MixedDesign,
};

const ROWS: usize = 30_000;

fn run_workload() -> Result<Database, Box<dyn std::error::Error>> {
    let mut cfg = DbConfig {
        tracing: true,
        ..DbConfig::default()
    };
    cfg.csi.rowgroup_capacity = 4_096;
    cfg.wal.checkpoint_every_commits = 16;
    let db = Database::new(cfg);
    load_lineitem(&db, ROWS, 42, MixedDesign::PrimaryCsi)?;
    hybrid_physical_designs::obs::trace::tracer().drain(); // load-time spans

    for i in 0..24 {
        db.query(&q5_scan_range(30 * (i % 8), 30 * (i % 8) + 60))
            .run()?;
        db.query(&q4_update(10, 30 * (i % 8))).run()?;
    }
    db.maintenance("lineitem").run()?;
    Ok(db)
}

/// Minimal JSON well-formedness scanner: brackets/braces balance outside
/// strings, string escapes are sane. Catches truncation and unescaped
/// output without needing a full parser (no serde in this workspace).
fn validate_json(s: &str) -> Result<(), String> {
    let mut stack = Vec::new();
    let mut chars = s.chars();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        if in_string {
            match c {
                '\\' => {
                    chars.next().ok_or("dangling escape at end of input")?;
                }
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => stack.push(c),
            '}' | ']' => {
                let open = if c == '}' { '{' } else { '[' };
                if stack.pop() != Some(open) {
                    return Err(format!("unbalanced {c:?}"));
                }
            }
            _ => {}
        }
    }
    if in_string {
        return Err("unterminated string".into());
    }
    if !stack.is_empty() {
        return Err(format!("unclosed delimiters: {stack:?}"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let db = match run_workload() {
        Ok(db) => db,
        Err(e) => {
            eprintln!("workload failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Heat report must be non-trivial for this run.
    let heat = db.heat_report();
    let reads: u64 = heat
        .iter()
        .flat_map(|(_, _, r)| r.rowgroups.iter())
        .map(|rg| rg.reads)
        .sum();
    let writes: u64 = heat
        .iter()
        .flat_map(|(_, _, r)| r.rowgroups.iter())
        .map(|rg| rg.writes)
        .sum();
    if heat.is_empty() || reads == 0 || writes == 0 {
        eprintln!(
            "heat report trivial: {} indexes, reads={reads} writes={writes}",
            heat.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "heat: {} indexes, {} rowgroups, reads={reads} writes={writes}",
        heat.len(),
        heat.iter()
            .map(|(_, _, r)| r.rowgroups.len())
            .sum::<usize>(),
    );

    let json = db.export_chrome_trace();
    let path = std::path::Path::new("target").join("hpd-trace.json");
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }

    if let Err(e) = validate_json(&json) {
        eprintln!("exported trace is not well-formed JSON: {e}");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for name in [
        "query",
        "select",
        "optimize",
        "admission",
        "execute",
        "op",
        "commit",
        "wal.flush",
        "background.maintenance",
        "background.checkpoint",
    ] {
        let needle = format!("\"name\":\"{name}\"");
        if !json.contains(&needle) {
            eprintln!("span taxonomy incomplete: no {name:?} span in export");
            failed = true;
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    let events = json.matches("\"ph\":\"X\"").count();
    println!(
        "wrote {} ({} events, {} bytes) — load it in ui.perfetto.dev",
        path.display(),
        events,
        json.len()
    );
    ExitCode::SUCCESS
}
