//! Operational analytics (HTAP): concurrent OLTP updates and analytic scans
//! over TPC-H `lineitem`, comparing the paper's three §3.4 physical designs.
//!
//! A scaled-down interactive version of the paper's Figure 6 experiment:
//! a B+ tree-only design handles updates well but crawls on scans; a
//! primary columnstore flips that; the hybrid (B+ tree primary + secondary
//! columnstore) balances both.
//!
//! ```console
//! $ cargo run --release --example operational_analytics
//! ```

use std::sync::Arc;
use std::time::Instant;

use hybrid_physical_designs::common::HpdError;
use hybrid_physical_designs::engine::{Database, DbConfig, IsolationLevel};
use hybrid_physical_designs::workloads::tpch::{
    load_lineitem, q4_update, q5_scan_range, MixedDesign, SHIPDATE_DAYS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 60_000;
const OPS_PER_THREAD: usize = 40;
const THREADS: usize = 4;
const SCAN_PERCENT: u32 = 3;

fn run_design(design: MixedDesign) -> Result<(f64, f64), HpdError> {
    let mut cfg = DbConfig::default();
    cfg.csi.rowgroup_capacity = 8_192;
    let db = Arc::new(Database::new(cfg));
    load_lineitem(&db, ROWS, 42, design)?;

    let (updates_us, scans_us) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let db = Arc::clone(&db);
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t as u64);
                let session = db.session(IsolationLevel::ReadCommitted);
                let (mut upd_us, mut upd_n, mut scan_us, mut scan_n) = (0.0, 0, 0.0, 0);
                for _ in 0..OPS_PER_THREAD {
                    let day = rng.gen_range(0..SHIPDATE_DAYS / 2);
                    let is_scan = rng.gen_range(0u32..100) < SCAN_PERCENT;
                    let stmt = if is_scan {
                        q5_scan_range(day, day + SHIPDATE_DAYS / 2)
                    } else {
                        q4_update(10, day)
                    };
                    let start = Instant::now();
                    // Retry on lock timeouts like a real client would.
                    for _ in 0..5 {
                        match session.run(&stmt) {
                            Ok(_) => break,
                            Err(HpdError::LockTimeout(_)) => continue,
                            Err(e) => panic!("statement failed: {e}"),
                        }
                    }
                    let us = start.elapsed().as_secs_f64() * 1e6;
                    if is_scan {
                        scan_us += us;
                        scan_n += 1;
                    } else {
                        upd_us += us;
                        upd_n += 1;
                    }
                }
                (upd_us, upd_n, scan_us, scan_n)
            }));
        }
        let mut totals = (0.0, 0usize, 0.0, 0usize);
        for h in handles {
            let (uu, un, su, sn) = h.join().expect("worker");
            totals.0 += uu;
            totals.1 += un;
            totals.2 += su;
            totals.3 += sn;
        }
        (
            totals.0 / totals.1.max(1) as f64,
            totals.2 / totals.3.max(1) as f64,
        )
    });
    Ok((updates_us, scans_us))
}

fn main() -> Result<(), HpdError> {
    println!(
        "mixed workload: {THREADS} threads x {OPS_PER_THREAD} ops, {SCAN_PERCENT}% scans, {ROWS} lineitem rows\n"
    );
    println!(
        "{:<28} {:>16} {:>16}",
        "physical design", "avg update (us)", "avg scan (us)"
    );
    for (design, label) in [
        (MixedDesign::BTreeOnly, "A: primary B+ tree"),
        (
            MixedDesign::BTreeWithSecondaryCsi,
            "B: B+ tree + secondary CSI",
        ),
        (MixedDesign::PrimaryCsi, "C: primary CSI"),
    ] {
        let (upd, scan) = run_design(design)?;
        println!("{label:<28} {upd:>16.0} {scan:>16.0}");
    }
    println!(
        "\nExpected shape (paper Fig. 6): design B balances cheap updates with\n\
         columnstore-fast scans; A pays on scans; C pays heavily on updates."
    );
    Ok(())
}
