//! Tune a TPC-DS-like star schema three ways — B+ tree-only, columnstore-
//! only, and hybrid — and compare measured execution costs, echoing the
//! paper's §5 evaluation in miniature.
//!
//! ```console
//! $ cargo run --release --example tune_star_schema
//! ```

use hybrid_physical_designs::advisor::{Advisor, AdvisorOptions, DesignMode, Workload};
use hybrid_physical_designs::common::HpdError;
use hybrid_physical_designs::engine::{Database, DbConfig, Statement};
use hybrid_physical_designs::workloads::tpcds;

fn fresh_db() -> Result<Database, HpdError> {
    let mut cfg = DbConfig::default();
    cfg.csi.rowgroup_capacity = 8_192;
    let db = Database::new(cfg);
    tpcds::load(&db, tpcds::DsScale::small())?;
    Ok(db)
}

fn main() -> Result<(), HpdError> {
    let queries = tpcds::queries(12, 99);
    let workload = Workload::read_only(queries.iter().map(|(_, q)| q.clone()).collect());

    println!(
        "tuning a TPC-DS-like star schema for {} queries...\n",
        queries.len()
    );
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>14}",
        "mode", "est before", "est after", "est speedup", "measured cpu"
    );

    for (mode, label) in [
        (DesignMode::BTreeOnly, "btree-only"),
        (DesignMode::CsiOnly, "csi-only"),
        (DesignMode::Hybrid, "hybrid"),
    ] {
        // Fresh database per mode so designs do not interfere.
        let db = fresh_db()?;
        let rec = Advisor::new(
            &db,
            AdvisorOptions {
                mode,
                ..Default::default()
            },
        )
        .recommend(&workload)?;
        db.apply_configuration(&rec.configuration)?;

        // Measure actual CPU time for the whole workload.
        let mut cpu_us = 0.0;
        for (_, q) in &queries {
            let r = db.query(&Statement::Select(q.clone())).run()?;
            cpu_us += r.metrics.cpu_us();
        }
        println!(
            "{label:<12} {:>14.0} {:>14.0} {:>11.1}x {:>12.0}us",
            rec.est_cost_before_us,
            rec.est_cost_after_us,
            rec.speedup(),
            cpu_us
        );
        if mode == DesignMode::Hybrid {
            println!("\nhybrid recommendation:\n{}", rec.report(&db));
            // Show one example plan mixing both index kinds, if any.
            for (lbl, q) in &queries {
                let plan = db.plan(q)?;
                if plan.is_hybrid() {
                    println!("example hybrid plan ({lbl}):\n{}", plan.explain());
                    break;
                }
            }
        }
    }
    Ok(())
}
