//! Quickstart: create a table, load data, let the advisor pick a hybrid
//! design, apply it, and observe the effect on two very different queries.
//!
//! ```console
//! $ cargo run --release --example quickstart
//! ```

use hybrid_physical_designs::advisor::{Advisor, AdvisorOptions, Workload};
use hybrid_physical_designs::common::{
    AggFunc, CmpOp, DataType, Expr, HpdError, Row, Schema, Value,
};
use hybrid_physical_designs::engine::{
    AggItem, ColRef, Database, DbConfig, IndexDescriptor, SelectQuery, Statement, TableInput,
};

fn main() -> Result<(), HpdError> {
    let db = Database::new(DbConfig::default());

    // orders(id, customer, status, amount)
    db.create_table(
        "orders",
        Schema::from_pairs(&[
            ("id", DataType::Int32),
            ("customer", DataType::Int32),
            ("status", DataType::Int32),
            ("amount", DataType::Decimal),
        ]),
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )?;
    db.load_table(
        "orders",
        (0..200_000)
            .map(|i| {
                Row::new(vec![
                    Value::Int32(i),
                    Value::Int32(i % 5_000),
                    Value::Int32(i % 7),
                    Value::Decimal((i as i64 % 900 + 100) * 10_000),
                ])
            })
            .collect(),
    )?;

    // Two query shapes: a selective point lookup and a full-table rollup.
    let point = SelectQuery::single_table(
        "orders",
        Some(Expr::col_cmp(1, CmpOp::Eq, Value::Int32(4_242))),
        vec![0, 3],
    );
    let rollup = SelectQuery {
        tables: vec![TableInput::new("orders")],
        group_by: vec![ColRef::new(0, 2)],
        aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(0, 3))],
        ..Default::default()
    };

    println!("== before tuning ==");
    for (name, q) in [("point lookup", &point), ("rollup", &rollup)] {
        let r = db.query(&Statement::Select(q.clone())).run()?;
        println!(
            "{name:>14}: {:>6} rows, {:>8.0} us elapsed, {:>9} bytes read",
            r.rows.len(),
            r.metrics.elapsed_us(),
            r.metrics.bytes_read()
        );
    }

    // Ask the advisor for a hybrid design.
    let workload = Workload::read_only(vec![point.clone(), rollup.clone()]);
    let rec = Advisor::new(&db, AdvisorOptions::default()).recommend(&workload)?;
    println!("\n== recommendation ==\n{}", rec.report(&db));
    db.apply_configuration(&rec.configuration)?;

    println!("== after tuning ==");
    for (name, q) in [("point lookup", &point), ("rollup", &rollup)] {
        let plan = db.plan(q)?;
        let r = db.query(&Statement::Select(q.clone())).run()?;
        println!(
            "{name:>14}: {:>6} rows, {:>8.0} us elapsed, {:>9} bytes read  (leaves: {:?})",
            r.rows.len(),
            r.metrics.elapsed_us(),
            r.metrics.bytes_read(),
            plan.leaf_kinds()
        );
    }
    Ok(())
}
