//! Cross-crate integration tests: end-to-end flows through workloads,
//! engine, executor, and advisor, checking both correctness (answers agree
//! across physical designs) and the paper's qualitative trade-offs.

use hybrid_physical_designs::advisor::{Advisor, AdvisorOptions, Workload};
use hybrid_physical_designs::common::{CmpOp, Expr, Row, Value};
use hybrid_physical_designs::engine::{
    Database, DbConfig, IndexDescriptor, IsolationLevel, SelectQuery, Statement,
};
use hybrid_physical_designs::workloads::micro::MicroTable;
use hybrid_physical_designs::workloads::tpch::{load_lineitem, q4_update, q5_scan, MixedDesign};
use hybrid_physical_designs::workloads::{ch, tpcds};

fn sorted_rows(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

/// The same query must produce identical answers no matter which physical
/// design executes it — across the full selectivity grid.
#[test]
fn answers_agree_across_designs() {
    let rows = 30_000;
    let mut cfg = DbConfig::default();
    cfg.csi.rowgroup_capacity = 4_096;

    let db_bt = Database::new(cfg.clone());
    let t = MicroTable::new("m", 2, rows);
    t.load(&db_bt, IndexDescriptor::PrimaryBTree { keys: vec![0] })
        .unwrap();

    let db_cs = Database::new(cfg.clone());
    t.load(&db_cs, IndexDescriptor::PrimaryCsi).unwrap();

    let db_hybrid = Database::new(cfg);
    t.load(&db_hybrid, IndexDescriptor::PrimaryBTree { keys: vec![0] })
        .unwrap();
    db_hybrid
        .create_index(
            "m",
            &IndexDescriptor::SecondaryCsi {
                columns: vec![0, 1],
            },
        )
        .unwrap();

    for sel in [0.0, 1e-4, 0.01, 0.3, 1.0] {
        for q in [t.q1(sel), t.q2(sel), t.q3()] {
            let stmt = Statement::Select(q);
            let a = sorted_rows(db_bt.query(&stmt).run().unwrap().rows);
            let b = sorted_rows(db_cs.query(&stmt).run().unwrap().rows);
            let c = sorted_rows(db_hybrid.query(&stmt).run().unwrap().rows);
            assert_eq!(a, b, "btree vs csi disagree at sel {sel}");
            assert_eq!(a, c, "btree vs hybrid disagree at sel {sel}");
        }
    }
}

/// The Figure 1 trade-off: under the HDD device model, a selective query is
/// far cheaper on the B+ tree, a full scan far cheaper on the columnstore.
#[test]
fn selectivity_tradeoff_shape() {
    let rows = 100_000;
    let mut cfg = DbConfig {
        device: hybrid_physical_designs::storage::DeviceProfile::hdd_scaled(40.0),
        ..DbConfig::default()
    };
    cfg.csi.rowgroup_capacity = 8_192;

    let db_bt = Database::new(cfg.clone());
    let t = MicroTable::new("m", 1, rows);
    t.load(&db_bt, IndexDescriptor::PrimaryBTree { keys: vec![0] })
        .unwrap();
    let db_cs = Database::new(cfg);
    t.load(&db_cs, IndexDescriptor::PrimaryCsi).unwrap();

    let run_cold = |db: &Database, sel: f64| {
        db.clear_cache();
        db.query(&Statement::Select(t.q1(sel)))
            .run()
            .unwrap()
            .metrics
            .elapsed_us()
    };

    let selective_bt = run_cold(&db_bt, 1e-5);
    let selective_cs = run_cold(&db_cs, 1e-5);
    // Encoded-domain predicate pushdown narrowed this gap (the CSI no
    // longer decodes whole segments for selective scans), but the B+ tree
    // seek must still win by a wide margin on a cold selective lookup.
    assert!(
        selective_bt * 3.0 < selective_cs,
        "selective: btree {selective_bt}us vs csi {selective_cs}us"
    );

    let full_bt = run_cold(&db_bt, 1.0);
    let full_cs = run_cold(&db_cs, 1.0);
    assert!(
        full_cs * 2.0 < full_bt,
        "full scan: csi {full_cs}us vs btree {full_bt}us"
    );
}

/// The Figure 5 trade-off: updates are cheapest on the B+ tree-only design
/// and most expensive on the primary columnstore.
#[test]
fn update_cost_ordering() {
    let measure = |design: MixedDesign| {
        let mut cfg = DbConfig::default();
        cfg.csi.rowgroup_capacity = 4_096;
        let db = Database::new(cfg);
        load_lineitem(&db, 30_000, 5, design).unwrap();
        // Warm, then take the median of five 10-row updates (sub-millisecond
        // wall timings are noisy on loaded machines).
        db.query(&q4_update(10, 50)).run().unwrap();
        let mut runs: Vec<f64> = (51..56)
            .map(|day| {
                db.query(&q4_update(10, day))
                    .run()
                    .unwrap()
                    .metrics
                    .elapsed_us()
            })
            .collect();
        runs.sort_by(|a, b| a.total_cmp(b));
        runs[2]
    };
    let bt = measure(MixedDesign::BTreeOnly);
    let hybrid = measure(MixedDesign::BTreeWithSecondaryCsi);
    let pri_csi = measure(MixedDesign::PrimaryCsi);
    assert!(bt <= hybrid * 3.0, "btree {bt} vs hybrid {hybrid}");
    assert!(
        hybrid < pri_csi,
        "hybrid {hybrid} must beat primary csi {pri_csi} on updates"
    );
}

/// Mixed-workload correctness: Q5 returns the same totals before/after the
/// engine processes interleaved updates on every design.
#[test]
fn mixed_statements_consistent_across_designs() {
    let mut totals = Vec::new();
    for design in [
        MixedDesign::BTreeOnly,
        MixedDesign::BTreeWithSecondaryCsi,
        MixedDesign::PrimaryCsi,
    ] {
        let mut cfg = DbConfig::default();
        cfg.csi.rowgroup_capacity = 4_096;
        let db = Database::new(cfg);
        load_lineitem(&db, 20_000, 9, design).unwrap();
        for day in 0..5 {
            db.query(&q4_update(5, day)).run().unwrap();
        }
        let r = db.query(&q5_scan(2)).run().unwrap();
        totals.push(r.rows[0].clone());
    }
    assert_eq!(totals[0], totals[1]);
    assert_eq!(totals[0], totals[2]);
}

/// Advisor end-to-end on the star schema: the hybrid recommendation must
/// reduce measured total CPU time vs. the untuned database.
#[test]
fn advisor_improves_measured_star_workload() {
    let mut cfg = DbConfig::default();
    cfg.csi.rowgroup_capacity = 4_096;
    let db = Database::new(cfg);
    tpcds::load(
        &db,
        tpcds::DsScale {
            store_sales_rows: 20_000,
            web_sales_rows: 10_000,
            items: 200,
            dates: 200,
            addresses: 500,
            stores: 10,
            households: 72,
            seed: 3,
        },
    )
    .unwrap();
    let queries = tpcds::queries(8, 5);

    let measure = |db: &Database| -> f64 {
        queries
            .iter()
            .map(|(_, q)| {
                let _ = db.query(&Statement::Select(q.clone())).run();
                db.query(&Statement::Select(q.clone()))
                    .run()
                    .unwrap()
                    .metrics
                    .cpu_us()
            })
            .sum()
    };
    let before = measure(&db);

    let workload = Workload::read_only(queries.iter().map(|(_, q)| q.clone()).collect());
    let rec = Advisor::new(&db, AdvisorOptions::default())
        .recommend(&workload)
        .unwrap();
    db.apply_configuration(&rec.configuration).unwrap();
    let after = measure(&db);
    assert!(
        after < before,
        "tuning must help: before {before}us, after {after}us"
    );
}

/// CH transactions preserve cross-table invariants under every isolation
/// level: every order has its order lines, and delivered new-orders vanish.
#[test]
fn ch_transactions_keep_invariants() {
    use hybrid_physical_designs::common::AggFunc;
    use hybrid_physical_designs::engine::{AggItem, ColRef, TableInput};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    for isolation in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::Snapshot,
        IsolationLevel::Serializable,
    ] {
        let db = Database::new(DbConfig::default());
        let scale = ch::ChScale::tiny();
        ch::load(&db, scale).unwrap();
        let rt = ch::ChRuntime::new(scale);
        let mut rng = StdRng::seed_from_u64(7);
        let session = db.session(isolation);
        for _ in 0..8 {
            let mut txn = session.begin();
            rt.new_order(&mut txn, &mut rng).unwrap();
            txn.commit().unwrap();
            let mut txn = session.begin();
            rt.delivery(&mut txn, &mut rng).unwrap();
            txn.commit().unwrap();
        }
        // sum(o_ol_cnt) == count(order_line) — line counts stay consistent.
        let order_lines = db
            .query(&Statement::Select(SelectQuery {
                tables: vec![TableInput::new("order_line")],
                aggregates: vec![AggItem::column(AggFunc::Count, ColRef::new(0, 0))],
                ..Default::default()
            }))
            .run()
            .unwrap()
            .rows[0][0]
            .clone();
        let ol_cnt_sum = db
            .query(&Statement::Select(SelectQuery {
                tables: vec![TableInput::new("orders")],
                aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(0, 6))],
                ..Default::default()
            }))
            .run()
            .unwrap()
            .rows[0][0]
            .clone();
        assert_eq!(
            order_lines.as_i64(),
            ol_cnt_sum.as_i64(),
            "{isolation:?}: order_line count vs sum(o_ol_cnt)"
        );
    }
}

/// Snapshot isolation across the whole stack: a long snapshot reader sees a
/// frozen aggregate while concurrent committed updates change it for others.
#[test]
fn snapshot_aggregate_stability() {
    let db = Database::new(DbConfig::default());
    load_lineitem(&db, 10_000, 11, MixedDesign::BTreeOnly).unwrap();

    let si = db.session(IsolationLevel::Snapshot);
    let mut reader = si.begin();
    let q5 = match q5_scan(7) {
        Statement::Select(q) => q,
        _ => unreachable!(),
    };
    let frozen = reader.select(&q5).unwrap().rows;

    db.query(&q4_update(1_000, 7)).run().unwrap();

    let fresh = db.query(&Statement::Select(q5.clone())).run().unwrap().rows;
    let still_frozen = reader.select(&q5).unwrap().rows;
    assert_eq!(frozen, still_frozen, "snapshot must not move");
    assert_ne!(frozen, fresh, "committed update must be visible outside");
    reader.abort();
}

/// Size estimation cross-check at workspace level: estimates land within an
/// order of magnitude of actually-built columnstores for the TPC-H schema.
#[test]
fn size_estimates_track_actual_lineitem() {
    use hybrid_physical_designs::advisor::{CsiSizeEstimator, RunModelEstimator, SampleSet};
    use hybrid_physical_designs::columnstore::{ColumnStoreIndex, CsiConfig, CsiKind};
    use hybrid_physical_designs::storage::{
        BufferPool, DeviceProfile, IoTracker, StorageAllocator,
    };
    use hybrid_physical_designs::workloads::tpch::{lineitem_rows, lineitem_schema};

    let rows = lineitem_rows(50_000, 1);
    let config = CsiConfig {
        rowgroup_capacity: 8_192,
        sort_mode: hybrid_physical_designs::columnstore::SortMode::Greedy,
        ..CsiConfig::default()
    };
    let pool = BufferPool::unbounded(DeviceProfile::ram());
    let csi = ColumnStoreIndex::build(
        lineitem_schema(),
        CsiKind::Secondary,
        vec![0, 1],
        config,
        &rows,
        StorageAllocator::new(),
        &pool,
        &IoTracker::new(),
    );
    let actual: usize = csi.column_sizes().iter().sum();
    let sample = SampleSet::block_sample(&rows, 0.1, 3);
    let est: usize = RunModelEstimator
        .estimate_column_bytes(&lineitem_schema(), &sample, rows.len(), &config)
        .iter()
        .sum();
    let ratio = est as f64 / actual as f64;
    assert!(
        (0.1..10.0).contains(&ratio),
        "estimate {est} vs actual {actual} (ratio {ratio})"
    );
}

/// What-if costs must rank designs the same way real measurements do for
/// the canonical scan-vs-seek pair.
#[test]
fn estimated_costs_rank_like_measurements() {
    let rows = 50_000;
    let mut cfg = DbConfig {
        device: hybrid_physical_designs::storage::DeviceProfile::hdd_scaled(40.0),
        ..DbConfig::default()
    };
    cfg.csi.rowgroup_capacity = 8_192;
    let db = Database::new(cfg);
    let t = MicroTable::new("m", 2, rows);
    t.load(&db, IndexDescriptor::PrimaryBTree { keys: vec![0] })
        .unwrap();
    db.create_index(
        "m",
        &IndexDescriptor::SecondaryCsi {
            columns: vec![0, 1],
        },
    )
    .unwrap();

    let selective = SelectQuery::single_table(
        "m",
        Some(Expr::col_cmp(
            0,
            CmpOp::Lt,
            Value::Int32(MicroTable::cutoff(1e-4)),
        )),
        vec![0],
    );
    let scan = t.q3();

    // Plans must pick different leaves for the two shapes.
    let p_sel = db.plan(&selective).unwrap();
    let p_scan = db.plan(&scan).unwrap();
    assert!(p_sel
        .leaf_kinds()
        .contains(&hybrid_physical_designs::engine::LeafKind::BTree));
    assert!(p_scan
        .leaf_kinds()
        .contains(&hybrid_physical_designs::engine::LeafKind::Columnstore));
    // And estimated costs must be finite and positive.
    assert!(p_sel.est_cost_us > 0.0 && p_scan.est_cost_us > 0.0);
}

// ---------------------------------------------------------------------------
// Table-driven cross-design differential suite (ISSUE 3).
//
// Every query in `differential_cases` must return *identical* answers on the
// three physical designs the paper compares — B+ tree only, primary
// columnstore, and B+ tree with a secondary CSI — both on a freshly loaded
// table and after a mutation batch that leaves inserts sitting in the delta
// store and deletes pending in the delete buffer (no compaction in between).
// ---------------------------------------------------------------------------

mod differential {
    use super::*;
    use hybrid_physical_designs::common::{AggFunc, BinOp, Schema};
    use hybrid_physical_designs::engine::{
        AggItem, ColRef, DeleteStmt, EquiJoin, TableInput, UpdateStmt,
    };

    const DESIGNS: [&str; 3] = ["btree", "csi", "hybrid"];

    fn schema(cols: &[&str]) -> Schema {
        use hybrid_physical_designs::common::{ColumnDef, DataType};
        Schema::new(
            cols.iter()
                .map(|c| ColumnDef::new(*c, DataType::Int32))
                .collect(),
        )
    }

    /// fact(k, g, v): 2 000 rows, 40 groups, signed values.
    fn fact_rows() -> Vec<Row> {
        (0..2_000i32)
            .map(|k| {
                Row::new(vec![
                    Value::Int32(k),
                    Value::Int32(k % 40),
                    Value::Int32((k * 37) % 1_000 - 300),
                ])
            })
            .collect()
    }

    /// dim(g, w): one row per group.
    fn dim_rows() -> Vec<Row> {
        (0..40i32)
            .map(|g| Row::new(vec![Value::Int32(g), Value::Int32((g * 13) % 7)]))
            .collect()
    }

    /// Build one database per design over the same logical fact/dim pair.
    /// A small rowgroup capacity forces several compressed row groups, and a
    /// delete-buffer threshold above anything the mutation batch produces
    /// keeps deletes *pending* rather than compacted away.
    fn build_designs() -> Vec<(&'static str, Database)> {
        DESIGNS
            .iter()
            .map(|&name| {
                let mut cfg = DbConfig::default();
                cfg.csi.rowgroup_capacity = 256;
                cfg.csi.delete_buffer_compact_threshold = 1_000_000;
                let db = Database::new(cfg);
                let primary = |keys: Vec<usize>| match name {
                    "csi" => IndexDescriptor::PrimaryCsi,
                    _ => IndexDescriptor::PrimaryBTree { keys },
                };
                db.create_table("fact", schema(&["k", "g", "v"]), vec![0], primary(vec![0]))
                    .unwrap();
                db.create_table("dim", schema(&["g", "w"]), vec![0], primary(vec![0]))
                    .unwrap();
                if name == "hybrid" {
                    db.create_index(
                        "fact",
                        &IndexDescriptor::SecondaryCsi {
                            columns: vec![0, 1, 2],
                        },
                    )
                    .unwrap();
                }
                db.load_table("fact", fact_rows()).unwrap();
                db.load_table("dim", dim_rows()).unwrap();
                (name, db)
            })
            .collect()
    }

    /// Point the databases at the same post-mutation logical state: fresh
    /// inserts (landing in the delta store on CSI designs), point and range
    /// deletes (landing in the delete buffer), and an update (a buffered
    /// delete of the old version plus a delta insert of the new one).
    fn apply_mutations(db: &Database) {
        let inserts: Vec<Row> = (2_000..2_080i32)
            .map(|k| {
                Row::new(vec![
                    Value::Int32(k),
                    Value::Int32(k % 40),
                    Value::Int32(-k),
                ])
            })
            .collect();
        db.query(&Statement::Insert(
            hybrid_physical_designs::engine::InsertStmt {
                table: "fact".into(),
                rows: inserts,
            },
        ))
        .run()
        .unwrap();
        db.query(&Statement::Delete(DeleteStmt {
            table: "fact".into(),
            predicate: Expr::between(0, Value::Int32(100), Value::Int32(140)),
            top: None,
        }))
        .run()
        .unwrap();
        db.query(&Statement::Delete(DeleteStmt {
            table: "fact".into(),
            predicate: Expr::col_cmp(0, CmpOp::Eq, Value::Int32(1_999)),
            top: None,
        }))
        .run()
        .unwrap();
        db.query(&Statement::Update(UpdateStmt {
            table: "fact".into(),
            predicate: Expr::between(0, Value::Int32(300), Value::Int32(320)),
            top: None,
            set: vec![(
                2,
                Expr::arith(BinOp::Add, Expr::col(2), Expr::lit(Value::Int32(7))),
            )],
        }))
        .run()
        .unwrap();
    }

    /// `(name, query, ordered)` — when `ordered`, the row *order* must also
    /// agree (the query carries an ORDER BY); otherwise rows are compared as
    /// sorted multisets.
    fn differential_cases() -> Vec<(&'static str, SelectQuery, bool)> {
        let agg = |func, col| AggItem::column(func, ColRef::new(0, col));
        vec![
            (
                "global_aggregates",
                SelectQuery {
                    tables: vec![TableInput::with_predicate(
                        "fact",
                        Expr::between(1, Value::Int32(5), Value::Int32(25)),
                    )],
                    aggregates: vec![
                        agg(AggFunc::Count, 0),
                        agg(AggFunc::Sum, 2),
                        agg(AggFunc::Min, 2),
                        agg(AggFunc::Max, 2),
                    ],
                    ..Default::default()
                },
                true,
            ),
            (
                "empty_aggregate",
                SelectQuery {
                    tables: vec![TableInput::with_predicate(
                        "fact",
                        Expr::col_cmp(1, CmpOp::Gt, Value::Int32(1_000)),
                    )],
                    aggregates: vec![agg(AggFunc::Count, 0), agg(AggFunc::Sum, 2)],
                    ..Default::default()
                },
                true,
            ),
            (
                "group_by_aggregate",
                SelectQuery {
                    tables: vec![TableInput::new("fact")],
                    group_by: vec![ColRef::new(0, 1)],
                    aggregates: vec![agg(AggFunc::Count, 0), agg(AggFunc::Sum, 2)],
                    ..Default::default()
                },
                false,
            ),
            (
                "join_filtered_aggregate",
                SelectQuery {
                    tables: vec![
                        TableInput::new("fact"),
                        TableInput::with_predicate(
                            "dim",
                            Expr::col_cmp(1, CmpOp::Lt, Value::Int32(3)),
                        ),
                    ],
                    joins: vec![EquiJoin {
                        left: ColRef::new(0, 1),
                        right: ColRef::new(1, 0),
                    }],
                    aggregates: vec![agg(AggFunc::Count, 0), agg(AggFunc::Sum, 2)],
                    ..Default::default()
                },
                true,
            ),
            (
                "join_group_by",
                SelectQuery {
                    tables: vec![TableInput::new("fact"), TableInput::new("dim")],
                    joins: vec![EquiJoin {
                        left: ColRef::new(0, 1),
                        right: ColRef::new(1, 0),
                    }],
                    group_by: vec![ColRef::new(1, 1)],
                    aggregates: vec![agg(AggFunc::Count, 0), agg(AggFunc::Sum, 2)],
                    ..Default::default()
                },
                false,
            ),
            (
                "order_by_key_with_limit",
                SelectQuery {
                    tables: vec![TableInput::with_predicate(
                        "fact",
                        Expr::between(0, Value::Int32(90), Value::Int32(350)),
                    )],
                    select: vec![ColRef::new(0, 0), ColRef::new(0, 2)],
                    order_by: vec![(0, true)],
                    limit: Some(25),
                    ..Default::default()
                },
                true,
            ),
            (
                "order_by_value_desc",
                SelectQuery {
                    tables: vec![TableInput::with_predicate(
                        "fact",
                        Expr::col_cmp(1, CmpOp::Eq, Value::Int32(7)),
                    )],
                    select: vec![ColRef::new(0, 2), ColRef::new(0, 0)],
                    order_by: vec![(0, false), (1, true)],
                    ..Default::default()
                },
                true,
            ),
            (
                "full_projection",
                SelectQuery {
                    tables: vec![TableInput::new("fact")],
                    select: vec![ColRef::new(0, 0), ColRef::new(0, 1), ColRef::new(0, 2)],
                    ..Default::default()
                },
                false,
            ),
        ]
    }

    fn assert_all_agree(dbs: &[(&'static str, Database)], phase: &str) {
        for (case, query, ordered) in differential_cases() {
            let stmt = Statement::Select(query);
            let mut results: Vec<(&str, Vec<Row>)> = dbs
                .iter()
                .map(|(name, db)| {
                    let mut rows = db.query(&stmt).run().unwrap().rows;
                    if !ordered {
                        rows.sort();
                    }
                    (*name, rows)
                })
                .collect();
            let (base_name, base) = results.remove(0);
            for (name, rows) in results {
                assert_eq!(
                    base, rows,
                    "{phase}/{case}: {base_name} and {name} disagree"
                );
            }
        }
    }

    #[test]
    fn cross_design_suite_fresh_and_with_pending_deletes() {
        let dbs = build_designs();
        assert_all_agree(&dbs, "fresh");

        for (_, db) in &dbs {
            apply_mutations(db);
        }
        // The mutation batch must actually be *pending* on the CSI designs:
        // rows in the delta store and deletes buffered, not compacted.
        for (name, db) in &dbs {
            if *name == "btree" {
                continue;
            }
            let metas = db.with_table("fact", |t| t.metas()).unwrap();
            let csi = metas
                .iter()
                .find(|m| m.rowgroups > 0)
                .expect("a CSI design must have compressed rowgroups");
            assert!(
                csi.delta_rows > 0,
                "{name}: delta store should be non-empty"
            );
            if *name == "hybrid" {
                assert!(
                    csi.delete_buffer_rows > 0,
                    "hybrid: deletes should be pending in the delete buffer"
                );
            }
        }
        assert_all_agree(&dbs, "mutated");
    }
}

/// The ISSUE-1 acceptance flow: `explain_analyze` on a lineitem select shows
/// per-node estimated-vs-actual rows and elapsed time, and spilling under a
/// small grant surfaces as a nonzero spill counter in the same output.
#[test]
fn explain_analyze_lineitem_with_spill() {
    let db = Database::new(DbConfig::default());
    load_lineitem(&db, 30_000, 42, MixedDesign::BTreeOnly).unwrap();

    // A wide scan sorted by a non-key column so the sort does real work.
    let mut q = SelectQuery::single_table("lineitem", None, (0..8).collect());
    q.order_by = vec![(3, true)]; // l_extendedprice

    let r = db.query(&q).grant_bytes(32 << 10).analyze().run().unwrap();
    let report = r.analyze.as_ref().unwrap();
    assert_eq!(report.root().actual_rows, r.rows.len() as u64);
    assert!(report.spilled_bytes() > 0, "{}", report.render());

    let rendered = report.render();
    // Every plan-node line carries estimated vs actual rows and a time
    // reading; summary trailers (pruning/grant/wal/timeline) are exempt.
    for line in rendered.lines().filter(|l| {
        !l.starts_with("pruning:")
            && !l.starts_with("grant:")
            && !l.starts_with("wal:")
            && !l.starts_with("timeline:")
    }) {
        assert!(line.contains("est="), "{rendered}");
        assert!(line.contains("act="), "{rendered}");
        assert!(line.contains("time="), "{rendered}");
    }
    assert!(rendered.contains("spilled="), "{rendered}");
    assert!(rendered.contains("Sort"), "{rendered}");
    // The admission outcome for this statement is part of the report.
    let grant = report.grant.expect("SELECT runs under the grant broker");
    assert_eq!(grant.granted_bytes, 32 << 10);
    assert!(rendered.contains("grant: requested="), "{rendered}");

    // The run landed in the query store with its estimate-error ratio.
    let last = db.query_store().recent().last().cloned().unwrap();
    assert_eq!(last.actual_rows, r.rows.len() as u64);
    assert!(last.spilled_bytes > 0);
    assert!(last.estimate_error > 0.0);
}
