//! End-to-end tracing: run a §3.6-style mixed workload with tracing on and
//! validate the exported span taxonomy, rowgroup heat report, query-store
//! backfill, and the Prometheus metrics snapshot.
//!
//! The tracer is process-global, so the whole flow lives in one test
//! function; this file is its own test binary, so other integration tests
//! never see the enabled tracer.

use hybrid_physical_designs::engine::{Database, DbConfig};
use hybrid_physical_designs::obs::trace;
use hybrid_physical_designs::workloads::tpch::{
    load_lineitem, q4_update, q5_scan_range, MixedDesign,
};

#[test]
fn traced_mixed_workload_exports_spans_heat_and_metrics() {
    let mut cfg = DbConfig {
        tracing: true,
        ..DbConfig::default()
    };
    cfg.csi.rowgroup_capacity = 4_096;
    // Auto-checkpoint during the run so a background.checkpoint root span
    // appears without an explicit call.
    cfg.wal.checkpoint_every_commits = 8;
    let db = Database::new(cfg);
    load_lineitem(&db, 20_000, 7, MixedDesign::PrimaryCsi).unwrap();
    // Discard load-time spans: the workload under test starts here.
    trace::tracer().drain();

    // Mixed workload: analytic scans interleaved with small updates, plus
    // one explicit maintenance pass (tuple mover + delete compaction).
    let mut analyzed = None;
    for i in 0..12 {
        let scan = q5_scan_range(40 * i, 40 * i + 80);
        if i == 6 {
            let r = db.query(&scan).analyze().run().unwrap();
            analyzed = r.analyze;
        } else {
            db.query(&scan).run().unwrap();
        }
        db.query(&q4_update(10, 40 * i)).run().unwrap();
    }
    db.maintenance("lineitem").run().unwrap();

    // --- Analyze report carries the phase timeline -------------------
    let report = analyzed.expect("analyze requested");
    let timeline = report.timeline.expect("timeline populated for selects");
    assert!(timeline.execute_us > 0, "execute phase must take time");
    let rendered = report.render();
    assert!(rendered.contains("timeline: optimize="), "{rendered}");
    assert!(rendered.contains("wal_flush="), "{rendered}");

    // --- Query store: admission/DOP/WAL backfill and span trees ------
    let recent = db.query_store().recent();
    assert!(!recent.is_empty());
    assert!(
        recent.iter().all(|s| s.granted_bytes > 0),
        "every select runs under a broker grant"
    );
    assert!(recent.iter().all(|s| s.dop >= 1));
    assert!(
        recent.iter().any(|s| s.wal_records > 0),
        "update commits must backfill WAL records"
    );
    let traced = recent
        .iter()
        .find(|s| s.trace.is_some())
        .expect("span trees attached while tracing");
    let tree = traced.trace.as_ref().unwrap();
    assert!(tree.starts_with("{\"name\":\"query\""), "{tree}");
    assert!(tree.contains("\"children\":["), "{tree}");
    // The dump embeds the tree as structural JSON, not a quoted string.
    assert!(db
        .query_store()
        .dump_jsonl()
        .contains("\"trace\":{\"name\""));

    // --- Chrome trace export: full span taxonomy ---------------------
    let spans = trace::tracer().spans();
    let names: std::collections::BTreeSet<&str> = spans.iter().map(|s| s.name).collect();
    for expected in [
        "query",
        "select",
        "optimize",
        "admission",
        "execute",
        "op",
        "commit",
        "wal.flush",
        "background.maintenance",
        "background.checkpoint",
    ] {
        assert!(names.contains(expected), "missing span {expected:?}");
    }
    // Background work records as roots, never under a query.
    for s in spans.iter().filter(|s| s.name.starts_with("background.")) {
        assert_eq!(s.parent, 0, "background span nested under {}", s.parent);
    }
    // Queries are roots; their lifecycle spans nest beneath them.
    let query_ids: std::collections::BTreeSet<u64> = spans
        .iter()
        .filter(|s| s.name == "query")
        .map(|s| {
            assert_eq!(s.parent, 0);
            s.id
        })
        .collect();
    let parent_name = |id: u64| spans.iter().find(|s| s.id == id).map(|s| s.name);
    for s in &spans {
        match s.name {
            "select" => assert!(query_ids.contains(&s.parent), "select outside a query"),
            "optimize" | "admission" | "execute" => {
                assert_eq!(parent_name(s.parent), Some("select"))
            }
            "wal.flush" => assert_eq!(parent_name(s.parent), Some("commit")),
            _ => {}
        }
    }
    let chrome = db.export_chrome_trace(); // drains the rings
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.ends_with("]}"));
    assert!(chrome.contains("\"name\":\"wal.flush\""));
    assert!(trace::tracer().spans().is_empty(), "export drains");

    // --- Rowgroup heat: non-trivial for the same run -----------------
    let heat = db.heat_report();
    assert!(!heat.is_empty(), "primary CSI must report heat");
    let (_, _, primary) = &heat[0];
    assert!(primary.rowgroups.len() > 1, "several rowgroups expected");
    let reads: u64 = primary.rowgroups.iter().map(|rg| rg.reads).sum();
    let writes: u64 = primary.rowgroups.iter().map(|rg| rg.writes).sum();
    assert!(reads > 0, "scans must heat rowgroups");
    assert!(writes > 0, "updates must heat rowgroups");
    assert!(primary.rowgroups.iter().any(|rg| rg.score() > 0));
    // Heat ages on the decay clock (`Database::decay_heat`, normally the
    // maintenance scheduler's tick) — deliberately NOT on maintenance
    // passes, which this run performed plenty of.
    assert_eq!(primary.decay_passes, 0, "maintenance must not decay heat");
    db.decay_heat();
    let heat = db.heat_report();
    let (_, _, primary) = &heat[0];
    assert!(primary.decay_passes >= 1, "decay tick ages heat");

    // --- Prometheus snapshot -----------------------------------------
    let prom = db.metrics_prometheus();
    for metric in [
        "hpd_query_statements",
        "hpd_query_latency_us_count",
        "hpd_maintenance_increments",
        "hpd_background_checkpoint_runs",
        "hpd_background_io_bytes_written",
    ] {
        assert!(prom.contains(metric), "missing prometheus metric {metric}");
    }

    trace::tracer().set_enabled(false);
    trace::tracer().drain();
}
