//! The metrics catalog (`OBSERVABILITY.md`) must cover every metric the
//! engine registers at runtime: run a representative workload touching all
//! subsystems, then check each registered name appears in the document.

use hybrid_physical_designs::advisor::{Advisor, AdvisorOptions, Workload};
use hybrid_physical_designs::engine::{Database, DbConfig};
use hybrid_physical_designs::sql::SqlSession;
use hybrid_physical_designs::workloads::tpch::{
    load_lineitem, q4_update, q5_scan_range, MixedDesign,
};

const CATALOG: &str = include_str!("../OBSERVABILITY.md");

#[test]
fn every_registered_metric_is_documented() {
    let mut cfg = DbConfig::default();
    cfg.csi.rowgroup_capacity = 4_096;
    cfg.wal.checkpoint_every_commits = 4;
    let db = Database::new(cfg.clone());
    load_lineitem(&db, 10_000, 3, MixedDesign::BTreeWithSecondaryCsi).unwrap();

    // Touch every subsystem: scans (columnstore + pruning + segcache),
    // updates (locks, WAL, delta stores), maintenance, checkpoint, the
    // what-if advisor, and crash recovery.
    for i in 0..8 {
        db.query(&q5_scan_range(40 * i, 40 * i + 80)).run().unwrap();
        db.query(&q4_update(10, 40 * i)).run().unwrap();
    }
    // The SQL front-end: statements, parse timing, plan-cache hit/miss/
    // invalidation, parse errors, and session/transaction counters.
    {
        let mut s = SqlSession::new(&db);
        s.execute("BEGIN; SELECT SUM(l_quantity) FROM lineitem WHERE l_shipdate BETWEEN 40 AND 80; COMMIT")
            .unwrap();
        s.execute_one("SELECT SUM(l_quantity) FROM lineitem WHERE l_shipdate BETWEEN 10 AND 90")
            .unwrap();
        s.execute_one("BEGIN").unwrap();
        s.execute_one("ROLLBACK").unwrap();
        s.execute_one("CREATE INDEX ON lineitem (l_suppkey)")
            .unwrap();
        s.execute_one("SELECT SUM(l_quantity) FROM lineitem WHERE l_shipdate BETWEEN 40 AND 80")
            .unwrap();
        s.execute_one("SELECT definitely_not_sql FROM").unwrap_err();
    }
    db.maintenance("lineitem").run().unwrap();
    db.checkpoint().unwrap();
    let scan = match q5_scan_range(0, 40) {
        hybrid_physical_designs::engine::Statement::Select(q) => q,
        _ => unreachable!(),
    };
    let workload = Workload::read_only(vec![scan]);
    Advisor::new(&db, AdvisorOptions::default())
        .recommend(&workload)
        .unwrap();
    Database::recover(cfg, db.wal_durable()).unwrap();

    let snapshot = hybrid_physical_designs::obs::global().snapshot();
    let mut missing: Vec<String> = Vec::new();
    for name in snapshot.counters.keys().chain(snapshot.histograms.keys()) {
        if !CATALOG.contains(&format!("`{name}`")) {
            missing.push(name.clone());
        }
    }
    assert!(
        missing.is_empty(),
        "metrics registered at runtime but missing from OBSERVABILITY.md: {missing:?}"
    );
}
