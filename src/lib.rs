//! # hybrid-physical-designs
//!
//! A from-scratch Rust reproduction of *"Columnstore and B+ tree — Are Hybrid
//! Physical Designs Important?"* (Dziedzic et al., SIGMOD 2018).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`common`] — values, schemas, rows, batches, expressions;
//! * [`obs`] — the metrics registry (counters, histograms, snapshots);
//! * [`storage`] — the storage simulator (pages, buffer pool, device models);
//! * [`btree`] — the B+ tree index;
//! * [`columnstore`] — the columnstore index (row groups, compressed
//!   segments, delta store, delete buffer/bitmap);
//! * [`exec`] — row-mode and batch-mode execution operators;
//! * [`engine`] — the mini-DBMS: catalog, tables, DML, optimizer, what-if
//!   API, locking and isolation;
//! * [`advisor`] — the paper's core contribution: the tuning advisor that
//!   recommends hybrid B+ tree / columnstore designs;
//! * [`workloads`] — data and workload generators (micro-benchmarks, TPC-H
//!   lineitem, TPC-DS-like, TPC-C/CH, customer-workload synthesizer);
//! * [`sql`] — the SQL front-end: lexer, parser, binder, plan cache,
//!   concurrent sessions, line protocol, and the `hpd-cli` REPL.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory and
//! the per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured
//! results.

pub use hpd_advisor as advisor;
pub use hpd_btree as btree;
pub use hpd_columnstore as columnstore;
pub use hpd_common as common;
pub use hpd_engine as engine;
pub use hpd_exec as exec;
pub use hpd_obs as obs;
pub use hpd_sql as sql;
pub use hpd_storage as storage;
pub use hpd_workloads as workloads;
