//! Minimal `rand`-compatible PRNG so the workspace builds offline without
//! the real crate. Provides `rngs::StdRng` (xoshiro256++ seeded via
//! splitmix64), the `Rng`/`SeedableRng` traits with `gen_range`/`gen_bool`,
//! and `seq::SliceRandom::{shuffle, choose}`. Deterministic for a given
//! seed, but the value stream differs from upstream `rand` — workloads are
//! reproducible run-to-run, not bit-identical to the original crate.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}

// f64 only: an f32 impl would make bare float-literal ranges ambiguous.
float_sample_range!(f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator; the workspace's deterministic workhorse.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // splitmix64 expansion of the seed, as upstream rand does.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-50i32..50);
            assert!((-50..50).contains(&v));
            let u = r.gen_range(1usize..=4);
            assert!((1..=4).contains(&u));
            let f = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<i32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn choose_returns_member() {
        let mut r = StdRng::seed_from_u64(9);
        let v = [10, 20, 30];
        assert!(v.contains(v.as_slice().choose(&mut r).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.as_slice().choose(&mut r).is_none());
    }
}
