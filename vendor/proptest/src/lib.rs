//! Minimal `proptest`-compatible property-testing harness so the workspace
//! builds and tests run offline without the real crate. The `proptest!`
//! macro expands each property into a plain `#[test]` that runs
//! `ProptestConfig::cases` seeded-random cases. Strategies cover the
//! surface used by the workspace: integer ranges, tuples, `collection::vec`,
//! `option::of`, `bool::ANY`, and `prop_map`. Failing cases are reported
//! with their case number (re-run deterministically); there is no shrinking.
//!
//! Like upstream, `<test-file>.proptest-regressions` files are honoured:
//! their recorded `cc <token>` cases run *before* any novel cases, and a
//! novel failing case is appended so the failure replays on the next run.
//! Decimal tokens name one of this harness's case numbers; hex tokens
//! (upstream's persisted seeds) are FNV-hashed into a seed so checked-in
//! upstream regressions still exercise a deterministic case.

use std::ops::Range;

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    /// Deterministic splitmix64 stream seeded per test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(case: u64) -> TestRng {
            TestRng {
                state: case.wrapping_mul(0x9e3779b97f4a7c15) ^ 0x5851f42d4c957f2d,
            }
        }

        /// Seed the stream directly (persisted upstream-style regressions).
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform value in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }
}

use test_runner::TestRng;

/// Persistence of failing cases, compatible with upstream's
/// `*.proptest-regressions` files.
pub mod regressions {
    use std::path::{Path, PathBuf};

    const HEADER: &str = "\
# Seeds for failure cases proptest has generated in the past. It is
# automatically read and these particular cases re-run before any
# novel cases are generated.
#
# It is recommended to check this file in to source control so that
# everyone who runs the test benefits from these saved cases.
";

    /// One recorded regression: either a case number of this harness's
    /// deterministic stream (decimal token) or a raw seed derived from an
    /// upstream hex token.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Recorded {
        Case(u64),
        Seed(u64),
    }

    impl Recorded {
        pub fn rng(self) -> crate::test_runner::TestRng {
            match self {
                Recorded::Case(c) => crate::test_runner::TestRng::for_case(c),
                Recorded::Seed(s) => crate::test_runner::TestRng::from_seed(s),
            }
        }
    }

    fn fnv1a64(s: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Parse one `cc <token> ...` line. Decimal tokens are case numbers;
    /// anything else (upstream's hex seeds) hashes to a raw seed.
    pub fn parse_line(line: &str) -> Option<Recorded> {
        let rest = line.trim().strip_prefix("cc ")?;
        let token = rest.split_whitespace().next()?;
        Some(match token.parse::<u64>() {
            Ok(case) => Recorded::Case(case),
            Err(_) => Recorded::Seed(fnv1a64(token)),
        })
    }

    /// Resolve `file!()` (workspace-root relative) against the test
    /// binary's working directory (the package root) or its ancestors.
    fn resolve_source(source_file: &str) -> Option<PathBuf> {
        let direct = Path::new(source_file);
        if direct.exists() {
            return Some(direct.to_path_buf());
        }
        let cwd = std::env::current_dir().ok()?;
        cwd.ancestors()
            .map(|a| a.join(source_file))
            .find(|p| p.exists())
    }

    fn regressions_path(source_file: &str) -> Option<PathBuf> {
        Some(resolve_source(source_file)?.with_extension("proptest-regressions"))
    }

    /// All recorded cases for the test source file, in file order.
    pub fn load(source_file: &str) -> Vec<Recorded> {
        let Some(path) = regressions_path(source_file) else {
            return Vec::new();
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Vec::new();
        };
        text.lines().filter_map(parse_line).collect()
    }

    /// Append a freshly failed case so the next run replays it first.
    pub fn record(source_file: &str, case: u64) {
        let Some(path) = regressions_path(source_file) else {
            return;
        };
        if load(source_file).contains(&Recorded::Case(case)) {
            return;
        }
        let mut text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => HEADER.to_string(),
        };
        if !text.ends_with('\n') {
            text.push('\n');
        }
        text.push_str(&format!("cc {case}\n"));
        if std::fs::write(&path, text).is_ok() {
            eprintln!("proptest: persisted failing case to {}", path.display());
        }
    }
}

/// A generator of values for one property input.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty strategy range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Strategy combinators under the `prop::` path, mirroring upstream.
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// A vector whose length is drawn from `len` and whose elements are
        /// drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().generate(rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    pub mod option {
        use super::super::{Strategy, TestRng};

        pub struct OptionStrategy<S>(S);

        /// `Some` with probability 1/2, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 0 {
                    Some(self.0.generate(rng))
                } else {
                    None
                }
            }
        }
    }

    pub mod bool {
        use super::super::{Strategy, TestRng};

        pub struct BoolAny;

        /// Either boolean, uniformly.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 0
            }
        }
    }
}

/// Assert inside a property; failure reports the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Expand property functions into seeded-random `#[test]`s.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $(
        #[test]
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let __src = file!();
                let mut __run = |__rng: &mut $crate::test_runner::TestRng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                };
                // Recorded regressions replay before any novel case.
                for (__i, __rec) in $crate::regressions::load(__src).into_iter().enumerate() {
                    let __ok = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| __run(&mut __rec.rng())),
                    );
                    if let Err(__e) = __ok {
                        eprintln!(
                            "proptest: recorded regression #{} ({:?}) failed",
                            __i + 1,
                            __rec
                        );
                        ::std::panic::resume_unwind(__e);
                    }
                }
                for __case in 0..config.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    let __ok = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| __run(&mut __rng)),
                    );
                    if let Err(__e) = __ok {
                        eprintln!("proptest: case {__case} failed");
                        $crate::regressions::record(__src, __case);
                        ::std::panic::resume_unwind(__e);
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(1);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(-5i32..30), &mut rng);
            assert!((-5..30).contains(&v));
        }
        let vecs = prop::collection::vec((0i32..50, prop::bool::ANY), 1..120);
        let v = crate::Strategy::generate(&vecs, &mut rng);
        assert!(!v.is_empty() && v.len() < 120);
        assert!(v.iter().all(|(x, _)| (0..50).contains(x)));
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::test_runner::TestRng::for_case(2);
        let s = (0usize..4, prop::option::of(1usize..20)).prop_map(|(a, b)| (a * 2, b));
        let (a, _b) = crate::Strategy::generate(&s, &mut rng);
        assert!(a % 2 == 0 && a < 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_expands_and_runs(mut xs in prop::collection::vec(0i32..10, 0..5), flag in prop::bool::ANY) {
            xs.push(if flag { 1 } else { 0 });
            prop_assert!(xs.len() <= 5);
            prop_assert_eq!(xs.last().copied().unwrap() <= 1, true);
        }
    }

    #[test]
    fn regression_tokens_parse() {
        use crate::regressions::{parse_line, Recorded};
        assert_eq!(
            parse_line("cc 17 # shrinks to x = 3"),
            Some(Recorded::Case(17))
        );
        assert!(matches!(
            parse_line("cc b8bfade721a555df # upstream seed"),
            Some(Recorded::Seed(_))
        ));
        assert_eq!(parse_line("# comment"), None);
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("cc deadbeef"), parse_line("cc deadbeef"));
        assert_ne!(parse_line("cc deadbeef"), parse_line("cc deadbeee"));
    }

    #[test]
    fn record_and_load_roundtrip() {
        use crate::regressions::{load, record, Recorded};
        let dir = std::env::temp_dir().join("hpd-proptest-regress-test");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("demo_test.rs");
        std::fs::write(&src, "// test source stand-in\n").unwrap();
        let src_str = src.to_str().unwrap();
        let regress = src.with_extension("proptest-regressions");
        let _ = std::fs::remove_file(&regress);

        assert!(load(src_str).is_empty());
        record(src_str, 42);
        record(src_str, 42); // idempotent
        assert_eq!(load(src_str), vec![Recorded::Case(42)]);
        let text = std::fs::read_to_string(&regress).unwrap();
        assert!(text.starts_with("# Seeds for failure cases"));
        assert_eq!(text.matches("cc 42").count(), 1);
        let _ = std::fs::remove_file(&regress);
    }
}
