//! Minimal `criterion`-compatible benchmark harness so the workspace builds
//! and `cargo bench` runs in offline environments without the real crate.
//! Each benchmark runs `sample_size` timed samples and reports the median —
//! no statistics engine, plots, or baselines, but the same source API:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `bench_with_input`, `Bencher::iter`/`iter_batched`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Batch-size hint for `iter_batched` (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample_iters: u64,
}

impl Bencher {
    /// Time `routine`, once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
        self.per_sample_iters = 1;
    }

    /// Time `routine` on a fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed());
        self.per_sample_iters = 1;
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size + 1),
        per_sample_iters: 1,
    };
    // Warm-up sample, discarded.
    f(&mut b);
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let best = b.samples[0];
    println!(
        "{name}: median {} best {} ({} samples)",
        fmt_duration(median),
        fmt_duration(best),
        b.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Declare a benchmark group: both the `name/config/targets` form and the
/// positional form are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= 3, "warmup + samples should run the closure");
    }

    #[test]
    fn group_runs_batched() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 1), &41, |b, &x| {
            b.iter_batched(|| x, |v| v + 1, BatchSize::SmallInput)
        });
        g.finish();
    }
}
