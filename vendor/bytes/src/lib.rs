//! Minimal `bytes`-compatible buffer types so the workspace builds offline
//! without the real crate: a cheaply clonable immutable [`Bytes`]
//! (`Arc<[u8]>`) and a growable [`BytesMut`] that freezes into it. Both
//! deref to `[u8]`, so slicing and indexing work as with the upstream crate.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Immutable shared byte buffer; `Clone` is a reference-count bump.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[] as &[u8]))
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

/// Mutable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> BytesMut {
        BytesMut(vec![0u8; len])
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    pub fn freeze(self) -> Bytes {
        Bytes(Arc::from(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_freeze_roundtrip() {
        let mut m = BytesMut::zeroed(16);
        m[0..8].copy_from_slice(&42u64.to_le_bytes());
        let b = m.freeze();
        assert_eq!(b.len(), 16);
        assert_eq!(u64::from_le_bytes(b[0..8].try_into().unwrap()), 42);
        let b2 = b.clone();
        assert_eq!(&b[..], &b2[..]);
    }
}
