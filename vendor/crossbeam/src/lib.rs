//! Minimal `crossbeam`-compatible scoped-thread API over
//! `std::thread::scope`, so the workspace builds offline without the real
//! crate. Only `crossbeam::thread::scope` / `Scope::spawn` /
//! `ScopedJoinHandle::join` are provided; the closure passed to `spawn`
//! receives a unit placeholder instead of a nested scope handle (the
//! workspace never spawns from inside workers).

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Payload of a panicked scope or thread.
    pub type Panic = Box<dyn Any + Send + 'static>;

    /// Scoped-thread handle wrapping the std scope.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker. The closure's argument is a placeholder for
        /// crossbeam's nested-scope handle.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle(self.0.spawn(move || f(())))
        }
    }

    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Panic> {
            self.0.join()
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. A panic escaping the scope is captured as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Panic>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope(s)))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_workers() {
        let data = [1, 2, 3];
        let total = crate::thread::scope(|s| {
            let hs: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            hs.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(total, 12);
    }

    #[test]
    fn worker_panic_is_captured_by_join() {
        let r = crate::thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        });
        assert!(r.unwrap());
    }
}
