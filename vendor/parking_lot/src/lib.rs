//! Minimal `parking_lot`-compatible synchronization primitives over
//! `std::sync`, so the workspace builds in offline environments without the
//! real crate. Only the API surface the workspace uses is provided:
//! non-poisoning `Mutex`/`RwLock` guards and a `Condvar` with
//! deadline-based `wait_until`.

use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// A mutex whose `lock` never returns a poison error (a poisoned std lock is
/// recovered transparently, matching parking_lot semantics).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Guard wrapper holding the std guard in an `Option` so [`Condvar`] can
/// temporarily take ownership during a wait.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Condition variable with parking_lot's deadline-based wait API.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wait until notified or `deadline` passes. The guard is released while
    /// waiting and re-acquired before returning.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok(pair) => pair,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

/// Result of a timed wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A reader-writer lock whose guards never surface poisoning.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn mutex_guard_derefs() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_wakes_on_notify() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *m2.lock() = true;
            cv2.notify_all();
        });
        let mut g = m.lock();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !*g {
            let r = cv.wait_until(&mut g, deadline);
            assert!(!r.timed_out(), "should be woken well before the deadline");
        }
        h.join().unwrap();
    }
}
