//! Per-query I/O accounting.
//!
//! An [`IoTracker`] is carried through an entire query execution (cloned
//! into parallel workers — counters are atomic) and accumulates logical and
//! physical I/O plus simulated I/O time. Benchmarks read an [`IoSnapshot`]
//! at the end of a run; "data read" in Figure 2(b) is
//! [`IoSnapshot::bytes_read`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe accumulator of I/O activity for one query execution.
#[derive(Debug, Clone, Default)]
pub struct IoTracker {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    /// Pages/blobs touched regardless of residency (logical reads).
    logical_reads: AtomicU64,
    /// Requests that missed the buffer pool (physical reads).
    physical_reads: AtomicU64,
    /// Bytes physically read from the device.
    bytes_read: AtomicU64,
    /// Bytes physically written to the device (spills, index writes).
    bytes_written: AtomicU64,
    /// Simulated positioning (seek) time in nanoseconds.
    sim_seek_nanos: AtomicU64,
    /// Simulated transfer (bandwidth) time in nanoseconds.
    sim_bw_nanos: AtomicU64,
}

impl IoTracker {
    pub fn new() -> IoTracker {
        IoTracker::default()
    }

    pub fn record_logical(&self, requests: u64) {
        self.inner
            .logical_reads
            .fetch_add(requests, Ordering::Relaxed);
    }

    /// Record a physical read: `(seek_us, bw_us)` are the positioning and
    /// transfer components of the simulated device time. Positioning can
    /// overlap across parallel streams; transfer shares the device's one
    /// bandwidth.
    pub fn record_physical_read(&self, requests: u64, bytes: u64, seek_us: f64, bw_us: f64) {
        self.inner
            .physical_reads
            .fetch_add(requests, Ordering::Relaxed);
        self.inner.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.add_sim_us(seek_us, bw_us);
    }

    pub fn record_write(&self, bytes: u64, seek_us: f64, bw_us: f64) {
        self.inner.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.add_sim_us(seek_us, bw_us);
    }

    fn add_sim_us(&self, seek_us: f64, bw_us: f64) {
        self.inner
            .sim_seek_nanos
            .fetch_add((seek_us * 1_000.0).round() as u64, Ordering::Relaxed);
        self.inner
            .sim_bw_nanos
            .fetch_add((bw_us * 1_000.0).round() as u64, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.inner.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.inner.physical_reads.load(Ordering::Relaxed),
            bytes_read: self.inner.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.inner.bytes_written.load(Ordering::Relaxed),
            sim_seek_us: self.inner.sim_seek_nanos.load(Ordering::Relaxed) as f64 / 1_000.0,
            sim_bw_us: self.inner.sim_bw_nanos.load(Ordering::Relaxed) as f64 / 1_000.0,
        }
    }

    /// Reset all counters (between repeated runs).
    pub fn reset(&self) {
        self.inner.logical_reads.store(0, Ordering::Relaxed);
        self.inner.physical_reads.store(0, Ordering::Relaxed);
        self.inner.bytes_read.store(0, Ordering::Relaxed);
        self.inner.bytes_written.store(0, Ordering::Relaxed);
        self.inner.sim_seek_nanos.store(0, Ordering::Relaxed);
        self.inner.sim_bw_nanos.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of an [`IoTracker`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IoSnapshot {
    pub logical_reads: u64,
    pub physical_reads: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Simulated positioning time in microseconds.
    pub sim_seek_us: f64,
    /// Simulated transfer (bandwidth) time in microseconds.
    pub sim_bw_us: f64,
}

impl IoSnapshot {
    /// Difference of two snapshots (self - earlier).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads - earlier.logical_reads,
            physical_reads: self.physical_reads - earlier.physical_reads,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            sim_seek_us: self.sim_seek_us - earlier.sim_seek_us,
            sim_bw_us: self.sim_bw_us - earlier.sim_bw_us,
        }
    }

    /// Total simulated device time (positioning + transfer).
    pub fn sim_io_us(&self) -> f64 {
        self.sim_seek_us + self.sim_bw_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = IoTracker::new();
        t.record_logical(3);
        t.record_physical_read(2, 16_384, 80.0, 20.0);
        t.record_write(512, 0.5, 10.0);
        let s = t.snapshot();
        assert_eq!(s.logical_reads, 3);
        assert_eq!(s.physical_reads, 2);
        assert_eq!(s.bytes_read, 16_384);
        assert_eq!(s.bytes_written, 512);
        assert!((s.sim_io_us() - 110.5).abs() < 1e-6);
        assert!((s.sim_seek_us - 80.5).abs() < 1e-6);
    }

    #[test]
    fn clones_share_counters() {
        let t = IoTracker::new();
        let t2 = t.clone();
        t2.record_logical(5);
        assert_eq!(t.snapshot().logical_reads, 5);
    }

    #[test]
    fn reset_zeroes() {
        let t = IoTracker::new();
        t.record_physical_read(1, 100, 1.0, 0.0);
        t.reset();
        assert_eq!(t.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn snapshot_diff() {
        let t = IoTracker::new();
        t.record_logical(2);
        let a = t.snapshot();
        t.record_logical(3);
        t.record_physical_read(1, 8, 2.0, 0.0);
        let d = t.snapshot().since(&a);
        assert_eq!(d.logical_reads, 3);
        assert_eq!(d.physical_reads, 1);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let t = IoTracker::new();
        let mut hs = Vec::new();
        for _ in 0..8 {
            let t = t.clone();
            hs.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    t.record_logical(1);
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(t.snapshot().logical_reads, 80_000);
    }
}
