//! Simulated spill files for memory-constrained sorts and hash aggregates.
//!
//! When an operator's working set exceeds its memory grant it spills runs /
//! partitions to "disk". The data stays in process memory (a `Vec<u8>`-less
//! simulation — operators keep their own row buffers), but every write and
//! subsequent read is charged to the query's [`IoTracker`] at the device's
//! sequential bandwidth. This reproduces the Figure 4 effect: once a
//! hash aggregate no longer fits its grant, the disk-based implementation
//! makes the columnstore plan slower than the B+ tree streaming aggregate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hpd_common::{faults, HpdError, Result};

use crate::device::DeviceProfile;
use crate::tracker::IoTracker;

/// Factory for spill files sharing one device profile.
///
/// The manager also owns the lifecycle ledger: every [`SpillFile`] it
/// creates is counted open until dropped, so tests can assert a query left
/// no spill state behind — on success *and* on every error path (injected
/// write failure, reduced-grant spill, admission timeout).
#[derive(Debug, Clone)]
pub struct SpillManager {
    device: DeviceProfile,
    total_spilled: Arc<AtomicU64>,
    live_files: Arc<AtomicU64>,
}

impl SpillManager {
    pub fn new(device: DeviceProfile) -> SpillManager {
        SpillManager {
            device,
            total_spilled: Arc::new(AtomicU64::new(0)),
            live_files: Arc::new(AtomicU64::new(0)),
        }
    }

    pub fn create_file(&self) -> SpillFile {
        self.live_files.fetch_add(1, Ordering::Relaxed);
        hpd_obs::global()
            .counter("storage.spill.files_opened")
            .inc();
        SpillFile {
            device: self.device,
            bytes: 0,
            total_spilled: Arc::clone(&self.total_spilled),
            live_files: Arc::clone(&self.live_files),
        }
    }

    /// Total bytes ever spilled through this manager (diagnostics).
    pub fn total_spilled_bytes(&self) -> u64 {
        self.total_spilled.load(Ordering::Relaxed)
    }

    /// Spill files created by this manager and not yet dropped. Zero once
    /// the owning query has completed or unwound.
    pub fn live_files(&self) -> u64 {
        self.live_files.load(Ordering::Relaxed)
    }
}

/// One simulated spill file. Writes accumulate a logical length; reads may
/// be issued any number of times (each full read of a run is charged).
#[derive(Debug)]
pub struct SpillFile {
    device: DeviceProfile,
    bytes: u64,
    total_spilled: Arc<AtomicU64>,
    live_files: Arc<AtomicU64>,
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        self.live_files.fetch_sub(1, Ordering::Relaxed);
        hpd_obs::global()
            .counter("storage.spill.files_closed")
            .inc();
    }
}

impl SpillFile {
    /// Append `bytes` to the file, charging sequential write cost.
    ///
    /// Fails only when the [`faults::sites::SPILL_WRITE_FAIL`] injection site
    /// is armed — the simulated device itself never errors. Nothing is
    /// charged or appended on failure, as if the write were rejected up
    /// front by a full spill volume.
    pub fn write(&mut self, bytes: u64, tracker: &IoTracker) -> Result<()> {
        if faults::fire(faults::sites::SPILL_WRITE_FAIL) {
            return Err(HpdError::FaultInjected("spill write failed".into()));
        }
        self.bytes += bytes;
        self.total_spilled.fetch_add(bytes, Ordering::Relaxed);
        let (seek, bw) = self.device.write_cost_parts(bytes, 1);
        tracker.record_write(bytes, seek, bw);
        Ok(())
    }

    /// Read `bytes` back, charging sequential read cost.
    pub fn read(&self, bytes: u64, tracker: &IoTracker) {
        let (seek, bw) = self.device.read_cost_parts(bytes, 1);
        tracker.record_physical_read(1, bytes, seek, bw);
    }

    /// Read the entire file back.
    pub fn read_all(&self, tracker: &IoTracker) {
        if self.bytes > 0 {
            self.read(self.bytes, tracker);
        }
    }

    pub fn len_bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_charges_write_then_read() {
        let mgr = SpillManager::new(DeviceProfile::hdd_raid());
        let t = IoTracker::new();
        let mut f = mgr.create_file();
        f.write(1 << 20, &t).unwrap();
        f.read_all(&t);
        let s = t.snapshot();
        assert_eq!(s.bytes_written, 1 << 20);
        assert_eq!(s.bytes_read, 1 << 20);
        // write at 400 MB/s is slower than read at 1000 MB/s
        assert!(s.sim_io_us() > (1 << 20) as f64 / 400.0);
    }

    #[test]
    fn empty_file_read_is_free() {
        let mgr = SpillManager::new(DeviceProfile::ssd());
        let t = IoTracker::new();
        let f = mgr.create_file();
        f.read_all(&t);
        assert_eq!(t.snapshot().physical_reads, 0);
    }

    #[test]
    fn manager_tracks_total() {
        let mgr = SpillManager::new(DeviceProfile::ssd());
        let t = IoTracker::new();
        let mut a = mgr.create_file();
        let mut b = mgr.create_file();
        a.write(100, &t).unwrap();
        b.write(50, &t).unwrap();
        assert_eq!(mgr.total_spilled_bytes(), 150);
        assert_eq!(a.len_bytes(), 100);
    }

    #[test]
    fn live_file_ledger_balances_on_drop() {
        let mgr = SpillManager::new(DeviceProfile::ssd());
        let t = IoTracker::new();
        assert_eq!(mgr.live_files(), 0);
        let mut a = mgr.create_file();
        let b = mgr.create_file();
        assert_eq!(mgr.live_files(), 2);
        a.write(100, &t).unwrap();
        drop(a);
        assert_eq!(mgr.live_files(), 1);
        drop(b);
        assert_eq!(mgr.live_files(), 0);
        // The ledger survives a failed write too (the file is still open).
        let mut c = mgr.create_file();
        faults::arm(faults::sites::SPILL_WRITE_FAIL, 1);
        c.write(100, &t).unwrap_err();
        assert_eq!(mgr.live_files(), 1);
        drop(c);
        assert_eq!(mgr.live_files(), 0);
        faults::clear_all();
    }

    #[test]
    fn injected_write_failure_charges_nothing() {
        let mgr = SpillManager::new(DeviceProfile::ssd());
        let t = IoTracker::new();
        let mut f = mgr.create_file();
        faults::arm(faults::sites::SPILL_WRITE_FAIL, 1);
        let err = f.write(100, &t).unwrap_err();
        assert!(matches!(err, HpdError::FaultInjected(_)));
        assert_eq!(f.len_bytes(), 0);
        assert_eq!(mgr.total_spilled_bytes(), 0);
        assert_eq!(t.snapshot().bytes_written, 0);
        // The site ran dry; subsequent writes succeed.
        f.write(100, &t).unwrap();
        assert_eq!(f.len_bytes(), 100);
        faults::clear_all();
    }
}
