//! Storage simulator: devices, pages, buffer pool, I/O accounting, spill
//! files.
//!
//! The paper's experiments run against 10–100 GB datasets on a server with
//! 384 GB RAM and an 18 TB HDD RAID (≈1 GB/s sequential read, 400 MB/s
//! write). This crate substitutes that hardware with a *simulated* storage
//! hierarchy:
//!
//! * every index structure keeps its data in process memory, but declares
//!   its logical layout in 8 KB [`page::PAGE_SIZE`] pages (B+ tree) or
//!   multi-megabyte blobs (columnstore segments);
//! * a [`BufferPool`] with bounded capacity tracks which pages/blobs are
//!   "resident"; misses charge *simulated I/O time* to an [`IoTracker`]
//!   according to a [`DeviceProfile`] (seek latency + bandwidth);
//! * *cold* runs start from an empty pool, *hot* runs from a warmed pool —
//!   exactly the hot/cold axis of the paper's Figures 1–2;
//! * sort/hash spills use [`SpillFile`]s that charge write+read bandwidth.
//!
//! Execution time reported by the benchmarks = measured CPU time + the
//! simulated I/O time accumulated here. This preserves the *shape* of the
//! paper's trade-offs (kilobyte-granular selective B+ tree access vs.
//! megabyte-granular high-bandwidth columnstore scans) at laptop scale.

pub mod bufferpool;
pub mod device;
pub mod page;
pub mod spill;
pub mod tracker;

pub use bufferpool::BufferPool;
pub use device::DeviceProfile;
pub use page::{BlobId, PageId, StorageAllocator, PAGE_SIZE};
pub use spill::{SpillFile, SpillManager};
pub use tracker::{IoSnapshot, IoTracker};
