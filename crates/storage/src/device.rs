//! Device profiles: the bandwidth/latency model behind simulated I/O time.

/// A storage device model.
///
/// Simulated cost of one request = `seek_latency_us` + `bytes /
/// read_bw_bytes_per_us` (or the write bandwidth for writes). B+ tree page
/// reads issue many small (8 KB) requests and therefore pay the seek latency
/// often; columnstore segment reads issue few multi-megabyte requests and are
/// bandwidth-bound — the asymmetry the paper attributes to "accessing and
/// prefetching larger data blocks (megabytes in CSI compared to kilobytes in
/// B+ tree)" (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    pub name: &'static str,
    /// Per-request latency in microseconds (seek + rotational for HDD).
    pub seek_latency_us: f64,
    /// Sequential read bandwidth, bytes per microsecond (== MB/s).
    pub read_bw: f64,
    /// Sequential write bandwidth, bytes per microsecond (== MB/s).
    pub write_bw: f64,
}

impl DeviceProfile {
    /// The paper's HDD RAID-0: ~1 GB/s reads, ~400 MB/s writes. We keep a
    /// 4 ms average positioning latency: RAID striping parallelizes transfer
    /// but not the head movement of an individual random request.
    pub fn hdd_raid() -> DeviceProfile {
        DeviceProfile {
            name: "hdd-raid0",
            seek_latency_us: 4_000.0,
            read_bw: 1_000.0,
            write_bw: 400.0,
        }
    }

    /// The HDD RAID with bandwidth divided by `scale`, keeping laptop-scale
    /// tables in the same seek-vs-scan cost regime as the paper's 10–100 GB
    /// tables: a full sequential scan of an N-times-smaller table should
    /// still dwarf a handful of seeks. Seek latency is physical and does
    /// not scale.
    pub fn hdd_scaled(scale: f64) -> DeviceProfile {
        let base = DeviceProfile::hdd_raid();
        DeviceProfile {
            name: "hdd-scaled",
            seek_latency_us: base.seek_latency_us,
            read_bw: base.read_bw / scale,
            write_bw: base.write_bw / scale,
        }
    }

    /// A NVMe-class SSD, for crossover-sensitivity experiments ("the slower
    /// the storage, the more pronounced the benefit of B+ tree is").
    pub fn ssd() -> DeviceProfile {
        DeviceProfile {
            name: "ssd",
            seek_latency_us: 80.0,
            read_bw: 3_000.0,
            write_bw: 2_000.0,
        }
    }

    /// Memory-speed device: negligible latency, very high bandwidth. Used to
    /// model fully memory-resident configurations where only CPU time
    /// matters.
    pub fn ram() -> DeviceProfile {
        DeviceProfile {
            name: "ram",
            seek_latency_us: 0.0,
            read_bw: 50_000.0,
            write_bw: 50_000.0,
        }
    }

    /// Simulated microseconds to read `bytes` in `requests` separate
    /// requests.
    pub fn read_cost_us(&self, bytes: u64, requests: u64) -> f64 {
        let (s, b) = self.read_cost_parts(bytes, requests);
        s + b
    }

    /// Read cost split into `(positioning, transfer)` microseconds.
    pub fn read_cost_parts(&self, bytes: u64, requests: u64) -> (f64, f64) {
        (
            self.seek_latency_us * requests as f64,
            bytes as f64 / self.read_bw,
        )
    }

    /// Simulated microseconds to write `bytes` in `requests` requests.
    pub fn write_cost_us(&self, bytes: u64, requests: u64) -> f64 {
        let (s, b) = self.write_cost_parts(bytes, requests);
        s + b
    }

    /// Write cost split into `(positioning, transfer)` microseconds.
    pub fn write_cost_parts(&self, bytes: u64, requests: u64) -> (f64, f64) {
        (
            self.seek_latency_us * requests as f64,
            bytes as f64 / self.write_bw,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_random_reads_are_seek_dominated() {
        let hdd = DeviceProfile::hdd_raid();
        // 100 random 8 KB pages vs one 800 KB sequential run.
        let random = hdd.read_cost_us(8_192 * 100, 100);
        let seq = hdd.read_cost_us(8_192 * 100, 1);
        assert!(random > 100.0 * seq / 2.0 || random > 10.0 * seq);
        assert!(random > 400_000.0); // 100 seeks * 4ms
    }

    #[test]
    fn bandwidth_term_scales_linearly() {
        let d = DeviceProfile::ssd();
        let one = d.read_cost_us(1_000_000, 1);
        let two = d.read_cost_us(2_000_000, 1);
        assert!((two - one) - 1_000_000.0 / d.read_bw < 1e-9);
    }

    #[test]
    fn writes_slower_than_reads_on_hdd() {
        let d = DeviceProfile::hdd_raid();
        assert!(d.write_cost_us(1 << 20, 1) > d.read_cost_us(1 << 20, 1));
    }

    #[test]
    fn ram_profile_is_cheap() {
        let d = DeviceProfile::ram();
        assert!(d.read_cost_us(1 << 20, 100) < 50.0);
    }
}
