//! Logical page and blob identifiers.
//!
//! Indexes declare their on-"disk" layout in terms of these identifiers; the
//! [`crate::BufferPool`] tracks residency per identifier. B+ trees use 8 KB
//! [`PageId`]s, columnstores use variable-size [`BlobId`]s (one per
//! compressed column segment).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Logical page size, matching SQL Server's 8 KB pages.
pub const PAGE_SIZE: usize = 8_192;

/// Identifier of one fixed-size (8 KB) page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// Identifier of one variable-size blob (e.g. a compressed column segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlobId(pub u64);

/// Allocates unique page/blob identifiers across all indexes sharing one
/// simulated storage device. Cloneable and thread-safe.
#[derive(Debug, Clone, Default)]
pub struct StorageAllocator {
    next: Arc<AtomicU64>,
}

impl StorageAllocator {
    pub fn new() -> StorageAllocator {
        StorageAllocator::default()
    }

    pub fn alloc_page(&self) -> PageId {
        PageId(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocate `n` consecutive page ids, returning the first. Consecutive
    /// ids model physically contiguous extents, which the buffer pool treats
    /// as one sequential run.
    pub fn alloc_pages(&self, n: u64) -> PageId {
        PageId(self.next.fetch_add(n, Ordering::Relaxed))
    }

    pub fn alloc_blob(&self) -> BlobId {
        BlobId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_contiguous() {
        let a = StorageAllocator::new();
        let p1 = a.alloc_page();
        let run = a.alloc_pages(10);
        let p2 = a.alloc_page();
        assert_eq!(run.0, p1.0 + 1);
        assert_eq!(p2.0, run.0 + 10);
    }

    #[test]
    fn clone_shares_counter() {
        let a = StorageAllocator::new();
        let b = a.clone();
        let p1 = a.alloc_page();
        let p2 = b.alloc_page();
        assert_ne!(p1, p2);
    }

    #[test]
    fn thread_safe_allocation() {
        let a = StorageAllocator::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| a.alloc_page().0).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "no duplicate ids under concurrency");
    }
}
