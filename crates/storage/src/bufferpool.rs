//! An LRU buffer pool over logical pages and blobs.
//!
//! The pool does not hold data — index structures keep their payloads in
//! process memory. It tracks *residency*: which logical pages/blobs would be
//! cached given the configured capacity, charging simulated device time for
//! misses. Bounding the capacity reproduces the paper's memory-constrained
//! configurations; [`BufferPool::clear`] reproduces a cold start.

use std::collections::{HashMap, VecDeque};

use hpd_common::faults;
use hpd_obs::Counter;
use parking_lot::Mutex;

use crate::device::DeviceProfile;
use crate::page::{BlobId, PageId, PAGE_SIZE};
use crate::tracker::IoTracker;

/// Key space shared by pages and blobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CacheKey {
    Page(u64),
    Blob(u64),
}

struct Entry {
    bytes: u64,
    generation: u64,
}

struct PoolInner {
    entries: HashMap<CacheKey, Entry>,
    /// LRU queue with lazy invalidation: (key, generation) pairs; stale
    /// generations are skipped during eviction.
    queue: VecDeque<(CacheKey, u64)>,
    used_bytes: u64,
    next_generation: u64,
    /// Global registry handles, fetched once at pool construction so the
    /// hot path is a relaxed atomic add with no name lookup.
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl PoolInner {
    /// Touch a key: returns true if it was resident (hit). On miss, inserts
    /// the entry and evicts LRU entries as needed.
    fn touch(&mut self, key: CacheKey, bytes: u64, capacity: u64) -> bool {
        let generation = self.next_generation;
        self.next_generation += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            e.generation = generation;
            self.queue.push_back((key, generation));
            self.hits.inc();
            return true;
        }
        // Miss: admit (unless larger than the whole pool) and evict.
        self.misses.inc();
        if bytes <= capacity {
            self.entries.insert(key, Entry { bytes, generation });
            self.queue.push_back((key, generation));
            self.used_bytes += bytes;
            while self.used_bytes > capacity {
                match self.queue.pop_front() {
                    Some((k, g)) => {
                        let current = self.entries.get(&k).map(|e| e.generation);
                        if current == Some(g) {
                            let e = self.entries.remove(&k).expect("entry exists");
                            self.used_bytes -= e.bytes;
                            self.evictions.inc();
                        }
                    }
                    None => break,
                }
            }
        }
        false
    }

    fn contains(&self, key: &CacheKey) -> bool {
        self.entries.contains_key(key)
    }
}

/// Shared, thread-safe buffer pool simulation.
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    device: DeviceProfile,
    capacity_bytes: u64,
}

impl BufferPool {
    pub fn new(capacity_bytes: u64, device: DeviceProfile) -> BufferPool {
        BufferPool {
            inner: Mutex::new(PoolInner {
                entries: HashMap::new(),
                queue: VecDeque::new(),
                used_bytes: 0,
                next_generation: 0,
                hits: hpd_obs::global().counter("storage.bufferpool.hit"),
                misses: hpd_obs::global().counter("storage.bufferpool.miss"),
                evictions: hpd_obs::global().counter("storage.bufferpool.evict"),
            }),
            device,
            capacity_bytes,
        }
    }

    /// A pool large enough that nothing is ever evicted (memory-resident
    /// configuration).
    pub fn unbounded(device: DeviceProfile) -> BufferPool {
        BufferPool::new(u64::MAX / 4, device)
    }

    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Honour the forced-eviction injection site: when armed, the next read
    /// access finds a cold pool. Results are unaffected — only simulated I/O
    /// cost changes — which lets the harness assert that eviction pressure
    /// at arbitrary schedule points never alters query answers.
    fn maybe_force_evict(&self) {
        if faults::fire(faults::sites::BUFFERPOOL_EVICT) {
            self.clear();
        }
    }

    /// Access one page with *random* access cost: a miss pays one seek plus
    /// one page of bandwidth. Used for B+ tree root-to-leaf traversals.
    pub fn access_page(&self, page: PageId, tracker: &IoTracker) {
        self.maybe_force_evict();
        tracker.record_logical(1);
        let hit = self.inner.lock().touch(
            CacheKey::Page(page.0),
            PAGE_SIZE as u64,
            self.capacity_bytes,
        );
        if !hit {
            let (seek, bw) = self.device.read_cost_parts(PAGE_SIZE as u64, 1);
            tracker.record_physical_read(1, PAGE_SIZE as u64, seek, bw);
        }
    }

    /// Access one page as the *continuation of a sequential run*: a miss
    /// charges bandwidth only (read-ahead already positioned the head).
    /// Callers use this when the page id immediately follows the previously
    /// accessed page, e.g. walking contiguously allocated B+ tree leaves.
    pub fn access_page_seq(&self, page: PageId, tracker: &IoTracker) {
        self.maybe_force_evict();
        tracker.record_logical(1);
        let hit = self.inner.lock().touch(
            CacheKey::Page(page.0),
            PAGE_SIZE as u64,
            self.capacity_bytes,
        );
        if !hit {
            // Part of an ongoing sequential request: bandwidth only, and no
            // new request is counted.
            let (_, bw) = self.device.read_cost_parts(PAGE_SIZE as u64, 0);
            tracker.record_physical_read(0, PAGE_SIZE as u64, 0.0, bw);
        }
    }

    /// Access a *contiguous run* of pages (e.g. a B+ tree leaf-level range
    /// scan over sequentially allocated leaves). Contiguous misses coalesce
    /// into single device requests, modelling read-ahead.
    pub fn access_page_run(&self, first: PageId, count: u64, tracker: &IoTracker) {
        if count == 0 {
            return;
        }
        self.maybe_force_evict();
        tracker.record_logical(count);
        let mut inner = self.inner.lock();
        let mut miss_runs = 0u64;
        let mut missed_pages = 0u64;
        let mut in_run = false;
        for i in 0..count {
            let hit = inner.touch(
                CacheKey::Page(first.0 + i),
                PAGE_SIZE as u64,
                self.capacity_bytes,
            );
            if hit {
                in_run = false;
            } else {
                missed_pages += 1;
                if !in_run {
                    miss_runs += 1;
                    in_run = true;
                }
            }
        }
        drop(inner);
        if missed_pages > 0 {
            let bytes = missed_pages * PAGE_SIZE as u64;
            let (seek, bw) = self.device.read_cost_parts(bytes, miss_runs);
            tracker.record_physical_read(miss_runs, bytes, seek, bw);
        }
    }

    /// Access one blob (compressed column segment): a miss pays one seek
    /// plus the blob's bytes at sequential bandwidth — the megabyte-granular
    /// access pattern of columnstore scans.
    pub fn access_blob(&self, blob: BlobId, bytes: u64, tracker: &IoTracker) {
        self.maybe_force_evict();
        tracker.record_logical(1);
        let hit = self
            .inner
            .lock()
            .touch(CacheKey::Blob(blob.0), bytes, self.capacity_bytes);
        if !hit {
            let (seek, bw) = self.device.read_cost_parts(bytes, 1);
            tracker.record_physical_read(1, bytes, seek, bw);
        }
    }

    /// Charge a write of `bytes` in `requests` requests and mark the given
    /// page as resident (write-back caching of dirtied pages).
    pub fn write_page(&self, page: PageId, tracker: &IoTracker) {
        self.inner.lock().touch(
            CacheKey::Page(page.0),
            PAGE_SIZE as u64,
            self.capacity_bytes,
        );
        let (seek, bw) = self.device.write_cost_parts(PAGE_SIZE as u64, 1);
        tracker.record_write(PAGE_SIZE as u64, seek, bw);
    }

    /// Charge a bulk sequential write (building compressed segments, bulk
    /// load) and admit the blob.
    pub fn write_blob(&self, blob: BlobId, bytes: u64, tracker: &IoTracker) {
        self.inner
            .lock()
            .touch(CacheKey::Blob(blob.0), bytes, self.capacity_bytes);
        let (seek, bw) = self.device.write_cost_parts(bytes, 1);
        tracker.record_write(bytes, seek, bw);
    }

    /// Evict a blob (e.g. a segment replaced by the tuple mover).
    pub fn invalidate_blob(&self, blob: BlobId) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.entries.remove(&CacheKey::Blob(blob.0)) {
            inner.used_bytes -= e.bytes;
        }
    }

    /// True if the page is currently resident (test/diagnostic hook).
    pub fn is_page_resident(&self, page: PageId) -> bool {
        self.inner.lock().contains(&CacheKey::Page(page.0))
    }

    /// True if the blob is currently resident (test/diagnostic hook).
    pub fn is_blob_resident(&self, blob: BlobId) -> bool {
        self.inner.lock().contains(&CacheKey::Blob(blob.0))
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().used_bytes
    }

    /// Drop everything — the next run is a *cold* run.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.queue.clear();
        inner.used_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: u64) -> BufferPool {
        BufferPool::new(cap, DeviceProfile::hdd_raid())
    }

    #[test]
    fn second_access_is_a_hit() {
        let p = pool(1 << 20);
        let t = IoTracker::new();
        p.access_page(PageId(1), &t);
        p.access_page(PageId(1), &t);
        let s = t.snapshot();
        assert_eq!(s.logical_reads, 2);
        assert_eq!(s.physical_reads, 1);
        assert_eq!(s.bytes_read, PAGE_SIZE as u64);
    }

    #[test]
    fn lru_evicts_oldest() {
        // Capacity of exactly 2 pages.
        let p = pool(2 * PAGE_SIZE as u64);
        let t = IoTracker::new();
        p.access_page(PageId(1), &t);
        p.access_page(PageId(2), &t);
        p.access_page(PageId(1), &t); // refresh 1
        p.access_page(PageId(3), &t); // evicts 2
        assert!(p.is_page_resident(PageId(1)));
        assert!(!p.is_page_resident(PageId(2)));
        assert!(p.is_page_resident(PageId(3)));
    }

    #[test]
    fn sequential_run_coalesces_requests() {
        let p = pool(1 << 30);
        let t = IoTracker::new();
        p.access_page_run(PageId(100), 128, &t);
        let s = t.snapshot();
        assert_eq!(s.logical_reads, 128);
        assert_eq!(s.physical_reads, 1, "one coalesced request");
        assert_eq!(s.bytes_read, 128 * PAGE_SIZE as u64);
        // Much cheaper than 128 random reads.
        let t2 = IoTracker::new();
        let p2 = pool(1 << 30);
        for i in 0..128 {
            p2.access_page(PageId(1000 + i * 2), &t2); // non-contiguous
        }
        assert!(t2.snapshot().sim_io_us() > 10.0 * s.sim_io_us());
    }

    #[test]
    fn partially_cached_run_pays_only_for_gaps() {
        let p = pool(1 << 30);
        let warm = IoTracker::new();
        // Warm pages 0..10.
        p.access_page_run(PageId(0), 10, &warm);
        let t = IoTracker::new();
        p.access_page_run(PageId(0), 20, &t);
        let s = t.snapshot();
        assert_eq!(s.logical_reads, 20);
        assert_eq!(s.bytes_read, 10 * PAGE_SIZE as u64);
        assert_eq!(s.physical_reads, 1, "one contiguous miss run (10..20)");
    }

    #[test]
    fn blob_miss_charges_bandwidth() {
        let p = pool(1 << 30);
        let t = IoTracker::new();
        let mb = 1 << 20;
        p.access_blob(BlobId(7), mb, &t);
        let s = t.snapshot();
        assert_eq!(s.bytes_read, mb);
        // 4ms seek + 1MB / 1000 MB/s ≈ 4000 + 1048.6 us
        assert!((s.sim_io_us() - (4_000.0 + mb as f64 / 1_000.0)).abs() < 1.0);
        p.access_blob(BlobId(7), mb, &t);
        assert_eq!(t.snapshot().physical_reads, 1, "second access hits");
    }

    #[test]
    fn oversized_blob_is_not_admitted() {
        let p = pool(PAGE_SIZE as u64);
        let t = IoTracker::new();
        p.access_blob(BlobId(1), 1 << 20, &t);
        assert!(!p.is_blob_resident(BlobId(1)));
        p.access_blob(BlobId(1), 1 << 20, &t);
        assert_eq!(t.snapshot().physical_reads, 2, "never cached");
    }

    #[test]
    fn clear_makes_next_run_cold() {
        let p = pool(1 << 30);
        let t = IoTracker::new();
        p.access_page(PageId(5), &t);
        p.clear();
        p.access_page(PageId(5), &t);
        assert_eq!(t.snapshot().physical_reads, 2);
    }

    #[test]
    fn write_admits_page() {
        let p = pool(1 << 30);
        let t = IoTracker::new();
        p.write_page(PageId(9), &t);
        assert!(p.is_page_resident(PageId(9)));
        let s = t.snapshot();
        assert_eq!(s.bytes_written, PAGE_SIZE as u64);
        p.access_page(PageId(9), &t);
        assert_eq!(t.snapshot().physical_reads, 0);
    }

    #[test]
    fn invalidate_blob_removes_entry() {
        let p = pool(1 << 30);
        let t = IoTracker::new();
        p.access_blob(BlobId(3), 1000, &t);
        assert_eq!(p.used_bytes(), 1000);
        p.invalidate_blob(BlobId(3));
        assert_eq!(p.used_bytes(), 0);
        assert!(!p.is_blob_resident(BlobId(3)));
    }

    #[test]
    fn global_counters_track_hits_misses_evictions() {
        // Other tests share the global registry, so assert on deltas with
        // `>=` rather than exact counts.
        let before = hpd_obs::global().snapshot();
        let p = pool(2 * PAGE_SIZE as u64);
        let t = IoTracker::new();
        p.access_page(PageId(900_001), &t); // miss
        p.access_page(PageId(900_001), &t); // hit
        p.access_page(PageId(900_002), &t); // miss
        p.access_page(PageId(900_003), &t); // miss, evicts LRU
        let d = hpd_obs::global().snapshot().delta(&before);
        assert!(d.counter("storage.bufferpool.hit") >= 1);
        assert!(d.counter("storage.bufferpool.miss") >= 3);
        assert!(d.counter("storage.bufferpool.evict") >= 1);
    }

    #[test]
    fn used_bytes_stays_within_capacity() {
        let cap = 4 * PAGE_SIZE as u64;
        let p = pool(cap);
        let t = IoTracker::new();
        for i in 0..100 {
            p.access_page(PageId(i), &t);
            assert!(p.used_bytes() <= cap);
        }
    }
}
