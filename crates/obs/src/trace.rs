//! Structured tracing: span guards with parent/child links, recorded into
//! per-thread rings and merged on demand into one bounded trace.
//!
//! Design goals, in order:
//!
//! 1. **Near-zero cost when disabled.** [`span`] loads one relaxed atomic
//!    and returns an inert guard; no allocation, no clock read, no lock.
//! 2. **Cheap when enabled.** Completed spans are pushed into the calling
//!    thread's own bounded ring. The ring is guarded by a mutex that only
//!    the owning thread and an occasional collector touch, so the push is
//!    an uncontended lock (one CAS) in the steady state.
//! 3. **Bounded.** Each ring holds at most [`Tracer::ring_capacity`] spans;
//!    on overflow the oldest span is dropped and counted, never blocking
//!    the traced thread.
//!
//! Span nesting uses a thread-local "current span" cell: [`span`] makes the
//! new span current for the enclosing scope (restored on drop), while
//! [`detached_span`] captures the current span as its parent but does not
//! become current itself — use it for objects (e.g. operators) whose
//! lifetime extends past the creating scope or that drop on another thread.
//!
//! Timestamps are microseconds from a process-wide monotonic epoch taken
//! when the tracer is first touched, so spans from different threads order
//! consistently.
//!
//! ```
//! use hpd_obs::trace;
//!
//! trace::tracer().set_enabled(true);
//! {
//!     let mut q = trace::span("query");
//!     q.attr("kind", "select");
//!     let _opt = trace::span("optimize"); // child of "query"
//! }
//! let spans = trace::tracer().drain();
//! assert_eq!(spans.len(), 2);
//! let json = trace::chrome_trace_json(&spans);
//! assert!(json.starts_with("{\"traceEvents\":["));
//! ```

use std::cell::{Cell, OnceCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json_string;

/// Default per-thread ring capacity (spans).
pub const DEFAULT_RING_CAPACITY: usize = 16 * 1024;

/// A completed span, as stored in the trace.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique id (> 0) assigned at span start.
    pub id: u64,
    /// Id of the enclosing span at creation time, 0 for root spans.
    pub parent: u64,
    /// Span name, e.g. `"query"` or `"wal.flush"`.
    pub name: &'static str,
    /// Small dense id of the thread the span *started* on.
    pub tid: u64,
    /// Microseconds from the tracer epoch to span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Key-value attributes, in insertion order.
    pub attrs: Vec<(&'static str, String)>,
}

struct ThreadRing {
    buf: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
}

impl ThreadRing {
    fn push(&self, rec: SpanRecord, cap: usize) {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() >= cap.max(1) {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(rec);
    }
}

struct LocalRing {
    ring: Arc<ThreadRing>,
    tid: u64,
}

thread_local! {
    /// Id of the innermost open scoped span on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// This thread's ring, registered with the global tracer on first span.
    static LOCAL: OnceCell<LocalRing> = const { OnceCell::new() };
}

/// Process-wide trace collector. Obtain via [`tracer`].
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    next_id: AtomicU64,
    next_tid: AtomicU64,
    ring_cap: AtomicUsize,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
}

impl Tracer {
    fn new() -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            next_tid: AtomicU64::new(1),
            ring_cap: AtomicUsize::new(DEFAULT_RING_CAPACITY),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Turn span recording on or off. Spans already recorded stay buffered.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Per-thread ring capacity; on overflow the oldest span is dropped.
    pub fn ring_capacity(&self) -> usize {
        self.ring_cap.load(Ordering::Relaxed)
    }

    /// Change the per-thread ring capacity (applies to future pushes).
    pub fn set_ring_capacity(&self, cap: usize) {
        self.ring_cap.store(cap.max(1), Ordering::Relaxed);
    }

    /// Microseconds elapsed since the tracer epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Total spans discarded to ring overflow since process start.
    pub fn spans_dropped(&self) -> u64 {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        rings
            .iter()
            .map(|r| r.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Remove and return every buffered span, merged across threads and
    /// sorted by start time.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.collect(true)
    }

    /// Copy every buffered span without clearing the rings.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.collect(false)
    }

    /// Copy every buffered span that was still running at or after
    /// `start_us` (i.e. `start_us + dur_us >= start_us`), without clearing
    /// the rings. Each ring holds spans in completion order, so end times
    /// are non-decreasing and the walk stops at the first older span —
    /// cost is proportional to the spans of interest, not to everything
    /// buffered. Use to fetch one query's spans right after it finishes.
    pub fn spans_since(&self, start_us: u64) -> Vec<SpanRecord> {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for ring in rings.iter() {
            let buf = ring.buf.lock().unwrap_or_else(|e| e.into_inner());
            for rec in buf.iter().rev() {
                if rec.start_us + rec.dur_us < start_us {
                    break;
                }
                out.push(rec.clone());
            }
        }
        drop(rings);
        out.sort_by_key(|s| (s.start_us, s.id));
        out
    }

    fn collect(&self, take: bool) -> Vec<SpanRecord> {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for ring in rings.iter() {
            let mut buf = ring.buf.lock().unwrap_or_else(|e| e.into_inner());
            if take {
                out.extend(buf.drain(..));
            } else {
                out.extend(buf.iter().cloned());
            }
        }
        drop(rings);
        out.sort_by_key(|s| (s.start_us, s.id));
        out
    }

    fn register_thread(&self) -> LocalRing {
        let ring = Arc::new(ThreadRing {
            buf: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        });
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        self.rings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&ring));
        LocalRing { ring, tid }
    }

    fn record(&self, rec: SpanRecord) {
        let cap = self.ring_capacity();
        LOCAL.with(|l| {
            let local = l.get_or_init(|| self.register_thread());
            local.ring.push(rec, cap);
        });
    }

    fn thread_tid(&self) -> u64 {
        LOCAL.with(|l| l.get_or_init(|| self.register_thread()).tid)
    }
}

/// The process-wide tracer all spans report into.
pub fn tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(Tracer::new)
}

/// Open span state while it is in flight.
struct OpenSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    tid: u64,
    start: Instant,
    start_us: u64,
    attrs: Vec<(&'static str, String)>,
}

/// A span that records on drop but never becomes the thread's current span.
///
/// Its parent is whatever span was current when it was *created*, so it can
/// safely outlive the creating scope or drop on a different thread (both of
/// which would corrupt the current-span stack if it were scoped).
pub struct DetachedSpan(Option<OpenSpan>);

impl DetachedSpan {
    /// Attach a key-value attribute. No-op (and no formatting) when the
    /// tracer was disabled at creation.
    pub fn attr(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(open) = &mut self.0 {
            open.attrs.push((key, value.to_string()));
        }
    }

    /// This span's id, or 0 if tracing was disabled at creation.
    pub fn id(&self) -> u64 {
        self.0.as_ref().map_or(0, |o| o.id)
    }

    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Microseconds from the tracer epoch to span start, or 0 when not
    /// recording. Pair with [`Tracer::spans_since`] after the span closes.
    pub fn start_us(&self) -> u64 {
        self.0.as_ref().map_or(0, |o| o.start_us)
    }
}

impl Drop for DetachedSpan {
    fn drop(&mut self) {
        if let Some(open) = self.0.take() {
            finish(open);
        }
    }
}

/// RAII guard for a scoped span: current for the enclosing scope, restored
/// on drop. Created by [`span`].
pub struct SpanGuard {
    span: DetachedSpan,
    /// Span that was current before this one (restored on drop).
    prev: u64,
    /// Thread the guard was created on; the current-span cell is only
    /// restored when dropped on the same thread.
    thread: std::thread::ThreadId,
}

impl SpanGuard {
    /// Attach a key-value attribute. No-op when tracing is disabled.
    pub fn attr(&mut self, key: &'static str, value: impl std::fmt::Display) {
        self.span.attr(key, value);
    }

    /// This span's id, or 0 if tracing was disabled at creation.
    pub fn id(&self) -> u64 {
        self.span.id()
    }

    pub fn is_recording(&self) -> bool {
        self.span.is_recording()
    }

    /// Microseconds from the tracer epoch to span start (0 when inert).
    pub fn start_us(&self) -> u64 {
        self.span.start_us()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.span.is_recording() && std::thread::current().id() == self.thread {
            CURRENT.with(|c| c.set(self.prev));
        }
        // self.span drops next and records itself.
    }
}

fn open(name: &'static str, parent: u64) -> OpenSpan {
    let t = tracer();
    OpenSpan {
        id: t.next_id.fetch_add(1, Ordering::Relaxed),
        parent,
        name,
        tid: t.thread_tid(),
        start: Instant::now(),
        start_us: t.now_us(),
        attrs: Vec::new(),
    }
}

fn finish(open: OpenSpan) {
    let dur_us = open.start.elapsed().as_micros() as u64;
    tracer().record(SpanRecord {
        id: open.id,
        parent: open.parent,
        name: open.name,
        tid: open.tid,
        start_us: open.start_us,
        dur_us,
        attrs: open.attrs,
    });
}

/// Start a scoped span: child of the thread's current span, and itself the
/// current span until the guard drops. Inert (one atomic load) when tracing
/// is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !tracer().is_enabled() {
        return SpanGuard {
            span: DetachedSpan(None),
            prev: 0,
            thread: std::thread::current().id(),
        };
    }
    let parent = CURRENT.with(|c| c.get());
    let open = open(name, parent);
    CURRENT.with(|c| c.set(open.id));
    SpanGuard {
        span: DetachedSpan(Some(open)),
        prev: parent,
        thread: std::thread::current().id(),
    }
}

/// Start a detached span: child of the thread's current span, but not
/// current itself. Safe to move across threads and drop anywhere.
pub fn detached_span(name: &'static str) -> DetachedSpan {
    if !tracer().is_enabled() {
        return DetachedSpan(None);
    }
    let parent = CURRENT.with(|c| c.get());
    DetachedSpan(Some(open(name, parent)))
}

/// Start a root span, ignoring any current span on this thread. Use for
/// background work (maintenance, checkpoint, recovery) so it never appears
/// nested under an unrelated query.
pub fn root_span(name: &'static str) -> DetachedSpan {
    if !tracer().is_enabled() {
        return DetachedSpan(None);
    }
    DetachedSpan(Some(open(name, 0)))
}

/// Start a detached span with an explicit parent id (0 = root). Use when
/// the logical parent is a detached span rather than the thread's current
/// scoped span — e.g. phases under a [`root_span`].
pub fn child_span(name: &'static str, parent: u64) -> DetachedSpan {
    if !tracer().is_enabled() {
        return DetachedSpan(None);
    }
    DetachedSpan(Some(open(name, parent)))
}

fn push_attrs_json(out: &mut String, attrs: &[(&'static str, String)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(k));
        out.push(':');
        out.push_str(&json_string(v));
    }
    out.push('}');
}

/// Render spans as Chrome trace-event JSON (complete "X" events), loadable
/// in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":{},\"cat\":\"hpd\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}",
            json_string(s.name),
            s.start_us,
            s.dur_us.max(1),
            s.tid,
            s.id,
            s.parent,
        ));
        for (k, v) in &s.attrs {
            out.push(',');
            out.push_str(&json_string(k));
            out.push(':');
            out.push_str(&json_string(v));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Render spans as JSONL: one flat JSON object per line.
pub fn spans_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&format!(
            "{{\"id\":{},\"parent\":{},\"name\":{},\"tid\":{},\"start_us\":{},\"dur_us\":{},\"attrs\":",
            s.id,
            s.parent,
            json_string(s.name),
            s.tid,
            s.start_us,
            s.dur_us,
        ));
        push_attrs_json(&mut out, &s.attrs);
        out.push_str("}\n");
    }
    out
}

/// Render the subtree rooted at `root_id` as nested JSON
/// (`{"name", "start_us", "dur_us", "attrs", "children": [...]}`), or
/// `None` if the root is not present in `spans`.
pub fn span_tree_json(spans: &[SpanRecord], root_id: u64) -> Option<String> {
    let root = spans.iter().find(|s| s.id == root_id)?;
    let mut out = String::new();
    render_node(&mut out, spans, root);
    Some(out)
}

fn render_node(out: &mut String, spans: &[SpanRecord], node: &SpanRecord) {
    out.push_str(&format!(
        "{{\"name\":{},\"start_us\":{},\"dur_us\":{},\"attrs\":",
        json_string(node.name),
        node.start_us,
        node.dur_us,
    ));
    push_attrs_json(out, &node.attrs);
    out.push_str(",\"children\":[");
    let mut first = true;
    for child in spans.iter().filter(|s| s.parent == node.id) {
        if !first {
            out.push(',');
        }
        first = false;
        render_node(out, spans, child);
    }
    out.push_str("]}");
}

/// All spans whose ancestor chain (within `spans`) reaches `root_id`,
/// including the root itself. Order follows the input.
pub fn subtree(spans: &[SpanRecord], root_id: u64) -> Vec<&SpanRecord> {
    let mut keep: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    keep.insert(root_id);
    // Spans are sorted by start time, so parents normally precede children;
    // loop until fixpoint to be safe against out-of-order drops.
    loop {
        let before = keep.len();
        for s in spans {
            if keep.contains(&s.parent) {
                keep.insert(s.id);
            }
        }
        if keep.len() == before {
            break;
        }
    }
    spans.iter().filter(|s| keep.contains(&s.id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The tracer is process-global; serialize tests that enable/drain it.
    pub(super) static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn reset() {
        tracer().set_enabled(false);
        tracer().set_ring_capacity(DEFAULT_RING_CAPACITY);
        tracer().drain();
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        {
            let mut s = span("nope");
            s.attr("k", 1);
            assert_eq!(s.id(), 0);
            assert!(!s.is_recording());
        }
        drop(detached_span("nope2"));
        drop(root_span("nope3"));
        assert!(tracer().drain().is_empty());
    }

    #[test]
    fn nesting_and_attrs() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        tracer().set_enabled(true);
        let root_id;
        let child_id;
        {
            let mut root = span("root");
            root.attr("k", "v");
            root_id = root.id();
            {
                let child = span("child");
                child_id = child.id();
                let leaf = detached_span("leaf");
                assert_ne!(leaf.id(), 0);
            }
            // After the child scope closes, new spans parent to root again.
            let sibling = span("sibling");
            assert_ne!(sibling.id(), 0);
        }
        tracer().set_enabled(false);
        let spans = tracer().drain();
        assert_eq!(spans.len(), 4);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("root").parent, 0);
        assert_eq!(by_name("child").parent, root_id);
        assert_eq!(by_name("leaf").parent, child_id);
        assert_eq!(by_name("sibling").parent, root_id);
        assert_eq!(by_name("root").attrs, vec![("k", "v".to_string())]);
        // Start times are monotone per the sort order.
        assert!(spans.windows(2).all(|w| w[0].start_us <= w[1].start_us));
    }

    #[test]
    fn root_span_ignores_current() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        tracer().set_enabled(true);
        {
            let _q = span("query");
            let bg = root_span("background.maintenance");
            assert_ne!(bg.id(), 0);
        }
        tracer().set_enabled(false);
        let spans = tracer().drain();
        let bg = spans
            .iter()
            .find(|s| s.name == "background.maintenance")
            .unwrap();
        assert_eq!(bg.parent, 0);
    }

    #[test]
    fn ring_wraparound_drops_oldest_and_counts() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        tracer().set_ring_capacity(8);
        tracer().set_enabled(true);
        // Run in a dedicated thread so this test owns a fresh ring.
        let dropped_before = tracer().spans_dropped();
        std::thread::spawn(|| {
            for _ in 0..20 {
                drop(span("wrap"));
            }
        })
        .join()
        .unwrap();
        tracer().set_enabled(false);
        let spans: Vec<_> = tracer()
            .drain()
            .into_iter()
            .filter(|s| s.name == "wrap")
            .collect();
        assert_eq!(spans.len(), 8, "ring must truncate to capacity");
        assert_eq!(tracer().spans_dropped() - dropped_before, 12);
        // The *newest* spans survive truncation.
        let max_id = spans.iter().map(|s| s.id).max().unwrap();
        let min_id = spans.iter().map(|s| s.id).min().unwrap();
        assert_eq!(max_id - min_id, 7);
        reset();
    }

    #[test]
    fn cross_thread_drop_does_not_corrupt_stack() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        tracer().set_enabled(true);
        let root = span("outer");
        let root_id = root.id();
        let moved = detached_span("moved");
        std::thread::spawn(move || drop(moved)).join().unwrap();
        // Current span on this thread must still be "outer".
        let child = span("after");
        assert_ne!(child.id(), 0);
        drop(child);
        drop(root);
        tracer().set_enabled(false);
        let spans = tracer().drain();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("moved").parent, root_id);
        assert_eq!(by_name("after").parent, root_id);
    }

    #[test]
    fn chrome_and_jsonl_exports() {
        let spans = vec![
            SpanRecord {
                id: 1,
                parent: 0,
                name: "query",
                tid: 1,
                start_us: 10,
                dur_us: 100,
                attrs: vec![("kind", "select".to_string())],
            },
            SpanRecord {
                id: 2,
                parent: 1,
                name: "execute",
                tid: 1,
                start_us: 20,
                dur_us: 0,
                attrs: vec![],
            },
        ];
        let chrome = chrome_trace_json(&spans);
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.ends_with("]}"));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"name\":\"query\""));
        assert!(chrome.contains("\"kind\":\"select\""));
        // Zero-duration spans render as 1us so viewers show them.
        assert!(chrome.contains("\"dur\":1"));
        let jsonl = spans_jsonl(&spans);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn tree_render_and_subtree() {
        let mk = |id, parent, name| SpanRecord {
            id,
            parent,
            name,
            tid: 1,
            start_us: id,
            dur_us: 1,
            attrs: vec![],
        };
        let spans = vec![
            mk(1, 0, "query"),
            mk(2, 1, "optimize"),
            mk(3, 1, "execute"),
            mk(4, 3, "op"),
            mk(5, 0, "other-root"),
        ];
        let tree = span_tree_json(&spans, 1).unwrap();
        assert!(tree.contains("\"name\":\"query\""));
        assert!(tree.contains("\"name\":\"op\""));
        assert!(!tree.contains("other-root"));
        assert!(span_tree_json(&spans, 99).is_none());
        let sub = subtree(&spans, 1);
        assert_eq!(sub.len(), 4);
        assert_eq!(subtree(&spans, 5).len(), 1);
    }
}
