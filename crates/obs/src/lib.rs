//! Engine-wide observability primitives.
//!
//! A [`Registry`] hands out named [`Counter`]s and fixed-bucket
//! [`Histogram`]s. Handles are `Arc`-backed atomics: components fetch them
//! once at construction and then increment with relaxed atomic ops, so the
//! hot path never takes a lock or hashes a name. The registry's map is only
//! locked on handle creation and when taking a [`Snapshot`].
//!
//! Typical use:
//!
//! ```
//! use hpd_obs::global;
//!
//! let hits = global().counter("storage.bufferpool.hit");
//! hits.inc();
//! let lat = global().histogram("query.latency_us");
//! lat.record(1_250);
//!
//! let before = global().snapshot();
//! hits.add(10);
//! let after = global().snapshot();
//! assert_eq!(after.delta(&before).counter("storage.bufferpool.hit"), 10);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub mod trace;

/// Number of histogram buckets: powers of two from `<1` up to `>= 2^(N-2)`,
/// with the last bucket catching everything larger.
pub const NUM_BUCKETS: usize = 32;

/// A named monotonically increasing counter. Cloning shares the same cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCell {
    /// `buckets[i]` counts values `v` with `bucket_index(v) == i`, i.e.
    /// bucket 0 holds v == 0, bucket i holds 2^(i-1) <= v < 2^i, and the
    /// last bucket absorbs the tail.
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket (power-of-two bounds) histogram, typically of latencies
/// in microseconds. Cloning shares the same cells.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCell>);

fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
}

impl Histogram {
    pub fn record(&self, value: u64) {
        let c = &self.0;
        c.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Start a timer that records elapsed microseconds on drop.
    pub fn start_timer(&self) -> HistogramTimer {
        HistogramTimer {
            hist: self.clone(),
            start: Instant::now(),
        }
    }
}

/// Guard returned by [`Histogram::start_timer`].
pub struct HistogramTimer {
    hist: Histogram,
    start: Instant,
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_micros() as u64);
    }
}

/// Point-in-time copy of one histogram's cells.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the q-quantile (0.0..=1.0).
    /// Returns 0 for an empty histogram.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i holds values < 2^i (bucket 0 is exactly 0).
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        u64::MAX
    }

    fn delta(&self, baseline: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &b)| b.saturating_sub(baseline.buckets.get(i).copied().unwrap_or(0)))
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(baseline.count),
            sum: self.sum.saturating_sub(baseline.sum),
        }
    }
}

/// Point-in-time copy of every metric in a [`Registry`].
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Value of a counter, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Metrics accumulated since `baseline` (per-name saturating subtraction;
    /// names absent from the baseline pass through unchanged).
    pub fn delta(&self, baseline: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(baseline.counter(k))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let base = baseline.histograms.get(k).cloned().unwrap_or_default();
                (k.clone(), h.delta(&base))
            })
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }

    /// Render as a single JSON object (counters as numbers; histograms as
    /// `{count, sum, p50, p99}` summaries).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}:{}", json_string(k), v));
        }
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"p50_le\":{},\"p99_le\":{}}}",
                json_string(k),
                h.count,
                h.sum,
                h.quantile_upper_bound(0.5),
                h.quantile_upper_bound(0.99)
            ));
        }
        out.push('}');
        out
    }

    /// Render in the Prometheus text exposition format. Metric names are
    /// prefixed with `hpd_` and dots become underscores; histograms emit
    /// cumulative `_bucket{le=...}` series with the registry's power-of-two
    /// bucket bounds, plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = prometheus_name(k);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let name = prometheus_name(k);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cum = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                cum += n;
                // Bucket 0 holds exactly 0; bucket i holds v <= 2^i - 1.
                let le = if i == 0 {
                    "0".to_string()
                } else if i == h.buckets.len() - 1 {
                    "+Inf".to_string()
                } else {
                    ((1u64 << i) - 1).to_string()
                };
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }
}

/// Sanitize a dotted metric name into a Prometheus identifier.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("hpd_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<HistogramCell>>,
}

/// Holder of all named metrics. The map is behind a mutex, but handles are
/// shared atomics — fetch them once, increment forever without locking.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter with this name.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Counter(Arc::clone(
            inner
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        ))
    }

    /// Get or create the histogram with this name.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Histogram(Arc::clone(
            inner.histograms.entry(name.to_string()).or_insert_with(|| {
                Arc::new(HistogramCell {
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                })
            }),
        ))
    }

    /// Copy every metric's current value. Concurrent increments may land on
    /// either side of the fence; totals are never lost, only attributed to
    /// the snapshot before or after.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let counters = inner
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = inner
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        buckets: h
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }
}

/// The process-wide registry all engine components report into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_a_cell() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(r.snapshot().counter("x"), 5);
        assert_eq!(r.snapshot().counter("missing"), 0);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let r = Registry::new();
        let c = r.counter("hot");
        let h = r.histogram("lat");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i % 100);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        let snap = r.snapshot();
        let hist = &snap.histograms["lat"];
        assert_eq!(hist.count, 80_000);
        assert_eq!(hist.buckets.iter().sum::<u64>(), 80_000);
    }

    #[test]
    fn histogram_bucketing() {
        let r = Registry::new();
        let h = r.histogram("h");
        // Bucket 0: value 0. Bucket i: 2^(i-1) <= v < 2^i.
        h.record(0);
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(4); // bucket 3
        h.record(1023); // bucket 10
        h.record(1024); // bucket 11
        h.record(u64::MAX); // last bucket
        let s = &r.snapshot().histograms["h"];
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[3], 1);
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.buckets[11], 1);
        assert_eq!(s.buckets[NUM_BUCKETS - 1], 1);
        assert_eq!(s.count, 8);
    }

    #[test]
    fn quantiles_and_mean() {
        let r = Registry::new();
        let h = r.histogram("q");
        for _ in 0..99 {
            h.record(10); // bucket 4, upper bound 16
        }
        h.record(1_000_000); // bucket 20, upper bound 2^20
        let s = &r.snapshot().histograms["q"];
        assert_eq!(s.quantile_upper_bound(0.5), 16);
        assert_eq!(s.quantile_upper_bound(0.99), 16);
        assert_eq!(s.quantile_upper_bound(1.0), 1 << 20);
        assert!((s.mean() - 10_009.9).abs() < 0.5);
        assert_eq!(HistogramSnapshot::default().quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn snapshot_delta() {
        let r = Registry::new();
        let c = r.counter("c");
        let h = r.histogram("h");
        c.add(3);
        h.record(5);
        let before = r.snapshot();
        c.add(7);
        h.record(6);
        h.record(7);
        let d = r.snapshot().delta(&before);
        assert_eq!(d.counter("c"), 7);
        assert_eq!(d.histograms["h"].count, 2);
        assert_eq!(d.histograms["h"].sum, 13);
        // New metric appearing after the baseline passes through unchanged.
        r.counter("late").add(2);
        let d2 = r.snapshot().delta(&before);
        assert_eq!(d2.counter("late"), 2);
    }

    #[test]
    fn json_rendering() {
        let r = Registry::new();
        r.counter("a.b").add(2);
        r.histogram("lat").record(100);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a.b\":2"));
        assert!(json.contains("\"lat\":{\"count\":1,\"sum\":100"));
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn global_registry_is_shared() {
        global().counter("test.global").inc();
        assert!(global().snapshot().counter("test.global") >= 1);
    }

    #[test]
    fn prometheus_rendering() {
        let r = Registry::new();
        r.counter("wal.flush.count").add(3);
        let h = r.histogram("query.latency_us");
        h.record(0);
        h.record(5); // bucket 3 (4 <= v < 8), le = 7
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE hpd_wal_flush_count counter\n"));
        assert!(text.contains("hpd_wal_flush_count 3\n"));
        assert!(text.contains("# TYPE hpd_query_latency_us histogram\n"));
        assert!(text.contains("hpd_query_latency_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("hpd_query_latency_us_bucket{le=\"7\"} 2\n"));
        assert!(text.contains("hpd_query_latency_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("hpd_query_latency_us_sum 5\n"));
        assert!(text.contains("hpd_query_latency_us_count 2\n"));
        // Cumulative bucket counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    /// Satellite: hammer `snapshot()`/`delta()` from a reader while writers
    /// mutate. Every observed value must be monotonically non-decreasing
    /// (no torn reads, no lost updates) and deltas non-negative.
    #[test]
    fn snapshot_monotone_under_concurrent_mutation() {
        // If a reader assert fails, its panic unwinds into `scope`, which
        // joins the writers before propagating — without this guard the
        // writers would never see `stop` and the failure would hang forever.
        struct StopOnDrop<'a>(&'a AtomicU64);
        impl Drop for StopOnDrop<'_> {
            fn drop(&mut self) {
                self.0.store(1, Ordering::Relaxed);
            }
        }

        let r = Registry::new();
        let stop = AtomicU64::new(0);
        std::thread::scope(|s| {
            let _stop_guard = StopOnDrop(&stop);
            for t in 0..4 {
                let c = r.counter("hammer.ctr");
                let h = r.histogram("hammer.hist");
                let stop = &stop;
                s.spawn(move || {
                    let mut i = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        c.inc();
                        h.record((i * 7 + t) % 1000);
                        i += 1;
                        // Unyielding spinners starve the snapshot thread on
                        // single-core machines (the 2000-snapshot loop below
                        // takes minutes instead of milliseconds).
                        if i.is_multiple_of(256) {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let mut prev = r.snapshot();
            for _ in 0..2000 {
                let cur = r.snapshot();
                // Counter and histogram totals only move forward.
                assert!(cur.counter("hammer.ctr") >= prev.counter("hammer.ctr"));
                let (hc, hp) = (
                    &cur.histograms["hammer.hist"],
                    &prev.histograms["hammer.hist"],
                );
                assert!(hc.count >= hp.count);
                assert!(hc.sum >= hp.sum);
                for (a, b) in hc.buckets.iter().zip(hp.buckets.iter()) {
                    assert!(a >= b, "per-bucket counts must be monotone");
                }
                // No bucket-total-vs-count bound here: `snapshot()` reads
                // the bucket cells and `count` at different instants, so a
                // reader preempted mid-snapshot can observe them arbitrarily
                // far apart. The quiesced check below asserts exact
                // agreement once writers stop.
                let d = cur.delta(&prev);
                assert!(d.histograms["hammer.hist"].count <= hc.count);
                prev = cur;
            }
            stop.store(1, Ordering::Relaxed);
        });
        // Quiesced: totals agree exactly.
        let s = r.snapshot();
        let h = &s.histograms["hammer.hist"];
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
        assert!(s.counter("hammer.ctr") > 0);
    }
}
