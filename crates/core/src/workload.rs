//! Workload model: weighted statements.

use hpd_engine::Statement;

/// One statement with its weight (frequency / importance).
#[derive(Debug, Clone)]
pub struct WorkloadStatement {
    pub statement: Statement,
    pub weight: f64,
    /// Optional label for reports (e.g. "Q54").
    pub label: String,
}

impl WorkloadStatement {
    pub fn new(statement: Statement, weight: f64) -> WorkloadStatement {
        WorkloadStatement {
            statement,
            weight,
            label: String::new(),
        }
    }

    pub fn labeled(
        statement: Statement,
        weight: f64,
        label: impl Into<String>,
    ) -> WorkloadStatement {
        WorkloadStatement {
            statement,
            weight,
            label: label.into(),
        }
    }
}

/// A user-specified workload: a set of SQL statements with weights (the "W"
/// of the paper's Figure 7).
#[derive(Debug, Clone, Default)]
pub struct Workload {
    pub statements: Vec<WorkloadStatement>,
}

impl Workload {
    pub fn new(statements: Vec<WorkloadStatement>) -> Workload {
        Workload { statements }
    }

    /// A read-only workload with uniform weights.
    pub fn read_only(queries: Vec<hpd_engine::SelectQuery>) -> Workload {
        Workload {
            statements: queries
                .into_iter()
                .map(|q| WorkloadStatement::new(Statement::Select(q), 1.0))
                .collect(),
        }
    }

    /// Names of every table referenced anywhere in the workload.
    pub fn referenced_tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .statements
            .iter()
            .flat_map(|s| {
                s.statement
                    .table_names()
                    .into_iter()
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            })
            .collect();
        names.sort();
        names.dedup();
        names
    }

    pub fn len(&self) -> usize {
        self.statements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpd_engine::SelectQuery;

    #[test]
    fn referenced_tables_dedup() {
        let w = Workload::read_only(vec![
            SelectQuery::single_table("b", None, vec![0]),
            SelectQuery::single_table("a", None, vec![0]),
            SelectQuery::single_table("b", None, vec![0]),
        ]);
        assert_eq!(
            w.referenced_tables(),
            vec!["a".to_string(), "b".to_string()]
        );
        assert_eq!(w.len(), 3);
    }
}
