//! Workload-level enumeration: greedy benefit search under a storage budget.

use std::collections::HashMap;

use hpd_columnstore::CsiConfig;
use hpd_common::Result;
use hpd_engine::{
    cost::CostModel, Database, IndexDescriptor, IndexMeta, Statement, TableContext, UpdateStmt,
};

use crate::candidates::{locate_query, CandidateSet};
use crate::hypothetical::hypothetical_meta;
use crate::size::{CsiSizeEstimator, SampleSet};
use crate::workload::Workload;

/// A chosen configuration during search: per-table descriptor lists
/// (secondaries only; the existing primary is implicit at position 0).
pub type Chosen = HashMap<String, Vec<IndexDescriptor>>;

/// Estimated maintenance cost (microseconds) of keeping one index up to
/// date across `rows` modified rows, following the paper's Figure 5
/// asymmetry: B+ trees are cheapest, secondary CSIs pay the delta/delete
/// buffer, primary CSIs pay the physical row location.
pub fn maintenance_cost_us(meta: &IndexMeta, rows: f64, cost: &CostModel) -> f64 {
    match &meta.descriptor {
        IndexDescriptor::PrimaryBTree { .. } | IndexDescriptor::SecondaryBTree { .. } => {
            // Root-to-leaf traversal + leaf rewrite per row.
            rows * (cost.random_pages_us(1.0) * meta.height.max(1) as f64 / 2.0
                + cost.cpu_row_us * 3.0)
        }
        IndexDescriptor::SecondaryCsi { .. } => {
            // Delete-buffer + delta-store inserts (both B+ trees), plus the
            // amortized anti-join/compaction burden.
            rows * (cost.random_pages_us(1.0) * 1.5 + cost.cpu_row_us * 8.0)
        }
        IndexDescriptor::PrimaryCsi => {
            // Locate the physical row: scan the key segments of the
            // surviving row groups.
            let key_cols: Vec<usize> = meta.column_bytes.iter().map(|&(c, _)| c).take(1).collect();
            let bytes = meta.csi_scan_bytes(&key_cols).max(1) as f64 / meta.rowgroups.max(1) as f64;
            rows * (cost.segment_read_us(bytes, 1.0) + cost.cpu_batch_us * bytes / 8.0)
        }
    }
}

/// Build the full what-if meta list for one table under `chosen`.
pub fn metas_for(
    table: &str,
    ctx: &TableContext,
    chosen: &Chosen,
    samples: &HashMap<String, SampleSet>,
    estimator: &dyn CsiSizeEstimator,
    csi_config: &CsiConfig,
) -> Vec<IndexMeta> {
    let mut metas: Vec<IndexMeta> = ctx.metas.first().cloned().into_iter().collect();
    if let Some(list) = chosen.get(table) {
        let empty = SampleSet {
            rows: Vec::new(),
            fraction: 1.0,
        };
        let sample = samples.get(table).unwrap_or(&empty);
        for d in list {
            metas.push(hypothetical_meta(d, ctx, sample, estimator, csi_config));
        }
    }
    metas
}

/// Estimated rows a write statement touches.
fn write_rows(
    stmt_table: &str,
    predicate: &hpd_common::Expr,
    top: Option<usize>,
    contexts: &HashMap<String, TableContext>,
) -> f64 {
    let Some(ctx) = contexts.get(stmt_table) else {
        return 1.0;
    };
    let sel = ctx
        .stats
        .intervals_selectivity(&predicate.column_intervals());
    let rows = (ctx.stats.rows as f64 * sel).max(1.0);
    match top {
        Some(n) => rows.min(n as f64),
        None => rows,
    }
}

/// Optimizer-estimated cost (µs) of one statement under a configuration.
#[allow(clippy::too_many_arguments)]
pub fn statement_cost(
    db: &Database,
    stmt: &Statement,
    contexts: &HashMap<String, TableContext>,
    chosen: &Chosen,
    samples: &HashMap<String, SampleSet>,
    estimator: &dyn CsiSizeEstimator,
    csi_config: &CsiConfig,
    cost: &CostModel,
) -> Result<f64> {
    let what_if = |q: &hpd_engine::SelectQuery| -> Result<f64> {
        let mut overrides = HashMap::new();
        for t in &q.tables {
            if let Some(ctx) = contexts.get(&t.name) {
                overrides.insert(
                    t.name.clone(),
                    metas_for(&t.name, ctx, chosen, samples, estimator, csi_config),
                );
            }
        }
        Ok(db.what_if_plan(q, &overrides)?.est_cost_us)
    };

    let maintenance = |table: &str, rows: f64| -> f64 {
        let Some(ctx) = contexts.get(table) else {
            return 0.0;
        };
        let metas = metas_for(table, ctx, chosen, samples, estimator, csi_config);
        metas
            .iter()
            .map(|m| maintenance_cost_us(m, rows, cost))
            .sum()
    };

    Ok(match stmt {
        Statement::Select(q) => what_if(q)?,
        Statement::Update(UpdateStmt {
            table,
            predicate,
            top,
            ..
        }) => {
            let rows = write_rows(table, predicate, *top, contexts);
            what_if(&locate_query(table, predicate, contexts))? + maintenance(table, rows)
        }
        Statement::Delete(d) => {
            let rows = write_rows(&d.table, &d.predicate, d.top, contexts);
            what_if(&locate_query(&d.table, &d.predicate, contexts))? + maintenance(&d.table, rows)
        }
        Statement::Insert(i) => maintenance(&i.table, i.rows.len() as f64),
    })
}

/// Total weighted workload cost under `chosen`.
#[allow(clippy::too_many_arguments)]
pub fn workload_cost(
    db: &Database,
    workload: &Workload,
    contexts: &HashMap<String, TableContext>,
    chosen: &Chosen,
    samples: &HashMap<String, SampleSet>,
    estimator: &dyn CsiSizeEstimator,
    csi_config: &CsiConfig,
    cost: &CostModel,
) -> Result<f64> {
    let mut total = 0.0;
    for ws in &workload.statements {
        total += ws.weight
            * statement_cost(
                db,
                &ws.statement,
                contexts,
                chosen,
                samples,
                estimator,
                csi_config,
                cost,
            )?;
    }
    Ok(total)
}

/// Size in bytes of one hypothetical descriptor.
fn descriptor_size(
    table: &str,
    d: &IndexDescriptor,
    contexts: &HashMap<String, TableContext>,
    samples: &HashMap<String, SampleSet>,
    estimator: &dyn CsiSizeEstimator,
    csi_config: &CsiConfig,
) -> usize {
    let Some(ctx) = contexts.get(table) else {
        return 0;
    };
    let empty = SampleSet {
        rows: Vec::new(),
        fraction: 1.0,
    };
    let sample = samples.get(table).unwrap_or(&empty);
    hypothetical_meta(d, ctx, sample, estimator, csi_config).size_bytes()
}

/// Outcome of the greedy search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    pub chosen: Chosen,
    pub initial_cost_us: f64,
    pub final_cost_us: f64,
    pub new_index_bytes: usize,
}

/// Greedy enumeration: repeatedly add the candidate with the best benefit
/// (per byte when a budget binds) until nothing improves the workload cost
/// by more than 0.1% or the budget is exhausted. At most one columnstore
/// per table survives (structural constraint).
#[allow(clippy::too_many_arguments)]
pub fn greedy_search(
    db: &Database,
    workload: &Workload,
    contexts: &HashMap<String, TableContext>,
    pool: &CandidateSet,
    samples: &HashMap<String, SampleSet>,
    estimator: &dyn CsiSizeEstimator,
    csi_config: &CsiConfig,
    cost: &CostModel,
    storage_budget: Option<usize>,
) -> Result<SearchResult> {
    let mut chosen: Chosen = HashMap::new();
    // Per-statement cost cache for the *current* configuration: a trial
    // candidate on table T only changes statements that reference T, so the
    // rest are reused (keeps the search tractable for ~100-query workloads).
    let mut stmt_costs: Vec<f64> = workload
        .statements
        .iter()
        .map(|ws| {
            statement_cost(
                db,
                &ws.statement,
                contexts,
                &chosen,
                samples,
                estimator,
                csi_config,
                cost,
            )
        })
        .collect::<Result<_>>()?;
    let weighted = |costs: &[f64]| -> f64 {
        costs
            .iter()
            .zip(&workload.statements)
            .map(|(c, ws)| c * ws.weight)
            .sum()
    };
    let initial = weighted(&stmt_costs);
    let mut current = initial;
    let mut used_bytes = 0usize;

    loop {
        #[allow(clippy::type_complexity)]
        let mut best: Option<(
            f64,
            f64,
            Vec<(usize, f64)>,
            String,
            IndexDescriptor,
            usize,
        )> = None;
        for (table, cands) in &pool.per_table {
            let Some(ctx) = contexts.get(table) else {
                continue;
            };
            let table_has_csi = ctx.metas.first().is_some_and(|m| m.descriptor.is_csi())
                || chosen
                    .get(table)
                    .is_some_and(|l| l.iter().any(IndexDescriptor::is_csi));
            // Statements touching this table (the only ones to re-cost).
            let affected: Vec<usize> = workload
                .statements
                .iter()
                .enumerate()
                .filter(|(_, ws)| ws.statement.table_names().iter().any(|n| n == table))
                .map(|(i, _)| i)
                .collect();
            if affected.is_empty() {
                continue;
            }
            for d in cands {
                if chosen.get(table).is_some_and(|l| l.contains(d)) {
                    continue;
                }
                if d.is_csi() && table_has_csi {
                    continue;
                }
                let size = descriptor_size(table, d, contexts, samples, estimator, csi_config);
                if let Some(budget) = storage_budget {
                    if used_bytes + size > budget {
                        continue;
                    }
                }
                let mut trial = chosen.clone();
                trial.entry(table.clone()).or_default().push(d.clone());
                let mut deltas: Vec<(usize, f64)> = Vec::with_capacity(affected.len());
                let mut c = current;
                for &i in &affected {
                    let new_cost = statement_cost(
                        db,
                        &workload.statements[i].statement,
                        contexts,
                        &trial,
                        samples,
                        estimator,
                        csi_config,
                        cost,
                    )?;
                    c += (new_cost - stmt_costs[i]) * workload.statements[i].weight;
                    deltas.push((i, new_cost));
                }
                let benefit = current - c;
                if benefit <= current * 0.001 {
                    continue;
                }
                let score = if storage_budget.is_some() {
                    benefit / size.max(1) as f64
                } else {
                    benefit
                };
                if best.as_ref().is_none_or(|(s, ..)| score > *s) {
                    best = Some((score, c, deltas, table.clone(), d.clone(), size));
                }
            }
        }
        match best {
            None => break,
            Some((_, c, deltas, table, d, size)) => {
                chosen.entry(table).or_default().push(d);
                for (i, new_cost) in deltas {
                    stmt_costs[i] = new_cost;
                }
                current = c;
                used_bytes += size;
            }
        }
    }

    Ok(SearchResult {
        chosen,
        initial_cost_us: initial,
        final_cost_us: current,
        new_index_bytes: used_bytes,
    })
}
