//! Columnstore size estimation (paper §4.4).
//!
//! To cost a hypothetical columnstore, the what-if API needs *per-column
//! sizes* without building the index. Two estimators over a block-level
//! sample:
//!
//! * [`BlackBoxEstimator`] — build a real columnstore over the sample and
//!   scale each column's bytes by the inverse sampling fraction. Simple and
//!   compression-algorithm-agnostic, but the linearity assumption
//!   overestimates low-cardinality columns (the paper's `n_nationkey`
//!   example) and the sample build pays the compression sorts.
//! * [`RunModelEstimator`] — model the run-length encoding analytically:
//!   estimate per-column distinct counts with the **GEE** estimator, mimic
//!   the engine's greedy sort-order choice, bound each column's run count by
//!   the GEE estimate of the distinct *prefix combinations*, and convert
//!   runs to bytes per encoding. Row groups being compressed independently
//!   is modelled explicitly (the paper lists this as an accuracy
//!   improvement).

use std::collections::HashMap;

use hpd_columnstore::{CsiConfig, IntEncoding, Segment, FOR_DELTA_FRAME, RLE_RUN_BYTES};
use hpd_common::{DataType, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Rows per sampling block (models block/page-level sampling: whole blocks
/// are taken, which is what introduces the bias the paper corrects for).
pub const SAMPLE_BLOCK_ROWS: usize = 1024;

/// A block-level sample of a table.
#[derive(Debug, Clone)]
pub struct SampleSet {
    pub rows: Vec<Row>,
    /// Achieved sampling fraction (sampled rows / total rows).
    pub fraction: f64,
}

impl SampleSet {
    /// Sample whole blocks of `all_rows` until roughly `fraction` of the
    /// rows are covered. Deterministic in `seed`.
    pub fn block_sample(all_rows: &[Row], fraction: f64, seed: u64) -> SampleSet {
        if all_rows.is_empty() {
            return SampleSet {
                rows: Vec::new(),
                fraction: 1.0,
            };
        }
        let n_blocks = all_rows.len().div_ceil(SAMPLE_BLOCK_ROWS);
        let want_blocks = ((n_blocks as f64 * fraction).ceil() as usize).clamp(1, n_blocks);
        let mut ids: Vec<usize> = (0..n_blocks).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        ids.shuffle(&mut rng);
        ids.truncate(want_blocks);
        ids.sort_unstable();
        let mut rows = Vec::with_capacity(want_blocks * SAMPLE_BLOCK_ROWS);
        for b in ids {
            let start = b * SAMPLE_BLOCK_ROWS;
            let end = (start + SAMPLE_BLOCK_ROWS).min(all_rows.len());
            rows.extend_from_slice(&all_rows[start..end]);
        }
        let fraction = rows.len() as f64 / all_rows.len() as f64;
        SampleSet { rows, fraction }
    }

    /// The whole table as a "sample" (exact estimation baseline).
    pub fn full(all_rows: &[Row]) -> SampleSet {
        SampleSet {
            rows: all_rows.to_vec(),
            fraction: 1.0,
        }
    }
}

/// The GEE (Guaranteed Error Estimator) distinct-value estimator:
/// `sqrt(1/q) * f1 + Σ_{j≥2} f_j`, where `f_j` is the number of values
/// occurring exactly `j` times in the sample and `q` the sampling fraction.
/// Values seen once may represent many more; values seen repeatedly are
/// counted once.
pub fn gee_distinct<I, T>(values: I, fraction: f64) -> usize
where
    I: IntoIterator<Item = T>,
    T: std::hash::Hash + Eq,
{
    let mut freq: HashMap<T, usize> = HashMap::new();
    for v in values {
        *freq.entry(v).or_insert(0) += 1;
    }
    let f1 = freq.values().filter(|&&c| c == 1).count();
    let rest = freq.len() - f1;
    let scale = (1.0 / fraction.max(1e-9)).sqrt();
    (f1 as f64 * scale).round() as usize + rest
}

/// Estimates the per-column compressed bytes of a columnstore over a table.
pub trait CsiSizeEstimator {
    /// Returns one byte estimate per schema column.
    fn estimate_column_bytes(
        &self,
        schema: &Schema,
        sample: &SampleSet,
        total_rows: usize,
        config: &CsiConfig,
    ) -> Vec<usize>;

    fn name(&self) -> &'static str;

    /// Expected physical encoding per schema column — what the engine is
    /// predicted to pick when the index is materialized. Feeds the cost
    /// model's per-encoding CPU factors. The default assumes bit-packing
    /// (the neutral middle of the decode-cost scale).
    fn estimate_column_encodings(
        &self,
        schema: &Schema,
        sample: &SampleSet,
        total_rows: usize,
        config: &CsiConfig,
    ) -> Vec<IntEncoding> {
        let _ = (sample, total_rows, config);
        vec![IntEncoding::BitPacked; schema.len()]
    }

    /// Total size estimate.
    fn estimate_total_bytes(
        &self,
        schema: &Schema,
        sample: &SampleSet,
        total_rows: usize,
        config: &CsiConfig,
    ) -> usize {
        self.estimate_column_bytes(schema, sample, total_rows, config)
            .iter()
            .sum()
    }
}

/// Build a real columnstore over the sample; scale per-column bytes by the
/// inverse sampling fraction.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlackBoxEstimator;

impl CsiSizeEstimator for BlackBoxEstimator {
    fn estimate_column_bytes(
        &self,
        schema: &Schema,
        sample: &SampleSet,
        total_rows: usize,
        config: &CsiConfig,
    ) -> Vec<usize> {
        if sample.rows.is_empty() || total_rows == 0 {
            return vec![0; schema.len()];
        }
        let pool = hpd_storage::BufferPool::unbounded(hpd_storage::DeviceProfile::ram());
        let tracker = hpd_storage::IoTracker::new();
        let csi = hpd_columnstore::ColumnStoreIndex::build(
            schema.clone(),
            hpd_columnstore::CsiKind::Secondary,
            vec![0],
            *config,
            &sample.rows,
            hpd_storage::StorageAllocator::new(),
            &pool,
            &tracker,
        );
        let scale = 1.0 / sample.fraction.max(1e-9);
        csi.column_sizes()
            .into_iter()
            .map(|b| (b as f64 * scale).round() as usize)
            .collect()
    }

    fn name(&self) -> &'static str {
        "black-box"
    }

    /// Build the sample columnstore and report the encodings it actually
    /// chose (a second build on top of the size pass — the black box stays
    /// a black box).
    fn estimate_column_encodings(
        &self,
        schema: &Schema,
        sample: &SampleSet,
        total_rows: usize,
        config: &CsiConfig,
    ) -> Vec<IntEncoding> {
        if sample.rows.is_empty() || total_rows == 0 {
            return vec![IntEncoding::Raw; schema.len()];
        }
        let pool = hpd_storage::BufferPool::unbounded(hpd_storage::DeviceProfile::ram());
        let tracker = hpd_storage::IoTracker::new();
        let csi = hpd_columnstore::ColumnStoreIndex::build(
            schema.clone(),
            hpd_columnstore::CsiKind::Secondary,
            vec![0],
            *config,
            &sample.rows,
            hpd_storage::StorageAllocator::new(),
            &pool,
            &tracker,
        );
        csi.column_encodings()
    }
}

/// Per-encoding candidate sizes the run model predicts for one column
/// (whole-table bytes; `usize::MAX` marks an infeasible encoding). The
/// minimum is the size estimate; the argmin is the encoding the engine is
/// expected to pick, with ties broken in the engine's order
/// (RLE → bit-packed → FOR/delta → dict → raw).
#[derive(Debug, Clone, Copy)]
pub struct EncodingBreakdown {
    pub rle: usize,
    pub bitpacked: usize,
    pub fordelta: usize,
    pub dict: usize,
    pub raw: usize,
}

impl EncodingBreakdown {
    /// `(expected encoding, estimated bytes)`.
    pub fn best(&self) -> (IntEncoding, usize) {
        let candidates = [
            (IntEncoding::Rle, self.rle),
            (IntEncoding::BitPacked, self.bitpacked),
            (IntEncoding::ForDelta, self.fordelta),
            (IntEncoding::Dict, self.dict),
            (IntEncoding::Raw, self.raw),
        ];
        let min = candidates.iter().map(|&(_, b)| b).min().unwrap();
        let (enc, _) = candidates.iter().find(|&&(_, b)| b == min).unwrap();
        (*enc, min)
    }
}

/// Model runs via GEE distinct estimates of greedy-order prefixes.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunModelEstimator;

impl RunModelEstimator {
    /// Normalized representation for hashing sample values.
    fn norm(v: &Value) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    /// Map a sample value onto the segment's `i64` encoding domain: numerics
    /// via the engine's normalization (floats become order-preserving bit
    /// patterns), strings via their rank among the sample's distinct values
    /// (mirroring the per-segment string dictionary's dense codes).
    fn mapped_column(sample_sorted: &[&Row], c: usize, dtype: DataType) -> Vec<i64> {
        if dtype == DataType::Utf8 {
            let mut distinct: Vec<&Value> = sample_sorted.iter().map(|r| &r[c]).collect();
            distinct.sort_unstable();
            distinct.dedup();
            sample_sorted
                .iter()
                .map(|r| distinct.binary_search(&&r[c]).expect("value present") as i64)
                .collect()
        } else {
            sample_sorted
                .iter()
                .map(|r| Segment::normalize_value(&r[c]))
                .collect()
        }
    }

    /// Per-encoding size candidates for every column (see
    /// [`EncodingBreakdown`]). The model mirrors the engine's selection:
    /// runs from GEE prefix-combination estimates, value/delta bit widths
    /// measured on the greedy-order-sorted sample, each rowgroup compressed
    /// independently.
    pub fn estimate_encodings(
        &self,
        schema: &Schema,
        sample: &SampleSet,
        total_rows: usize,
        config: &CsiConfig,
    ) -> Vec<EncodingBreakdown> {
        let ncols = schema.len();
        let empty = EncodingBreakdown {
            rle: 0,
            bitpacked: 0,
            fordelta: 0,
            dict: 0,
            raw: 0,
        };
        if sample.rows.is_empty() || total_rows == 0 {
            return vec![empty; ncols];
        }
        let q = sample.fraction;

        // Per-column GEE distinct estimates → greedy sort order
        // (fewest-distinct first), mimicking the engine.
        let distinct: Vec<usize> = (0..ncols)
            .map(|c| gee_distinct(sample.rows.iter().map(|r| Self::norm(&r[c])), q))
            .collect();
        let mut order: Vec<usize> = (0..ncols).collect();
        order.sort_by_key(|&c| (distinct[c], c));

        // Prefix combination distinct estimates (the run-count upper bound).
        let mut prefix_distinct: Vec<usize> = Vec::with_capacity(ncols);
        let mut prefix: Vec<usize> = Vec::new();
        for &c in &order {
            prefix.push(c);
            let d = gee_distinct(
                sample.rows.iter().map(|r| {
                    prefix
                        .iter()
                        .map(|&pc| Self::norm(&r[pc]))
                        .fold(0u64, |acc, h| {
                            acc.wrapping_mul(1_000_000_007).wrapping_add(h)
                        })
                }),
                q,
            );
            prefix_distinct.push(d);
        }

        // The engine sorts each rowgroup by the greedy order before
        // encoding; sort the sample the same way so value ranges and delta
        // widths are measured in encoding order.
        let mut sorted: Vec<&Row> = sample.rows.iter().collect();
        sorted.sort_by(|a, b| {
            order
                .iter()
                .map(|&c| a[c].cmp(&b[c]))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        // Row groups compress independently: estimate per row group, then
        // multiply by the number of row groups.
        let rg = config.rowgroup_capacity.max(1);
        let n_rowgroups = total_rows.div_ceil(rg).max(1);
        let rows_per_rg = (total_rows as f64 / n_rowgroups as f64).ceil() as usize;

        let bits_for = |range: u128| -> usize { (128 - range.leading_zeros()) as usize };
        let packed_bytes = |slots: usize, bw: usize| -> usize { (slots * bw).div_ceil(8) + 8 };

        let mut out = vec![empty; ncols];
        for (pos, &c) in order.iter().enumerate() {
            let dtype = schema.column(c).dtype;
            let vals = Self::mapped_column(&sorted, c, dtype);

            // Strings pay their dictionary regardless of how the code
            // stream is encoded; add it to every candidate.
            let string_dict = if dtype == DataType::Utf8 {
                let avg_len = sample
                    .rows
                    .iter()
                    .filter_map(|r| r[c].as_str().map(str::len))
                    .sum::<usize>() as f64
                    / sample.rows.len().max(1) as f64;
                (distinct[c].min(rows_per_rg) as f64 * (avg_len + 4.0)) as usize
            } else {
                0
            };

            let d_prefix = prefix_distinct[pos].max(1);
            // Runs per row group bounded by both rows and distinct prefixes.
            let runs_per_rg = d_prefix.min(rows_per_rg).max(1);
            let rle = runs_per_rg * RLE_RUN_BYTES;

            // Bit-packing needs the value range (not the distinct count);
            // string codes span exactly their per-rowgroup distinct count.
            let range = if dtype == DataType::Utf8 {
                (distinct[c].min(rows_per_rg).max(1) - 1) as u128
            } else {
                let (min, max) = vals
                    .iter()
                    .fold((i64::MAX, i64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
                (max as i128 - min as i128) as u128
            };
            let vbits = bits_for(range);
            let bitpacked = if vbits > 56 {
                usize::MAX
            } else {
                packed_bytes(rows_per_rg, vbits) + 9
            };

            // FOR/delta: delta width measured over consecutive sorted-sample
            // values. Block sampling stitches non-adjacent row ranges
            // together, injecting up to one spurious gap per block seam;
            // trim that many extreme deltas from each end (scaled by the
            // unsampled fraction — a full sample has no seams).
            let mut deltas: Vec<i128> = vals
                .windows(2)
                .map(|w| w[1] as i128 - w[0] as i128)
                .collect();
            deltas.sort_unstable();
            let n_blocks = sample.rows.len().div_ceil(SAMPLE_BLOCK_ROWS);
            let seams = ((n_blocks.saturating_sub(1)) as f64 * (1.0 - q)).round() as usize;
            let (min_d, max_d) = if deltas.len() > 2 * seams {
                (deltas[seams], deltas[deltas.len() - 1 - seams])
            } else {
                (0, 0)
            };
            let dbits = bits_for((max_d - min_d).max(0) as u128);
            let fordelta = if dbits > 56 {
                usize::MAX
            } else {
                let frames = rows_per_rg.div_ceil(FOR_DELTA_FRAME);
                frames * 8 + packed_bytes(frames * (FOR_DELTA_FRAME - 1), dbits) + 17
            };

            // Numeric dictionary: sorted distinct values + an encoded code
            // stream; the engine bails out above rows/4 distinct.
            let d_rg = distinct[c].min(rows_per_rg).max(1);
            let dict = if d_rg > (rows_per_rg / 4).max(8) {
                usize::MAX
            } else {
                let code_bw = bits_for((d_rg - 1) as u128);
                let codes = rle
                    .min(packed_bytes(rows_per_rg, code_bw) + 9)
                    .min(rows_per_rg * 8);
                d_rg * 8 + codes + 16
            };

            let raw = rows_per_rg * 8;

            let scale = |b: usize| -> usize {
                if b == usize::MAX {
                    usize::MAX
                } else {
                    (b + string_dict) * n_rowgroups
                }
            };
            out[c] = EncodingBreakdown {
                rle: scale(rle),
                bitpacked: scale(bitpacked),
                fordelta: scale(fordelta),
                dict: scale(dict),
                raw: scale(raw),
            };
        }
        out
    }
}

impl CsiSizeEstimator for RunModelEstimator {
    fn estimate_column_bytes(
        &self,
        schema: &Schema,
        sample: &SampleSet,
        total_rows: usize,
        config: &CsiConfig,
    ) -> Vec<usize> {
        self.estimate_encodings(schema, sample, total_rows, config)
            .iter()
            .map(|b| b.best().1)
            .collect()
    }

    fn name(&self) -> &'static str {
        "run-model(GEE)"
    }

    fn estimate_column_encodings(
        &self,
        schema: &Schema,
        sample: &SampleSet,
        total_rows: usize,
        config: &CsiConfig,
    ) -> Vec<IntEncoding> {
        self.estimate_encodings(schema, sample, total_rows, config)
            .iter()
            .map(|b| b.best().0)
            .collect()
    }
}

/// Estimated B+ tree size for hypothetical indexes: leaf pages and height
/// from rows × entry width.
pub fn btree_size_estimate(rows: usize, entry_width: usize) -> (usize, usize) {
    let per_leaf = (hpd_storage::PAGE_SIZE / (entry_width + 10).max(1)).clamp(8, 4096);
    let leaf_pages = rows.div_ceil(per_leaf).max(1);
    let fanout = 256usize;
    let mut height = 1;
    let mut level = leaf_pages;
    while level > 1 {
        level = level.div_ceil(fanout);
        height += 1;
    }
    (leaf_pages, height)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpd_common::{ColumnDef, Value};

    fn int_schema(n: usize) -> Schema {
        Schema::new(
            (0..n)
                .map(|i| ColumnDef::new(format!("c{i}"), DataType::Int32))
                .collect(),
        )
    }

    fn rows_mod(n: i32, m: i32) -> Vec<Row> {
        (0..n)
            .map(|i| Row::new(vec![Value::Int32(i), Value::Int32(i % m)]))
            .collect()
    }

    #[test]
    fn gee_counts_frequent_values_once() {
        // 10 distinct values each appearing 100 times in a 10% sample:
        // estimate stays ~10, not 100.
        let sample: Vec<i32> = (0..1000).map(|i| i % 10).collect();
        let d = gee_distinct(sample, 0.1);
        assert_eq!(d, 10);
        // All-unique sample scales up by sqrt(1/q).
        let sample: Vec<i32> = (0..100).collect();
        let d = gee_distinct(sample, 0.01);
        assert_eq!(d, 1000);
    }

    #[test]
    fn block_sample_hits_target_fraction() {
        // Exact multiple of SAMPLE_BLOCK_ROWS so every block is full and the
        // modulo assertion holds regardless of which blocks the RNG picks.
        let rows = rows_mod(102_400, 7);
        let s = SampleSet::block_sample(&rows, 0.05, 42);
        assert!((s.fraction - 0.05).abs() < 0.02, "{}", s.fraction);
        assert_eq!(s.rows.len() % SAMPLE_BLOCK_ROWS, 0);
        // Deterministic.
        let s2 = SampleSet::block_sample(&rows, 0.05, 42);
        assert_eq!(s.rows.len(), s2.rows.len());
    }

    #[test]
    fn estimators_close_to_actual_on_low_cardinality() {
        let rows = rows_mod(100_000, 25);
        let schema = int_schema(2);
        let config = CsiConfig::default();
        // Actual build.
        let pool = hpd_storage::BufferPool::unbounded(hpd_storage::DeviceProfile::ram());
        let t = hpd_storage::IoTracker::new();
        let csi = hpd_columnstore::ColumnStoreIndex::build(
            schema.clone(),
            hpd_columnstore::CsiKind::Secondary,
            vec![0],
            config,
            &rows,
            hpd_storage::StorageAllocator::new(),
            &pool,
            &t,
        );
        let actual = csi.column_sizes();

        let sample = SampleSet::block_sample(&rows, 0.1, 7);
        let run_est =
            RunModelEstimator.estimate_column_bytes(&schema, &sample, rows.len(), &config);
        let bb_est = BlackBoxEstimator.estimate_column_bytes(&schema, &sample, rows.len(), &config);

        // The low-cardinality column (1): run model within 4x; black box
        // overestimates it more (the paper's n_nationkey effect).
        let ratio_run = run_est[1] as f64 / actual[1] as f64;
        let ratio_bb = bb_est[1] as f64 / actual[1] as f64;
        assert!(
            ratio_run < 4.0 && ratio_run > 0.25,
            "run model ratio {ratio_run} (est {} vs actual {})",
            run_est[1],
            actual[1]
        );
        assert!(
            ratio_bb > ratio_run,
            "black box should overestimate low-cardinality more: bb {ratio_bb} vs run {ratio_run}"
        );
    }

    #[test]
    fn run_model_reasonable_on_unique_column() {
        let rows = rows_mod(50_000, 50_000);
        let schema = int_schema(2);
        let config = CsiConfig::default();
        let pool = hpd_storage::BufferPool::unbounded(hpd_storage::DeviceProfile::ram());
        let t = hpd_storage::IoTracker::new();
        let csi = hpd_columnstore::ColumnStoreIndex::build(
            schema.clone(),
            hpd_columnstore::CsiKind::Secondary,
            vec![0],
            config,
            &rows,
            hpd_storage::StorageAllocator::new(),
            &pool,
            &t,
        );
        let actual: usize = csi.column_sizes().iter().sum();
        let sample = SampleSet::block_sample(&rows, 0.1, 9);
        let est: usize = RunModelEstimator
            .estimate_column_bytes(&schema, &sample, rows.len(), &config)
            .iter()
            .sum();
        let ratio = est as f64 / actual as f64;
        assert!(ratio > 0.2 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn encoding_predictions_follow_data_shape() {
        let config = CsiConfig {
            rowgroup_capacity: 1 << 20,
            ..CsiConfig::default()
        };
        let n = 20_000i64;
        let pick = |schema: &Schema, rows: Vec<Row>, col: usize| -> IntEncoding {
            let sample = SampleSet::full(&rows);
            RunModelEstimator.estimate_encodings(schema, &sample, rows.len(), &config)[col]
                .best()
                .0
        };
        // Mixing hash for value-independent pseudo-random columns.
        let h = |i: i64, salt: i64| (i.wrapping_mul(2654435761) ^ salt).rem_euclid(1 << 20);

        // Low-cardinality column: sorts into a handful of runs → RLE.
        let schema = int_schema(1);
        let rows: Vec<Row> = (0..n)
            .map(|i| Row::new(vec![Value::Int32((i % 4) as i32)]))
            .collect();
        assert_eq!(pick(&schema, rows, 0), IntEncoding::Rle);

        // Unique, evenly spaced values: wide range but tiny sorted deltas →
        // FOR/delta.
        let rows: Vec<Row> = (0..n)
            .map(|i| Row::new(vec![Value::Int32((i * 1000) as i32)]))
            .collect();
        assert_eq!(pick(&schema, rows, 0), IntEncoding::ForDelta);

        // Wide-range many-distinct values behind a sort prefix: within each
        // prefix group the deltas are as wide as the values themselves →
        // bit-packing.
        let schema2 = int_schema(2);
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Int32((i % 2000) as i32),
                    Value::Int32(h(i, 7) as i32),
                ])
            })
            .collect();
        assert_eq!(pick(&schema2, rows, 1), IntEncoding::BitPacked);

        // Few distinct but wide values whose sort prefix has more distinct
        // combinations than rows: run-length collapses to nothing, codes
        // stay narrow → numeric dictionary.
        let schema3 = Schema::from_pairs(&[
            ("a", DataType::Int32),
            ("b", DataType::Int32),
            ("c", DataType::Int64),
        ]);
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Int32((h(i, 1) % 50) as i32),
                    Value::Int32((h(i, 2) % 60) as i32),
                    Value::Int64((h(i, 3) % 70) * 1_000_000_000_000),
                ])
            })
            .collect();
        assert_eq!(pick(&schema3, rows, 2), IntEncoding::Dict);
    }

    #[test]
    fn btree_size_estimate_monotone() {
        let (lp1, h1) = btree_size_estimate(1000, 16);
        let (lp2, h2) = btree_size_estimate(1_000_000, 16);
        assert!(lp2 > lp1 * 500);
        assert!(h2 >= h1);
        let (lp_wide, _) = btree_size_estimate(1000, 160);
        assert!(lp_wide > lp1);
    }

    #[test]
    fn empty_sample_estimates_zero() {
        let schema = int_schema(1);
        let s = SampleSet::full(&[]);
        assert_eq!(
            RunModelEstimator.estimate_column_bytes(&schema, &s, 0, &CsiConfig::default()),
            vec![0]
        );
        assert_eq!(
            BlackBoxEstimator.estimate_column_bytes(&schema, &s, 0, &CsiConfig::default()),
            vec![0]
        );
    }
}
