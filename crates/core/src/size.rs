//! Columnstore size estimation (paper §4.4).
//!
//! To cost a hypothetical columnstore, the what-if API needs *per-column
//! sizes* without building the index. Two estimators over a block-level
//! sample:
//!
//! * [`BlackBoxEstimator`] — build a real columnstore over the sample and
//!   scale each column's bytes by the inverse sampling fraction. Simple and
//!   compression-algorithm-agnostic, but the linearity assumption
//!   overestimates low-cardinality columns (the paper's `n_nationkey`
//!   example) and the sample build pays the compression sorts.
//! * [`RunModelEstimator`] — model the run-length encoding analytically:
//!   estimate per-column distinct counts with the **GEE** estimator, mimic
//!   the engine's greedy sort-order choice, bound each column's run count by
//!   the GEE estimate of the distinct *prefix combinations*, and convert
//!   runs to bytes per encoding. Row groups being compressed independently
//!   is modelled explicitly (the paper lists this as an accuracy
//!   improvement).

use std::collections::HashMap;

use hpd_columnstore::CsiConfig;
use hpd_common::{DataType, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Rows per sampling block (models block/page-level sampling: whole blocks
/// are taken, which is what introduces the bias the paper corrects for).
pub const SAMPLE_BLOCK_ROWS: usize = 1024;

/// A block-level sample of a table.
#[derive(Debug, Clone)]
pub struct SampleSet {
    pub rows: Vec<Row>,
    /// Achieved sampling fraction (sampled rows / total rows).
    pub fraction: f64,
}

impl SampleSet {
    /// Sample whole blocks of `all_rows` until roughly `fraction` of the
    /// rows are covered. Deterministic in `seed`.
    pub fn block_sample(all_rows: &[Row], fraction: f64, seed: u64) -> SampleSet {
        if all_rows.is_empty() {
            return SampleSet {
                rows: Vec::new(),
                fraction: 1.0,
            };
        }
        let n_blocks = all_rows.len().div_ceil(SAMPLE_BLOCK_ROWS);
        let want_blocks = ((n_blocks as f64 * fraction).ceil() as usize).clamp(1, n_blocks);
        let mut ids: Vec<usize> = (0..n_blocks).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        ids.shuffle(&mut rng);
        ids.truncate(want_blocks);
        ids.sort_unstable();
        let mut rows = Vec::with_capacity(want_blocks * SAMPLE_BLOCK_ROWS);
        for b in ids {
            let start = b * SAMPLE_BLOCK_ROWS;
            let end = (start + SAMPLE_BLOCK_ROWS).min(all_rows.len());
            rows.extend_from_slice(&all_rows[start..end]);
        }
        let fraction = rows.len() as f64 / all_rows.len() as f64;
        SampleSet { rows, fraction }
    }

    /// The whole table as a "sample" (exact estimation baseline).
    pub fn full(all_rows: &[Row]) -> SampleSet {
        SampleSet {
            rows: all_rows.to_vec(),
            fraction: 1.0,
        }
    }
}

/// The GEE (Guaranteed Error Estimator) distinct-value estimator:
/// `sqrt(1/q) * f1 + Σ_{j≥2} f_j`, where `f_j` is the number of values
/// occurring exactly `j` times in the sample and `q` the sampling fraction.
/// Values seen once may represent many more; values seen repeatedly are
/// counted once.
pub fn gee_distinct<I, T>(values: I, fraction: f64) -> usize
where
    I: IntoIterator<Item = T>,
    T: std::hash::Hash + Eq,
{
    let mut freq: HashMap<T, usize> = HashMap::new();
    for v in values {
        *freq.entry(v).or_insert(0) += 1;
    }
    let f1 = freq.values().filter(|&&c| c == 1).count();
    let rest = freq.len() - f1;
    let scale = (1.0 / fraction.max(1e-9)).sqrt();
    (f1 as f64 * scale).round() as usize + rest
}

/// Estimates the per-column compressed bytes of a columnstore over a table.
pub trait CsiSizeEstimator {
    /// Returns one byte estimate per schema column.
    fn estimate_column_bytes(
        &self,
        schema: &Schema,
        sample: &SampleSet,
        total_rows: usize,
        config: &CsiConfig,
    ) -> Vec<usize>;

    fn name(&self) -> &'static str;

    /// Total size estimate.
    fn estimate_total_bytes(
        &self,
        schema: &Schema,
        sample: &SampleSet,
        total_rows: usize,
        config: &CsiConfig,
    ) -> usize {
        self.estimate_column_bytes(schema, sample, total_rows, config)
            .iter()
            .sum()
    }
}

/// Build a real columnstore over the sample; scale per-column bytes by the
/// inverse sampling fraction.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlackBoxEstimator;

impl CsiSizeEstimator for BlackBoxEstimator {
    fn estimate_column_bytes(
        &self,
        schema: &Schema,
        sample: &SampleSet,
        total_rows: usize,
        config: &CsiConfig,
    ) -> Vec<usize> {
        if sample.rows.is_empty() || total_rows == 0 {
            return vec![0; schema.len()];
        }
        let pool = hpd_storage::BufferPool::unbounded(hpd_storage::DeviceProfile::ram());
        let tracker = hpd_storage::IoTracker::new();
        let csi = hpd_columnstore::ColumnStoreIndex::build(
            schema.clone(),
            hpd_columnstore::CsiKind::Secondary,
            vec![0],
            *config,
            &sample.rows,
            hpd_storage::StorageAllocator::new(),
            &pool,
            &tracker,
        );
        let scale = 1.0 / sample.fraction.max(1e-9);
        csi.column_sizes()
            .into_iter()
            .map(|b| (b as f64 * scale).round() as usize)
            .collect()
    }

    fn name(&self) -> &'static str {
        "black-box"
    }
}

/// Model runs via GEE distinct estimates of greedy-order prefixes.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunModelEstimator;

impl RunModelEstimator {
    /// Normalized representation for hashing sample values.
    fn norm(v: &Value) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }
}

impl CsiSizeEstimator for RunModelEstimator {
    fn estimate_column_bytes(
        &self,
        schema: &Schema,
        sample: &SampleSet,
        total_rows: usize,
        config: &CsiConfig,
    ) -> Vec<usize> {
        let ncols = schema.len();
        if sample.rows.is_empty() || total_rows == 0 {
            return vec![0; ncols];
        }
        let q = sample.fraction;

        // Per-column GEE distinct estimates → greedy sort order
        // (fewest-distinct first), mimicking the engine.
        let distinct: Vec<usize> = (0..ncols)
            .map(|c| gee_distinct(sample.rows.iter().map(|r| Self::norm(&r[c])), q))
            .collect();
        let mut order: Vec<usize> = (0..ncols).collect();
        order.sort_by_key(|&c| (distinct[c], c));

        // Prefix combination distinct estimates (the run-count upper bound).
        let mut prefix_distinct: Vec<usize> = Vec::with_capacity(ncols);
        let mut prefix: Vec<usize> = Vec::new();
        for &c in &order {
            prefix.push(c);
            let d = gee_distinct(
                sample.rows.iter().map(|r| {
                    prefix
                        .iter()
                        .map(|&pc| Self::norm(&r[pc]))
                        .fold(0u64, |acc, h| {
                            acc.wrapping_mul(1_000_000_007).wrapping_add(h)
                        })
                }),
                q,
            );
            prefix_distinct.push(d);
        }

        // Row groups compress independently: estimate per row group, then
        // multiply by the number of row groups.
        let rg = config.rowgroup_capacity.max(1);
        let n_rowgroups = total_rows.div_ceil(rg).max(1);
        let rows_per_rg = (total_rows as f64 / n_rowgroups as f64).ceil() as usize;

        let mut out = vec![0usize; ncols];
        for (pos, &c) in order.iter().enumerate() {
            let d_prefix = prefix_distinct[pos].max(1);
            // Runs per row group bounded by both rows and distinct prefixes.
            let runs_per_rg = d_prefix.min(rows_per_rg).max(1);
            let rle_bytes = runs_per_rg * 12;

            // Bit-packed alternative from the sample's value range.
            let d_col = distinct[c].max(1);
            let bits = (usize::BITS - (d_col - 1).leading_zeros()).max(1) as usize;
            let packed_bytes = rows_per_rg * bits / 8 + 9;

            let raw_bytes = rows_per_rg * 8;
            let payload = rle_bytes.min(packed_bytes).min(raw_bytes);

            // Dictionary overhead for strings.
            let dict_bytes = if schema.column(c).dtype == DataType::Utf8 {
                let avg_len = sample
                    .rows
                    .iter()
                    .filter_map(|r| r[c].as_str().map(str::len))
                    .sum::<usize>() as f64
                    / sample.rows.len().max(1) as f64;
                // Distinct strings per row group.
                (d_col.min(rows_per_rg) as f64 * (avg_len + 4.0)) as usize
            } else {
                0
            };
            out[c] = (payload + dict_bytes) * n_rowgroups;
        }
        out
    }

    fn name(&self) -> &'static str {
        "run-model(GEE)"
    }
}

/// Estimated B+ tree size for hypothetical indexes: leaf pages and height
/// from rows × entry width.
pub fn btree_size_estimate(rows: usize, entry_width: usize) -> (usize, usize) {
    let per_leaf = (hpd_storage::PAGE_SIZE / (entry_width + 10).max(1)).clamp(8, 4096);
    let leaf_pages = rows.div_ceil(per_leaf).max(1);
    let fanout = 256usize;
    let mut height = 1;
    let mut level = leaf_pages;
    while level > 1 {
        level = level.div_ceil(fanout);
        height += 1;
    }
    (leaf_pages, height)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpd_common::{ColumnDef, Value};

    fn int_schema(n: usize) -> Schema {
        Schema::new(
            (0..n)
                .map(|i| ColumnDef::new(format!("c{i}"), DataType::Int32))
                .collect(),
        )
    }

    fn rows_mod(n: i32, m: i32) -> Vec<Row> {
        (0..n)
            .map(|i| Row::new(vec![Value::Int32(i), Value::Int32(i % m)]))
            .collect()
    }

    #[test]
    fn gee_counts_frequent_values_once() {
        // 10 distinct values each appearing 100 times in a 10% sample:
        // estimate stays ~10, not 100.
        let sample: Vec<i32> = (0..1000).map(|i| i % 10).collect();
        let d = gee_distinct(sample, 0.1);
        assert_eq!(d, 10);
        // All-unique sample scales up by sqrt(1/q).
        let sample: Vec<i32> = (0..100).collect();
        let d = gee_distinct(sample, 0.01);
        assert_eq!(d, 1000);
    }

    #[test]
    fn block_sample_hits_target_fraction() {
        // Exact multiple of SAMPLE_BLOCK_ROWS so every block is full and the
        // modulo assertion holds regardless of which blocks the RNG picks.
        let rows = rows_mod(102_400, 7);
        let s = SampleSet::block_sample(&rows, 0.05, 42);
        assert!((s.fraction - 0.05).abs() < 0.02, "{}", s.fraction);
        assert_eq!(s.rows.len() % SAMPLE_BLOCK_ROWS, 0);
        // Deterministic.
        let s2 = SampleSet::block_sample(&rows, 0.05, 42);
        assert_eq!(s.rows.len(), s2.rows.len());
    }

    #[test]
    fn estimators_close_to_actual_on_low_cardinality() {
        let rows = rows_mod(100_000, 25);
        let schema = int_schema(2);
        let config = CsiConfig::default();
        // Actual build.
        let pool = hpd_storage::BufferPool::unbounded(hpd_storage::DeviceProfile::ram());
        let t = hpd_storage::IoTracker::new();
        let csi = hpd_columnstore::ColumnStoreIndex::build(
            schema.clone(),
            hpd_columnstore::CsiKind::Secondary,
            vec![0],
            config,
            &rows,
            hpd_storage::StorageAllocator::new(),
            &pool,
            &t,
        );
        let actual = csi.column_sizes();

        let sample = SampleSet::block_sample(&rows, 0.1, 7);
        let run_est =
            RunModelEstimator.estimate_column_bytes(&schema, &sample, rows.len(), &config);
        let bb_est = BlackBoxEstimator.estimate_column_bytes(&schema, &sample, rows.len(), &config);

        // The low-cardinality column (1): run model within 4x; black box
        // overestimates it more (the paper's n_nationkey effect).
        let ratio_run = run_est[1] as f64 / actual[1] as f64;
        let ratio_bb = bb_est[1] as f64 / actual[1] as f64;
        assert!(
            ratio_run < 4.0 && ratio_run > 0.25,
            "run model ratio {ratio_run} (est {} vs actual {})",
            run_est[1],
            actual[1]
        );
        assert!(
            ratio_bb > ratio_run,
            "black box should overestimate low-cardinality more: bb {ratio_bb} vs run {ratio_run}"
        );
    }

    #[test]
    fn run_model_reasonable_on_unique_column() {
        let rows = rows_mod(50_000, 50_000);
        let schema = int_schema(2);
        let config = CsiConfig::default();
        let pool = hpd_storage::BufferPool::unbounded(hpd_storage::DeviceProfile::ram());
        let t = hpd_storage::IoTracker::new();
        let csi = hpd_columnstore::ColumnStoreIndex::build(
            schema.clone(),
            hpd_columnstore::CsiKind::Secondary,
            vec![0],
            config,
            &rows,
            hpd_storage::StorageAllocator::new(),
            &pool,
            &t,
        );
        let actual: usize = csi.column_sizes().iter().sum();
        let sample = SampleSet::block_sample(&rows, 0.1, 9);
        let est: usize = RunModelEstimator
            .estimate_column_bytes(&schema, &sample, rows.len(), &config)
            .iter()
            .sum();
        let ratio = est as f64 / actual as f64;
        assert!(ratio > 0.2 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn btree_size_estimate_monotone() {
        let (lp1, h1) = btree_size_estimate(1000, 16);
        let (lp2, h2) = btree_size_estimate(1_000_000, 16);
        assert!(lp2 > lp1 * 500);
        assert!(h2 >= h1);
        let (lp_wide, _) = btree_size_estimate(1000, 160);
        assert!(lp_wide > lp1);
    }

    #[test]
    fn empty_sample_estimates_zero() {
        let schema = int_schema(1);
        let s = SampleSet::full(&[]);
        assert_eq!(
            RunModelEstimator.estimate_column_bytes(&schema, &s, 0, &CsiConfig::default()),
            vec![0]
        );
        assert_eq!(
            BlackBoxEstimator.estimate_column_bytes(&schema, &s, 0, &CsiConfig::default()),
            vec![0]
        );
    }
}
