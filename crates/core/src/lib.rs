//! The tuning advisor — the paper's core contribution (§4).
//!
//! A reimplementation of the Database Engine Tuning Advisor (DTA) extension
//! that analyzes a workload and recommends a *hybrid* physical design: a
//! combination of B+ tree and columnstore indexes. The pipeline mirrors the
//! paper's Figure 7:
//!
//! 1. **Candidate selection** ([`candidates`]) — per query, syntactic B+
//!    tree candidates (from predicates, joins, group-by/order-by) plus one
//!    all-eligible-columns columnstore candidate per referenced table; each
//!    query is costed through the engine's what-if API and only candidates
//!    the optimizer actually uses survive.
//! 2. **Index merging** ([`merge`]) — B+ tree candidates on the same table
//!    merge (shared key prefix, unioned includes); columnstores never merge.
//! 3. **Enumeration** ([`enumerate`]) — greedy benefit(-per-byte) search
//!    over the merged pool under a storage budget, charging update
//!    maintenance, with at most one columnstore per table.
//! 4. **Costing** — optimizer-estimated costs of hypothetical
//!    configurations via [`hypothetical`] metas, whose columnstore
//!    per-column sizes come from the estimators in [`size`]: the
//!    **black-box** sample-build estimator and the **GEE run-modeling**
//!    estimator (§4.4).
//!
//! # Example
//!
//! ```no_run
//! use hpd_advisor::{Advisor, AdvisorOptions, Workload};
//! use hpd_common::{CmpOp, DataType, Expr, Row, Schema, Value};
//! use hpd_engine::{Database, DbConfig, IndexDescriptor, SelectQuery};
//!
//! let db = Database::new(DbConfig::default());
//! db.create_table(
//!     "orders",
//!     Schema::from_pairs(&[("id", DataType::Int32), ("customer", DataType::Int32)]),
//!     vec![0],
//!     IndexDescriptor::PrimaryBTree { keys: vec![0] },
//! )?;
//! db.load_table(
//!     "orders",
//!     (0..10_000)
//!         .map(|i| Row::new(vec![Value::Int32(i), Value::Int32(i % 100)]))
//!         .collect(),
//! )?;
//!
//! let workload = Workload::read_only(vec![SelectQuery::single_table(
//!     "orders",
//!     Some(Expr::col_cmp(1, CmpOp::Eq, Value::Int32(7))),
//!     vec![0],
//! )]);
//! let recommendation = Advisor::new(&db, AdvisorOptions::default()).recommend(&workload)?;
//! println!("{}", recommendation.report(&db));
//! db.apply_configuration(&recommendation.configuration)?;
//! # Ok::<(), hpd_common::HpdError>(())
//! ```

pub mod advisor;
pub mod candidates;
pub mod enumerate;
pub mod hypothetical;
pub mod merge;
pub mod partition_advisor;
pub mod size;
pub mod workload;

pub use advisor::{Advisor, AdvisorOptions, CsiColumnDetail, DesignMode, Recommendation};
pub use candidates::CandidateSet;
pub use hypothetical::hypothetical_meta;
pub use partition_advisor::{
    recommend_partition_designs, PartitionAdvisorOptions, PartitionChoice, PartitionRecommendation,
};
pub use size::{BlackBoxEstimator, CsiSizeEstimator, RunModelEstimator, SampleSet};
pub use workload::{Workload, WorkloadStatement};
