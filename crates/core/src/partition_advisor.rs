//! Partition-aware advising: recommend a *heterogeneous* per-partition
//! physical design for a partitioned table.
//!
//! The monolithic advisor ([`crate::advisor`]) picks one design per table.
//! For a partitioned table that is the wrong granularity: a hot partition
//! dominated by point reads wants a B+ tree, while cold history partitions
//! scanned by analytic aggregates want a columnstore — the paper's hybrid
//! thesis applied one level down. This module searches the per-partition
//! assignment space with the engine's partitioned what-if API
//! ([`hpd_engine::catalog::Database::what_if_partition_plan`]): every
//! candidate assignment is costed by the real optimizer over the real
//! scatter-gather access path, so partition pruning and lane costs are
//! reflected in the comparison.
//!
//! Search shape: candidate designs per partition are a small fixed menu
//! (columnstore primary, B+ tree primary, B+ tree primary plus one
//! single-column secondary per sargable workload column). The assignment is
//! chosen by coordinate descent seeded from the best *homogeneous*
//! assignment — lane costs are additive across partitions, so per-partition
//! moves converge quickly, and the homogeneous baseline is kept for the
//! report ("did splitting designs actually help?").

use hpd_engine::{Database, IndexDescriptor, IndexMeta, Statement, TableContext};

use hpd_common::{Expr, HpdError, Result};

use crate::hypothetical::hypothetical_meta;
use crate::size::{RunModelEstimator, SampleSet};
use crate::workload::Workload;

/// Knobs for the per-partition search.
#[derive(Debug, Clone)]
pub struct PartitionAdvisorOptions {
    /// Block-sample fraction for columnstore size estimation.
    pub sample_fraction: f64,
    pub seed: u64,
    /// Cap on distinct secondary-key columns considered (each adds one
    /// candidate design per partition).
    pub max_secondary_candidates: usize,
    /// Relative improvement a coordinate-descent move must achieve to be
    /// adopted (guards against float noise flapping the assignment).
    pub min_gain: f64,
}

impl Default for PartitionAdvisorOptions {
    fn default() -> PartitionAdvisorOptions {
        PartitionAdvisorOptions {
            sample_fraction: 0.1,
            seed: 42,
            max_secondary_candidates: 2,
            min_gain: 0.01,
        }
    }
}

/// The chosen design for one partition.
#[derive(Debug, Clone)]
pub struct PartitionChoice {
    pub part: usize,
    pub rows: usize,
    /// `indexes[0]` is the primary descriptor.
    pub indexes: Vec<IndexDescriptor>,
}

/// A per-partition design recommendation with its what-if cost against the
/// best homogeneous assignment and the currently materialized design.
#[derive(Debug, Clone)]
pub struct PartitionRecommendation {
    pub table: String,
    pub per_part: Vec<PartitionChoice>,
    /// Weighted workload cost of the recommended assignment (what-if).
    pub est_cost_us: f64,
    /// Weighted workload cost of the best single-design-everywhere
    /// assignment drawn from the same candidate menu.
    pub best_homogeneous_cost_us: f64,
    /// The design used by that best homogeneous assignment.
    pub best_homogeneous: Vec<IndexDescriptor>,
    /// Weighted workload cost of the materialized design as-is.
    pub current_cost_us: f64,
    /// True when the recommendation assigns at least two distinct designs.
    pub heterogeneous: bool,
}

impl PartitionRecommendation {
    /// Human-readable report for the CLI / logs.
    pub fn report(&self, db: &Database) -> String {
        let schema = db
            .with_table(&self.table, |t| t.schema().clone())
            .expect("recommended table exists");
        let mut out = format!("Partition design recommendation for `{}`:\n", self.table);
        for c in &self.per_part {
            let design: Vec<String> = c.indexes.iter().map(|d| d.display(&schema)).collect();
            out.push_str(&format!(
                "  p{} ({} rows): {}\n",
                c.part,
                c.rows,
                design.join(" + ")
            ));
        }
        out.push_str(&format!(
            "  est cost {:.1}us vs best homogeneous {:.1}us vs current {:.1}us ({})\n",
            self.est_cost_us,
            self.best_homogeneous_cost_us,
            self.current_cost_us,
            if self.heterogeneous {
                "heterogeneous"
            } else {
                "homogeneous"
            }
        ));
        out
    }
}

/// Recommend per-partition designs for `table` under `workload`.
///
/// Only `SELECT` statements contribute to the cost objective; DML routes to
/// exactly one partition and its maintenance cost is handled by the storage
/// charge of the monolithic advisor, not here.
pub fn recommend_partition_designs(
    db: &Database,
    table: &str,
    workload: &Workload,
    options: &PartitionAdvisorOptions,
) -> Result<PartitionRecommendation> {
    let ctx = db.context_for(table)?;
    if ctx.partitioning.is_none() || ctx.parts.len() < 2 {
        return Err(HpdError::InvalidQuery(format!(
            "table {table} is not partitioned; use the monolithic advisor"
        )));
    }
    let nparts = ctx.parts.len();
    let selects: Vec<(&hpd_engine::SelectQuery, f64)> = workload
        .statements
        .iter()
        .filter_map(|s| match &s.statement {
            Statement::Select(q) if q.tables.iter().any(|t| t.name == table) => Some((q, s.weight)),
            _ => None,
        })
        .collect();
    if selects.is_empty() {
        return Err(HpdError::InvalidQuery(format!(
            "workload has no SELECT statements touching {table}"
        )));
    }

    let candidates = candidate_designs(&ctx, &selects, options.max_secondary_candidates);
    let metas = candidate_metas(db, &ctx, &candidates, options)?;
    hpd_obs::global()
        .counter("advisor.partition.candidates")
        .add((candidates.len() * nparts) as u64);

    let eval = |assign: &[usize]| -> Result<f64> {
        let part_metas: Vec<Vec<IndexMeta>> = assign.iter().map(|&c| metas[c].clone()).collect();
        let mut total = 0.0;
        for (q, w) in &selects {
            // Per-part meta rows are scaled below; the optimizer scales lane
            // cardinalities from `PartInfo.rows`, which the engine supplies.
            let plan = db.what_if_partition_plan(q, table, &scale_metas(&ctx, &part_metas))?;
            total += plan.est_cost_us * w;
        }
        Ok(total)
    };

    // Best homogeneous assignment over the same candidate menu.
    let mut best_homo = (0usize, f64::INFINITY);
    for c in 0..candidates.len() {
        let cost = eval(&vec![c; nparts])?;
        if cost < best_homo.1 {
            best_homo = (c, cost);
        }
    }

    // Coordinate descent from the homogeneous optimum. Lane costs are
    // additive, so single-partition moves find the per-partition optimum;
    // a second pass catches interactions through shared plan shape.
    let mut assign = vec![best_homo.0; nparts];
    let mut cur = best_homo.1;
    for _pass in 0..2 {
        let mut improved = false;
        for p in 0..nparts {
            for c in 0..candidates.len() {
                if c == assign[p] {
                    continue;
                }
                let mut trial = assign.clone();
                trial[p] = c;
                let cost = eval(&trial)?;
                if cost < cur * (1.0 - options.min_gain) {
                    assign = trial;
                    cur = cost;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    let current_cost_us = {
        let mut total = 0.0;
        for (q, w) in &selects {
            total += db.plan(q)?.est_cost_us * w;
        }
        total
    };

    let per_part: Vec<PartitionChoice> = assign
        .iter()
        .enumerate()
        .map(|(p, &c)| PartitionChoice {
            part: p,
            rows: ctx.parts[p].rows,
            indexes: candidates[c].clone(),
        })
        .collect();
    let heterogeneous = assign.windows(2).any(|w| w[0] != w[1]);
    if heterogeneous {
        hpd_obs::global()
            .counter("advisor.partition.heterogeneous")
            .inc();
    }
    Ok(PartitionRecommendation {
        table: table.to_string(),
        per_part,
        est_cost_us: cur,
        best_homogeneous_cost_us: best_homo.1,
        best_homogeneous: candidates[best_homo.0].clone(),
        current_cost_us,
        heterogeneous,
    })
}

/// The candidate menu: columnstore, plain B+ tree, and B+ tree plus one
/// single-column secondary per sargable non-key workload column.
fn candidate_designs(
    ctx: &TableContext,
    selects: &[(&hpd_engine::SelectQuery, f64)],
    max_secondary: usize,
) -> Vec<Vec<IndexDescriptor>> {
    let pk = ctx.pk.clone();
    let mut designs = vec![
        vec![IndexDescriptor::PrimaryCsi],
        vec![IndexDescriptor::PrimaryBTree { keys: pk.clone() }],
    ];
    let part_col = ctx.partitioning.as_ref().map(|s| s.column);
    let mut secondary_cols: Vec<usize> = Vec::new();
    for (q, _) in selects {
        for t in &q.tables {
            if t.name != ctx.name {
                continue;
            }
            let Some(pred) = &t.predicate else { continue };
            for col in Expr::column_intervals(pred).keys() {
                // The pk prefix is already the clustered order; the partition
                // column is already handled by pruning.
                if pk.first() == Some(col) || part_col == Some(*col) {
                    continue;
                }
                if !secondary_cols.contains(col) {
                    secondary_cols.push(*col);
                }
            }
        }
    }
    secondary_cols.sort_unstable();
    secondary_cols.truncate(max_secondary);
    for c in secondary_cols {
        designs.push(vec![
            IndexDescriptor::PrimaryBTree { keys: pk.clone() },
            IndexDescriptor::SecondaryBTree {
                keys: vec![c],
                includes: vec![],
            },
        ]);
    }
    designs
}

/// Hypothetical metas for each candidate design, estimated from a block
/// sample of the whole table (per-partition row counts are applied by
/// [`scale_metas`] when an assignment is costed).
fn candidate_metas(
    db: &Database,
    ctx: &TableContext,
    candidates: &[Vec<IndexDescriptor>],
    options: &PartitionAdvisorOptions,
) -> Result<Vec<Vec<IndexMeta>>> {
    let rows = db.with_table(&ctx.name, |t| {
        t.scan_all_rows(db.pool(), &hpd_storage::IoTracker::new())
    })?;
    let sample = SampleSet::block_sample(&rows, options.sample_fraction, options.seed);
    let csi_config = db.config().csi;
    let estimator = RunModelEstimator;
    Ok(candidates
        .iter()
        .map(|design| {
            design
                .iter()
                .map(|d| hypothetical_meta(d, ctx, &sample, &estimator, &csi_config))
                .collect()
        })
        .collect())
}

/// Scale each partition's metas down to that partition's cardinality so the
/// optimizer's lane costing sees per-partition index sizes, not whole-table
/// ones.
fn scale_metas(ctx: &TableContext, part_metas: &[Vec<IndexMeta>]) -> Vec<Vec<IndexMeta>> {
    let total: usize = ctx.parts.iter().map(|p| p.rows).sum::<usize>().max(1);
    part_metas
        .iter()
        .zip(&ctx.parts)
        .map(|(metas, info)| {
            let frac = info.rows as f64 / total as f64;
            metas
                .iter()
                .map(|m| {
                    let mut s = m.clone();
                    s.rows = info.rows;
                    s.leaf_pages = ((m.leaf_pages as f64 * frac).ceil() as usize).max(1);
                    s.rowgroups = if m.rowgroups == 0 {
                        0
                    } else {
                        ((m.rowgroups as f64 * frac).ceil() as usize).max(1)
                    };
                    s.column_bytes = m
                        .column_bytes
                        .iter()
                        .map(|&(c, b)| (c, ((b as f64 * frac) as usize).max(1)))
                        .collect();
                    s
                })
                .collect()
        })
        .collect()
}
