//! Hypothetical index metadata — the advisor's side of the what-if API.
//!
//! Mirrors the paper's §4.2: the engine was extended so the optimizer can
//! (a) recognize metadata-only columnstores, and (b) accept *per-column
//! sizes* for them. Here we construct [`IndexMeta`] records for indexes that
//! do not exist, using the size estimators of [`crate::size`].

use hpd_columnstore::CsiConfig;
use hpd_engine::{IndexDescriptor, IndexMeta, TableContext};

use crate::size::{btree_size_estimate, CsiSizeEstimator, SampleSet};

/// Build the what-if metadata for `descriptor` on the table described by
/// `ctx`, using `sample` for columnstore size estimation.
pub fn hypothetical_meta(
    descriptor: &IndexDescriptor,
    ctx: &TableContext,
    sample: &SampleSet,
    estimator: &dyn CsiSizeEstimator,
    csi_config: &CsiConfig,
) -> IndexMeta {
    hpd_obs::global().counter("advisor.whatif.calls").inc();
    let rows = ctx.stats.rows;
    match descriptor {
        IndexDescriptor::PrimaryBTree { .. } => {
            let (leaf_pages, height) = btree_size_estimate(rows, ctx.schema.row_width() + 16);
            IndexMeta {
                descriptor: descriptor.clone(),
                rows,
                leaf_pages,
                height,
                column_bytes: vec![],
                column_encodings: vec![],
                rowgroups: 0,
                delta_rows: 0,
                delete_buffer_rows: 0,
                hypothetical: true,
            }
        }
        IndexDescriptor::SecondaryBTree { keys, includes } => {
            let mut stored: Vec<usize> = keys.clone();
            for &c in includes.iter().chain(&ctx.pk) {
                if !stored.contains(&c) {
                    stored.push(c);
                }
            }
            let entry_width: usize = stored
                .iter()
                .map(|&c| ctx.schema.column(c).dtype.fixed_width())
                .sum::<usize>()
                + keys.len() * 8;
            let (leaf_pages, height) = btree_size_estimate(rows, entry_width);
            IndexMeta {
                descriptor: descriptor.clone(),
                rows,
                leaf_pages,
                height,
                column_bytes: vec![],
                column_encodings: vec![],
                rowgroups: 0,
                delta_rows: 0,
                delete_buffer_rows: 0,
                hypothetical: true,
            }
        }
        IndexDescriptor::PrimaryCsi => {
            let bytes = estimator.estimate_column_bytes(&ctx.schema, sample, rows, csi_config);
            let encodings =
                estimator.estimate_column_encodings(&ctx.schema, sample, rows, csi_config);
            IndexMeta {
                descriptor: descriptor.clone(),
                rows,
                leaf_pages: 0,
                height: 0,
                column_bytes: bytes.into_iter().enumerate().collect(),
                column_encodings: encodings.into_iter().enumerate().collect(),
                rowgroups: rows.div_ceil(csi_config.rowgroup_capacity.max(1)),
                delta_rows: 0,
                delete_buffer_rows: 0,
                hypothetical: true,
            }
        }
        IndexDescriptor::SecondaryCsi { columns } => {
            // Build a projected schema + sample for the stored columns
            // (always including the primary key, as the engine does).
            let mut stored = columns.clone();
            for &k in &ctx.pk {
                if !stored.contains(&k) {
                    stored.push(k);
                }
            }
            let proj_schema = ctx.schema.project(&stored);
            let proj_sample = SampleSet {
                rows: sample.rows.iter().map(|r| r.project(&stored)).collect(),
                fraction: sample.fraction,
            };
            let proj_bytes =
                estimator.estimate_column_bytes(&proj_schema, &proj_sample, rows, csi_config);
            let proj_encodings =
                estimator.estimate_column_encodings(&proj_schema, &proj_sample, rows, csi_config);
            IndexMeta {
                descriptor: IndexDescriptor::SecondaryCsi {
                    columns: stored.clone(),
                },
                rows,
                leaf_pages: 0,
                height: 0,
                column_bytes: stored.iter().copied().zip(proj_bytes).collect(),
                column_encodings: stored.iter().copied().zip(proj_encodings).collect(),
                rowgroups: rows.div_ceil(csi_config.rowgroup_capacity.max(1)),
                delta_rows: 0,
                delete_buffer_rows: 0,
                hypothetical: true,
            }
        }
    }
}

/// Hypothetical-size sanity helper used by reports: total bytes of a meta.
pub fn meta_size_bytes(meta: &IndexMeta) -> usize {
    meta.size_bytes()
}

/// Build a projected sample once per table (avoids repeated cloning).
pub fn table_sample(
    ctx: &TableContext,
    rows: &[hpd_common::Row],
    fraction: f64,
    seed: u64,
) -> SampleSet {
    let _ = ctx;
    SampleSet::block_sample(rows, fraction, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::RunModelEstimator;
    use hpd_common::{DataType, Row, Schema, Value};
    use hpd_engine::TableStats;

    fn ctx(rows: Vec<Row>) -> (TableContext, Vec<Row>) {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int32),
            ("grp", DataType::Int32),
            ("val", DataType::Int32),
        ]);
        let stats = TableStats::analyze(&rows, 3, 4096);
        (
            TableContext {
                name: "t".into(),
                schema,
                pk: vec![0],
                stats,
                metas: vec![],
                partitioning: None,
                parts: vec![],
            },
            rows,
        )
    }

    fn rows(n: i32) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Int32(i),
                    Value::Int32(i % 5),
                    Value::Int32(i * 7),
                ])
            })
            .collect()
    }

    #[test]
    fn secondary_btree_meta_sized_by_stored_width() {
        let (ctx, data) = ctx(rows(10_000));
        let sample = SampleSet::full(&data);
        let narrow = hypothetical_meta(
            &IndexDescriptor::SecondaryBTree {
                keys: vec![1],
                includes: vec![],
            },
            &ctx,
            &sample,
            &RunModelEstimator,
            &CsiConfig::default(),
        );
        let wide = hypothetical_meta(
            &IndexDescriptor::SecondaryBTree {
                keys: vec![1],
                includes: vec![2],
            },
            &ctx,
            &sample,
            &RunModelEstimator,
            &CsiConfig::default(),
        );
        assert!(narrow.leaf_pages < wide.leaf_pages);
        assert!(narrow.hypothetical);
        assert_eq!(narrow.rows, 10_000);
    }

    #[test]
    fn secondary_csi_meta_includes_pk_and_maps_ordinals() {
        let (ctx, data) = ctx(rows(5_000));
        let sample = SampleSet::full(&data);
        let meta = hypothetical_meta(
            &IndexDescriptor::SecondaryCsi {
                columns: vec![1, 2],
            },
            &ctx,
            &sample,
            &RunModelEstimator,
            &CsiConfig::default(),
        );
        let cols: Vec<usize> = meta.column_bytes.iter().map(|&(c, _)| c).collect();
        assert!(cols.contains(&0), "pk appended: {cols:?}");
        assert!(cols.contains(&1) && cols.contains(&2));
        assert!(meta.size_bytes() > 0);
        assert!(meta.rowgroups >= 1);
        // Covers exactly the stored columns.
        assert!(meta.covers(&[0, 1, 2], 3, &[0]));
    }

    #[test]
    fn primary_csi_meta_covers_everything() {
        let (ctx, data) = ctx(rows(2_000));
        let sample = SampleSet::full(&data);
        let meta = hypothetical_meta(
            &IndexDescriptor::PrimaryCsi,
            &ctx,
            &sample,
            &RunModelEstimator,
            &CsiConfig::default(),
        );
        assert_eq!(meta.column_bytes.len(), 3);
        assert!(meta.covers(&[0, 1, 2], 3, &[0]));
    }
}
