//! The advisor facade: analyze a workload, recommend a physical design.

use std::collections::HashMap;

use hpd_common::Result;
use hpd_engine::{
    cost::CostModel, Configuration, Database, IndexDescriptor, TableContext, TableDesign,
};

use crate::candidates::{generate_candidates, prune_candidates};
use crate::enumerate::{greedy_search, statement_cost, Chosen};
use crate::hypothetical::hypothetical_meta;
use crate::merge::merge_candidates;
use crate::size::{BlackBoxEstimator, CsiSizeEstimator, RunModelEstimator, SampleSet};
use crate::workload::Workload;

/// Which parts of the design space the advisor may use — the three
/// alternatives compared throughout the paper's §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignMode {
    /// B+ tree and columnstore indexes (the paper's extended DTA).
    Hybrid,
    /// B+ tree indexes only (classic DTA).
    BTreeOnly,
    /// Columnstore candidates only.
    CsiOnly,
}

impl DesignMode {
    pub fn allows_btree(self) -> bool {
        !matches!(self, DesignMode::CsiOnly)
    }

    pub fn allows_csi(self) -> bool {
        !matches!(self, DesignMode::BTreeOnly)
    }
}

/// Which size estimator to use for hypothetical columnstores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    BlackBox,
    RunModel,
}

/// Advisor knobs.
#[derive(Debug, Clone)]
pub struct AdvisorOptions {
    pub mode: DesignMode,
    /// Storage cap for new indexes (None = unconstrained).
    pub storage_budget_bytes: Option<usize>,
    /// Block-sampling fraction for size estimation.
    pub sample_fraction: f64,
    pub estimator: EstimatorKind,
    pub seed: u64,
}

impl Default for AdvisorOptions {
    fn default() -> AdvisorOptions {
        AdvisorOptions {
            mode: DesignMode::Hybrid,
            storage_budget_bytes: None,
            sample_fraction: 0.1,
            estimator: EstimatorKind::RunModel,
            seed: 0x5EED,
        }
    }
}

/// Predicted physical shape of one stored column of a recommended
/// columnstore: the encoding the engine is expected to pick, its estimated
/// compressed size, and the relative CPU factor the cost model charges for
/// scanning it (bit-packed = 1.0).
#[derive(Debug, Clone)]
pub struct CsiColumnDetail {
    pub table: String,
    pub column: String,
    pub encoding: hpd_columnstore::IntEncoding,
    pub est_bytes: usize,
    pub cpu_factor: f64,
}

/// A recommended physical design with its estimated impact.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// Full per-table designs (existing primary + recommended secondaries).
    pub configuration: Configuration,
    pub est_cost_before_us: f64,
    pub est_cost_after_us: f64,
    /// Per-statement `(label, cost before, cost after)`.
    pub per_statement: Vec<(String, f64, f64)>,
    pub new_index_bytes: usize,
    /// Per-column encoding expectations for every recommended columnstore
    /// (empty when no CSI was recommended).
    pub csi_encoding_details: Vec<CsiColumnDetail>,
}

impl Recommendation {
    pub fn speedup(&self) -> f64 {
        if self.est_cost_after_us <= 0.0 {
            return 1.0;
        }
        self.est_cost_before_us / self.est_cost_after_us
    }

    /// Human-readable report.
    pub fn report(&self, db: &Database) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Estimated workload cost: {:.0}us -> {:.0}us ({:.1}x)",
            self.est_cost_before_us,
            self.est_cost_after_us,
            self.speedup()
        );
        let _ = writeln!(out, "New index bytes: {}", self.new_index_bytes);
        for design in &self.configuration.tables {
            if design.indexes.len() <= 1 {
                continue;
            }
            let schema = db.with_table(&design.table, |t| t.schema().clone()).ok();
            let _ = writeln!(out, "table {}:", design.table);
            for d in &design.indexes[1..] {
                match &schema {
                    Some(s) => {
                        let _ = writeln!(out, "  CREATE {}", d.display(s));
                    }
                    None => {
                        let _ = writeln!(out, "  CREATE {d:?}");
                    }
                }
            }
            for det in self
                .csi_encoding_details
                .iter()
                .filter(|d| d.table == design.table)
            {
                let _ = writeln!(
                    out,
                    "    {}: {} ~{} B, scan cpu x{:.2}",
                    det.column,
                    det.encoding.name(),
                    det.est_bytes,
                    det.cpu_factor
                );
            }
        }
        out
    }
}

/// The tuning advisor (DTA stand-in).
pub struct Advisor<'db> {
    db: &'db Database,
    options: AdvisorOptions,
}

impl<'db> Advisor<'db> {
    pub fn new(db: &'db Database, options: AdvisorOptions) -> Advisor<'db> {
        Advisor { db, options }
    }

    fn estimator(&self) -> Box<dyn CsiSizeEstimator> {
        match self.options.estimator {
            EstimatorKind::BlackBox => Box::new(BlackBoxEstimator),
            EstimatorKind::RunModel => Box::new(RunModelEstimator),
        }
    }

    /// Analyze the workload and recommend a configuration.
    pub fn recommend(&self, workload: &Workload) -> Result<Recommendation> {
        let estimator = self.estimator();
        let csi_config = self.db.config().csi;
        let cost = CostModel::new(
            self.db.config().device,
            self.db.config().max_dop,
            self.db.config().grant_bytes,
        );

        // Contexts and block samples per referenced table.
        let mut contexts: HashMap<String, TableContext> = HashMap::new();
        let mut samples: HashMap<String, SampleSet> = HashMap::new();
        for name in workload.referenced_tables() {
            let ctx = self.db.context_for(&name)?;
            let rows = self.db.with_table(&name, |t| {
                t.scan_all_rows(self.db.pool(), &hpd_storage::IoTracker::new())
            })?;
            samples.insert(
                name.clone(),
                SampleSet::block_sample(&rows, self.options.sample_fraction, self.options.seed),
            );
            contexts.insert(name, ctx);
        }

        // Candidate selection → what-if pruning → merging.
        let raw = generate_candidates(workload, &contexts, self.options.mode);
        let pruned = prune_candidates(
            self.db,
            workload,
            &contexts,
            &raw,
            &samples,
            estimator.as_ref(),
            &csi_config,
        )?;
        let pool = merge_candidates(&pruned);

        // Greedy enumeration.
        let result = greedy_search(
            self.db,
            workload,
            &contexts,
            &pool,
            &samples,
            estimator.as_ref(),
            &csi_config,
            &cost,
            self.options.storage_budget_bytes,
        )?;

        // Per-statement before/after costs.
        let empty: Chosen = HashMap::new();
        let mut per_statement = Vec::with_capacity(workload.len());
        for ws in &workload.statements {
            let before = statement_cost(
                self.db,
                &ws.statement,
                &contexts,
                &empty,
                &samples,
                estimator.as_ref(),
                &csi_config,
                &cost,
            )?;
            let after = statement_cost(
                self.db,
                &ws.statement,
                &contexts,
                &result.chosen,
                &samples,
                estimator.as_ref(),
                &csi_config,
                &cost,
            )?;
            per_statement.push((ws.label.clone(), before, after));
        }

        // Assemble the configuration: existing primary + chosen secondaries.
        let mut tables = Vec::new();
        for name in workload.referenced_tables() {
            let primary = contexts[&name]
                .metas
                .first()
                .map(|m| m.descriptor.clone())
                .unwrap_or(IndexDescriptor::PrimaryBTree {
                    keys: contexts[&name].pk.clone(),
                });
            let mut indexes = vec![primary];
            if let Some(list) = result.chosen.get(&name) {
                indexes.extend(list.iter().cloned());
            }
            tables.push(TableDesign::new(name, indexes));
        }
        let configuration = Configuration { tables };
        configuration.validate()?;

        // Per-column encoding expectations for every recommended CSI: the
        // estimator's predicted encoding + size, and the cost model's CPU
        // factor for scanning segments in that encoding.
        let mut csi_encoding_details = Vec::new();
        for (table, descriptors) in &result.chosen {
            let ctx = &contexts[table];
            let sample = &samples[table];
            for d in descriptors.iter().filter(|d| d.is_csi()) {
                let meta = hypothetical_meta(d, ctx, sample, estimator.as_ref(), &csi_config);
                for &(c, bytes) in &meta.column_bytes {
                    let encoding = meta
                        .column_encodings
                        .iter()
                        .find(|&&(ec, _)| ec == c)
                        .map_or(hpd_columnstore::IntEncoding::BitPacked, |&(_, e)| e);
                    csi_encoding_details.push(CsiColumnDetail {
                        table: table.clone(),
                        column: ctx.schema.column(c).name.clone(),
                        encoding,
                        est_bytes: bytes,
                        cpu_factor: hpd_engine::cost::encoding_cpu_factor(encoding),
                    });
                }
            }
        }

        Ok(Recommendation {
            configuration,
            est_cost_before_us: result.initial_cost_us,
            est_cost_after_us: result.final_cost_us,
            per_statement,
            new_index_bytes: result.new_index_bytes,
            csi_encoding_details,
        })
    }
}

/// The paper's non-advisor baseline: "a secondary (non-clustered)
/// columnstore is built on all tables in the database" — plus the existing
/// primaries.
pub fn csi_everywhere_configuration(db: &Database, tables: &[String]) -> Result<Configuration> {
    let mut designs = Vec::new();
    for name in tables {
        let (primary, eligible) = db.with_table(name, |t| {
            let primary = t.metas()[0].descriptor.clone();
            let eligible: Vec<usize> = (0..t.schema().len())
                .filter(|&c| t.schema().column(c).csi_eligible)
                .collect();
            (primary, eligible)
        })?;
        let mut indexes = vec![primary.clone()];
        if !primary.is_csi() && !eligible.is_empty() {
            indexes.push(IndexDescriptor::SecondaryCsi { columns: eligible });
        }
        designs.push(TableDesign::new(name.clone(), indexes));
    }
    Ok(Configuration { tables: designs })
}
