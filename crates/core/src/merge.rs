//! Index merging (paper §4.3 / Chaudhuri & Narasayya's "Index Merging").
//!
//! Two B+ tree candidates on the same table merge when one's key list is a
//! prefix of the other's: the merged index keeps the longer key list and the
//! union of included columns, serving both source queries at slightly higher
//! width. "Since columnstore and B+ tree cannot be merged, and we are
//! considering one columnstore with all allowed columns, when merging two
//! indexes, if at least one of the indexes is a columnstore, then the
//! candidates are not merged."

use hpd_engine::IndexDescriptor;

use crate::candidates::CandidateSet;

/// Try to merge two descriptors. Returns the merged descriptor, or `None`
/// if they cannot merge.
pub fn merge_pair(a: &IndexDescriptor, b: &IndexDescriptor) -> Option<IndexDescriptor> {
    let (
        IndexDescriptor::SecondaryBTree {
            keys: k1,
            includes: i1,
        },
        IndexDescriptor::SecondaryBTree {
            keys: k2,
            includes: i2,
        },
    ) = (a, b)
    else {
        return None; // at least one is a columnstore (or a primary)
    };
    let (long, short) = if k1.len() >= k2.len() {
        (k1, k2)
    } else {
        (k2, k1)
    };
    if !long.starts_with(short) {
        return None;
    }
    let mut includes: Vec<usize> = i1.iter().chain(i2).chain(k1).chain(k2).copied().collect();
    includes.sort_unstable();
    includes.dedup();
    includes.retain(|c| !long.contains(c));
    Some(IndexDescriptor::SecondaryBTree {
        keys: long.clone(),
        includes,
    })
}

/// One merging pass: add every pairwise merge to the pool (originals are
/// kept; enumeration decides which survive).
pub fn merge_candidates(set: &CandidateSet) -> CandidateSet {
    let mut out = set.clone();
    for (table, cands) in &set.per_table {
        for i in 0..cands.len() {
            for j in (i + 1)..cands.len() {
                if let Some(m) = merge_pair(&cands[i], &cands[j]) {
                    out.add(table, m);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bt(keys: Vec<usize>, includes: Vec<usize>) -> IndexDescriptor {
        IndexDescriptor::SecondaryBTree { keys, includes }
    }

    #[test]
    fn prefix_keys_merge_with_union_includes() {
        let m = merge_pair(&bt(vec![1], vec![3]), &bt(vec![1, 2], vec![4])).unwrap();
        assert_eq!(
            m,
            bt(vec![1, 2], vec![3, 4]),
            "longer key list wins, includes unioned"
        );
    }

    #[test]
    fn identical_keys_merge() {
        let m = merge_pair(&bt(vec![2], vec![0]), &bt(vec![2], vec![5])).unwrap();
        assert_eq!(m, bt(vec![2], vec![0, 5]));
    }

    #[test]
    fn non_prefix_keys_do_not_merge() {
        assert!(merge_pair(&bt(vec![1, 2], vec![]), &bt(vec![2, 1], vec![])).is_none());
        assert!(merge_pair(&bt(vec![1], vec![]), &bt(vec![2], vec![])).is_none());
    }

    #[test]
    fn columnstores_never_merge() {
        let csi = IndexDescriptor::SecondaryCsi {
            columns: vec![0, 1],
        };
        assert!(merge_pair(&csi, &bt(vec![1], vec![])).is_none());
        assert!(merge_pair(&bt(vec![1], vec![]), &csi).is_none());
        assert!(merge_pair(&csi, &csi).is_none());
    }

    #[test]
    fn merge_pass_adds_merged_candidates() {
        let mut set = CandidateSet::default();
        set.add("t", bt(vec![1], vec![3]));
        set.add("t", bt(vec![1, 2], vec![]));
        let merged = merge_candidates(&set);
        assert_eq!(merged.per_table["t"].len(), 3);
        assert!(merged.per_table["t"].contains(&bt(vec![1, 2], vec![3])));
    }

    #[test]
    fn keys_absorbed_into_merged_key_list_leave_includes() {
        // Merging ([1],[2]) with ([1,2],[]) — column 2 is in the long key
        // list, so it must not re-appear as an include.
        let m = merge_pair(&bt(vec![1], vec![2]), &bt(vec![1, 2], vec![])).unwrap();
        assert_eq!(m, bt(vec![1, 2], vec![]));
    }
}
