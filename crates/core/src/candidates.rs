//! Candidate selection: per-query syntactic candidates, pruned through the
//! what-if API (paper §4.3, "Candidate Selection").

use std::collections::HashMap;

use hpd_columnstore::CsiConfig;
use hpd_common::{Expr, Result};
use hpd_engine::{Database, IndexDescriptor, IndexMeta, SelectQuery, Statement, TableContext};

use crate::advisor::DesignMode;
use crate::hypothetical::hypothetical_meta;
use crate::size::{CsiSizeEstimator, SampleSet};
use crate::workload::Workload;

/// Per-table candidate pool.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    /// table name → candidate descriptors (secondary indexes only).
    pub per_table: HashMap<String, Vec<IndexDescriptor>>,
}

impl CandidateSet {
    pub fn add(&mut self, table: &str, d: IndexDescriptor) {
        let list = self.per_table.entry(table.to_string()).or_default();
        if !list.contains(&d) {
            list.push(d);
        }
    }

    pub fn total(&self) -> usize {
        self.per_table.values().map(Vec::len).sum()
    }
}

/// Generate syntactic candidates for one SELECT: equality/range prefixes,
/// group-by / order-by keys, join keys — plus the per-table columnstore
/// candidate over all CSI-eligible columns (the paper's option (ii)).
pub fn select_candidates(
    query: &SelectQuery,
    contexts: &HashMap<String, TableContext>,
    mode: DesignMode,
    out: &mut CandidateSet,
) {
    for (ti, tref) in query.tables.iter().enumerate() {
        let Some(ctx) = contexts.get(&tref.name) else {
            continue;
        };
        let referenced = query.referenced_columns(ti);

        if mode.allows_btree() {
            let intervals = tref
                .predicate
                .as_ref()
                .map(Expr::column_intervals)
                .unwrap_or_default();
            let mut eq_cols: Vec<usize> = Vec::new();
            let mut range_cols: Vec<usize> = Vec::new();
            for (&c, iv) in &intervals {
                use hpd_common::interval::Bound;
                let is_point = matches!(
                    (&iv.lo, &iv.hi),
                    (Bound::Inclusive(a), Bound::Inclusive(b)) if a == b
                );
                if is_point {
                    eq_cols.push(c);
                } else {
                    range_cols.push(c);
                }
            }
            eq_cols.sort_unstable();
            range_cols.sort_unstable();

            let mk = |keys: Vec<usize>| -> Option<IndexDescriptor> {
                if keys.is_empty() {
                    return None;
                }
                let includes: Vec<usize> = referenced
                    .iter()
                    .copied()
                    .filter(|c| !keys.contains(c) && !ctx.pk.contains(c))
                    .collect();
                Some(IndexDescriptor::SecondaryBTree { keys, includes })
            };

            // Predicate-prefix candidates.
            if range_cols.is_empty() {
                if let Some(d) = mk(eq_cols.clone()) {
                    out.add(&tref.name, d);
                }
            }
            for &r in &range_cols {
                let mut keys = eq_cols.clone();
                keys.push(r);
                if let Some(d) = mk(keys) {
                    out.add(&tref.name, d);
                }
            }
            // Group-by keys on this table.
            let group_cols: Vec<usize> = query
                .group_by
                .iter()
                .filter(|g| g.table == ti)
                .map(|g| g.column)
                .collect();
            if let Some(d) = mk(group_cols) {
                out.add(&tref.name, d);
            }
            // Order-by keys (non-aggregate queries, ascending prefix).
            if !query.is_aggregate() {
                let order_cols: Vec<usize> = query
                    .order_by
                    .iter()
                    .take_while(|&&(_, asc)| asc)
                    .filter_map(|&(pos, _)| {
                        query
                            .select
                            .get(pos)
                            .filter(|c| c.table == ti)
                            .map(|c| c.column)
                    })
                    .collect();
                if let Some(d) = mk(order_cols) {
                    out.add(&tref.name, d);
                }
            }
            // Join keys.
            for j in &query.joins {
                for col in [j.left, j.right] {
                    if col.table == ti {
                        let mut keys = vec![col.column];
                        keys.extend(eq_cols.iter().copied().filter(|c| *c != col.column));
                        if let Some(d) = mk(keys) {
                            out.add(&tref.name, d);
                        }
                    }
                }
            }
        }

        if mode.allows_csi() {
            // One columnstore per table, over every CSI-eligible column.
            let eligible: Vec<usize> = (0..ctx.schema.len())
                .filter(|&c| ctx.schema.column(c).csi_eligible)
                .collect();
            if !eligible.is_empty() {
                out.add(
                    &tref.name,
                    IndexDescriptor::SecondaryCsi { columns: eligible },
                );
            }
        }
    }
}

/// Candidates for write statements: B+ trees that locate the target rows.
pub fn write_candidates(
    table: &str,
    predicate: &Expr,
    contexts: &HashMap<String, TableContext>,
    mode: DesignMode,
    out: &mut CandidateSet,
) {
    if !mode.allows_btree() {
        return;
    }
    if !contexts.contains_key(table) {
        return;
    }
    let intervals = predicate.column_intervals();
    let mut cols: Vec<usize> = intervals.keys().copied().collect();
    cols.sort_unstable();
    if !cols.is_empty() {
        out.add(
            table,
            IndexDescriptor::SecondaryBTree {
                keys: cols,
                includes: vec![],
            },
        );
    }
}

/// Generate the full candidate pool for a workload.
pub fn generate_candidates(
    workload: &Workload,
    contexts: &HashMap<String, TableContext>,
    mode: DesignMode,
) -> CandidateSet {
    let mut out = CandidateSet::default();
    for ws in &workload.statements {
        match &ws.statement {
            Statement::Select(q) => select_candidates(q, contexts, mode, &mut out),
            Statement::Update(u) => {
                write_candidates(&u.table, &u.predicate, contexts, mode, &mut out)
            }
            Statement::Delete(d) => {
                write_candidates(&d.table, &d.predicate, contexts, mode, &mut out)
            }
            Statement::Insert(_) => {}
        }
    }
    out
}

/// What-if pruning: keep only candidates some query's chosen plan actually
/// references (paper: "determine which subset of indexes are referenced by
/// the optimizer").
pub fn prune_candidates(
    db: &Database,
    workload: &Workload,
    contexts: &HashMap<String, TableContext>,
    candidates: &CandidateSet,
    samples: &HashMap<String, SampleSet>,
    estimator: &dyn CsiSizeEstimator,
    csi_config: &CsiConfig,
) -> Result<CandidateSet> {
    let mut used = CandidateSet::default();
    for ws in &workload.statements {
        let query = match &ws.statement {
            Statement::Select(q) => q.clone(),
            Statement::Update(u) => locate_query(&u.table, &u.predicate, contexts),
            Statement::Delete(d) => locate_query(&d.table, &d.predicate, contexts),
            Statement::Insert(_) => continue,
        };
        // Per-table meta lists: existing primary + every candidate.
        let mut overrides: HashMap<String, Vec<IndexMeta>> = HashMap::new();
        let mut cand_offset: HashMap<String, usize> = HashMap::new();
        for t in &query.tables {
            let Some(ctx) = contexts.get(&t.name) else {
                continue;
            };
            let mut metas: Vec<IndexMeta> = ctx.metas.first().cloned().into_iter().collect();
            cand_offset.insert(t.name.clone(), metas.len());
            if let Some(cands) = candidates.per_table.get(&t.name) {
                let sample = samples.get(&t.name).cloned().unwrap_or(SampleSet {
                    rows: Vec::new(),
                    fraction: 1.0,
                });
                for c in cands {
                    metas.push(hypothetical_meta(c, ctx, &sample, estimator, csi_config));
                }
            }
            overrides.insert(t.name.clone(), metas);
        }
        let plan = db.what_if_plan(&query, &overrides)?;
        for (ti, idx) in plan.index_refs() {
            let name = &query.tables[ti].name;
            let Some(&offset) = cand_offset.get(name) else {
                continue;
            };
            if idx.0 >= offset {
                if let Some(cands) = candidates.per_table.get(name) {
                    if let Some(c) = cands.get(idx.0 - offset) {
                        used.add(name, c.clone());
                    }
                }
            }
        }
    }
    Ok(used)
}

/// The select used to cost the locate phase of an update/delete.
pub fn locate_query(
    table: &str,
    predicate: &Expr,
    contexts: &HashMap<String, TableContext>,
) -> SelectQuery {
    let arity = contexts.get(table).map(|c| c.schema.len()).unwrap_or(1);
    SelectQuery::single_table(table, Some(predicate.clone()), (0..arity).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpd_common::{CmpOp, DataType, Schema, Value};
    use hpd_engine::{AggItem, ColRef, TableInput, TableStats};

    fn ctxs() -> HashMap<String, TableContext> {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int32),
            ("grp", DataType::Int32),
            ("val", DataType::Int32),
        ]);
        HashMap::from([(
            "t".to_string(),
            TableContext {
                name: "t".into(),
                schema,
                pk: vec![0],
                stats: TableStats::empty(3),
                metas: vec![],
                partitioning: None,
                parts: vec![],
            },
        )])
    }

    #[test]
    fn predicate_and_group_candidates() {
        let q = SelectQuery {
            tables: vec![TableInput::with_predicate(
                "t",
                Expr::And(vec![
                    Expr::col_cmp(1, CmpOp::Eq, Value::Int32(5)),
                    Expr::col_cmp(2, CmpOp::Lt, Value::Int32(100)),
                ]),
            )],
            group_by: vec![ColRef::new(0, 1)],
            aggregates: vec![AggItem::column(
                hpd_common::AggFunc::Count,
                ColRef::new(0, 0),
            )],
            ..Default::default()
        };
        let mut set = CandidateSet::default();
        select_candidates(&q, &ctxs(), DesignMode::Hybrid, &mut set);
        let cands = &set.per_table["t"];
        // Expect: eq+range btree (keys [1,2]), group-by btree (keys [1]),
        // and the CSI candidate.
        assert!(cands.iter().any(|d| matches!(
            d,
            IndexDescriptor::SecondaryBTree { keys, .. } if keys == &vec![1, 2]
        )));
        assert!(cands.iter().any(|d| matches!(
            d,
            IndexDescriptor::SecondaryBTree { keys, .. } if keys == &vec![1]
        )));
        assert!(cands.iter().any(|d| d.is_csi()));
    }

    #[test]
    fn modes_filter_candidate_kinds() {
        let q = SelectQuery::single_table(
            "t",
            Some(Expr::col_cmp(2, CmpOp::Lt, Value::Int32(5))),
            vec![0],
        );
        let mut btree_only = CandidateSet::default();
        select_candidates(&q, &ctxs(), DesignMode::BTreeOnly, &mut btree_only);
        assert!(btree_only.per_table["t"].iter().all(|d| !d.is_csi()));

        let mut csi_only = CandidateSet::default();
        select_candidates(&q, &ctxs(), DesignMode::CsiOnly, &mut csi_only);
        assert!(csi_only.per_table["t"].iter().all(|d| d.is_csi()));
    }

    #[test]
    fn csi_candidate_skips_ineligible_columns() {
        let mut contexts = ctxs();
        let schema = Schema::new(vec![
            hpd_common::ColumnDef::new("id", DataType::Int32),
            hpd_common::ColumnDef::new("blob", DataType::Utf8).csi_ineligible(),
        ]);
        contexts.insert(
            "u".into(),
            TableContext {
                name: "u".into(),
                schema,
                pk: vec![0],
                stats: TableStats::empty(2),
                metas: vec![],
                partitioning: None,
                parts: vec![],
            },
        );
        let q = SelectQuery::single_table("u", None, vec![0, 1]);
        let mut set = CandidateSet::default();
        select_candidates(&q, &contexts, DesignMode::Hybrid, &mut set);
        let csi = set.per_table["u"]
            .iter()
            .find(|d| d.is_csi())
            .expect("csi candidate");
        assert!(matches!(
            csi,
            IndexDescriptor::SecondaryCsi { columns } if columns == &vec![0]
        ));
    }

    #[test]
    fn candidate_dedup() {
        let mut set = CandidateSet::default();
        let d = IndexDescriptor::SecondaryBTree {
            keys: vec![1],
            includes: vec![],
        };
        set.add("t", d.clone());
        set.add("t", d);
        assert_eq!(set.total(), 1);
    }
}
