//! Partition-aware advisor tests: a hot/cold drift workload over a
//! range-partitioned table must yield a *heterogeneous* recommendation
//! (B+ tree on the hot partition, columnstore on cold history) whose
//! what-if cost beats the best homogeneous assignment.

use hpd_advisor::{
    recommend_partition_designs, PartitionAdvisorOptions, Workload, WorkloadStatement,
};
use hpd_common::{AggFunc, CmpOp, DataType, Expr, Row, Schema, Value};
use hpd_engine::{
    AggItem, ColRef, Database, DbConfig, IndexDescriptor, PartitionSpec, SelectQuery, Statement,
    TableInput,
};

fn schema() -> Schema {
    Schema::from_pairs(&[
        ("id", DataType::Int32),
        ("dev", DataType::Int32),
        ("val", DataType::Int64),
    ])
}

/// events partitioned on id into 4 ranges; p3 = the small hot recent range
/// (the newest 5% of rows), the shape time-partitioned tables converge to.
fn partitioned_db(n: i32) -> Database {
    let mut cfg = DbConfig::default();
    cfg.csi.rowgroup_capacity = 1024;
    let db = Database::new(cfg);
    let q = n / 4;
    let hot_lo = n - n / 20;
    let spec = PartitionSpec::range(
        0,
        vec![Value::Int32(q), Value::Int32(2 * q), Value::Int32(hot_lo)],
    )
    .unwrap();
    db.create_partitioned_table(
        "events",
        schema(),
        vec![0],
        IndexDescriptor::PrimaryCsi,
        spec,
    )
    .unwrap();
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Int32(i),
                Value::Int32(i % 50),
                Value::Int64(i as i64 * 3),
            ])
        })
        .collect();
    db.load_table("events", rows).unwrap();
    db
}

fn hot_point(id: i32) -> SelectQuery {
    SelectQuery::single_table(
        "events",
        Some(Expr::col_cmp(0, CmpOp::Eq, Value::Int32(id))),
        vec![0, 1, 2],
    )
}

/// Analytic scan over cold history only — its range predicate prunes the
/// hot partition, so the hot design choice doesn't tax it.
fn cold_aggregate(hot_lo: i32) -> SelectQuery {
    SelectQuery {
        tables: vec![TableInput {
            name: "events".into(),
            predicate: Some(Expr::col_cmp(0, CmpOp::Lt, Value::Int32(hot_lo))),
        }],
        group_by: vec![ColRef::new(0, 1)],
        aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(0, 2))],
        ..Default::default()
    }
}

/// Hot/cold drift: heavy point reads land in the newest partition while the
/// history partitions only see analytic range scans.
fn drift_workload(n: i32) -> Workload {
    let mut statements: Vec<WorkloadStatement> = (0..8)
        .map(|k| WorkloadStatement {
            statement: Statement::Select(hot_point(n - 1 - k * 7)),
            weight: 60.0,
            label: format!("hot-point-{k}"),
        })
        .collect();
    statements.push(WorkloadStatement {
        statement: Statement::Select(cold_aggregate(n - n / 20)),
        weight: 5.0,
        label: "cold-aggregate".into(),
    });
    Workload::new(statements)
}

#[test]
fn drift_workload_gets_heterogeneous_recommendation() {
    let n = 20_000;
    let db = partitioned_db(n);
    let rec = recommend_partition_designs(
        &db,
        "events",
        &drift_workload(n),
        &PartitionAdvisorOptions::default(),
    )
    .unwrap();

    assert!(
        rec.heterogeneous,
        "hot/cold drift should split designs: {:?}",
        rec.per_part
    );
    assert!(
        rec.est_cost_us < rec.best_homogeneous_cost_us,
        "heterogeneous what-if cost {:.1} must beat best homogeneous {:.1}",
        rec.est_cost_us,
        rec.best_homogeneous_cost_us
    );
    // The hot partition takes the B+ tree; at least one cold partition keeps
    // the columnstore.
    let hot = &rec.per_part[3];
    assert!(
        matches!(hot.indexes[0], IndexDescriptor::PrimaryBTree { .. }),
        "hot partition should get a B+ tree, got {:?}",
        hot.indexes
    );
    assert!(
        rec.per_part[..3]
            .iter()
            .any(|c| matches!(c.indexes[0], IndexDescriptor::PrimaryCsi)),
        "cold partitions should keep columnstore: {:?}",
        rec.per_part
    );
    let report = rec.report(&db);
    assert!(report.contains("events") && report.contains("heterogeneous"));
}

#[test]
fn recommendation_is_applicable_and_correct() {
    let n = 20_000;
    let db = partitioned_db(n);
    let workload = drift_workload(n);
    let before: Vec<_> = workload
        .statements
        .iter()
        .map(|s| {
            let mut rows = db.query(&s.statement).run().unwrap().rows;
            rows.sort_by_key(|r| format!("{r:?}"));
            rows
        })
        .collect();
    let rec = recommend_partition_designs(
        &db,
        "events",
        &workload,
        &PartitionAdvisorOptions::default(),
    )
    .unwrap();
    for choice in &rec.per_part {
        let primary = choice.indexes[0].clone();
        let secondaries = choice.indexes[1..].to_vec();
        db.apply_partition_design("events", choice.part, &primary, &secondaries)
            .unwrap();
    }
    for (s, expect) in workload.statements.iter().zip(&before) {
        let mut rows = db.query(&s.statement).run().unwrap().rows;
        rows.sort_by_key(|r| format!("{r:?}"));
        assert_eq!(&rows, expect, "results drift after applying {}", s.label);
    }
}

#[test]
fn unpartitioned_table_is_rejected() {
    let db = Database::new(DbConfig::default());
    db.create_table(
        "flat",
        schema(),
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )
    .unwrap();
    db.load_table(
        "flat",
        vec![Row::new(vec![
            Value::Int32(1),
            Value::Int32(1),
            Value::Int64(1),
        ])],
    )
    .unwrap();
    let wl = Workload::read_only(vec![hot_point(1)]);
    let err = recommend_partition_designs(
        &db,
        "flat",
        &Workload::new(
            wl.statements
                .into_iter()
                .map(|mut s| {
                    if let Statement::Select(q) = &mut s.statement {
                        q.tables[0].name = "flat".into();
                    }
                    s
                })
                .collect(),
        ),
        &PartitionAdvisorOptions::default(),
    )
    .unwrap_err();
    assert!(format!("{err}").contains("not partitioned"), "{err}");
}
