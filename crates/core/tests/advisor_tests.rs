//! End-to-end advisor tests: recommendations over realistic mini-workloads,
//! applied to the engine and verified by execution.

use hpd_advisor::{
    advisor::csi_everywhere_configuration, Advisor, AdvisorOptions, DesignMode, Workload,
    WorkloadStatement,
};
use hpd_common::{AggFunc, CmpOp, DataType, Expr, Row, Schema, Value};
use hpd_engine::{
    AggItem, ColRef, Database, DbConfig, EquiJoin, IndexDescriptor, SelectQuery, Statement,
    TableInput, UpdateStmt,
};

fn db() -> Database {
    let mut cfg = DbConfig::default();
    cfg.csi.rowgroup_capacity = 1024;
    Database::new(cfg)
}

/// orders(id, customer, status, amount): selective point lookups + scans.
fn setup_orders(db: &Database, n: i32) {
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int32),
        ("customer", DataType::Int32),
        ("status", DataType::Int32),
        ("amount", DataType::Int32),
    ]);
    db.create_table(
        "orders",
        schema,
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )
    .unwrap();
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Int32(i),
                Value::Int32(i % 1000),
                Value::Int32(i % 7),
                Value::Int32(i * 13 % 500),
            ])
        })
        .collect();
    db.load_table("orders", rows).unwrap();
}

fn point_query() -> SelectQuery {
    SelectQuery::single_table(
        "orders",
        Some(Expr::col_cmp(1, CmpOp::Eq, Value::Int32(77))),
        vec![0, 1, 3],
    )
}

fn scan_query() -> SelectQuery {
    SelectQuery {
        tables: vec![TableInput::new("orders")],
        group_by: vec![ColRef::new(0, 2)],
        aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(0, 3))],
        ..Default::default()
    }
}

#[test]
fn hybrid_mode_recommends_both_kinds() {
    let db = db();
    setup_orders(&db, 50_000);
    let workload = Workload::read_only(vec![point_query(), scan_query()]);
    let rec = Advisor::new(&db, AdvisorOptions::default())
        .recommend(&workload)
        .unwrap();

    let design = rec
        .configuration
        .design_for("orders")
        .expect("orders design");
    let has_btree = design.indexes[1..]
        .iter()
        .any(|d| matches!(d, IndexDescriptor::SecondaryBTree { keys, .. } if keys.contains(&1)));
    let has_csi = design.indexes[1..].iter().any(|d| d.is_csi());
    assert!(
        has_btree,
        "expected a B+ tree on customer; got {:?}",
        design.indexes
    );
    assert!(has_csi, "expected a columnstore; got {:?}", design.indexes);
    assert!(
        rec.est_cost_after_us < rec.est_cost_before_us,
        "recommendation must reduce estimated cost"
    );
    assert!(rec.new_index_bytes > 0);
    let report = rec.report(&db);
    assert!(report.contains("CREATE"));
}

#[test]
fn mode_restrictions_hold() {
    let db = db();
    setup_orders(&db, 20_000);
    let workload = Workload::read_only(vec![point_query(), scan_query()]);

    let bt = Advisor::new(
        &db,
        AdvisorOptions {
            mode: DesignMode::BTreeOnly,
            ..Default::default()
        },
    )
    .recommend(&workload)
    .unwrap();
    assert!(bt
        .configuration
        .tables
        .iter()
        .flat_map(|t| &t.indexes[1..])
        .all(|d| !d.is_csi()));

    let cs = Advisor::new(
        &db,
        AdvisorOptions {
            mode: DesignMode::CsiOnly,
            ..Default::default()
        },
    )
    .recommend(&workload)
    .unwrap();
    assert!(cs
        .configuration
        .tables
        .iter()
        .flat_map(|t| &t.indexes[1..])
        .all(|d| d.is_csi()));
}

#[test]
fn hybrid_beats_single_mode_designs_on_mixed_query_shapes() {
    let db = db();
    setup_orders(&db, 50_000);
    let workload = Workload::read_only(vec![point_query(), scan_query()]);
    let costs: Vec<f64> = [
        DesignMode::Hybrid,
        DesignMode::BTreeOnly,
        DesignMode::CsiOnly,
    ]
    .into_iter()
    .map(|mode| {
        Advisor::new(
            &db,
            AdvisorOptions {
                mode,
                ..Default::default()
            },
        )
        .recommend(&workload)
        .unwrap()
        .est_cost_after_us
    })
    .collect();
    let (hybrid, btree, csi) = (costs[0], costs[1], costs[2]);
    assert!(
        hybrid <= btree * 1.001 && hybrid <= csi * 1.001,
        "hybrid {hybrid} should be at least as good as btree {btree} and csi {csi}"
    );
}

#[test]
fn storage_budget_limits_recommendation() {
    let db = db();
    setup_orders(&db, 30_000);
    let workload = Workload::read_only(vec![point_query(), scan_query()]);
    let unconstrained = Advisor::new(&db, AdvisorOptions::default())
        .recommend(&workload)
        .unwrap();
    let tiny_budget = Advisor::new(
        &db,
        AdvisorOptions {
            storage_budget_bytes: Some(unconstrained.new_index_bytes / 4),
            ..Default::default()
        },
    )
    .recommend(&workload)
    .unwrap();
    assert!(tiny_budget.new_index_bytes <= unconstrained.new_index_bytes / 4);
    assert!(tiny_budget.est_cost_after_us >= unconstrained.est_cost_after_us * 0.999);
}

#[test]
fn storage_budget_flips_recommended_design() {
    let db = db();
    setup_orders(&db, 50_000);
    let workload = Workload::read_only(vec![point_query(), scan_query()]);
    let free = Advisor::new(&db, AdvisorOptions::default())
        .recommend(&workload)
        .unwrap();
    let free_design = free.configuration.design_for("orders").unwrap();
    assert!(
        free_design.indexes[1..].iter().any(|d| d.is_csi()),
        "unconstrained hybrid run should include a CSI: {:?}",
        free_design.indexes
    );
    assert!(
        free_design.indexes[1..].iter().any(|d| !d.is_csi()),
        "unconstrained hybrid run should include a B+ tree: {:?}",
        free_design.indexes
    );
    // The compressed columnstore is far smaller than the point-lookup
    // B+ tree here. Set the budget so the CSI fits and the B+ tree does
    // not: the knob must flip the design to columnstore-only.
    let csi_bytes: usize = free.csi_encoding_details.iter().map(|d| d.est_bytes).sum();
    let btree_bytes = free.new_index_bytes - csi_bytes;
    assert!(csi_bytes > 0 && btree_bytes > 2 * csi_bytes);
    let tight = Advisor::new(
        &db,
        AdvisorOptions {
            storage_budget_bytes: Some(csi_bytes + btree_bytes / 2),
            ..Default::default()
        },
    )
    .recommend(&workload)
    .unwrap();
    let tight_design = tight.configuration.design_for("orders").unwrap();
    assert!(
        tight_design.indexes[1..].iter().any(|d| d.is_csi()),
        "the CSI still fits the budget: {:?}",
        tight_design.indexes
    );
    assert!(
        tight_design.indexes[1..].iter().all(|d| d.is_csi()),
        "the B+ tree must be squeezed out by the budget: {:?}",
        tight_design.indexes
    );
    assert!(tight.new_index_bytes <= csi_bytes + btree_bytes / 2);
    assert!(tight.est_cost_after_us >= free.est_cost_after_us * 0.999);

    // The report spells out the predicted per-column encodings and their
    // scan CPU factors for the recommended columnstore.
    let report = free.report(&db);
    assert!(report.contains("scan cpu x"), "report:\n{report}");
    assert!(
        !free.csi_encoding_details.is_empty()
            && free
                .csi_encoding_details
                .iter()
                .all(|d| report.contains(&d.column)),
        "report:\n{report}"
    );
}

#[test]
fn update_heavy_workload_avoids_columnstore() {
    let db = db();
    setup_orders(&db, 30_000);
    // Overwhelmingly updates: the CSI maintenance cost should keep it out.
    let update = Statement::Update(UpdateStmt {
        table: "orders".into(),
        predicate: Expr::col_cmp(0, CmpOp::Eq, Value::Int32(5)),
        top: None,
        set: vec![(3, Expr::lit(Value::Int32(0)))],
    });
    let workload = Workload::new(vec![
        WorkloadStatement::new(update, 10_000.0),
        WorkloadStatement::new(Statement::Select(scan_query()), 0.01),
    ]);
    let rec = Advisor::new(&db, AdvisorOptions::default())
        .recommend(&workload)
        .unwrap();
    let design = rec.configuration.design_for("orders").unwrap();
    assert!(
        design.indexes[1..].iter().all(|d| !d.is_csi()),
        "update-heavy workload must not get a CSI: {:?}",
        design.indexes
    );
}

#[test]
fn applying_recommendation_speeds_up_execution() {
    let db = db();
    setup_orders(&db, 50_000);
    let workload = Workload::read_only(vec![point_query()]);

    // Measure the point query before: full scan.
    let before = db
        .query(&Statement::Select(point_query()))
        .run()
        .unwrap()
        .metrics
        .io
        .logical_reads;

    let rec = Advisor::new(&db, AdvisorOptions::default())
        .recommend(&workload)
        .unwrap();
    db.apply_configuration(&rec.configuration).unwrap();

    let r = db.query(&Statement::Select(point_query())).run().unwrap();
    assert_eq!(r.rows.len(), 50); // 50_000 / 1000 per customer
    assert!(
        r.metrics.io.logical_reads * 10 < before,
        "after tuning: {} logical reads vs {} before",
        r.metrics.io.logical_reads,
        before
    );
}

#[test]
fn csi_everywhere_baseline_configuration() {
    let db = db();
    setup_orders(&db, 5_000);
    let cfg = csi_everywhere_configuration(&db, &["orders".to_string()]).unwrap();
    assert_eq!(cfg.tables.len(), 1);
    assert!(cfg.tables[0].indexes[1].is_csi());
    db.apply_configuration(&cfg).unwrap();
    let r = db.query(&Statement::Select(scan_query())).run().unwrap();
    assert_eq!(r.rows.len(), 7);
}

#[test]
fn join_workload_gets_fact_table_btree_on_join_key() {
    let db = db();
    // Star: fact + dimension with a selective dimension predicate.
    db.create_table(
        "fact",
        Schema::from_pairs(&[
            ("id", DataType::Int32),
            ("dim_id", DataType::Int32),
            ("measure", DataType::Int32),
        ]),
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )
    .unwrap();
    db.create_table(
        "dim",
        Schema::from_pairs(&[("id", DataType::Int32), ("attr", DataType::Int32)]),
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )
    .unwrap();
    db.load_table(
        "fact",
        (0..60_000)
            .map(|i| {
                Row::new(vec![
                    Value::Int32(i),
                    Value::Int32(i % 2000),
                    Value::Int32(1),
                ])
            })
            .collect(),
    )
    .unwrap();
    db.load_table(
        "dim",
        (0..2000)
            .map(|i| Row::new(vec![Value::Int32(i), Value::Int32(i % 500)]))
            .collect(),
    )
    .unwrap();

    let q = SelectQuery {
        tables: vec![
            TableInput::new("fact"),
            TableInput::with_predicate("dim", Expr::col_cmp(1, CmpOp::Eq, Value::Int32(3))),
        ],
        joins: vec![EquiJoin {
            left: ColRef::new(0, 1),
            right: ColRef::new(1, 0),
        }],
        aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(0, 2))],
        ..Default::default()
    };
    let rec = Advisor::new(&db, AdvisorOptions::default())
        .recommend(&Workload::read_only(vec![q.clone()]))
        .unwrap();
    let fact = rec.configuration.design_for("fact").unwrap();
    assert!(
        fact.indexes[1..].iter().any(|d| matches!(
            d,
            IndexDescriptor::SecondaryBTree { keys, .. } if keys.first() == Some(&1)
        )),
        "expected fact B+ tree on the join key: {:?}",
        fact.indexes
    );

    db.apply_configuration(&rec.configuration).unwrap();
    let r = db.query(&Statement::Select(q)).run().unwrap();
    // 4 dims with attr=3, each with 30 fact rows.
    assert_eq!(r.scalar(), Some(&Value::Int64(120)));
}
