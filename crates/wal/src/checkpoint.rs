//! Fuzzy checkpoint images.
//!
//! A checkpoint snapshots the catalog (names, schemas, physical designs)
//! and every table's rows, together with a per-table `applied_lsn`
//! high-water mark. The snapshot is *fuzzy*: tables are captured one at a
//! time while other transactions keep committing, so two tables in one
//! image may reflect different log positions — which is exactly why each
//! carries its own mark. Recovery rebuilds each table from its snapshot and
//! then replays only the log records with `lsn > applied_lsn[table]`.
//!
//! The image is serialized with the same codec as log records and wrapped
//! in one CRC frame, so a corrupt image is detected, not trusted.

use hpd_common::{HpdError, Result, Row, Schema};

use crate::frame::{append_frame, FrameReader};
use crate::record::{LogRecord, WalIndexDef, WalPartitioning};

/// One partition's physical design inside a [`TableSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct PartSnapshot {
    pub primary: WalIndexDef,
    pub secondaries: Vec<WalIndexDef>,
}

/// One table's slice of a checkpoint image.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    pub name: String,
    pub schema: Schema,
    pub pk: Vec<usize>,
    pub primary: WalIndexDef,
    pub secondaries: Vec<WalIndexDef>,
    /// Partitioning declaration; `None` for monolithic tables.
    pub partitioning: Option<WalPartitioning>,
    /// Per-partition physical designs when partitioned (one entry per
    /// partition; possibly heterogeneous). Empty for monolithic tables,
    /// whose design lives in `primary`/`secondaries`.
    pub parts: Vec<PartSnapshot>,
    /// Rows of every partition concatenated; recovery's bulk load re-routes
    /// each row through the partitioning spec.
    pub rows: Vec<Row>,
    /// LSN of the last log record already reflected in `rows` — the redo
    /// skip boundary for this table.
    pub applied_lsn: u64,
}

/// A complete fuzzy checkpoint: catalog + designs + rows + high-water marks.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointImage {
    /// LSN of the `CheckpointBegin` record; the log is truncated here on
    /// install, so recovery starts scanning at this offset.
    pub begin_lsn: u64,
    /// Timestamp-allocator high-water mark (`TxnManager` resumes above it).
    pub next_ts: u64,
    pub tables: Vec<TableSnapshot>,
}

impl CheckpointImage {
    /// Serialize to the CRC-framed byte form stored in the log object.
    ///
    /// Implementation reuses the record codec by round-tripping each table
    /// snapshot through synthetic `TableCreate`/`IndexCreate`/`BulkLoad`
    /// records — one codec, one set of decoders to fuzz.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        crate::record::put_u64(&mut body, self.begin_lsn);
        crate::record::put_u64(&mut body, self.next_ts);
        crate::record::put_u32(&mut body, self.tables.len() as u32);
        for (i, t) in self.tables.iter().enumerate() {
            crate::record::put_u64(&mut body, t.applied_lsn);
            append_frame(
                &mut body,
                &LogRecord::TableCreate {
                    table: i as u32,
                    name: t.name.clone(),
                    schema: t.schema.clone(),
                    pk: t.pk.clone(),
                    primary: t.primary.clone(),
                    partitioning: t.partitioning.clone(),
                }
                .encode(),
            );
            crate::record::put_u32(&mut body, t.secondaries.len() as u32);
            for def in &t.secondaries {
                append_frame(
                    &mut body,
                    &LogRecord::IndexCreate {
                        table: i as u32,
                        def: def.clone(),
                    }
                    .encode(),
                );
            }
            crate::record::put_u32(&mut body, t.parts.len() as u32);
            for (p, part) in t.parts.iter().enumerate() {
                append_frame(
                    &mut body,
                    &LogRecord::PartitionDesignChange {
                        table: i as u32,
                        part: p as u32,
                        primary: part.primary.clone(),
                        secondaries: part.secondaries.clone(),
                    }
                    .encode(),
                );
            }
            append_frame(
                &mut body,
                &LogRecord::BulkLoad {
                    table: i as u32,
                    rows: t.rows.clone(),
                }
                .encode(),
            );
        }
        let mut out = Vec::with_capacity(body.len() + 8);
        append_frame(&mut out, &body);
        out
    }

    pub fn decode(bytes: &[u8]) -> Result<CheckpointImage> {
        let corrupt = |m: &str| HpdError::Internal(format!("wal: corrupt checkpoint: {m}"));
        let mut outer = FrameReader::new(bytes, 0);
        let (_, body) = outer.next().ok_or_else(|| corrupt("bad outer frame"))?;
        if !outer.clean_end() || outer.next().is_some() {
            return Err(corrupt("trailing bytes"));
        }
        let mut c = crate::record::Cur::new(body);
        let begin_lsn = c.u64()?;
        let next_ts = c.u64()?;
        let n_tables = c.u32()? as usize;
        if n_tables > body.len() {
            return Err(corrupt("table count exceeds image"));
        }
        let mut rest = c;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let applied_lsn = rest.u64()?;
            let create = rest
                .framed_record()
                .ok_or_else(|| corrupt("bad table frame"))?;
            let LogRecord::TableCreate {
                name,
                schema,
                pk,
                primary,
                partitioning,
                ..
            } = LogRecord::decode(create)?
            else {
                return Err(corrupt("expected TableCreate"));
            };
            let n_sec = rest.u32()? as usize;
            if n_sec > body.len() {
                return Err(corrupt("secondary count exceeds image"));
            }
            let mut secondaries = Vec::with_capacity(n_sec);
            for _ in 0..n_sec {
                let f = rest
                    .framed_record()
                    .ok_or_else(|| corrupt("bad index frame"))?;
                let LogRecord::IndexCreate { def, .. } = LogRecord::decode(f)? else {
                    return Err(corrupt("expected IndexCreate"));
                };
                secondaries.push(def);
            }
            let n_parts = rest.u32()? as usize;
            if n_parts > body.len() {
                return Err(corrupt("partition count exceeds image"));
            }
            let mut parts = Vec::with_capacity(n_parts);
            for p in 0..n_parts {
                let f = rest
                    .framed_record()
                    .ok_or_else(|| corrupt("bad partition frame"))?;
                let LogRecord::PartitionDesignChange {
                    part,
                    primary,
                    secondaries,
                    ..
                } = LogRecord::decode(f)?
                else {
                    return Err(corrupt("expected PartitionDesignChange"));
                };
                if part as usize != p {
                    return Err(corrupt("partition frames out of order"));
                }
                parts.push(PartSnapshot {
                    primary,
                    secondaries,
                });
            }
            let f = rest
                .framed_record()
                .ok_or_else(|| corrupt("bad rows frame"))?;
            let LogRecord::BulkLoad { rows, .. } = LogRecord::decode(f)? else {
                return Err(corrupt("expected BulkLoad"));
            };
            tables.push(TableSnapshot {
                name,
                schema,
                pk,
                primary,
                secondaries,
                partitioning,
                parts,
                rows,
                applied_lsn,
            });
        }
        if !rest.finished() {
            return Err(corrupt("trailing bytes after tables"));
        }
        Ok(CheckpointImage {
            begin_lsn,
            next_ts,
            tables,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::WalIndexKind;
    use hpd_common::{DataType, Value};

    fn sample() -> CheckpointImage {
        CheckpointImage {
            begin_lsn: 4096,
            next_ts: 77,
            tables: vec![
                TableSnapshot {
                    name: "t".into(),
                    schema: Schema::from_pairs(&[("k", DataType::Int64), ("a", DataType::Int64)]),
                    pk: vec![0],
                    primary: WalIndexDef {
                        kind: WalIndexKind::PrimaryBTree,
                        cols_a: vec![0],
                        cols_b: vec![],
                    },
                    secondaries: vec![WalIndexDef {
                        kind: WalIndexKind::SecondaryCsi,
                        cols_a: vec![0, 1],
                        cols_b: vec![],
                    }],
                    partitioning: None,
                    parts: vec![],
                    rows: vec![
                        Row::new(vec![Value::Int64(1), Value::Int64(10)]),
                        Row::new(vec![Value::Int64(2), Value::Int64(20)]),
                    ],
                    applied_lsn: 4000,
                },
                TableSnapshot {
                    name: "u".into(),
                    schema: Schema::from_pairs(&[("k", DataType::Int64)]),
                    pk: vec![0],
                    primary: WalIndexDef {
                        kind: WalIndexKind::PrimaryCsi,
                        cols_a: vec![],
                        cols_b: vec![],
                    },
                    secondaries: vec![],
                    partitioning: None,
                    parts: vec![],
                    rows: vec![],
                    applied_lsn: 4090,
                },
                // A range-partitioned table with heterogeneous per-partition
                // designs: B+ tree on the hot tail, CSI on cold history.
                TableSnapshot {
                    name: "pt".into(),
                    schema: Schema::from_pairs(&[("k", DataType::Int64), ("v", DataType::Int64)]),
                    pk: vec![0],
                    primary: WalIndexDef {
                        kind: WalIndexKind::PrimaryCsi,
                        cols_a: vec![],
                        cols_b: vec![],
                    },
                    secondaries: vec![],
                    partitioning: Some(WalPartitioning::Range {
                        column: 0,
                        bounds: vec![Value::Int64(100)],
                    }),
                    parts: vec![
                        PartSnapshot {
                            primary: WalIndexDef {
                                kind: WalIndexKind::PrimaryCsi,
                                cols_a: vec![],
                                cols_b: vec![],
                            },
                            secondaries: vec![],
                        },
                        PartSnapshot {
                            primary: WalIndexDef {
                                kind: WalIndexKind::PrimaryBTree,
                                cols_a: vec![0],
                                cols_b: vec![],
                            },
                            secondaries: vec![WalIndexDef {
                                kind: WalIndexKind::SecondaryBTree,
                                cols_a: vec![1],
                                cols_b: vec![],
                            }],
                        },
                    ],
                    rows: vec![
                        Row::new(vec![Value::Int64(5), Value::Int64(1)]),
                        Row::new(vec![Value::Int64(150), Value::Int64(2)]),
                    ],
                    applied_lsn: 4095,
                },
            ],
        }
    }

    #[test]
    fn image_round_trips() {
        let img = sample();
        assert_eq!(CheckpointImage::decode(&img.encode()).unwrap(), img);
    }

    #[test]
    fn corrupt_image_is_rejected() {
        let mut bytes = sample().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(CheckpointImage::decode(&bytes).is_err());
        assert!(CheckpointImage::decode(&[]).is_err());
        assert!(CheckpointImage::decode(&bytes[..10]).is_err());
    }
}
