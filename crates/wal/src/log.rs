//! The log object: append, group-commit flush, checkpoint install,
//! simulated durability.
//!
//! All state lives behind one mutex. The engine serializes commits with its
//! own commit lock anyway (log order must equal apply order for redo-only
//! recovery), so the mutex here is protection for concurrent readers
//! (metrics, `durable()`), not a throughput path.

use hpd_storage::{DeviceProfile, IoTracker};
use parking_lot::Mutex;

use crate::frame::append_frame;
use crate::record::LogRecord;

/// Durability knobs, carried inside the engine's `DbConfig`.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Master switch. Disabled: appends are no-ops, recovery impossible.
    pub enabled: bool,
    /// Flush the log on every commit (true durability). When `false`, group
    /// commit batches flushes until [`WalConfig::group_commit_bytes`] of
    /// pending records accumulate — commits in the unflushed suffix are
    /// LOST by a crash (relaxed durability, for benchmarking the paper-era
    /// trade-off; the differential harness always runs `sync_commit`).
    pub sync_commit: bool,
    /// Pending-byte threshold that forces a flush under group commit.
    pub group_commit_bytes: usize,
    /// Take a fuzzy checkpoint every N commits (0 = never).
    pub checkpoint_every_commits: u64,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            enabled: true,
            sync_commit: true,
            group_commit_bytes: 64 << 10,
            checkpoint_every_commits: 0,
        }
    }
}

/// Everything that survives a simulated crash: the flushed log bytes, the
/// LSN of their first byte, and the last installed checkpoint image
/// (serialized — decoded only by recovery).
#[derive(Debug, Clone, Default)]
pub struct WalDurable {
    pub base_lsn: u64,
    pub log: Vec<u8>,
    pub checkpoint: Option<Vec<u8>>,
}

/// Per-statement/commit WAL activity, surfaced as the `wal:` trailer in
/// EXPLAIN ANALYZE.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalSummary {
    /// Log records appended by this transaction's commit.
    pub records: u64,
    /// Bytes moved to the durable region at commit (0 when deferred).
    pub bytes_flushed: u64,
    /// Flush operations performed (0 or 1 per commit).
    pub flushes: u64,
    /// Wall time spent in the commit-path flush, microseconds.
    pub flush_us: u64,
    /// True when group commit left this commit in the unflushed suffix.
    pub deferred: bool,
}

struct WalInner {
    /// LSN of `durable[0]`; advances when a checkpoint truncates the log.
    base_lsn: u64,
    durable: Vec<u8>,
    pending: Vec<u8>,
    pending_records: u64,
    /// Serialized [`crate::CheckpointImage`], if one was installed.
    checkpoint: Option<Vec<u8>>,
}

/// The write-ahead log. See the crate docs for the durability model.
pub struct Wal {
    cfg: WalConfig,
    device: DeviceProfile,
    inner: Mutex<WalInner>,
}

impl Wal {
    pub fn new(cfg: WalConfig, device: DeviceProfile) -> Wal {
        Wal {
            cfg,
            device,
            inner: Mutex::new(WalInner {
                base_lsn: 0,
                durable: Vec::new(),
                pending: Vec::new(),
                pending_records: 0,
                checkpoint: None,
            }),
        }
    }

    /// Reconstruct the log from crash-surviving state. The recovered log
    /// continues appending where the durable bytes end, so a second crash
    /// recovers again.
    pub fn from_durable(cfg: WalConfig, device: DeviceProfile, d: WalDurable) -> Wal {
        Wal {
            cfg,
            device,
            inner: Mutex::new(WalInner {
                base_lsn: d.base_lsn,
                durable: d.log,
                pending: Vec::new(),
                pending_records: 0,
                checkpoint: d.checkpoint,
            }),
        }
    }

    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    pub fn config(&self) -> &WalConfig {
        &self.cfg
    }

    /// Append one record to the pending buffer; returns its LSN (0 when the
    /// log is disabled). Appending alone makes nothing durable.
    pub fn append(&self, rec: &LogRecord) -> u64 {
        if !self.cfg.enabled {
            return 0;
        }
        let payload = rec.encode();
        let mut inner = self.inner.lock();
        let lsn = inner.base_lsn + (inner.durable.len() + inner.pending.len()) as u64;
        append_frame(&mut inner.pending, &payload);
        inner.pending_records += 1;
        let reg = hpd_obs::global();
        reg.counter("wal.append.records").inc();
        reg.counter("wal.append.bytes")
            .add((payload.len() + crate::frame::FRAME_HEADER) as u64);
        lsn
    }

    /// Move all pending bytes to the durable region, charging one simulated
    /// write to `tracker`. Returns bytes flushed.
    pub fn flush(&self, tracker: &IoTracker) -> u64 {
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner, tracker)
    }

    fn flush_locked(&self, inner: &mut WalInner, tracker: &IoTracker) -> u64 {
        let bytes = inner.pending.len() as u64;
        if bytes == 0 {
            return 0;
        }
        let (seek_us, bw_us) = self.device.write_cost_parts(bytes, 1);
        tracker.record_write(bytes, seek_us, bw_us);
        let pending = std::mem::take(&mut inner.pending);
        inner.durable.extend_from_slice(&pending);
        inner.pending_records = 0;
        let reg = hpd_obs::global();
        reg.counter("wal.flush.count").inc();
        reg.counter("wal.flush.bytes").add(bytes);
        bytes
    }

    /// Commit-point flush decision: always flush under `sync_commit`,
    /// otherwise only once the pending batch crosses `group_commit_bytes`.
    /// Returns `(flushed_bytes, deferred)`.
    pub fn commit_flush(&self, tracker: &IoTracker) -> (u64, bool) {
        if !self.cfg.enabled {
            return (0, false);
        }
        let mut inner = self.inner.lock();
        if self.cfg.sync_commit || inner.pending.len() >= self.cfg.group_commit_bytes {
            (self.flush_locked(&mut inner, tracker), false)
        } else {
            hpd_obs::global().counter("wal.commit.deferred").inc();
            (0, true)
        }
    }

    /// Snapshot of everything a crash would preserve. Pending bytes are
    /// deliberately excluded — they are the torn tail.
    pub fn durable(&self) -> WalDurable {
        let inner = self.inner.lock();
        WalDurable {
            base_lsn: inner.base_lsn,
            log: inner.durable.clone(),
            checkpoint: inner.checkpoint.clone(),
        }
    }

    /// Atomically install a checkpoint image and truncate the durable log
    /// below `begin_lsn` (the checkpoint's begin record stays). Charges the
    /// image write to `tracker`. The caller must have flushed first so the
    /// image's high-water marks refer to durable bytes.
    pub fn install_checkpoint(&self, image: Vec<u8>, begin_lsn: u64, tracker: &IoTracker) {
        if !self.cfg.enabled {
            return;
        }
        let bytes = image.len() as u64;
        let (seek_us, bw_us) = self.device.write_cost_parts(bytes, 1);
        tracker.record_write(bytes, seek_us, bw_us);
        let mut inner = self.inner.lock();
        debug_assert!(begin_lsn >= inner.base_lsn);
        let cut = (begin_lsn.saturating_sub(inner.base_lsn) as usize).min(inner.durable.len());
        inner.durable.drain(..cut);
        inner.base_lsn += cut as u64;
        inner.checkpoint = Some(image);
        let reg = hpd_obs::global();
        reg.counter("wal.checkpoint.count").inc();
        reg.counter("wal.checkpoint.bytes").add(bytes);
    }

    /// LSN that the next appended record would receive.
    pub fn next_lsn(&self) -> u64 {
        let inner = self.inner.lock();
        inner.base_lsn + (inner.durable.len() + inner.pending.len()) as u64
    }

    /// Bytes appended but not yet flushed (the would-be torn tail).
    pub fn pending_bytes(&self) -> usize {
        self.inner.lock().pending.len()
    }

    /// Bytes in the durable region (after any checkpoint truncation).
    pub fn durable_bytes(&self) -> usize {
        self.inner.lock().durable.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameReader;

    fn ram() -> DeviceProfile {
        DeviceProfile::ram()
    }

    fn sync_wal() -> Wal {
        Wal::new(WalConfig::default(), ram())
    }

    #[test]
    fn append_is_not_durable_until_flush() {
        let wal = sync_wal();
        let tracker = IoTracker::default();
        wal.append(&LogRecord::TxnBegin { txn_id: 1 });
        assert!(wal.durable().log.is_empty());
        assert!(wal.pending_bytes() > 0);
        let flushed = wal.flush(&tracker);
        assert_eq!(flushed as usize, wal.durable_bytes());
        assert_eq!(wal.pending_bytes(), 0);
        let d = wal.durable();
        let recs: Vec<_> = FrameReader::new(&d.log, d.base_lsn)
            .map(|(_, p)| LogRecord::decode(p).unwrap())
            .collect();
        assert_eq!(recs, vec![LogRecord::TxnBegin { txn_id: 1 }]);
    }

    #[test]
    fn group_commit_defers_until_threshold() {
        let cfg = WalConfig {
            sync_commit: false,
            group_commit_bytes: 64,
            ..WalConfig::default()
        };
        let wal = Wal::new(cfg, ram());
        let tracker = IoTracker::default();
        wal.append(&LogRecord::TxnCommit {
            txn_id: 1,
            commit_ts: 10,
        });
        let (bytes, deferred) = wal.commit_flush(&tracker);
        assert_eq!(bytes, 0);
        assert!(deferred);
        assert!(wal.durable().log.is_empty());
        // Pile on records until the 64-byte threshold trips.
        while wal.pending_bytes() < 64 {
            wal.append(&LogRecord::TxnCommit {
                txn_id: 2,
                commit_ts: 11,
            });
        }
        let (bytes, deferred) = wal.commit_flush(&tracker);
        assert!(bytes >= 64);
        assert!(!deferred);
        assert_eq!(wal.pending_bytes(), 0);
    }

    #[test]
    fn sync_commit_flushes_every_time() {
        let wal = sync_wal();
        let tracker = IoTracker::default();
        wal.append(&LogRecord::TxnBegin { txn_id: 1 });
        let (bytes, deferred) = wal.commit_flush(&tracker);
        assert!(bytes > 0);
        assert!(!deferred);
        assert_eq!(tracker.snapshot().bytes_written, bytes);
    }

    #[test]
    fn checkpoint_truncates_and_survives_via_durable() {
        let wal = sync_wal();
        let tracker = IoTracker::default();
        wal.append(&LogRecord::TxnBegin { txn_id: 1 });
        wal.flush(&tracker);
        let begin_lsn = wal.append(&LogRecord::CheckpointBegin);
        wal.flush(&tracker);
        wal.install_checkpoint(vec![1, 2, 3], begin_lsn, &tracker);
        assert_eq!(wal.durable().base_lsn, begin_lsn);
        let d = wal.durable();
        assert_eq!(d.checkpoint.as_deref(), Some(&[1u8, 2, 3][..]));
        // The surviving log starts exactly at the checkpoint-begin record.
        let recs: Vec<_> = FrameReader::new(&d.log, d.base_lsn)
            .map(|(lsn, p)| (lsn, LogRecord::decode(p).unwrap()))
            .collect();
        assert_eq!(recs, vec![(begin_lsn, LogRecord::CheckpointBegin)]);
        // A wal rebuilt from durable state appends with continuous LSNs.
        let wal2 = Wal::from_durable(WalConfig::default(), ram(), d);
        let next = wal2.append(&LogRecord::TxnAbort { txn_id: 9 });
        assert_eq!(next, wal.next_lsn());
    }

    #[test]
    fn disabled_wal_is_inert() {
        let cfg = WalConfig {
            enabled: false,
            ..WalConfig::default()
        };
        let wal = Wal::new(cfg, ram());
        let tracker = IoTracker::default();
        assert_eq!(wal.append(&LogRecord::TxnBegin { txn_id: 1 }), 0);
        assert_eq!(wal.commit_flush(&tracker), (0, false));
        assert!(wal.durable().log.is_empty());
        assert_eq!(tracker.snapshot().bytes_written, 0);
    }
}
