//! Logical write-ahead log with group commit, CRC framing, and fuzzy
//! checkpoints.
//!
//! The storage layer is a *simulated* in-memory hierarchy, so durability is
//! simulated too — but with the same contract a real log gives: a crash
//! drops every in-memory structure (heap, B+ trees, columnstore, delta
//! stores, delete buffers, version store) and keeps exactly the bytes that
//! were **flushed** to the [`Wal`] plus the last installed checkpoint image.
//! Recovery (in `hpd-engine`) is redo-only: it rebuilds the catalog from the
//! checkpoint, then replays committed transactions and design/maintenance
//! records from the log tail.
//!
//! Layout of the log is a flat byte stream of CRC-framed records
//! (`[u32 len][u32 crc][payload]`, [`frame`]); an LSN is a byte offset into
//! that stream. Appends go to a *pending* buffer; [`Wal::commit_flush`]
//! moves the buffer to the durable region — every commit under
//! `sync_commit`, or once `group_commit_bytes` accumulate under group
//! commit. Because the unflushed region is always a suffix, a checkpoint
//! plus a flushed prefix is transaction-consistent by construction.
//!
//! Flushes and checkpoint installs are charged through the storage
//! simulator's [`DeviceProfile`](hpd_storage::DeviceProfile) /
//! [`IoTracker`](hpd_storage::IoTracker) so durability overhead shows up in
//! benchmarks and EXPLAIN ANALYZE (`wal:` trailer), and `wal.*` counters in
//! `hpd-obs`.

pub mod checkpoint;
pub mod frame;
pub mod log;
pub mod record;

pub use checkpoint::{CheckpointImage, PartSnapshot, TableSnapshot};
pub use frame::{append_frame, crc32, FrameReader};
pub use log::{Wal, WalConfig, WalDurable, WalSummary};
pub use record::{LogRecord, WalIndexDef, WalIndexKind, WalPartitioning};
