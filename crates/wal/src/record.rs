//! Logical log records and their binary codec.
//!
//! Records are *logical*: they name tables by catalog slot id and carry
//! whole rows/keys, not page images. That keeps the log independent of the
//! physical design — the same Insert record redoes into a B+ tree, a
//! columnstore delta, or both, whichever the recovered design dictates.
//!
//! The codec is hand-rolled little-endian (no serde in this workspace):
//! values carry a one-byte type tag, containers a length prefix. Every
//! decoder is total — corrupt bytes produce an error, never a panic — so a
//! CRC collision on a torn frame cannot take recovery down.

use hpd_common::{ColumnDef, DataType, HpdError, Key, Result, Row, Schema, Value};

/// Index kind in a [`WalIndexDef`]. A flat mirror of the engine's
/// `IndexDescriptor` so this crate does not depend on `hpd-engine` (which
/// depends on us); the engine converts at the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalIndexKind {
    PrimaryBTree,
    SecondaryBTree,
    PrimaryCsi,
    SecondaryCsi,
}

/// Design-describing payload for checkpoint snapshots and DDL records.
///
/// `cols_a` is the key/column list (B+ tree keys, CSI columns); `cols_b` is
/// the include list (secondary B+ tree includes; empty otherwise).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalIndexDef {
    pub kind: WalIndexKind,
    pub cols_a: Vec<usize>,
    pub cols_b: Vec<usize>,
}

/// Partitioning declaration mirror (the engine's `PartitionSpec` without the
/// `hpd-engine` dependency). Carried by `TableCreate` records and checkpoint
/// snapshots so recovery rebuilds tables with identical row routing.
#[derive(Debug, Clone, PartialEq)]
pub enum WalPartitioning {
    /// Range partitioning: `bounds[i]` is the exclusive upper bound of
    /// partition `i`.
    Range { column: u32, bounds: Vec<Value> },
    /// Hash partitioning into a fixed partition count.
    Hash { column: u32, partitions: u32 },
}

/// One logical log record. LSNs are byte offsets assigned at append time by
/// [`crate::Wal`], not stored in the payload.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A transaction reached its commit point and started applying writes.
    TxnBegin {
        txn_id: u64,
    },
    /// All of the transaction's writes are logged; makes them redo-eligible.
    TxnCommit {
        txn_id: u64,
        commit_ts: u64,
    },
    /// The transaction's logged writes must be discarded by redo.
    TxnAbort {
        txn_id: u64,
    },
    /// `part` is the routed partition id (0 for unpartitioned tables) — an
    /// advisory cross-check; redo re-routes through the table's spec.
    Insert {
        table: u32,
        part: u32,
        row: Row,
    },
    Delete {
        table: u32,
        part: u32,
        key: Key,
    },
    /// Value-logged update: the post-image row is computed once at commit
    /// and logged physically, so redo needs no expression evaluation.
    /// `part` is the post-image's partition.
    Update {
        table: u32,
        part: u32,
        key: Key,
        new_row: Row,
    },
    /// A table entered the catalog (slot id `table`).
    TableCreate {
        table: u32,
        name: String,
        schema: Schema,
        pk: Vec<usize>,
        primary: WalIndexDef,
        partitioning: Option<WalPartitioning>,
    },
    /// Initial rows loaded outside a transaction.
    BulkLoad {
        table: u32,
        rows: Vec<Row>,
    },
    IndexCreate {
        table: u32,
        def: WalIndexDef,
    },
    /// Full physical-design swap (covers index drop and advisor re-tunes).
    DesignChange {
        table: u32,
        primary: WalIndexDef,
        secondaries: Vec<WalIndexDef>,
    },
    /// Tuple mover migrated `rows` delta rows into compressed rowgroups.
    TupleMoverMigrate {
        table: u32,
        rows: u64,
    },
    /// Delete-buffer compaction removed `rows` buffered deletes.
    DeltaCompaction {
        table: u32,
        rows: u64,
    },
    /// One budgeted maintenance increment completed: up to `budget_rows`
    /// rows of work, split between compacting buffered deletes and moving
    /// delta rows. Replayed logically — redo re-runs an increment with the
    /// same budget against whatever state recovery rebuilt. `part` is
    /// `u32::MAX` for a whole-table (round-robin) increment, else the
    /// targeted partition.
    MaintenanceStep {
        table: u32,
        part: u32,
        budget_rows: u64,
        rows_moved: u64,
        deletes_compacted: u64,
    },
    /// One partition of a partitioned table swapped its physical design
    /// (the advisor's heterogeneous per-partition recommendations).
    PartitionDesignChange {
        table: u32,
        part: u32,
        primary: WalIndexDef,
        secondaries: Vec<WalIndexDef>,
    },
    /// A fuzzy checkpoint began; its image, once installed, snapshots state
    /// up to at least this record's LSN per table.
    CheckpointBegin,
    /// The checkpoint image was installed (informational; recovery trusts
    /// the installed image, not this marker).
    CheckpointEnd,
}

const TAG_TXN_BEGIN: u8 = 1;
const TAG_TXN_COMMIT: u8 = 2;
const TAG_TXN_ABORT: u8 = 3;
const TAG_INSERT: u8 = 4;
const TAG_DELETE: u8 = 5;
const TAG_UPDATE: u8 = 6;
const TAG_TABLE_CREATE: u8 = 7;
const TAG_BULK_LOAD: u8 = 8;
const TAG_INDEX_CREATE: u8 = 9;
const TAG_DESIGN_CHANGE: u8 = 10;
const TAG_TUPLE_MOVER: u8 = 11;
const TAG_DELTA_COMPACTION: u8 = 12;
const TAG_CHECKPOINT_BEGIN: u8 = 13;
const TAG_CHECKPOINT_END: u8 = 14;
const TAG_MAINTENANCE_STEP: u8 = 15;
const TAG_PARTITION_DESIGN_CHANGE: u8 = 16;

fn corrupt(what: &str) -> HpdError {
    HpdError::Internal(format!("wal: corrupt record: {what}"))
}

// ---------------------------------------------------------------- encoding

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int32(x) => {
            buf.push(0);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Int64(x) => {
            buf.push(1);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Float64(x) => {
            buf.push(2);
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Decimal(x) => {
            buf.push(3);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Date(x) => {
            buf.push(4);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(5);
            put_str(buf, s);
        }
    }
}

fn put_values(buf: &mut Vec<u8>, vs: &[Value]) {
    put_u32(buf, vs.len() as u32);
    for v in vs {
        put_value(buf, v);
    }
}

fn put_ordinals(buf: &mut Vec<u8>, cols: &[usize]) {
    put_u32(buf, cols.len() as u32);
    for &c in cols {
        put_u32(buf, c as u32);
    }
}

fn put_schema(buf: &mut Vec<u8>, schema: &Schema) {
    put_u32(buf, schema.len() as u32);
    for col in schema.columns() {
        put_str(buf, &col.name);
        buf.push(dtype_tag(col.dtype));
        buf.push(col.csi_eligible as u8);
    }
}

fn put_partitioning(buf: &mut Vec<u8>, p: &Option<WalPartitioning>) {
    match p {
        None => buf.push(0),
        Some(WalPartitioning::Range { column, bounds }) => {
            buf.push(1);
            put_u32(buf, *column);
            put_values(buf, bounds);
        }
        Some(WalPartitioning::Hash { column, partitions }) => {
            buf.push(2);
            put_u32(buf, *column);
            put_u32(buf, *partitions);
        }
    }
}

fn put_index_def(buf: &mut Vec<u8>, def: &WalIndexDef) {
    buf.push(match def.kind {
        WalIndexKind::PrimaryBTree => 0,
        WalIndexKind::SecondaryBTree => 1,
        WalIndexKind::PrimaryCsi => 2,
        WalIndexKind::SecondaryCsi => 3,
    });
    put_ordinals(buf, &def.cols_a);
    put_ordinals(buf, &def.cols_b);
}

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Int32 => 0,
        DataType::Int64 => 1,
        DataType::Float64 => 2,
        DataType::Decimal => 3,
        DataType::Date => 4,
        DataType::Utf8 => 5,
    }
}

// ---------------------------------------------------------------- decoding

pub(crate) struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(corrupt("unexpected end of payload"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("non-utf8 string"))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Int32(i32::from_le_bytes(self.take(4)?.try_into().unwrap())),
            1 => Value::Int64(i64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            2 => Value::Float64(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            ))),
            3 => Value::Decimal(i64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            4 => Value::Date(i32::from_le_bytes(self.take(4)?.try_into().unwrap())),
            5 => Value::str(self.str()?),
            t => return Err(corrupt(&format!("bad value tag {t}"))),
        })
    }

    fn values(&mut self) -> Result<Vec<Value>> {
        let n = self.u32()? as usize;
        if n > self.buf.len() {
            return Err(corrupt("value count exceeds payload"));
        }
        (0..n).map(|_| self.value()).collect()
    }

    fn row(&mut self) -> Result<Row> {
        Ok(Row::new(self.values()?))
    }

    fn key(&mut self) -> Result<Key> {
        Ok(Key::new(self.values()?))
    }

    fn ordinals(&mut self) -> Result<Vec<usize>> {
        let n = self.u32()? as usize;
        if n > self.buf.len() {
            return Err(corrupt("ordinal count exceeds payload"));
        }
        (0..n).map(|_| Ok(self.u32()? as usize)).collect()
    }

    fn schema(&mut self) -> Result<Schema> {
        let n = self.u32()? as usize;
        if n > self.buf.len() {
            return Err(corrupt("column count exceeds payload"));
        }
        let mut cols = Vec::with_capacity(n);
        for _ in 0..n {
            let name = self.str()?;
            let dtype = match self.u8()? {
                0 => DataType::Int32,
                1 => DataType::Int64,
                2 => DataType::Float64,
                3 => DataType::Decimal,
                4 => DataType::Date,
                5 => DataType::Utf8,
                t => return Err(corrupt(&format!("bad dtype tag {t}"))),
            };
            let eligible = self.u8()? != 0;
            let mut col = ColumnDef::new(name, dtype);
            col.csi_eligible = eligible;
            cols.push(col);
        }
        Ok(Schema::new(cols))
    }

    fn partitioning(&mut self) -> Result<Option<WalPartitioning>> {
        Ok(match self.u8()? {
            0 => None,
            1 => Some(WalPartitioning::Range {
                column: self.u32()?,
                bounds: self.values()?,
            }),
            2 => Some(WalPartitioning::Hash {
                column: self.u32()?,
                partitions: self.u32()?,
            }),
            t => return Err(corrupt(&format!("bad partitioning tag {t}"))),
        })
    }

    fn index_def(&mut self) -> Result<WalIndexDef> {
        let kind = match self.u8()? {
            0 => WalIndexKind::PrimaryBTree,
            1 => WalIndexKind::SecondaryBTree,
            2 => WalIndexKind::PrimaryCsi,
            3 => WalIndexKind::SecondaryCsi,
            t => return Err(corrupt(&format!("bad index kind {t}"))),
        };
        Ok(WalIndexDef {
            kind,
            cols_a: self.ordinals()?,
            cols_b: self.ordinals()?,
        })
    }

    /// Read one embedded `[len][crc][payload]` frame (used by checkpoint
    /// images, which nest record frames inside their own body). Returns
    /// `None` on truncation or CRC mismatch.
    pub(crate) fn framed_record(&mut self) -> Option<&'a [u8]> {
        use crate::frame::{crc32, FRAME_HEADER};
        if self.pos + FRAME_HEADER > self.buf.len() {
            return None;
        }
        let len = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(self.buf[self.pos + 4..self.pos + 8].try_into().unwrap());
        let start = self.pos + FRAME_HEADER;
        if start + len > self.buf.len() {
            return None;
        }
        let payload = &self.buf[start..start + len];
        if crc32(payload) != crc {
            return None;
        }
        self.pos = start + len;
        Some(payload)
    }

    pub(crate) fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl LogRecord {
    /// Serialize to a frame payload (framing/CRC added by the [`crate::Wal`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(32);
        match self {
            LogRecord::TxnBegin { txn_id } => {
                b.push(TAG_TXN_BEGIN);
                put_u64(&mut b, *txn_id);
            }
            LogRecord::TxnCommit { txn_id, commit_ts } => {
                b.push(TAG_TXN_COMMIT);
                put_u64(&mut b, *txn_id);
                put_u64(&mut b, *commit_ts);
            }
            LogRecord::TxnAbort { txn_id } => {
                b.push(TAG_TXN_ABORT);
                put_u64(&mut b, *txn_id);
            }
            LogRecord::Insert { table, part, row } => {
                b.push(TAG_INSERT);
                put_u32(&mut b, *table);
                put_u32(&mut b, *part);
                put_values(&mut b, row.values());
            }
            LogRecord::Delete { table, part, key } => {
                b.push(TAG_DELETE);
                put_u32(&mut b, *table);
                put_u32(&mut b, *part);
                put_values(&mut b, key.values());
            }
            LogRecord::Update {
                table,
                part,
                key,
                new_row,
            } => {
                b.push(TAG_UPDATE);
                put_u32(&mut b, *table);
                put_u32(&mut b, *part);
                put_values(&mut b, key.values());
                put_values(&mut b, new_row.values());
            }
            LogRecord::TableCreate {
                table,
                name,
                schema,
                pk,
                primary,
                partitioning,
            } => {
                b.push(TAG_TABLE_CREATE);
                put_u32(&mut b, *table);
                put_str(&mut b, name);
                put_schema(&mut b, schema);
                put_ordinals(&mut b, pk);
                put_index_def(&mut b, primary);
                put_partitioning(&mut b, partitioning);
            }
            LogRecord::BulkLoad { table, rows } => {
                b.push(TAG_BULK_LOAD);
                put_u32(&mut b, *table);
                put_u32(&mut b, rows.len() as u32);
                for row in rows {
                    put_values(&mut b, row.values());
                }
            }
            LogRecord::IndexCreate { table, def } => {
                b.push(TAG_INDEX_CREATE);
                put_u32(&mut b, *table);
                put_index_def(&mut b, def);
            }
            LogRecord::DesignChange {
                table,
                primary,
                secondaries,
            } => {
                b.push(TAG_DESIGN_CHANGE);
                put_u32(&mut b, *table);
                put_index_def(&mut b, primary);
                put_u32(&mut b, secondaries.len() as u32);
                for def in secondaries {
                    put_index_def(&mut b, def);
                }
            }
            LogRecord::TupleMoverMigrate { table, rows } => {
                b.push(TAG_TUPLE_MOVER);
                put_u32(&mut b, *table);
                put_u64(&mut b, *rows);
            }
            LogRecord::DeltaCompaction { table, rows } => {
                b.push(TAG_DELTA_COMPACTION);
                put_u32(&mut b, *table);
                put_u64(&mut b, *rows);
            }
            LogRecord::MaintenanceStep {
                table,
                part,
                budget_rows,
                rows_moved,
                deletes_compacted,
            } => {
                b.push(TAG_MAINTENANCE_STEP);
                put_u32(&mut b, *table);
                put_u32(&mut b, *part);
                put_u64(&mut b, *budget_rows);
                put_u64(&mut b, *rows_moved);
                put_u64(&mut b, *deletes_compacted);
            }
            LogRecord::PartitionDesignChange {
                table,
                part,
                primary,
                secondaries,
            } => {
                b.push(TAG_PARTITION_DESIGN_CHANGE);
                put_u32(&mut b, *table);
                put_u32(&mut b, *part);
                put_index_def(&mut b, primary);
                put_u32(&mut b, secondaries.len() as u32);
                for def in secondaries {
                    put_index_def(&mut b, def);
                }
            }
            LogRecord::CheckpointBegin => b.push(TAG_CHECKPOINT_BEGIN),
            LogRecord::CheckpointEnd => b.push(TAG_CHECKPOINT_END),
        }
        b
    }

    /// Decode a frame payload. Total: corrupt input yields `Err`, not a
    /// panic, and trailing garbage is rejected.
    pub fn decode(payload: &[u8]) -> Result<LogRecord> {
        let mut c = Cur::new(payload);
        let rec = match c.u8()? {
            TAG_TXN_BEGIN => LogRecord::TxnBegin { txn_id: c.u64()? },
            TAG_TXN_COMMIT => LogRecord::TxnCommit {
                txn_id: c.u64()?,
                commit_ts: c.u64()?,
            },
            TAG_TXN_ABORT => LogRecord::TxnAbort { txn_id: c.u64()? },
            TAG_INSERT => LogRecord::Insert {
                table: c.u32()?,
                part: c.u32()?,
                row: c.row()?,
            },
            TAG_DELETE => LogRecord::Delete {
                table: c.u32()?,
                part: c.u32()?,
                key: c.key()?,
            },
            TAG_UPDATE => LogRecord::Update {
                table: c.u32()?,
                part: c.u32()?,
                key: c.key()?,
                new_row: c.row()?,
            },
            TAG_TABLE_CREATE => LogRecord::TableCreate {
                table: c.u32()?,
                name: c.str()?,
                schema: c.schema()?,
                pk: c.ordinals()?,
                primary: c.index_def()?,
                partitioning: c.partitioning()?,
            },
            TAG_BULK_LOAD => {
                let table = c.u32()?;
                let n = c.u32()? as usize;
                if n > payload.len() {
                    return Err(corrupt("row count exceeds payload"));
                }
                let rows = (0..n).map(|_| c.row()).collect::<Result<Vec<_>>>()?;
                LogRecord::BulkLoad { table, rows }
            }
            TAG_INDEX_CREATE => LogRecord::IndexCreate {
                table: c.u32()?,
                def: c.index_def()?,
            },
            TAG_DESIGN_CHANGE => {
                let table = c.u32()?;
                let primary = c.index_def()?;
                let n = c.u32()? as usize;
                if n > payload.len() {
                    return Err(corrupt("secondary count exceeds payload"));
                }
                let secondaries = (0..n).map(|_| c.index_def()).collect::<Result<Vec<_>>>()?;
                LogRecord::DesignChange {
                    table,
                    primary,
                    secondaries,
                }
            }
            TAG_TUPLE_MOVER => LogRecord::TupleMoverMigrate {
                table: c.u32()?,
                rows: c.u64()?,
            },
            TAG_DELTA_COMPACTION => LogRecord::DeltaCompaction {
                table: c.u32()?,
                rows: c.u64()?,
            },
            TAG_MAINTENANCE_STEP => LogRecord::MaintenanceStep {
                table: c.u32()?,
                part: c.u32()?,
                budget_rows: c.u64()?,
                rows_moved: c.u64()?,
                deletes_compacted: c.u64()?,
            },
            TAG_PARTITION_DESIGN_CHANGE => {
                let table = c.u32()?;
                let part = c.u32()?;
                let primary = c.index_def()?;
                let n = c.u32()? as usize;
                if n > payload.len() {
                    return Err(corrupt("secondary count exceeds payload"));
                }
                let secondaries = (0..n).map(|_| c.index_def()).collect::<Result<Vec<_>>>()?;
                LogRecord::PartitionDesignChange {
                    table,
                    part,
                    primary,
                    secondaries,
                }
            }
            TAG_CHECKPOINT_BEGIN => LogRecord::CheckpointBegin,
            TAG_CHECKPOINT_END => LogRecord::CheckpointEnd,
            t => return Err(corrupt(&format!("bad record tag {t}"))),
        };
        if !c.finished() {
            return Err(corrupt("trailing bytes after record"));
        }
        Ok(rec)
    }

    /// The catalog slot this record targets, if it is table-scoped. Used by
    /// recovery's fuzzy-checkpoint skip rule (`lsn <= applied_lsn[table]`).
    pub fn table(&self) -> Option<u32> {
        match self {
            LogRecord::Insert { table, .. }
            | LogRecord::Delete { table, .. }
            | LogRecord::Update { table, .. }
            | LogRecord::TableCreate { table, .. }
            | LogRecord::BulkLoad { table, .. }
            | LogRecord::IndexCreate { table, .. }
            | LogRecord::DesignChange { table, .. }
            | LogRecord::TupleMoverMigrate { table, .. }
            | LogRecord::DeltaCompaction { table, .. }
            | LogRecord::MaintenanceStep { table, .. }
            | LogRecord::PartitionDesignChange { table, .. } => Some(*table),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: LogRecord) {
        let bytes = rec.encode();
        assert_eq!(LogRecord::decode(&bytes).unwrap(), rec);
    }

    #[test]
    fn all_record_kinds_round_trip() {
        roundtrip(LogRecord::TxnBegin { txn_id: 7 });
        roundtrip(LogRecord::TxnCommit {
            txn_id: 7,
            commit_ts: 1234,
        });
        roundtrip(LogRecord::TxnAbort { txn_id: u64::MAX });
        roundtrip(LogRecord::Insert {
            table: 0,
            part: 0,
            row: Row::new(vec![
                Value::Int64(-5),
                Value::Int32(3),
                Value::Float64(-0.5),
                Value::Decimal(123456),
                Value::Date(19000),
                Value::str("héllo"),
            ]),
        });
        roundtrip(LogRecord::Delete {
            table: 2,
            part: 7,
            key: Key::new(vec![Value::Int64(9), Value::str("x")]),
        });
        roundtrip(LogRecord::Update {
            table: 1,
            part: 3,
            key: Key::new(vec![Value::Int64(9)]),
            new_row: Row::new(vec![Value::Int64(9), Value::Int64(10)]),
        });
        roundtrip(LogRecord::TableCreate {
            table: 3,
            name: "t".into(),
            schema: Schema::from_pairs(&[("k", DataType::Int64), ("a", DataType::Utf8)]),
            pk: vec![0],
            primary: WalIndexDef {
                kind: WalIndexKind::PrimaryBTree,
                cols_a: vec![0],
                cols_b: vec![],
            },
            partitioning: None,
        });
        roundtrip(LogRecord::TableCreate {
            table: 4,
            name: "pt".into(),
            schema: Schema::from_pairs(&[("k", DataType::Int64), ("a", DataType::Int64)]),
            pk: vec![0],
            primary: WalIndexDef {
                kind: WalIndexKind::PrimaryCsi,
                cols_a: vec![],
                cols_b: vec![],
            },
            partitioning: Some(WalPartitioning::Range {
                column: 0,
                bounds: vec![Value::Int64(100), Value::Int64(200)],
            }),
        });
        roundtrip(LogRecord::TableCreate {
            table: 5,
            name: "ht".into(),
            schema: Schema::from_pairs(&[("k", DataType::Int64)]),
            pk: vec![0],
            primary: WalIndexDef {
                kind: WalIndexKind::PrimaryBTree,
                cols_a: vec![0],
                cols_b: vec![],
            },
            partitioning: Some(WalPartitioning::Hash {
                column: 0,
                partitions: 8,
            }),
        });
        roundtrip(LogRecord::PartitionDesignChange {
            table: 4,
            part: 2,
            primary: WalIndexDef {
                kind: WalIndexKind::PrimaryBTree,
                cols_a: vec![0],
                cols_b: vec![],
            },
            secondaries: vec![WalIndexDef {
                kind: WalIndexKind::SecondaryBTree,
                cols_a: vec![1],
                cols_b: vec![],
            }],
        });
        roundtrip(LogRecord::BulkLoad {
            table: 3,
            rows: vec![
                Row::new(vec![Value::Int64(1)]),
                Row::new(vec![Value::Int64(2)]),
            ],
        });
        roundtrip(LogRecord::IndexCreate {
            table: 3,
            def: WalIndexDef {
                kind: WalIndexKind::SecondaryCsi,
                cols_a: vec![0, 1, 2],
                cols_b: vec![],
            },
        });
        roundtrip(LogRecord::DesignChange {
            table: 3,
            primary: WalIndexDef {
                kind: WalIndexKind::PrimaryCsi,
                cols_a: vec![],
                cols_b: vec![],
            },
            secondaries: vec![WalIndexDef {
                kind: WalIndexKind::SecondaryBTree,
                cols_a: vec![1],
                cols_b: vec![2],
            }],
        });
        roundtrip(LogRecord::TupleMoverMigrate { table: 3, rows: 99 });
        roundtrip(LogRecord::DeltaCompaction { table: 3, rows: 4 });
        roundtrip(LogRecord::MaintenanceStep {
            table: 3,
            part: u32::MAX,
            budget_rows: 4096,
            rows_moved: 120,
            deletes_compacted: 8,
        });
        roundtrip(LogRecord::CheckpointBegin);
        roundtrip(LogRecord::CheckpointEnd);
    }

    #[test]
    fn float_round_trips_preserve_bits() {
        for f in [f64::NAN, -0.0, f64::INFINITY, f64::MIN_POSITIVE] {
            let rec = LogRecord::Insert {
                table: 0,
                part: 0,
                row: Row::new(vec![Value::Float64(f)]),
            };
            let back = LogRecord::decode(&rec.encode()).unwrap();
            let LogRecord::Insert { row, .. } = back else {
                panic!("wrong kind")
            };
            let &Value::Float64(g) = &row[0] else {
                panic!("wrong type")
            };
            assert_eq!(g.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn corrupt_payloads_error_without_panicking() {
        assert!(LogRecord::decode(&[]).is_err());
        assert!(LogRecord::decode(&[200]).is_err()); // unknown tag
        assert!(LogRecord::decode(&[TAG_TXN_BEGIN, 1, 2]).is_err()); // truncated
        let mut ok = LogRecord::TxnAbort { txn_id: 1 }.encode();
        ok.push(0); // trailing garbage
        assert!(LogRecord::decode(&ok).is_err());
        // Insert claiming a huge value count must not attempt allocation.
        let mut b = vec![TAG_INSERT];
        put_u32(&mut b, 0); // table
        put_u32(&mut b, 0); // part
        put_u32(&mut b, u32::MAX);
        assert!(LogRecord::decode(&b).is_err());
        // TableCreate with an unknown partitioning tag is rejected.
        let mut ok = LogRecord::TableCreate {
            table: 0,
            name: "t".into(),
            schema: Schema::from_pairs(&[("k", DataType::Int64)]),
            pk: vec![0],
            primary: WalIndexDef {
                kind: WalIndexKind::PrimaryBTree,
                cols_a: vec![0],
                cols_b: vec![],
            },
            partitioning: None,
        }
        .encode();
        *ok.last_mut().unwrap() = 9;
        assert!(LogRecord::decode(&ok).is_err());
    }
}
