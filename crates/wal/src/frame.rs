//! CRC-framed record stream: `[u32 len][u32 crc][payload]`, little-endian.
//!
//! An LSN is the byte offset of a frame's first length byte within the log
//! stream. [`FrameReader`] walks a byte slice and stops cleanly at the first
//! truncated or corrupt frame — a torn tail is expected after a crash and is
//! simply the un-durable suffix.

/// Frame header size: 4-byte payload length + 4-byte CRC32.
pub const FRAME_HEADER: usize = 8;

/// CRC-32 (IEEE 802.3 polynomial, reflected), bitwise implementation.
///
/// The log frames are small and the simulator charges I/O time separately,
/// so a lookup table buys nothing worth the extra state.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Append one framed record to `buf`.
pub fn append_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Iterator over the frames of a log byte stream.
///
/// Yields `(lsn, payload)` for every intact frame; stops at the first
/// truncated or CRC-corrupt frame. [`FrameReader::clean_end`] tells whether
/// the stream ended exactly on a frame boundary.
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
    base_lsn: u64,
    corrupt: bool,
}

impl<'a> FrameReader<'a> {
    pub fn new(buf: &'a [u8], base_lsn: u64) -> FrameReader<'a> {
        FrameReader {
            buf,
            pos: 0,
            base_lsn,
            corrupt: false,
        }
    }

    /// LSN one past the last intact frame consumed so far.
    pub fn position(&self) -> u64 {
        self.base_lsn + self.pos as u64
    }

    /// True when iteration ended exactly at the end of the buffer with no
    /// torn or corrupt frame. Only meaningful after the iterator returns
    /// `None`.
    pub fn clean_end(&self) -> bool {
        !self.corrupt && self.pos == self.buf.len()
    }

    /// Bytes remaining after the last intact frame (the lost tail).
    pub fn tail_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }
}

impl<'a> Iterator for FrameReader<'a> {
    type Item = (u64, &'a [u8]);

    fn next(&mut self) -> Option<(u64, &'a [u8])> {
        if self.corrupt || self.pos + FRAME_HEADER > self.buf.len() {
            return None;
        }
        let len = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(self.buf[self.pos + 4..self.pos + 8].try_into().unwrap());
        let start = self.pos + FRAME_HEADER;
        if start + len > self.buf.len() {
            return None; // torn tail
        }
        let payload = &self.buf[start..start + len];
        if crc32(payload) != crc {
            self.corrupt = true;
            return None;
        }
        let lsn = self.base_lsn + self.pos as u64;
        self.pos = start + len;
        Some((lsn, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_with_lsns() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"alpha");
        let second = buf.len() as u64;
        append_frame(&mut buf, b"");
        let third = buf.len() as u64;
        append_frame(&mut buf, b"gamma-long-payload");
        let mut r = FrameReader::new(&buf, 0);
        assert_eq!(r.next(), Some((0, &b"alpha"[..])));
        assert_eq!(r.next(), Some((second, &b""[..])));
        assert_eq!(r.next(), Some((third, &b"gamma-long-payload"[..])));
        assert_eq!(r.next(), None);
        assert!(r.clean_end());
        assert_eq!(r.tail_bytes(), 0);
    }

    #[test]
    fn torn_tail_stops_cleanly() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"kept");
        let intact = buf.len();
        append_frame(&mut buf, b"lost-in-the-crash");
        buf.truncate(intact + 5); // tear the second frame mid-payload
        let mut r = FrameReader::new(&buf, 100);
        assert_eq!(r.next(), Some((100, &b"kept"[..])));
        assert_eq!(r.next(), None);
        assert!(!r.clean_end());
        assert_eq!(r.position(), 100 + intact as u64);
        assert_eq!(r.tail_bytes(), 5);
    }

    #[test]
    fn corrupt_crc_stops_iteration() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"good");
        let boundary = buf.len();
        append_frame(&mut buf, b"flipped");
        buf[boundary + FRAME_HEADER] ^= 0x40; // corrupt the payload
        let mut r = FrameReader::new(&buf, 0);
        assert!(r.next().is_some());
        assert_eq!(r.next(), None);
        assert!(!r.clean_end());
    }
}
