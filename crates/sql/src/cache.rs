//! Prepared-statement plan cache keyed on normalized statement text.
//!
//! Normalization lexes the statement and re-renders it one canonical token
//! per space, identifiers lowercased, every literal replaced by `?`. Two
//! statements differing only in whitespace, keyword case, or literal values
//! therefore share one cache entry; the captured literal values are bound
//! back in at execute time as ordinary parameters. Entries remember the
//! engine's DDL epoch at insert: any CREATE/DROP/apply_design bumps the
//! epoch, so the next lookup drops the stale entry (counted as an
//! invalidation) and re-parses.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hpd_common::Value;
use hpd_engine::Database;

use crate::ast::SqlStatement;
use crate::error::SqlResult;
use crate::lexer::{lex, Tok};
use crate::metrics;
use crate::parser::parse;

/// The normalized form of a statement: the cache key plus the parameter
/// slots. `Some(v)` slots were literals captured from the text; `None`
/// slots were explicit `?` placeholders the caller must fill.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedSql {
    pub key: String,
    pub slots: Vec<Option<Value>>,
}

/// Normalize one statement's text. Fails only on lex errors.
pub fn normalize(text: &str) -> SqlResult<NormalizedSql> {
    let tokens = lex(text)?;
    let mut key = String::new();
    let mut slots = Vec::new();
    let mut i = 0;
    // Tracks whether the previous emitted token can end an operand — if it
    // can, a following `-` is binary subtraction; otherwise it is a unary
    // sign folded into the literal.
    let mut prev_operand = false;
    while i < tokens.len() {
        let t = &tokens[i];
        let rendered = match &t.tok {
            Tok::Eof => break,
            Tok::Number(s) => {
                slots.push(Some(number_value(s, false)));
                prev_operand = true;
                "?".to_string()
            }
            Tok::Str(s) => {
                slots.push(Some(Value::str(s.clone())));
                prev_operand = true;
                "?".to_string()
            }
            Tok::Punct("?") => {
                slots.push(None);
                prev_operand = true;
                "?".to_string()
            }
            Tok::Punct("-") if !prev_operand => {
                if let Some(Tok::Number(s)) = tokens.get(i + 1).map(|t| &t.tok) {
                    slots.push(Some(number_value(s, true)));
                    i += 1;
                    prev_operand = true;
                    "?".to_string()
                } else {
                    prev_operand = false;
                    "-".to_string()
                }
            }
            tok => {
                prev_operand = matches!(tok, Tok::Ident(_) | Tok::Punct(")"));
                tok.render()
            }
        };
        if !key.is_empty() {
            key.push(' ');
        }
        key.push_str(&rendered);
        i += 1;
    }
    Ok(NormalizedSql { key, slots })
}

/// Literal value for a lexed number, mirroring the parser's typing rules:
/// integers become `Int32` when they fit, else `Int64`; anything with a
/// fraction becomes `Float64` (and is coerced at bind time).
fn number_value(s: &str, negative: bool) -> Value {
    let text = if negative {
        format!("-{s}")
    } else {
        s.to_string()
    };
    if text.contains('.') {
        Value::Float64(text.parse().unwrap_or(0.0))
    } else {
        match text.parse::<i64>() {
            Ok(n) => match i32::try_from(n) {
                Ok(v) => Value::Int32(v),
                Err(_) => Value::Int64(n),
            },
            Err(_) => Value::Float64(0.0),
        }
    }
}

struct Entry {
    stmt: SqlStatement,
    epoch: u64,
}

/// Cache statistics, local to one cache (the `sql.plancache.*` global
/// counters aggregate across all caches in the process).
#[derive(Debug, Default)]
pub struct PlanCacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

/// Bounded map from normalized statement text to its parsed template.
/// Shared across sessions via `Arc`; FIFO eviction at capacity.
pub struct PlanCache {
    capacity: usize,
    entries: Mutex<(HashMap<String, Entry>, VecDeque<String>)>,
    stats: PlanCacheStats,
}

impl PlanCache {
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            entries: Mutex::new((HashMap::new(), VecDeque::new())),
            stats: PlanCacheStats::default(),
        }
    }

    pub fn hits(&self) -> u64 {
        self.stats.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.stats.misses.load(Ordering::Relaxed)
    }

    pub fn invalidations(&self) -> u64 {
        self.stats.invalidations.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Get the parsed template for `text`, parsing and caching on miss.
    ///
    /// Returns the template plus `Some(slots)` when the template was parsed
    /// from the normalized key (its `?` parameters cover every literal; the
    /// `slots` say which were captured and which the caller must supply),
    /// or `None` when the template was parsed from the original text (its
    /// `?` parameters are exactly the caller's, in order). Entries whose
    /// DDL epoch is stale are invalidated here.
    pub fn lookup(
        &self,
        db: &Database,
        text: &str,
    ) -> SqlResult<(SqlStatement, Option<Vec<Option<Value>>>)> {
        let m = metrics();
        let norm = normalize(text)?;
        let epoch = db.ddl_epoch();
        {
            let mut guard = self.entries.lock().unwrap();
            let (map, order) = &mut *guard;
            if let Some(entry) = map.get(&norm.key) {
                if entry.epoch == epoch {
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    m.cache_hit.inc();
                    return Ok((entry.stmt.clone(), Some(norm.slots)));
                }
                map.remove(&norm.key);
                order.retain(|k| k != &norm.key);
                self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
                m.cache_invalidate.inc();
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        m.cache_miss.inc();
        // Parse the normalized key (literals are now `?` params) so the
        // template is reusable across literal values. If the key fails to
        // parse, re-parse the original text so the error offset points into
        // what the user actually wrote.
        let stmt = match parse(&norm.key) {
            Ok(stmt) => stmt,
            // A key that does not parse (e.g. a folded unary minus in a
            // position the grammar rejects) falls back to the original
            // text. The result carries baked-in literals, so it must NOT be
            // cached under the normalized key.
            Err(_) => return parse(text).map(|stmt| (stmt, None)),
        };
        if stmt.cacheable() {
            let mut guard = self.entries.lock().unwrap();
            let (map, order) = &mut *guard;
            if map.len() >= self.capacity {
                if let Some(old) = order.pop_front() {
                    map.remove(&old);
                }
            }
            if map
                .insert(
                    norm.key.clone(),
                    Entry {
                        stmt: stmt.clone(),
                        epoch,
                    },
                )
                .is_none()
            {
                order.push_back(norm.key.clone());
            }
        }
        Ok((stmt, Some(norm.slots)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_is_whitespace_case_and_literal_insensitive() {
        let a = normalize("SELECT a FROM t WHERE b = 10").unwrap();
        let b = normalize("select  a\nfrom T where B=99").unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.slots, vec![Some(Value::Int32(10))]);
        assert_eq!(b.slots, vec![Some(Value::Int32(99))]);
    }

    #[test]
    fn unary_minus_folds_into_the_captured_literal() {
        let n = normalize("update t set b = b + -17 where k = 1").unwrap();
        assert_eq!(
            n.slots,
            vec![Some(Value::Int32(-17)), Some(Value::Int32(1))]
        );
        assert!(!n.key.contains('-'), "key was: {}", n.key);
    }

    #[test]
    fn binary_minus_is_not_folded() {
        let n = normalize("select a from t where b = a - 3").unwrap();
        assert_eq!(n.key, "select a from t where b = a - ?");
        assert_eq!(n.slots, vec![Some(Value::Int32(3))]);
    }

    #[test]
    fn explicit_params_leave_open_slots() {
        let n = normalize("select a from t where b = ? and c = 5").unwrap();
        assert_eq!(n.slots, vec![None, Some(Value::Int32(5))]);
    }
}
