//! `hpd-cli`: a small SQL REPL over an in-process engine.
//!
//! Interactive: prompts on a terminal, reads statements terminated by `;`
//! (statements may span lines). Piped: same grammar, no prompt, suitable
//! for `hpd-cli < script.sql` smoke tests. `--protocol` speaks the line
//! protocol from `hpd_sql::protocol` instead of the human format.

use std::io::{BufRead, IsTerminal, Write};
use std::sync::Arc;

use hpd_engine::{Database, DbConfig};
use hpd_sql::{partitions_report, PlanCache, SqlOutput, SqlSession};

fn main() {
    let mut quiet = false;
    let mut protocol = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            "--protocol" => protocol = true,
            "--help" | "-h" => {
                println!(
                    "hpd-cli: SQL REPL over an in-process hybrid-physical-designs engine\n\
                     usage: hpd-cli [--quiet] [--protocol]\n\
                     Statements end with ';'. Try: CREATE TABLE t (k INT PRIMARY KEY, v INT);\n\
                     Meta-commands (one per line, no ';'):\n\
                       \\heat                      rowgroup heat / backlog per columnstore index\n\
                       \\maintain <table> [rows]   run maintenance (optionally one budgeted increment)\n\
                       \\partitions <table>        per-partition physical design, row counts, heat"
                );
                return;
            }
            other => {
                eprintln!("unknown flag '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }

    let db = Database::new(DbConfig::default());
    let cache = Arc::new(PlanCache::new(256));
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();

    if protocol {
        hpd_sql::protocol::serve(&db, cache, stdin.lock(), stdout.lock())
            .expect("stdio protocol I/O failed");
        return;
    }

    let interactive = stdin.is_terminal();
    if interactive && !quiet {
        println!("hpd-cli — statements end with ';', Ctrl-D quits");
    }
    let mut session = SqlSession::with_cache(&db, cache);
    let mut out = stdout.lock();
    let mut pending = String::new();
    loop {
        if interactive && !quiet {
            print!(
                "{}",
                if pending.trim().is_empty() {
                    "hpd> "
                } else {
                    "...> "
                }
            );
            out.flush().expect("stdout flush failed");
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("stdin read failed: {e}");
                std::process::exit(1);
            }
        }
        // Meta-commands: one per line, intercepted before SQL accumulation
        // (only when no statement is pending, so a `\` inside a string
        // literal spanning lines is never misread as a command).
        if pending.trim().is_empty() && line.trim_start().starts_with('\\') {
            run_meta(&db, line.trim(), &mut out);
            continue;
        }
        pending.push_str(&line);
        if !line.trim_end().ends_with(';') {
            continue;
        }
        let script = std::mem::take(&mut pending);
        run_script(&mut session, &script, &mut out);
    }
    if !pending.trim().is_empty() {
        run_script(&mut session, &pending, &mut out);
    }
}

/// `\heat` and `\maintain <table> [budget]`: operational peepholes into the
/// columnstore maintenance machinery, psql-style.
fn run_meta(db: &Database, line: &str, out: &mut impl Write) {
    let mut words = line.split_whitespace();
    let r: std::io::Result<()> = (|| {
        match words.next() {
            Some("\\heat") => {
                let reports = db.heat_report();
                if reports.is_empty() {
                    writeln!(out, "(no columnstore indexes)")?;
                }
                for (table, index, rep) in reports {
                    writeln!(
                        out,
                        "{table} ({index} csi): delta_writes={} delta_reads={} decay_passes={}",
                        rep.delta_writes, rep.delta_reads, rep.decay_passes
                    )?;
                    for rg in &rep.rowgroups {
                        writeln!(
                            out,
                            "  rg{:<3} rows={}/{} reads={} prunes={} writes={} score={}",
                            rg.rowgroup,
                            rg.active_rows,
                            rg.rows,
                            rg.reads,
                            rg.prunes,
                            rg.writes,
                            rg.score()
                        )?;
                    }
                }
            }
            Some("\\maintain") => {
                let Some(table) = words.next() else {
                    writeln!(out, "ERR: usage: \\maintain <table> [budget_rows]")?;
                    return Ok(());
                };
                let budget = match words.next().map(str::parse::<usize>) {
                    None => None,
                    Some(Ok(n)) => Some(n),
                    Some(Err(e)) => {
                        writeln!(out, "ERR: bad budget: {e}")?;
                        return Ok(());
                    }
                };
                let mut b = db.maintenance(table);
                if let Some(n) = budget {
                    b = b.budget_rows(n);
                }
                match b.run() {
                    Err(e) => writeln!(out, "ERR: {e}")?,
                    Ok(r) => writeln!(
                        out,
                        "OK MAINTAIN {}: moved={} deletes_compacted={} pending_delta={} \
                         pending_deletes={} complete={}",
                        r.table,
                        r.rows_moved,
                        r.deletes_compacted,
                        r.delta_rows,
                        r.delete_buffer,
                        r.complete
                    )?,
                }
            }
            Some("\\partitions") => {
                let Some(table) = words.next() else {
                    writeln!(out, "ERR: usage: \\partitions <table>")?;
                    return Ok(());
                };
                match partitions_report(db, table) {
                    Err(e) => writeln!(out, "ERR: {e}")?,
                    Ok(report) => write!(out, "{report}")?,
                }
            }
            Some(other) => writeln!(
                out,
                "ERR: unknown meta-command {other} (try \\heat, \\maintain <table> [budget], \
                 or \\partitions <table>)"
            )?,
            None => {}
        }
        Ok(())
    })();
    r.expect("stdout write failed");
}

fn run_script(session: &mut SqlSession<'_>, script: &str, out: &mut impl Write) {
    match session.execute(script) {
        Err(e) => writeln!(out, "ERR: {e}").expect("stdout write failed"),
        Ok(outputs) => {
            for o in outputs {
                print_output(&o, out);
            }
        }
    }
}

fn print_output(o: &SqlOutput, out: &mut impl Write) {
    let r: std::io::Result<()> = (|| {
        match o {
            SqlOutput::Rows { columns, rows } => {
                writeln!(out, "{}", columns.join(" | "))?;
                for row in rows {
                    let vals: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
                    writeln!(out, "{}", vals.join(" | "))?;
                }
                writeln!(out, "({} rows)", rows.len())?;
            }
            SqlOutput::Affected(n) => writeln!(out, "OK ({n} affected)")?,
            SqlOutput::Command(c) => writeln!(out, "OK {c}")?,
        }
        Ok(())
    })();
    r.expect("stdout write failed");
}
