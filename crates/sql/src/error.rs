//! Named SQL diagnostics carrying byte offsets into the statement text.

use std::fmt;

use hpd_common::HpdError;

/// What went wrong, as a stable machine-readable kind. Tests assert on the
/// kind (not the message), so renaming a variant is a breaking change for
/// the golden corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlErrorKind {
    /// A string literal was opened with `'` and never closed.
    UnterminatedString,
    /// A byte the lexer has no rule for.
    UnexpectedChar,
    /// A numeric literal that does not parse (overflow, trailing junk).
    InvalidNumber,
    /// The parser expected something else here.
    UnexpectedToken,
    /// A referenced table is not in the catalog.
    UnknownTable,
    /// A referenced column is not in any in-scope table.
    UnknownColumn,
    /// An unqualified column name matched more than one in-scope table.
    AmbiguousColumn,
    /// A literal cannot be coerced to the column type it is compared
    /// against or assigned to.
    TypeMismatch,
    /// Structurally valid SQL the engine cannot run (non-grouped select
    /// item, aggregate in WHERE, arity mismatch in VALUES, ...).
    InvalidQuery,
    /// A `?` placeholder with no value supplied at execute time.
    MissingParameter,
}

impl SqlErrorKind {
    pub fn name(self) -> &'static str {
        match self {
            SqlErrorKind::UnterminatedString => "unterminated-string",
            SqlErrorKind::UnexpectedChar => "unexpected-char",
            SqlErrorKind::InvalidNumber => "invalid-number",
            SqlErrorKind::UnexpectedToken => "unexpected-token",
            SqlErrorKind::UnknownTable => "unknown-table",
            SqlErrorKind::UnknownColumn => "unknown-column",
            SqlErrorKind::AmbiguousColumn => "ambiguous-column",
            SqlErrorKind::TypeMismatch => "type-mismatch",
            SqlErrorKind::InvalidQuery => "invalid-query",
            SqlErrorKind::MissingParameter => "missing-parameter",
        }
    }
}

/// A diagnostic anchored to a byte offset in the original statement text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    pub kind: SqlErrorKind,
    /// Byte offset into the text handed to [`crate::parse`] /
    /// [`crate::SqlSession::execute`] where the problem starts.
    pub offset: usize,
    pub message: String,
}

impl SqlError {
    pub fn new(kind: SqlErrorKind, offset: usize, message: impl Into<String>) -> SqlError {
        SqlError {
            kind,
            offset,
            message: message.into(),
        }
    }

    /// Shift the offset by `base` bytes — used when a statement was carved
    /// out of a multi-statement script.
    pub fn offset_by(mut self, base: usize) -> SqlError {
        self.offset += base;
        self
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at byte {}: {}",
            self.kind.name(),
            self.offset,
            self.message
        )
    }
}

impl std::error::Error for SqlError {}

impl From<SqlError> for HpdError {
    fn from(e: SqlError) -> HpdError {
        HpdError::InvalidQuery(e.to_string())
    }
}

pub type SqlResult<T> = Result<T, SqlError>;
