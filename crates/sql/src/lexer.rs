//! Hand-written SQL lexer.
//!
//! Produces a flat token stream with byte offsets into the original text.
//! Identifiers are lowercased here so the rest of the front-end (and the
//! plan-cache normalizer) never deals with case; keywords are ordinary
//! identifiers matched by spelling in the parser. `--` comments run to end
//! of line. String literals use single quotes with `''` as the escape.

use crate::error::{SqlError, SqlErrorKind, SqlResult};

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword, already lowercased.
    Ident(String),
    /// Integer or decimal numeric literal, raw spelling (always unsigned;
    /// unary minus is a separate `-` punct folded in by the parser).
    Number(String),
    /// String literal contents with escapes resolved (no quotes).
    Str(String),
    /// One of `( ) , ; . * = <> < <= > >= + - / ?`.
    Punct(&'static str),
    Eof,
}

impl Tok {
    /// Rendering used by the plan-cache normalizer: one canonical spelling
    /// per token.
    pub fn render(&self) -> String {
        match self {
            Tok::Ident(s) => s.clone(),
            Tok::Number(s) => s.clone(),
            Tok::Str(s) => format!("'{}'", s.replace('\'', "''")),
            Tok::Punct(p) => (*p).to_string(),
            Tok::Eof => String::new(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    /// Byte offset of the first byte of this token in the input.
    pub offset: usize,
}

/// Lex `input` to a token vector ending with [`Tok::Eof`].
pub fn lex(input: &str) -> SqlResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // -- line comment
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(Token {
                tok: Tok::Ident(input[start..i].to_ascii_lowercase()),
                offset: start,
            });
            continue;
        }
        if c.is_ascii_digit() {
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            // "123abc" is a malformed number, not two tokens.
            if i < bytes.len() && (bytes[i].is_ascii_alphabetic() || bytes[i] == b'_') {
                return Err(SqlError::new(
                    SqlErrorKind::InvalidNumber,
                    start,
                    format!(
                        "malformed numeric literal starting at '{}'",
                        &input[start..i]
                    ),
                ));
            }
            out.push(Token {
                tok: Tok::Number(input[start..i].to_string()),
                offset: start,
            });
            continue;
        }
        if c == '\'' {
            let mut s = String::new();
            i += 1;
            loop {
                match bytes.get(i) {
                    None => {
                        return Err(SqlError::new(
                            SqlErrorKind::UnterminatedString,
                            start,
                            "string literal is never closed",
                        ));
                    }
                    Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                        s.push('\'');
                        i += 2;
                    }
                    Some(b'\'') => {
                        i += 1;
                        break;
                    }
                    Some(&b) => {
                        s.push(b as char);
                        i += 1;
                    }
                }
            }
            out.push(Token {
                tok: Tok::Str(s),
                offset: start,
            });
            continue;
        }
        let two: Option<&'static str> = match (c, bytes.get(i + 1).map(|&b| b as char)) {
            ('<', Some('>')) => Some("<>"),
            ('<', Some('=')) => Some("<="),
            ('>', Some('=')) => Some(">="),
            ('!', Some('=')) => Some("<>"),
            _ => None,
        };
        if let Some(p) = two {
            out.push(Token {
                tok: Tok::Punct(p),
                offset: start,
            });
            i += 2;
            continue;
        }
        let one: Option<&'static str> = match c {
            '(' => Some("("),
            ')' => Some(")"),
            ',' => Some(","),
            ';' => Some(";"),
            '.' => Some("."),
            '*' => Some("*"),
            '=' => Some("="),
            '<' => Some("<"),
            '>' => Some(">"),
            '+' => Some("+"),
            '-' => Some("-"),
            '/' => Some("/"),
            '?' => Some("?"),
            _ => None,
        };
        match one {
            Some(p) => {
                out.push(Token {
                    tok: Tok::Punct(p),
                    offset: start,
                });
                i += 1;
            }
            None => {
                return Err(SqlError::new(
                    SqlErrorKind::UnexpectedChar,
                    start,
                    format!("unexpected character '{c}'"),
                ));
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        offset: input.len(),
    });
    Ok(out)
}

/// Split a script into statements at top-level `;` tokens, returning each
/// statement's text and its byte offset in the script (for error
/// re-anchoring). Empty statements (stray `;;`, trailing `;`) are dropped.
pub fn split_statements(input: &str) -> SqlResult<Vec<(String, usize)>> {
    let tokens = lex(input)?;
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    let mut last_end = 0;
    for t in &tokens {
        match &t.tok {
            Tok::Punct(";") | Tok::Eof => {
                if let Some(s) = start.take() {
                    out.push((input[s..last_end].to_string(), s));
                }
            }
            tok => {
                if start.is_none() {
                    start = Some(t.offset);
                }
                last_end = t.offset + token_len(tok, input, t.offset);
            }
        }
    }
    Ok(out)
}

/// Length in bytes of `tok` as it appears in `input` at `offset`. Strings
/// need a rescan because escapes collapse during lexing.
fn token_len(tok: &Tok, input: &str, offset: usize) -> usize {
    match tok {
        Tok::Ident(s) | Tok::Number(s) => s.len(),
        Tok::Punct(p) => p.len(),
        Tok::Eof => 0,
        Tok::Str(_) => {
            let bytes = &input.as_bytes()[offset + 1..];
            let mut i = 0;
            loop {
                match bytes.get(i) {
                    Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => i += 2,
                    Some(b'\'') => return i + 2,
                    Some(_) => i += 1,
                    None => return i + 1,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_mixed_statement() {
        let toks = lex("SELECT a, b FROM t WHERE a >= 10 AND s = 'it''s'").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert_eq!(kinds[0], &Tok::Ident("select".into()));
        assert_eq!(kinds[8], &Tok::Punct(">="));
        assert_eq!(kinds[9], &Tok::Number("10".into()));
        assert_eq!(kinds[13], &Tok::Str("it's".into()));
    }

    #[test]
    fn offsets_are_byte_accurate() {
        let toks = lex("a  <> 'x'").unwrap();
        assert_eq!(toks[1].offset, 3);
        assert_eq!(toks[2].offset, 6);
    }

    #[test]
    fn unterminated_string_reports_opening_quote() {
        let e = lex("select 'abc").unwrap_err();
        assert_eq!(e.kind, SqlErrorKind::UnterminatedString);
        assert_eq!(e.offset, 7);
    }

    #[test]
    fn splits_on_semicolons_with_string_semicolons_intact() {
        let parts = split_statements("insert into t values (';');\n select 1 ;;").unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, "insert into t values (';')");
        assert_eq!(parts[1].0, "select 1");
        assert_eq!(parts[1].1, 29);
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("select 1 -- trailing\n, 2").unwrap();
        assert_eq!(toks.len(), 5); // select 1 , 2 eof
    }
}
