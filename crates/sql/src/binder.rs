//! Name resolution and lowering: [`SqlStatement`] → [`Bound`].
//!
//! The binder resolves column names to ordinals against the live catalog,
//! substitutes `?` parameters, coerces literals toward the column types
//! they meet (comparison, arithmetic, assignment, VALUES), splits WHERE
//! conjunctions into per-table predicates plus equi-join edges, and
//! validates aggregate/GROUP BY shape — producing either an engine
//! [`Statement`] or a DDL / transaction-control command for the session
//! layer to dispatch.

use hpd_common::{ColumnDef, DataType, Expr, Row, Schema, Value};
use hpd_engine::{
    AggItem, ColRef, Database, DeleteStmt, EquiJoin, IndexDescriptor, InsertStmt, IsolationLevel,
    PartitionSpec, SelectQuery, Statement, TableInput, UpdateStmt,
};

use crate::ast::*;
use crate::error::{SqlError, SqlErrorKind, SqlResult};

/// A fully resolved statement, ready for the session layer.
#[derive(Debug, Clone)]
pub enum Bound {
    /// DML/query lowered to the engine AST.
    Stmt(Statement),
    Begin(Option<IsolationLevel>),
    Commit,
    Rollback,
    SetIsolation(IsolationLevel),
    CreateTable {
        name: String,
        schema: Schema,
        pk: Vec<usize>,
        primary: IndexDescriptor,
        /// Partitioning declaration (`None` for a monolithic table).
        spec: Option<PartitionSpec>,
    },
    CreateIndex {
        table: String,
        descriptor: IndexDescriptor,
    },
    DropIndex {
        table: String,
        /// 1-based secondary index ordinal in meta order.
        ordinal: usize,
    },
}

/// Bind `stmt` against `db`'s catalog, substituting `params` for `?`
/// placeholders.
pub fn bind(db: &Database, stmt: &SqlStatement, params: &[Value]) -> SqlResult<Bound> {
    let b = Binder { db, params };
    b.bind(stmt)
}

struct Binder<'a> {
    db: &'a Database,
    params: &'a [Value],
}

/// In-scope FROM tables, in declaration order.
struct Scope {
    tables: Vec<(String, Schema)>,
}

impl Scope {
    /// Resolve a (possibly qualified) column name to
    /// `(table index, ordinal, type)`.
    fn resolve(
        &self,
        table: &Option<String>,
        name: &str,
        offset: usize,
    ) -> SqlResult<(usize, usize, DataType)> {
        if let Some(q) = table {
            let Some(t) = self.tables.iter().position(|(n, _)| n == q) else {
                return Err(SqlError::new(
                    SqlErrorKind::UnknownTable,
                    offset,
                    format!("unknown table qualifier '{q}'"),
                ));
            };
            let schema = &self.tables[t].1;
            let ord = schema.index_of(name).map_err(|_| {
                SqlError::new(
                    SqlErrorKind::UnknownColumn,
                    offset,
                    format!("unknown column '{q}.{name}'"),
                )
            })?;
            return Ok((t, ord, schema.column(ord).dtype));
        }
        let mut hit = None;
        for (t, (tname, schema)) in self.tables.iter().enumerate() {
            if let Ok(ord) = schema.index_of(name) {
                if let Some((pt, _, _)) = hit {
                    let prev: &str = &self.tables[pt as usize].0;
                    return Err(SqlError::new(
                        SqlErrorKind::AmbiguousColumn,
                        offset,
                        format!("column '{name}' exists in both '{prev}' and '{tname}'"),
                    ));
                }
                hit = Some((t as u32, ord, schema.column(ord).dtype));
            }
        }
        match hit {
            Some((t, ord, dt)) => Ok((t as usize, ord, dt)),
            None => Err(SqlError::new(
                SqlErrorKind::UnknownColumn,
                offset,
                format!("unknown column '{name}'"),
            )),
        }
    }
}

impl<'a> Binder<'a> {
    fn schema_of(&self, table: &str, offset: usize) -> SqlResult<Schema> {
        self.db
            .with_table(table, |t| t.schema().clone())
            .map_err(|_| {
                SqlError::new(
                    SqlErrorKind::UnknownTable,
                    offset,
                    format!("unknown table '{table}'"),
                )
            })
    }

    fn param(&self, index: usize, offset: usize) -> SqlResult<Value> {
        self.params.get(index).cloned().ok_or_else(|| {
            SqlError::new(
                SqlErrorKind::MissingParameter,
                offset,
                format!("no value bound for parameter ?{}", index + 1),
            )
        })
    }

    /// Literal value of `e` after parameter substitution, coerced to
    /// `anchor` when one is known.
    fn literal(&self, value: Value, offset: usize, anchor: Option<DataType>) -> SqlResult<Value> {
        match anchor {
            None => Ok(value),
            Some(d) => value.coerce_to(d).ok_or_else(|| {
                SqlError::new(
                    SqlErrorKind::TypeMismatch,
                    offset,
                    format!(
                        "cannot use {} value where {} is expected",
                        value.data_type(),
                        d.name()
                    ),
                )
            }),
        }
    }

    /// Resolve a `PARTITION BY` clause against the table being created:
    /// the partition column must exist, range bounds must be literals
    /// coercible to its type, and the spec's own validation (increasing
    /// bounds, partition count) is surfaced at the clause's location.
    fn bind_partition_by(&self, p: &SqlPartitionBy, schema: &Schema) -> SqlResult<PartitionSpec> {
        let resolve = |name: &str, offset: usize| -> SqlResult<(usize, DataType)> {
            let ord = schema.index_of(name).map_err(|_| {
                SqlError::new(
                    SqlErrorKind::UnknownColumn,
                    offset,
                    format!("unknown partition column '{name}'"),
                )
            })?;
            Ok((ord, schema.column(ord).dtype))
        };
        match p {
            SqlPartitionBy::Range {
                column,
                column_offset,
                bounds,
            } => {
                let (ord, dtype) = resolve(column, *column_offset)?;
                let values = bounds
                    .iter()
                    .map(|b| match b {
                        SqlExpr::Lit { value, offset } => {
                            self.literal(value.clone(), *offset, Some(dtype))
                        }
                        // Plan-cache normalization turns literal bounds into
                        // parameters; the captured values arrive here.
                        SqlExpr::Param { index, offset } => {
                            let v = self.param(*index, *offset)?;
                            self.literal(v, *offset, Some(dtype))
                        }
                        other => Err(SqlError::new(
                            SqlErrorKind::InvalidQuery,
                            other.offset(),
                            "partition bounds must be literals",
                        )),
                    })
                    .collect::<SqlResult<Vec<Value>>>()?;
                PartitionSpec::range(ord, values).map_err(|e| {
                    SqlError::new(SqlErrorKind::InvalidQuery, *column_offset, e.to_string())
                })
            }
            SqlPartitionBy::Hash {
                column,
                column_offset,
                partitions,
                partitions_offset,
            } => {
                let (ord, _) = resolve(column, *column_offset)?;
                PartitionSpec::hash(ord, *partitions).map_err(|e| {
                    SqlError::new(
                        SqlErrorKind::InvalidQuery,
                        *partitions_offset,
                        e.to_string(),
                    )
                })
            }
        }
    }

    /// Static type of a scalar expression, used only as a coercion anchor
    /// for the literal on the other side of an operator. `None` means "no
    /// column in this subtree" (pure literals keep their spelled type).
    fn infer(&self, e: &SqlExpr, scope: &Scope) -> SqlResult<Option<DataType>> {
        Ok(match e {
            SqlExpr::Col {
                table,
                name,
                offset,
            } => Some(scope.resolve(table, name, *offset)?.2),
            SqlExpr::Lit { .. } | SqlExpr::Param { .. } => None,
            SqlExpr::Arith { lhs, rhs, .. } => {
                let l = self.infer(lhs, scope)?;
                let r = self.infer(rhs, scope)?;
                match (l, r) {
                    (None, None) => None,
                    (Some(d), None) | (None, Some(d)) => Some(promote(d, d)),
                    (Some(a), Some(b)) => Some(promote(a, b)),
                }
            }
            // Booleans never anchor a literal.
            SqlExpr::Cmp { .. }
            | SqlExpr::Between { .. }
            | SqlExpr::And(_)
            | SqlExpr::Or(_)
            | SqlExpr::Not(_) => None,
        })
    }

    /// Lower a scalar/boolean expression to the engine [`Expr`], recording
    /// which table each column came from in `used`. `anchor` coerces
    /// literal leaves when the subtree contains no column of its own.
    fn lower(
        &self,
        e: &SqlExpr,
        scope: &Scope,
        anchor: Option<DataType>,
        used: &mut Vec<usize>,
    ) -> SqlResult<Expr> {
        Ok(match e {
            SqlExpr::Col {
                table,
                name,
                offset,
            } => {
                let (t, ord, _) = scope.resolve(table, name, *offset)?;
                if !used.contains(&t) {
                    used.push(t);
                }
                Expr::Col(ord)
            }
            SqlExpr::Lit { value, offset } => {
                Expr::Lit(self.literal(value.clone(), *offset, anchor)?)
            }
            SqlExpr::Param { index, offset } => {
                let v = self.param(*index, *offset)?;
                Expr::Lit(self.literal(v, *offset, anchor)?)
            }
            SqlExpr::Cmp { op, lhs, rhs } => {
                let dl = self.infer(lhs, scope)?;
                let dr = self.infer(rhs, scope)?;
                let l = self.lower(lhs, scope, if dl.is_none() { dr } else { None }, used)?;
                let r = self.lower(rhs, scope, if dr.is_none() { dl } else { None }, used)?;
                Expr::Cmp {
                    op: *op,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                }
            }
            SqlExpr::Arith { op, lhs, rhs } => {
                let dl = self.infer(lhs, scope)?;
                let dr = self.infer(rhs, scope)?;
                let l = self.lower(
                    lhs,
                    scope,
                    if dl.is_none() { dr.or(anchor) } else { None },
                    used,
                )?;
                let r = self.lower(
                    rhs,
                    scope,
                    if dr.is_none() { dl.or(anchor) } else { None },
                    used,
                )?;
                Expr::Arith {
                    op: *op,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                }
            }
            SqlExpr::Between { expr, lo, hi } => {
                let d = self.infer(expr, scope)?;
                let e0 = self.lower(expr, scope, None, used)?;
                let lo = self.lower(lo, scope, d, used)?;
                let hi = self.lower(hi, scope, d, used)?;
                // Same shape as `Expr::between`: And[e >= lo, e <= hi].
                Expr::And(vec![
                    Expr::Cmp {
                        op: hpd_common::CmpOp::Ge,
                        lhs: Box::new(e0.clone()),
                        rhs: Box::new(lo),
                    },
                    Expr::Cmp {
                        op: hpd_common::CmpOp::Le,
                        lhs: Box::new(e0),
                        rhs: Box::new(hi),
                    },
                ])
            }
            SqlExpr::And(parts) => Expr::And(
                parts
                    .iter()
                    .map(|p| self.lower(p, scope, None, used))
                    .collect::<SqlResult<_>>()?,
            ),
            SqlExpr::Or(parts) => Expr::Or(
                parts
                    .iter()
                    .map(|p| self.lower(p, scope, None, used))
                    .collect::<SqlResult<_>>()?,
            ),
            SqlExpr::Not(inner) => Expr::Not(Box::new(self.lower(inner, scope, None, used)?)),
        })
    }

    fn bind(&self, stmt: &SqlStatement) -> SqlResult<Bound> {
        match stmt {
            SqlStatement::Select(q) => self.bind_select(q).map(Statement::Select).map(Bound::Stmt),
            SqlStatement::Insert {
                table,
                table_offset,
                rows,
            } => self.bind_insert(table, *table_offset, rows),
            SqlStatement::Update {
                table,
                table_offset,
                top,
                set,
                where_,
            } => self.bind_update(table, *table_offset, *top, set, where_),
            SqlStatement::Delete {
                table,
                table_offset,
                top,
                where_,
            } => self.bind_delete(table, *table_offset, *top, where_),
            SqlStatement::Begin { isolation } => Ok(Bound::Begin(*isolation)),
            SqlStatement::Commit => Ok(Bound::Commit),
            SqlStatement::Rollback => Ok(Bound::Rollback),
            SqlStatement::SetIsolation(l) => Ok(Bound::SetIsolation(*l)),
            SqlStatement::CreateTable {
                name,
                columns,
                columnstore,
                partition_by,
            } => {
                let defs: Vec<ColumnDef> = columns
                    .iter()
                    .map(|c| ColumnDef::new(c.name.clone(), c.dtype))
                    .collect();
                let mut pk: Vec<usize> = columns
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.primary_key)
                    .map(|(i, _)| i)
                    .collect();
                if pk.is_empty() {
                    pk = vec![0];
                }
                let primary = if *columnstore {
                    IndexDescriptor::PrimaryCsi
                } else {
                    IndexDescriptor::PrimaryBTree { keys: pk.clone() }
                };
                let schema = Schema::new(defs);
                let spec = partition_by
                    .as_ref()
                    .map(|p| self.bind_partition_by(p, &schema))
                    .transpose()?;
                Ok(Bound::CreateTable {
                    name: name.clone(),
                    schema,
                    pk,
                    primary,
                    spec,
                })
            }
            SqlStatement::CreateIndex {
                table,
                table_offset,
                columnstore,
                keys,
                includes,
            } => {
                let schema = self.schema_of(table, *table_offset)?;
                let resolve = |cols: &[(String, usize)]| -> SqlResult<Vec<usize>> {
                    cols.iter()
                        .map(|(name, offset)| {
                            schema.index_of(name).map_err(|_| {
                                SqlError::new(
                                    SqlErrorKind::UnknownColumn,
                                    *offset,
                                    format!("unknown column '{name}'"),
                                )
                            })
                        })
                        .collect()
                };
                let keys_r = resolve(keys)?;
                let includes_r = resolve(includes)?;
                let descriptor = if *columnstore {
                    if !includes.is_empty() {
                        return Err(SqlError::new(
                            SqlErrorKind::InvalidQuery,
                            includes[0].1,
                            "columnstore indexes do not take INCLUDE columns",
                        ));
                    }
                    IndexDescriptor::SecondaryCsi { columns: keys_r }
                } else {
                    IndexDescriptor::SecondaryBTree {
                        keys: keys_r,
                        includes: includes_r,
                    }
                };
                Ok(Bound::CreateIndex {
                    table: table.clone(),
                    descriptor,
                })
            }
            SqlStatement::DropIndex {
                table,
                table_offset,
                ordinal,
            } => {
                // Table existence is checked here; the ordinal is validated
                // at execution against the live meta list.
                self.schema_of(table, *table_offset)?;
                Ok(Bound::DropIndex {
                    table: table.clone(),
                    ordinal: *ordinal,
                })
            }
        }
    }

    fn bind_insert(
        &self,
        table: &str,
        table_offset: usize,
        rows: &[Vec<SqlExpr>],
    ) -> SqlResult<Bound> {
        let schema = self.schema_of(table, table_offset)?;
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != schema.len() {
                return Err(SqlError::new(
                    SqlErrorKind::InvalidQuery,
                    row.first().map_or(table_offset, SqlExpr::offset),
                    format!(
                        "VALUES row has {} values, table '{table}' has {} columns",
                        row.len(),
                        schema.len()
                    ),
                ));
            }
            let mut values = Vec::with_capacity(row.len());
            for (i, e) in row.iter().enumerate() {
                let anchor = Some(schema.column(i).dtype);
                let v = match e {
                    SqlExpr::Lit { value, offset } => {
                        self.literal(value.clone(), *offset, anchor)?
                    }
                    SqlExpr::Param { index, offset } => {
                        self.literal(self.param(*index, *offset)?, *offset, anchor)?
                    }
                    other => {
                        return Err(SqlError::new(
                            SqlErrorKind::InvalidQuery,
                            other.offset(),
                            "INSERT values must be literals or parameters",
                        ));
                    }
                };
                values.push(v);
            }
            out.push(Row::new(values));
        }
        Ok(Bound::Stmt(Statement::Insert(InsertStmt {
            table: table.to_string(),
            rows: out,
        })))
    }

    /// Lower an optional WHERE on a single-table DML statement. A missing
    /// WHERE becomes the empty conjunction (`And([])` — always true),
    /// because the engine's write statements take a mandatory predicate.
    fn dml_predicate(
        &self,
        table: &str,
        table_offset: usize,
        where_: &Option<SqlExpr>,
    ) -> SqlResult<Expr> {
        let scope = Scope {
            tables: vec![(table.to_string(), self.schema_of(table, table_offset)?)],
        };
        match where_ {
            None => Ok(Expr::And(vec![])),
            Some(e) => self.lower(e, &scope, None, &mut Vec::new()),
        }
    }

    fn bind_update(
        &self,
        table: &str,
        table_offset: usize,
        top: Option<usize>,
        set: &[(String, usize, SqlExpr)],
        where_: &Option<SqlExpr>,
    ) -> SqlResult<Bound> {
        let schema = self.schema_of(table, table_offset)?;
        let scope = Scope {
            tables: vec![(table.to_string(), schema.clone())],
        };
        let mut lowered = Vec::with_capacity(set.len());
        for (col, offset, e) in set {
            let ord = schema.index_of(col).map_err(|_| {
                SqlError::new(
                    SqlErrorKind::UnknownColumn,
                    *offset,
                    format!("unknown column '{col}'"),
                )
            })?;
            let anchor = Some(schema.column(ord).dtype);
            lowered.push((ord, self.lower(e, &scope, anchor, &mut Vec::new())?));
        }
        Ok(Bound::Stmt(Statement::Update(UpdateStmt {
            table: table.to_string(),
            predicate: self.dml_predicate(table, table_offset, where_)?,
            top,
            set: lowered,
        })))
    }

    fn bind_delete(
        &self,
        table: &str,
        table_offset: usize,
        top: Option<usize>,
        where_: &Option<SqlExpr>,
    ) -> SqlResult<Bound> {
        Ok(Bound::Stmt(Statement::Delete(DeleteStmt {
            table: table.to_string(),
            predicate: self.dml_predicate(table, table_offset, where_)?,
            top,
        })))
    }

    fn bind_select(&self, q: &SqlSelect) -> SqlResult<SelectQuery> {
        let mut scope = Scope { tables: Vec::new() };
        for (name, offset) in &q.tables {
            scope
                .tables
                .push((name.clone(), self.schema_of(name, *offset)?));
        }

        // Select list: expand * and split into plain columns / aggregates.
        let mut plain: Vec<(ColRef, String)> = Vec::new();
        let mut aggs: Vec<(AggItem, String)> = Vec::new();
        let mut agg_seen = false;
        for item in &q.items {
            match item {
                SelectItem::Star => {
                    for (t, (_, schema)) in scope.tables.iter().enumerate() {
                        for (ord, col) in schema.columns().iter().enumerate() {
                            plain.push((ColRef::new(t, ord), col.name.clone()));
                        }
                    }
                    if agg_seen {
                        return Err(SqlError::new(
                            SqlErrorKind::InvalidQuery,
                            0,
                            "'*' cannot follow an aggregate in the select list",
                        ));
                    }
                }
                SelectItem::Col(e) => {
                    let SqlExpr::Col {
                        table,
                        name,
                        offset,
                    } = e
                    else {
                        unreachable!("parser only produces Col items");
                    };
                    if agg_seen {
                        return Err(SqlError::new(
                            SqlErrorKind::InvalidQuery,
                            *offset,
                            "grouping columns must come before aggregates in the select list",
                        ));
                    }
                    let (t, ord, _) = scope.resolve(table, name, *offset)?;
                    plain.push((ColRef::new(t, ord), name.clone()));
                }
                SelectItem::Agg { func, arg, offset } => {
                    agg_seen = true;
                    let item = match arg {
                        // COUNT(*): count over the first table's first
                        // column (row count).
                        None => AggItem::column(*func, ColRef::new(0, 0)),
                        Some(e) => {
                            let mut used = Vec::new();
                            let expr = self.lower(e, &scope, None, &mut used)?;
                            let table = match used.as_slice() {
                                [] => 0,
                                [t] => *t,
                                _ => {
                                    return Err(SqlError::new(
                                        SqlErrorKind::InvalidQuery,
                                        *offset,
                                        "aggregate arguments must reference a single table",
                                    ));
                                }
                            };
                            AggItem::new(*func, table, expr)
                        }
                    };
                    let name = match arg {
                        None => format!("{}(*)", func.name()),
                        Some(SqlExpr::Col { name, .. }) => format!("{}({})", func.name(), name),
                        Some(_) => format!("{}(...)", func.name()),
                    };
                    aggs.push((item, name));
                }
            }
        }

        // GROUP BY must mirror the plain select columns exactly.
        let mut group_by = Vec::new();
        for g in &q.group_by {
            let SqlExpr::Col {
                table,
                name,
                offset,
            } = g
            else {
                unreachable!("parser only produces Col group keys");
            };
            let (t, ord, _) = scope.resolve(table, name, *offset)?;
            group_by.push(ColRef::new(t, ord));
        }
        if !aggs.is_empty() {
            let plain_refs: Vec<ColRef> = plain.iter().map(|(c, _)| *c).collect();
            if plain_refs != group_by {
                let offset = q.group_by.first().map_or(0, SqlExpr::offset);
                return Err(SqlError::new(
                    SqlErrorKind::InvalidQuery,
                    offset,
                    "non-aggregate select columns must match GROUP BY, in order",
                ));
            }
        } else if !group_by.is_empty() {
            return Err(SqlError::new(
                SqlErrorKind::InvalidQuery,
                q.group_by.first().map_or(0, SqlExpr::offset),
                "GROUP BY requires at least one aggregate in the select list",
            ));
        }

        // WHERE + ON: split the top-level conjunction into per-table
        // predicates and cross-table equi-join edges.
        let mut conjuncts: Vec<&SqlExpr> = Vec::new();
        fn collect<'e>(e: &'e SqlExpr, out: &mut Vec<&'e SqlExpr>) {
            match e {
                SqlExpr::And(parts) => {
                    for p in parts {
                        collect(p, out);
                    }
                }
                other => out.push(other),
            }
        }
        for e in &q.on {
            collect(e, &mut conjuncts);
        }
        if let Some(e) = &q.where_ {
            collect(e, &mut conjuncts);
        }

        let mut per_table: Vec<Vec<Expr>> = vec![Vec::new(); scope.tables.len()];
        let mut joins: Vec<EquiJoin> = Vec::new();
        for c in conjuncts {
            // Equi-join shape: col = col across two different tables.
            if let SqlExpr::Cmp {
                op: hpd_common::CmpOp::Eq,
                lhs,
                rhs,
            } = c
            {
                if let (
                    SqlExpr::Col {
                        table: lt,
                        name: ln,
                        offset: lo,
                    },
                    SqlExpr::Col {
                        table: rt,
                        name: rn,
                        offset: ro,
                    },
                ) = (lhs.as_ref(), rhs.as_ref())
                {
                    let (t1, o1, _) = scope.resolve(lt, ln, *lo)?;
                    let (t2, o2, _) = scope.resolve(rt, rn, *ro)?;
                    if t1 != t2 {
                        let (l, r) = if t1 < t2 {
                            (ColRef::new(t1, o1), ColRef::new(t2, o2))
                        } else {
                            (ColRef::new(t2, o2), ColRef::new(t1, o1))
                        };
                        joins.push(EquiJoin { left: l, right: r });
                        continue;
                    }
                }
            }
            let mut used = Vec::new();
            let lowered = self.lower(c, &scope, None, &mut used)?;
            match used.as_slice() {
                // A predicate with no columns still has to hold somewhere;
                // pin it to the first table.
                [] => per_table[0].push(lowered),
                [t] => per_table[*t].push(lowered),
                _ => {
                    return Err(SqlError::new(
                        SqlErrorKind::InvalidQuery,
                        c.offset(),
                        "cross-table predicates must be equi-joins (t1.a = t2.b)",
                    ));
                }
            }
        }

        let tables: Vec<TableInput> = scope
            .tables
            .iter()
            .zip(per_table)
            .map(|((name, _), mut preds)| TableInput {
                name: name.clone(),
                predicate: match preds.len() {
                    0 => None,
                    1 => Some(preds.pop().unwrap()),
                    _ => Some(Expr::And(preds)),
                },
            })
            .collect();

        // Output column names, for ORDER BY resolution (and the session's
        // result header).
        let out_names: Vec<&str> = if aggs.is_empty() {
            plain.iter().map(|(_, n)| n.as_str()).collect()
        } else {
            plain
                .iter()
                .map(|(_, n)| n.as_str())
                .chain(aggs.iter().map(|(_, n)| n.as_str()))
                .collect()
        };
        let arity = out_names.len();
        let mut order_by = Vec::new();
        for (key, asc) in &q.order_by {
            let pos = match key {
                OrderKey::Position { pos, offset } => {
                    if *pos == 0 || *pos > arity {
                        return Err(SqlError::new(
                            SqlErrorKind::InvalidQuery,
                            *offset,
                            format!("ORDER BY position {pos} is out of range 1..={arity}"),
                        ));
                    }
                    *pos - 1
                }
                OrderKey::Name { name, offset } => {
                    let hits: Vec<usize> = out_names
                        .iter()
                        .enumerate()
                        .filter(|(_, n)| **n == name.as_str())
                        .map(|(i, _)| i)
                        .collect();
                    match hits.as_slice() {
                        [i] => *i,
                        [] => {
                            return Err(SqlError::new(
                                SqlErrorKind::UnknownColumn,
                                *offset,
                                format!("ORDER BY column '{name}' is not in the select list"),
                            ));
                        }
                        _ => {
                            return Err(SqlError::new(
                                SqlErrorKind::AmbiguousColumn,
                                *offset,
                                format!("ORDER BY column '{name}' matches several outputs"),
                            ));
                        }
                    }
                }
            };
            order_by.push((pos, *asc));
        }

        Ok(SelectQuery {
            tables,
            joins,
            group_by,
            aggregates: aggs.into_iter().map(|(a, _)| a).collect(),
            select: plain.into_iter().map(|(c, _)| c).collect(),
            order_by,
            limit: q.limit,
        })
    }
}

/// Output column names for a bound select, mirroring
/// [`Binder::bind_select`]'s naming. Used by the session layer for result
/// headers.
pub fn output_names(db: &Database, q: &SqlSelect) -> Vec<String> {
    let mut names = Vec::new();
    let mut agg_names = Vec::new();
    for item in &q.items {
        match item {
            SelectItem::Star => {
                for (name, _) in &q.tables {
                    if let Ok(cols) = db.with_table(name, |t| {
                        t.schema()
                            .columns()
                            .iter()
                            .map(|c| c.name.clone())
                            .collect::<Vec<_>>()
                    }) {
                        names.extend(cols);
                    }
                }
            }
            SelectItem::Col(SqlExpr::Col { name, .. }) => names.push(name.clone()),
            SelectItem::Col(_) => {}
            SelectItem::Agg { func, arg, .. } => {
                let n = match arg {
                    None => format!("{}(*)", func.name()),
                    Some(SqlExpr::Col { name, .. }) => format!("{}({})", func.name(), name),
                    Some(_) => format!("{}(...)", func.name()),
                };
                agg_names.push(n);
            }
        }
    }
    names.extend(agg_names);
    names
}

/// Numeric promotion for arithmetic, matching the engine's evaluator:
/// `Int32 + Int32` widens to `Int64`, any `Float64` operand wins, then
/// `Decimal`, else `Int64`.
fn promote(a: DataType, b: DataType) -> DataType {
    use DataType::*;
    if a == Float64 || b == Float64 {
        Float64
    } else if a == Decimal || b == Decimal {
        Decimal
    } else {
        Int64
    }
}
