//! Minimal line protocol for driving an engine over byte streams.
//!
//! One statement per request; a request is terminated by a line whose last
//! non-whitespace byte is `;` (so statements may span lines). Responses:
//!
//! ```text
//! COLS <name>\t<name>...      -- before the rows of a SELECT
//! ROW <value>\t<value>...
//! OK <n> rows | OK <n> affected | OK <command>
//! ERR <message>
//! ```
//!
//! Exactly one `OK`/`ERR` line terminates each response, so a client can
//! pipeline requests and read until the terminator. The transport is
//! anything `BufRead + Write` — a pipe in tests, stdin/stdout under
//! `hpd-cli --protocol`.

use std::io::{BufRead, Write};
use std::sync::Arc;

use hpd_engine::Database;

use crate::cache::PlanCache;
use crate::session::{SqlOutput, SqlSession};

/// Serve one connection: read statements from `reader`, write responses to
/// `writer`, until EOF. Each connection is one session (own transaction
/// state), sharing `cache` with every other connection on this engine.
pub fn serve(
    db: &Database,
    cache: Arc<PlanCache>,
    reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<()> {
    let mut session = SqlSession::with_cache(db, cache);
    let mut pending = String::new();
    for line in reader.lines() {
        let line = line?;
        pending.push_str(&line);
        pending.push('\n');
        if !line.trim_end().ends_with(';') {
            continue;
        }
        let script = std::mem::take(&mut pending);
        respond(&mut session, &script, &mut writer)?;
        writer.flush()?;
    }
    if !pending.trim().is_empty() {
        respond(&mut session, &pending, &mut writer)?;
        writer.flush()?;
    }
    Ok(())
}

fn respond(
    session: &mut SqlSession<'_>,
    script: &str,
    writer: &mut impl Write,
) -> std::io::Result<()> {
    match session.execute(script) {
        Err(e) => writeln!(writer, "ERR {e}"),
        Ok(outputs) => {
            for out in outputs {
                match out {
                    SqlOutput::Rows { columns, rows } => {
                        writeln!(writer, "COLS {}", columns.join("\t"))?;
                        for row in &rows {
                            let vals: Vec<String> =
                                row.values().iter().map(|v| v.to_string()).collect();
                            writeln!(writer, "ROW {}", vals.join("\t"))?;
                        }
                        writeln!(writer, "OK {} rows", rows.len())?;
                    }
                    SqlOutput::Affected(n) => writeln!(writer, "OK {n} affected")?,
                    SqlOutput::Command(c) => writeln!(writer, "OK {c}")?,
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpd_engine::DbConfig;

    #[test]
    fn serves_a_scripted_connection() {
        let db = Database::new(DbConfig::default());
        let cache = Arc::new(PlanCache::new(16));
        let input = "create table t (k int primary key, v int);\n\
                     insert into t values (1, 10), (2, 20);\n\
                     select k, v\n from t\n order by k;\n\
                     select nope from t;\n\
                     delete from t where k = 1;\n";
        let mut out = Vec::new();
        serve(&db, cache, input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let expected = "OK CREATE TABLE\n\
                        OK 2 affected\n\
                        COLS k\tv\n\
                        ROW 1\t10\n\
                        ROW 2\t20\n\
                        OK 2 rows\n\
                        ERR invalid query: unknown-column at byte 7: unknown column 'nope'\n\
                        OK 1 affected\n";
        assert_eq!(text, expected);
    }
}
