//! SQL front-end over the engine's typed query AST.
//!
//! Pipeline: text → [`lexer`] → [`parser`] (name-based AST, byte-offset
//! diagnostics) → [`binder`] (catalog resolution, literal coercion,
//! WHERE-conjunct splitting into per-table predicates and equi-joins) →
//! [`hpd_engine::Statement`] → optimizer/executor. The [`cache`] module
//! adds a prepared-statement plan cache keyed on normalized text, and
//! [`session`] the per-connection layer (isolation, open transaction)
//! that N concurrent clients use against one engine. [`protocol`] is a
//! minimal line protocol; the `hpd-cli` binary wraps it all in a REPL.
//!
//! Everything observable is counted: `sql.statements`, `sql.parse.errors`,
//! `sql.parse_us`, `sql.plancache.{hit,miss,invalidate}`,
//! `session.{opened,txn.begin,txn.commit,txn.rollback}` (see
//! OBSERVABILITY.md).

pub mod ast;
pub mod binder;
pub mod cache;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod protocol;
pub mod session;

pub use ast::{SqlSelect, SqlStatement};
pub use binder::{bind, Bound};
pub use cache::{normalize, NormalizedSql, PlanCache};
pub use error::{SqlError, SqlErrorKind, SqlResult};
pub use lexer::split_statements;
pub use parser::{parse, parse_with_param_count};
pub use session::{partitions_report, Prepared, SqlOutput, SqlSession};

use std::sync::OnceLock;

use hpd_obs::{global, Counter, Histogram};

/// Handles to the front-end's global metrics, fetched once.
pub(crate) struct Metrics {
    pub statements: Counter,
    pub parse_errors: Counter,
    pub parse_us: Histogram,
    pub cache_hit: Counter,
    pub cache_miss: Counter,
    pub cache_invalidate: Counter,
    pub session_opened: Counter,
    pub txn_begin: Counter,
    pub txn_commit: Counter,
    pub txn_rollback: Counter,
}

pub(crate) fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| Metrics {
        statements: global().counter("sql.statements"),
        parse_errors: global().counter("sql.parse.errors"),
        parse_us: global().histogram("sql.parse_us"),
        cache_hit: global().counter("sql.plancache.hit"),
        cache_miss: global().counter("sql.plancache.miss"),
        cache_invalidate: global().counter("sql.plancache.invalidate"),
        session_opened: global().counter("session.opened"),
        txn_begin: global().counter("session.txn.begin"),
        txn_commit: global().counter("session.txn.commit"),
        txn_rollback: global().counter("session.txn.rollback"),
    })
}
