//! Recursive-descent parser for the engine's SQL dialect.
//!
//! Grammar (case-insensitive keywords, `--` comments):
//!
//! ```text
//! stmt      := select | insert | update | delete
//!            | BEGIN [level] | COMMIT | ROLLBACK | SET ISOLATION level
//!            | CREATE TABLE name '(' coldef (',' coldef)* ')' [USING COLUMNSTORE]
//!              [PARTITION BY RANGE '(' col ')' VALUES LESS THAN '(' lit, ... ')'
//!              |PARTITION BY HASH '(' col ')' PARTITIONS n]
//!            | CREATE [COLUMNSTORE] INDEX ON table '(' cols ')' [INCLUDE '(' cols ')']
//!            | DROP INDEX n ON table
//! select    := SELECT item (',' item)* FROM table (join | ',' table)*
//!              [WHERE expr] [GROUP BY col (',' col)*]
//!              [ORDER BY key [ASC|DESC] (',' ...)*] [LIMIT n]
//! join      := JOIN table ON expr
//! item      := '*' | AGG '(' ('*' | expr) ')' | column
//! update    := UPDATE [TOP n] table SET col '=' expr (',' ...)* [WHERE expr]
//! delete    := DELETE [TOP n] FROM table [WHERE expr]
//! insert    := INSERT INTO table VALUES '(' expr, ... ')' (',' '(' ... ')')*
//! expr      := or; or := and (OR and)*; and := not (AND not)*
//! not       := [NOT] cmp
//! cmp       := add [ ('='|'<>'|'<'|'<='|'>'|'>=') add | BETWEEN add AND add ]
//! add       := mul (('+'|'-') mul)*;  mul := primary (('*'|'/') primary)*
//! primary   := '(' expr ')' | '?' | number | '-' number | string
//!            | name ['.' name]
//! level     := READ COMMITTED | SNAPSHOT | SERIALIZABLE
//! coldef    := name type [PRIMARY KEY]
//! type      := INT|INTEGER|BIGINT|DOUBLE|FLOAT|DECIMAL|NUMERIC|DATE|TEXT|VARCHAR['(' n ')']
//! ```

use hpd_common::{AggFunc, BinOp, CmpOp, DataType, Value};
use hpd_engine::IsolationLevel;

use crate::ast::*;
use crate::error::{SqlError, SqlErrorKind, SqlResult};
use crate::lexer::{lex, Tok, Token};

/// Parse one statement. Trailing `;` is allowed; anything after it is an
/// error (use [`crate::lexer::split_statements`] for scripts).
pub fn parse(input: &str) -> SqlResult<SqlStatement> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    p.eat_punct(";");
    let t = p.peek().clone();
    if t.tok != Tok::Eof {
        return Err(p.unexpected(&t, "end of statement"));
    }
    Ok(stmt)
}

/// Parse one statement and report how many `?` placeholders it contains.
pub fn parse_with_param_count(input: &str) -> SqlResult<(SqlStatement, usize)> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    p.eat_punct(";");
    let t = p.peek().clone();
    if t.tok != Tok::Eof {
        return Err(p.unexpected(&t, "end of statement"));
    }
    Ok((stmt, p.params))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn unexpected(&self, t: &Token, wanted: &str) -> SqlError {
        let got = match &t.tok {
            Tok::Ident(s) => format!("'{s}'"),
            Tok::Number(s) => format!("number '{s}'"),
            Tok::Str(_) => "string literal".to_string(),
            Tok::Punct(p) => format!("'{p}'"),
            Tok::Eof => "end of input".to_string(),
        };
        SqlError::new(
            SqlErrorKind::UnexpectedToken,
            t.offset,
            format!("expected {wanted}, found {got}"),
        )
    }

    /// Consume the keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(&self.peek().tok, Tok::Ident(s) if s == kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> SqlResult<()> {
        let t = self.peek().clone();
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&t, &format!("'{}'", kw.to_uppercase())))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s == kw)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(&self.peek().tok, Tok::Punct(q) if *q == p) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> SqlResult<()> {
        let t = self.peek().clone();
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.unexpected(&t, &format!("'{p}'")))
        }
    }

    fn ident(&mut self, what: &str) -> SqlResult<(String, usize)> {
        let t = self.next();
        match t.tok {
            Tok::Ident(s) => Ok((s, t.offset)),
            _ => Err(self.unexpected(&t, what)),
        }
    }

    fn number_usize(&mut self, what: &str) -> SqlResult<usize> {
        let t = self.next();
        match &t.tok {
            Tok::Number(s) => s.parse::<usize>().map_err(|_| {
                SqlError::new(
                    SqlErrorKind::InvalidNumber,
                    t.offset,
                    format!("expected {what}, found '{s}'"),
                )
            }),
            _ => Err(self.unexpected(&t, what)),
        }
    }

    fn statement(&mut self) -> SqlResult<SqlStatement> {
        let t = self.peek().clone();
        match &t.tok {
            Tok::Ident(kw) => match kw.as_str() {
                "select" => self.select().map(SqlStatement::Select),
                "insert" => self.insert(),
                "update" => self.update(),
                "delete" => self.delete(),
                "begin" => self.begin(),
                "commit" => {
                    self.next();
                    Ok(SqlStatement::Commit)
                }
                "rollback" | "abort" => {
                    self.next();
                    Ok(SqlStatement::Rollback)
                }
                "set" => self.set(),
                "create" => self.create(),
                "drop" => self.drop(),
                _ => Err(self.unexpected(&t, "a statement keyword")),
            },
            _ => Err(self.unexpected(&t, "a statement keyword")),
        }
    }

    fn isolation_level(&mut self) -> SqlResult<IsolationLevel> {
        let t = self.peek().clone();
        if self.eat_kw("read") {
            self.expect_kw("committed")?;
            Ok(IsolationLevel::ReadCommitted)
        } else if self.eat_kw("snapshot") {
            Ok(IsolationLevel::Snapshot)
        } else if self.eat_kw("serializable") {
            Ok(IsolationLevel::Serializable)
        } else {
            Err(self.unexpected(&t, "an isolation level"))
        }
    }

    fn begin(&mut self) -> SqlResult<SqlStatement> {
        self.next();
        self.eat_kw("transaction");
        let has_level = self.eat_kw("isolation")
            || self.at_kw("read")
            || self.at_kw("snapshot")
            || self.at_kw("serializable");
        let isolation = if has_level {
            Some(self.isolation_level()?)
        } else {
            None
        };
        Ok(SqlStatement::Begin { isolation })
    }

    fn set(&mut self) -> SqlResult<SqlStatement> {
        self.next();
        self.expect_kw("isolation")?;
        // Tolerate the verbose spelling SET ISOLATION LEVEL <level>.
        self.eat_kw("level");
        Ok(SqlStatement::SetIsolation(self.isolation_level()?))
    }

    fn select(&mut self) -> SqlResult<SqlSelect> {
        self.next();
        let mut q = SqlSelect::default();
        loop {
            q.items.push(self.select_item()?);
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_kw("from")?;
        q.tables.push(self.ident("a table name")?);
        loop {
            if self.eat_punct(",") {
                q.tables.push(self.ident("a table name")?);
            } else if self.eat_kw("join") || {
                let inner = self.eat_kw("inner");
                if inner {
                    self.expect_kw("join")?;
                }
                inner
            } {
                q.tables.push(self.ident("a table name")?);
                self.expect_kw("on")?;
                q.on.push(self.expr()?);
            } else {
                break;
            }
        }
        if self.eat_kw("where") {
            q.where_ = Some(self.expr()?);
        }
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                q.group_by.push(self.column_ref()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let t = self.peek().clone();
                let key = match &t.tok {
                    Tok::Number(s) => {
                        self.next();
                        let pos = s.parse::<usize>().map_err(|_| {
                            SqlError::new(
                                SqlErrorKind::InvalidNumber,
                                t.offset,
                                format!("bad ORDER BY position '{s}'"),
                            )
                        })?;
                        OrderKey::Position {
                            pos,
                            offset: t.offset,
                        }
                    }
                    Tok::Ident(_) => {
                        let (name, offset) = self.ident("a column name")?;
                        OrderKey::Name { name, offset }
                    }
                    _ => return Err(self.unexpected(&t, "an ORDER BY key")),
                };
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                q.order_by.push((key, asc));
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        if self.eat_kw("limit") {
            q.limit = Some(self.number_usize("a LIMIT count")?);
        }
        Ok(q)
    }

    fn select_item(&mut self) -> SqlResult<SelectItem> {
        if self.eat_punct("*") {
            return Ok(SelectItem::Star);
        }
        // AGG '(' ... ')'
        if let Tok::Ident(name) = &self.peek().tok {
            let func = match name.as_str() {
                "count" => Some(AggFunc::Count),
                "sum" => Some(AggFunc::Sum),
                "min" => Some(AggFunc::Min),
                "max" => Some(AggFunc::Max),
                "avg" => Some(AggFunc::Avg),
                _ => None,
            };
            if let Some(func) = func {
                if matches!(&self.tokens[self.pos + 1].tok, Tok::Punct("(")) {
                    let offset = self.peek().offset;
                    self.next();
                    self.next();
                    let arg = if self.eat_punct("*") {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect_punct(")")?;
                    return Ok(SelectItem::Agg { func, arg, offset });
                }
            }
        }
        let e = self.expr()?;
        match e {
            SqlExpr::Col { .. } => Ok(SelectItem::Col(e)),
            other => Err(SqlError::new(
                SqlErrorKind::InvalidQuery,
                other.offset(),
                "select items must be column references or aggregate calls",
            )),
        }
    }

    /// A bare (possibly qualified) column reference, for GROUP BY.
    fn column_ref(&mut self) -> SqlResult<SqlExpr> {
        let (first, offset) = self.ident("a column name")?;
        if self.eat_punct(".") {
            let (name, _) = self.ident("a column name")?;
            Ok(SqlExpr::Col {
                table: Some(first),
                name,
                offset,
            })
        } else {
            Ok(SqlExpr::Col {
                table: None,
                name: first,
                offset,
            })
        }
    }

    fn insert(&mut self) -> SqlResult<SqlStatement> {
        self.next();
        self.expect_kw("into")?;
        let (table, table_offset) = self.ident("a table name")?;
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_punct("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
            rows.push(row);
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(SqlStatement::Insert {
            table,
            table_offset,
            rows,
        })
    }

    fn update(&mut self) -> SqlResult<SqlStatement> {
        self.next();
        let top = if self.eat_kw("top") {
            Some(self.number_usize("a TOP count")?)
        } else {
            None
        };
        let (table, table_offset) = self.ident("a table name")?;
        self.expect_kw("set")?;
        let mut set = Vec::new();
        loop {
            let (col, offset) = self.ident("a column name")?;
            self.expect_punct("=")?;
            set.push((col, offset, self.expr()?));
            if !self.eat_punct(",") {
                break;
            }
        }
        let where_ = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(SqlStatement::Update {
            table,
            table_offset,
            top,
            set,
            where_,
        })
    }

    fn delete(&mut self) -> SqlResult<SqlStatement> {
        self.next();
        let top = if self.eat_kw("top") {
            Some(self.number_usize("a TOP count")?)
        } else {
            None
        };
        self.expect_kw("from")?;
        let (table, table_offset) = self.ident("a table name")?;
        let where_ = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(SqlStatement::Delete {
            table,
            table_offset,
            top,
            where_,
        })
    }

    fn data_type(&mut self) -> SqlResult<DataType> {
        let t = self.peek().clone();
        let (name, offset) = self.ident("a type name")?;
        let dt = match name.as_str() {
            "int" | "integer" => DataType::Int32,
            "bigint" => DataType::Int64,
            "double" | "float" | "real" => DataType::Float64,
            "decimal" | "numeric" => DataType::Decimal,
            "date" => DataType::Date,
            "text" | "varchar" => DataType::Utf8,
            _ => {
                return Err(SqlError::new(
                    SqlErrorKind::UnexpectedToken,
                    offset,
                    format!("unknown type '{name}'"),
                ));
            }
        };
        let _ = t;
        // VARCHAR(n): length is accepted and ignored (engine strings are
        // unbounded).
        if self.eat_punct("(") {
            self.number_usize("a type length")?;
            self.expect_punct(")")?;
        }
        Ok(dt)
    }

    fn create(&mut self) -> SqlResult<SqlStatement> {
        self.next();
        if self.eat_kw("table") {
            let (name, _) = self.ident("a table name")?;
            self.expect_punct("(")?;
            let mut columns = Vec::new();
            loop {
                let (col, _) = self.ident("a column name")?;
                let dtype = self.data_type()?;
                let primary_key = if self.eat_kw("primary") {
                    self.expect_kw("key")?;
                    true
                } else {
                    false
                };
                columns.push(SqlColumnDef {
                    name: col,
                    dtype,
                    primary_key,
                });
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
            let columnstore = if self.eat_kw("using") {
                self.expect_kw("columnstore")?;
                true
            } else {
                false
            };
            let partition_by = if self.eat_kw("partition") {
                self.expect_kw("by")?;
                Some(self.partition_by()?)
            } else {
                None
            };
            return Ok(SqlStatement::CreateTable {
                name,
                columns,
                columnstore,
                partition_by,
            });
        }
        let columnstore = self.eat_kw("columnstore");
        self.expect_kw("index")?;
        self.expect_kw("on")?;
        let (table, table_offset) = self.ident("a table name")?;
        self.expect_punct("(")?;
        let mut keys = Vec::new();
        loop {
            keys.push(self.ident("a column name")?);
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        let mut includes = Vec::new();
        if self.eat_kw("include") {
            self.expect_punct("(")?;
            loop {
                includes.push(self.ident("a column name")?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        Ok(SqlStatement::CreateIndex {
            table,
            table_offset,
            columnstore,
            keys,
            includes,
        })
    }

    /// The clause after `PARTITION BY`: `RANGE (col) VALUES LESS THAN
    /// (lit, ...)` or `HASH (col) PARTITIONS n`.
    fn partition_by(&mut self) -> SqlResult<SqlPartitionBy> {
        let t = self.peek().clone();
        if self.eat_kw("range") {
            self.expect_punct("(")?;
            let (column, column_offset) = self.ident("a partition column")?;
            self.expect_punct(")")?;
            self.expect_kw("values")?;
            self.expect_kw("less")?;
            self.expect_kw("than")?;
            self.expect_punct("(")?;
            let mut bounds = Vec::new();
            loop {
                bounds.push(self.primary()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
            Ok(SqlPartitionBy::Range {
                column,
                column_offset,
                bounds,
            })
        } else if self.eat_kw("hash") {
            self.expect_punct("(")?;
            let (column, column_offset) = self.ident("a partition column")?;
            self.expect_punct(")")?;
            self.expect_kw("partitions")?;
            let partitions_offset = self.peek().offset;
            let partitions = self.number_usize("a partition count")?;
            Ok(SqlPartitionBy::Hash {
                column,
                column_offset,
                partitions,
                partitions_offset,
            })
        } else {
            Err(self.unexpected(&t, "RANGE or HASH"))
        }
    }

    fn drop(&mut self) -> SqlResult<SqlStatement> {
        self.next();
        self.expect_kw("index")?;
        let ordinal = self.number_usize("a 1-based secondary index ordinal")?;
        self.expect_kw("on")?;
        let (table, table_offset) = self.ident("a table name")?;
        Ok(SqlStatement::DropIndex {
            table,
            table_offset,
            ordinal,
        })
    }

    // ---- expressions ----

    fn expr(&mut self) -> SqlResult<SqlExpr> {
        self.or()
    }

    fn or(&mut self) -> SqlResult<SqlExpr> {
        let mut parts = vec![self.and()?];
        while self.eat_kw("or") {
            parts.push(self.and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            SqlExpr::Or(parts)
        })
    }

    fn and(&mut self) -> SqlResult<SqlExpr> {
        let mut parts = vec![self.not()?];
        while self.eat_kw("and") {
            parts.push(self.not()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            SqlExpr::And(parts)
        })
    }

    fn not(&mut self) -> SqlResult<SqlExpr> {
        if self.eat_kw("not") {
            Ok(SqlExpr::Not(Box::new(self.not()?)))
        } else {
            self.cmp()
        }
    }

    fn cmp(&mut self) -> SqlResult<SqlExpr> {
        let lhs = self.add()?;
        if self.eat_kw("between") {
            let lo = self.add()?;
            self.expect_kw("and")?;
            let hi = self.add()?;
            return Ok(SqlExpr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
            });
        }
        let op = match &self.peek().tok {
            Tok::Punct("=") => Some(CmpOp::Eq),
            Tok::Punct("<>") => Some(CmpOp::Ne),
            Tok::Punct("<") => Some(CmpOp::Lt),
            Tok::Punct("<=") => Some(CmpOp::Le),
            Tok::Punct(">") => Some(CmpOp::Gt),
            Tok::Punct(">=") => Some(CmpOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.next();
                let rhs = self.add()?;
                Ok(SqlExpr::Cmp {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                })
            }
            None => Ok(lhs),
        }
    }

    fn add(&mut self) -> SqlResult<SqlExpr> {
        let mut lhs = self.mul()?;
        loop {
            let op = match &self.peek().tok {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.mul()?;
            lhs = SqlExpr::Arith {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> SqlResult<SqlExpr> {
        let mut lhs = self.primary()?;
        loop {
            let op = match &self.peek().tok {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.primary()?;
            lhs = SqlExpr::Arith {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn number_literal(&mut self, negative: bool, offset: usize) -> SqlResult<SqlExpr> {
        let t = self.next();
        let Tok::Number(s) = &t.tok else {
            return Err(self.unexpected(&t, "a number"));
        };
        let text = if negative { format!("-{s}") } else { s.clone() };
        let value = if text.contains('.') {
            let f: f64 = text.parse().map_err(|_| {
                SqlError::new(
                    SqlErrorKind::InvalidNumber,
                    offset,
                    format!("bad numeric literal '{text}'"),
                )
            })?;
            Value::Float64(f)
        } else {
            let n: i64 = text.parse().map_err(|_| {
                SqlError::new(
                    SqlErrorKind::InvalidNumber,
                    offset,
                    format!("integer literal '{text}' out of range"),
                )
            })?;
            match i32::try_from(n) {
                Ok(v) => Value::Int32(v),
                Err(_) => Value::Int64(n),
            }
        };
        Ok(SqlExpr::Lit { value, offset })
    }

    fn primary(&mut self) -> SqlResult<SqlExpr> {
        let t = self.peek().clone();
        match &t.tok {
            Tok::Punct("(") => {
                self.next();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Punct("?") => {
                self.next();
                let index = self.params;
                self.params += 1;
                Ok(SqlExpr::Param {
                    index,
                    offset: t.offset,
                })
            }
            Tok::Punct("-") => {
                self.next();
                self.number_literal(true, t.offset)
            }
            Tok::Number(_) => self.number_literal(false, t.offset),
            Tok::Str(s) => {
                let s = s.clone();
                self.next();
                Ok(SqlExpr::Lit {
                    value: Value::str(s),
                    offset: t.offset,
                })
            }
            Tok::Ident(_) => self.column_ref(),
            _ => Err(self.unexpected(&t, "an expression")),
        }
    }
}
