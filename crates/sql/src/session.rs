//! Per-connection SQL sessions.
//!
//! One engine, N sessions: each [`SqlSession`] borrows the shared
//! [`Database`] and holds its own isolation level and (at most one) open
//! transaction; concurrency control and memory admission stay in the
//! engine (lock manager, GrantBroker). Sessions on the same engine usually
//! share one [`PlanCache`] via [`SqlSession::with_cache`].

use std::sync::Arc;

use hpd_common::{HpdError, Result, Row, Value};
use hpd_engine::{Database, IsolationLevel, Statement, TableDesign, Txn};

use crate::binder::{bind, output_names, Bound};
use crate::cache::PlanCache;
use crate::error::{SqlError, SqlErrorKind, SqlResult};
use crate::lexer::split_statements;
use crate::metrics;

/// Result of one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlOutput {
    /// SELECT results with the output column names.
    Rows {
        columns: Vec<String>,
        rows: Vec<Row>,
    },
    /// Rows touched by INSERT/UPDATE/DELETE.
    Affected(u64),
    /// Statement with no result set (BEGIN, COMMIT, DDL, ...), tagged with
    /// its command word.
    Command(&'static str),
}

/// A prepared statement: parse once, execute many times with different
/// parameter values. Binding still happens per execute (against the live
/// catalog), which is what makes DDL between executes safe.
#[derive(Debug, Clone)]
pub struct Prepared {
    template: crate::ast::SqlStatement,
    /// `Some(v)`: literal captured at prepare; `None`: caller-supplied.
    slots: Option<Vec<Option<Value>>>,
    columns: Vec<String>,
}

/// One client session over a shared engine.
pub struct SqlSession<'db> {
    db: &'db Database,
    cache: Arc<PlanCache>,
    isolation: IsolationLevel,
    txn: Option<Txn<'db>>,
}

impl<'db> SqlSession<'db> {
    /// Open a session with a private plan cache.
    pub fn new(db: &'db Database) -> SqlSession<'db> {
        SqlSession::with_cache(db, Arc::new(PlanCache::new(256)))
    }

    /// Open a session sharing `cache` with other sessions on this engine.
    pub fn with_cache(db: &'db Database, cache: Arc<PlanCache>) -> SqlSession<'db> {
        metrics().session_opened.inc();
        SqlSession {
            db,
            cache,
            isolation: IsolationLevel::ReadCommitted,
            txn: None,
        }
    }

    pub fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Execute a script: every `;`-separated statement in order, stopping
    /// at (and returning) the first error.
    pub fn execute(&mut self, script: &str) -> Result<Vec<SqlOutput>> {
        let parts = split_statements(script).map_err(HpdError::from)?;
        let mut out = Vec::with_capacity(parts.len());
        for (text, base) in parts {
            out.push(self.execute_one_at(&text, base)?);
        }
        Ok(out)
    }

    /// Execute a single statement.
    pub fn execute_one(&mut self, text: &str) -> Result<SqlOutput> {
        self.execute_one_at(text, 0)
    }

    fn execute_one_at(&mut self, text: &str, base_offset: usize) -> Result<SqlOutput> {
        let m = metrics();
        m.statements.inc();
        let prepared = {
            let _t = m.parse_us.start_timer();
            self.prepare(text).map_err(|e| {
                m.parse_errors.inc();
                HpdError::from(e.offset_by(base_offset))
            })?
        };
        self.execute_prepared(&prepared, &[])
    }

    /// Parse (through the shared plan cache) without executing.
    pub fn prepare(&self, text: &str) -> SqlResult<Prepared> {
        let (template, slots) = self.cache.lookup(self.db, text)?;
        let columns = match &template {
            crate::ast::SqlStatement::Select(q) => output_names(self.db, q),
            _ => Vec::new(),
        };
        Ok(Prepared {
            template,
            slots,
            columns,
        })
    }

    /// Execute a prepared statement with `params` bound to its `?`
    /// placeholders, in order.
    pub fn execute_prepared(&mut self, p: &Prepared, params: &[Value]) -> Result<SqlOutput> {
        let filled = fill_params(&p.slots, params).map_err(HpdError::from)?;
        let bound = bind(self.db, &p.template, &filled).map_err(|e| {
            metrics().parse_errors.inc();
            HpdError::from(e)
        })?;
        self.dispatch(bound, &p.columns)
    }

    fn dispatch(&mut self, bound: Bound, columns: &[String]) -> Result<SqlOutput> {
        let m = metrics();
        match bound {
            Bound::Stmt(stmt) => {
                let is_select = matches!(stmt, Statement::Select(_));
                let result = match &mut self.txn {
                    Some(txn) => txn.execute(&stmt)?,
                    None => self.db.query(&stmt).isolation(self.isolation).run()?,
                };
                if is_select {
                    Ok(SqlOutput::Rows {
                        columns: columns.to_vec(),
                        rows: result.rows,
                    })
                } else {
                    let n = result
                        .rows
                        .first()
                        .and_then(|r| r.values().first())
                        .and_then(Value::as_i64)
                        .unwrap_or(0);
                    Ok(SqlOutput::Affected(n as u64))
                }
            }
            Bound::Begin(level) => {
                if self.txn.is_some() {
                    return Err(HpdError::InvalidQuery(
                        "BEGIN inside an open transaction".into(),
                    ));
                }
                let iso = level.unwrap_or(self.isolation);
                self.txn = Some(self.db.session(iso).begin());
                m.txn_begin.inc();
                Ok(SqlOutput::Command("BEGIN"))
            }
            Bound::Commit => match self.txn.take() {
                Some(txn) => {
                    txn.commit()?;
                    m.txn_commit.inc();
                    Ok(SqlOutput::Command("COMMIT"))
                }
                None => Err(HpdError::InvalidQuery(
                    "COMMIT with no open transaction".into(),
                )),
            },
            Bound::Rollback => match self.txn.take() {
                Some(txn) => {
                    txn.abort();
                    m.txn_rollback.inc();
                    Ok(SqlOutput::Command("ROLLBACK"))
                }
                None => Err(HpdError::InvalidQuery(
                    "ROLLBACK with no open transaction".into(),
                )),
            },
            Bound::SetIsolation(level) => {
                if self.txn.is_some() {
                    return Err(HpdError::InvalidQuery(
                        "SET ISOLATION inside an open transaction".into(),
                    ));
                }
                self.isolation = level;
                Ok(SqlOutput::Command("SET ISOLATION"))
            }
            Bound::CreateTable {
                name,
                schema,
                pk,
                primary,
                spec,
            } => {
                match spec {
                    Some(spec) => self
                        .db
                        .create_partitioned_table(name, schema, pk, primary, spec)?,
                    None => self.db.create_table(name, schema, pk, primary)?,
                }
                Ok(SqlOutput::Command("CREATE TABLE"))
            }
            Bound::CreateIndex { table, descriptor } => {
                self.db.create_index(&table, &descriptor)?;
                Ok(SqlOutput::Command("CREATE INDEX"))
            }
            Bound::DropIndex { table, ordinal } => {
                let metas = self.db.with_table(&table, |t| t.metas())?;
                // metas[0] is the primary; secondaries are 1-based from
                // there, in meta order.
                if ordinal == 0 || ordinal >= metas.len() {
                    return Err(HpdError::InvalidQuery(format!(
                        "table '{table}' has {} secondary indexes; cannot drop #{ordinal}",
                        metas.len() - 1
                    )));
                }
                let indexes = metas
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != ordinal)
                    .map(|(_, meta)| meta.descriptor.clone())
                    .collect();
                self.db.apply_design(&TableDesign::new(table, indexes))?;
                Ok(SqlOutput::Command("DROP INDEX"))
            }
        }
    }
}

impl Drop for SqlSession<'_> {
    fn drop(&mut self) {
        // An open transaction dies with its session.
        if let Some(txn) = self.txn.take() {
            txn.abort();
        }
    }
}

/// Merge captured literal slots with caller-supplied parameters.
fn fill_params(slots: &Option<Vec<Option<Value>>>, user: &[Value]) -> SqlResult<Vec<Value>> {
    match slots {
        // Template was parsed from the original text: its params are
        // exactly the caller's.
        None => Ok(user.to_vec()),
        Some(slots) => {
            let open = slots.iter().filter(|s| s.is_none()).count();
            if user.len() < open {
                return Err(SqlError::new(
                    SqlErrorKind::MissingParameter,
                    0,
                    format!("statement takes {open} parameters, {} supplied", user.len()),
                ));
            }
            let mut user_iter = user.iter();
            Ok(slots
                .iter()
                .map(|s| match s {
                    Some(v) => v.clone(),
                    None => user_iter.next().cloned().expect("counted above"),
                })
                .collect())
        }
    }
}

/// Human-readable per-partition summary for the CLI's `\partitions`
/// meta-command: the partitioning spec, then each partition's physical
/// design, row count, and (for columnstore partitions) heat score totals.
pub fn partitions_report(db: &Database, table: &str) -> Result<String> {
    let heat: std::collections::HashMap<String, u64> = db
        .heat_report()
        .into_iter()
        .filter(|(t, _, _)| t == table)
        .map(|(_, index, rep)| {
            (
                index,
                rep.rowgroups.iter().map(|rg| rg.score()).sum::<u64>(),
            )
        })
        .collect();
    db.with_table(table, |t| {
        let mut out = String::new();
        match t.partitioning() {
            Some(spec) => out.push_str(&format!("{table}: {}\n", spec.describe())),
            None => out.push_str(&format!("{table}: unpartitioned\n")),
        }
        let partitioned = t.num_parts() > 1;
        for p in 0..t.num_parts() {
            let part = t.part(p);
            let mut design = vec![part.primary_descriptor(t.pk()).display(t.schema())];
            design.extend(
                part.secondary_descriptors()
                    .iter()
                    .map(|d| d.display(t.schema())),
            );
            let label = |kind: &str| {
                if partitioned {
                    format!("p{p}.{kind}")
                } else {
                    kind.to_string()
                }
            };
            let mut heat_note = String::new();
            for kind in ["primary", "secondary"] {
                if let Some(score) = heat.get(&label(kind)) {
                    heat_note.push_str(&format!(" {kind}_heat={score}"));
                }
            }
            out.push_str(&format!(
                "  p{p}: rows={} design=[{}]{}\n",
                part.row_count(),
                design.join(", "),
                heat_note
            ));
        }
        out
    })
}
