//! Name-based parse AST.
//!
//! The parser produces these; the binder resolves names to ordinals and
//! lowers to the engine's typed AST ([`hpd_engine::Statement`]). Offsets on
//! name nodes let the binder report *semantic* errors (unknown column, type
//! mismatch) at a precise source location, which is the main reason this
//! layer exists instead of parsing straight into the engine AST.

use hpd_common::{AggFunc, BinOp, CmpOp, DataType, Value};
use hpd_engine::IsolationLevel;

/// Scalar expression over column names.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    Col {
        /// Qualifier, e.g. `t` in `t.a`.
        table: Option<String>,
        name: String,
        offset: usize,
    },
    Lit {
        value: Value,
        offset: usize,
    },
    /// `?` placeholder, numbered left to right from 0.
    Param {
        index: usize,
        offset: usize,
    },
    Cmp {
        op: CmpOp,
        lhs: Box<SqlExpr>,
        rhs: Box<SqlExpr>,
    },
    Arith {
        op: BinOp,
        lhs: Box<SqlExpr>,
        rhs: Box<SqlExpr>,
    },
    Between {
        expr: Box<SqlExpr>,
        lo: Box<SqlExpr>,
        hi: Box<SqlExpr>,
    },
    And(Vec<SqlExpr>),
    Or(Vec<SqlExpr>),
    Not(Box<SqlExpr>),
}

impl SqlExpr {
    /// Offset of the leftmost token of this expression.
    pub fn offset(&self) -> usize {
        match self {
            SqlExpr::Col { offset, .. }
            | SqlExpr::Lit { offset, .. }
            | SqlExpr::Param { offset, .. } => *offset,
            SqlExpr::Cmp { lhs, .. } | SqlExpr::Arith { lhs, .. } => lhs.offset(),
            SqlExpr::Between { expr, .. } => expr.offset(),
            SqlExpr::And(v) | SqlExpr::Or(v) => v.first().map_or(0, SqlExpr::offset),
            SqlExpr::Not(e) => e.offset(),
        }
    }
}

/// One item in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — every column of every FROM table, in order.
    Star,
    /// A plain column reference.
    Col(SqlExpr),
    /// `FUNC(expr)`; `COUNT(*)` carries `None`.
    Agg {
        func: AggFunc,
        arg: Option<SqlExpr>,
        offset: usize,
    },
}

/// `ORDER BY` key: an output column by name or by 1-based position.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderKey {
    Name { name: String, offset: usize },
    Position { pos: usize, offset: usize },
}

#[derive(Debug, Clone, PartialEq, Default)]
pub struct SqlSelect {
    pub items: Vec<SelectItem>,
    /// FROM tables in declaration order (comma list and JOIN chain).
    pub tables: Vec<(String, usize)>,
    /// `ON` conditions from explicit JOIN syntax; semantically identical
    /// to WHERE conjuncts.
    pub on: Vec<SqlExpr>,
    pub where_: Option<SqlExpr>,
    pub group_by: Vec<SqlExpr>,
    pub order_by: Vec<(OrderKey, bool)>,
    pub limit: Option<usize>,
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlColumnDef {
    pub name: String,
    pub dtype: DataType,
    pub primary_key: bool,
}

/// `PARTITION BY` clause on CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlPartitionBy {
    /// `PARTITION BY RANGE (col) VALUES LESS THAN (b1, b2, ...)`:
    /// `k` bounds declare `k + 1` partitions.
    Range {
        column: String,
        column_offset: usize,
        bounds: Vec<SqlExpr>,
    },
    /// `PARTITION BY HASH (col) PARTITIONS n`.
    Hash {
        column: String,
        column_offset: usize,
        partitions: usize,
        partitions_offset: usize,
    },
}

/// A parsed statement, still name-based.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlStatement {
    Select(SqlSelect),
    Insert {
        table: String,
        table_offset: usize,
        /// Each row is a list of literal/param expressions.
        rows: Vec<Vec<SqlExpr>>,
    },
    Update {
        table: String,
        table_offset: usize,
        top: Option<usize>,
        set: Vec<(String, usize, SqlExpr)>,
        where_: Option<SqlExpr>,
    },
    Delete {
        table: String,
        table_offset: usize,
        top: Option<usize>,
        where_: Option<SqlExpr>,
    },
    Begin {
        isolation: Option<IsolationLevel>,
    },
    Commit,
    Rollback,
    SetIsolation(IsolationLevel),
    CreateTable {
        name: String,
        columns: Vec<SqlColumnDef>,
        /// `USING COLUMNSTORE` makes the primary index a clustered CSI.
        columnstore: bool,
        /// `PARTITION BY ...` splits the table into partitions, each with
        /// its own physical design.
        partition_by: Option<SqlPartitionBy>,
    },
    CreateIndex {
        table: String,
        table_offset: usize,
        columnstore: bool,
        keys: Vec<(String, usize)>,
        includes: Vec<(String, usize)>,
    },
    /// `DROP INDEX <n> ON <table>`: drops the n-th secondary index
    /// (1-based, in [`hpd_engine::Database`] meta order — indexes in this
    /// engine are unnamed).
    DropIndex {
        table: String,
        table_offset: usize,
        ordinal: usize,
    },
}

impl SqlStatement {
    /// Statements whose lowering is worth caching (DML/queries). DDL and
    /// transaction control always re-parse.
    pub fn cacheable(&self) -> bool {
        matches!(
            self,
            SqlStatement::Select(_)
                | SqlStatement::Insert { .. }
                | SqlStatement::Update { .. }
                | SqlStatement::Delete { .. }
        )
    }
}
