//! End-to-end front-end tests: TPC-H-style SQL text against the hand-built
//! workload AST on all three physical designs, N concurrent sessions over
//! one engine, and an `hpd-cli` smoke test.

use std::io::Write as _;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use hpd_common::{HpdError, Value};
use hpd_engine::{Database, DbConfig, IsolationLevel};
use hpd_sql::{bind, parse, Bound, PlanCache, SqlOutput, SqlSession};
use hpd_workloads::tpch::{load_lineitem, q5_scan_range, MixedDesign};

// ------------------------------------------------------------ TPC-H as SQL

/// The paper's Q5 analytic scan, written as SQL text. Must lower to the
/// exact statement `hpd_workloads::tpch::q5_scan_range(40, 80)` hand-builds
/// and produce identical results under all three §3.4 designs.
#[test]
fn tpch_q5_sql_text_is_the_hand_built_ast_on_all_three_designs() {
    let sql = "SELECT SUM(l_quantity), SUM(l_extendedprice * (1 - l_discount)) \
               FROM lineitem WHERE l_shipdate BETWEEN 40 AND 80";
    let hand = q5_scan_range(40, 80);

    let mut per_design = Vec::new();
    for design in [
        MixedDesign::BTreeOnly,
        MixedDesign::BTreeWithSecondaryCsi,
        MixedDesign::PrimaryCsi,
    ] {
        let db = Database::new(DbConfig::default());
        load_lineitem(&db, 20_000, 7, design).expect("load lineitem");

        // Lowering: text -> parse -> bind must equal the hand-built AST.
        let ast = parse(sql).expect("parse q5");
        let Bound::Stmt(lowered) = bind(&db, &ast, &[]).expect("bind q5") else {
            panic!("q5 must lower to an engine statement");
        };
        assert_eq!(
            format!("{lowered:?}"),
            format!("{hand:?}"),
            "SQL lowering differs from the hand-built AST under {design:?}"
        );

        // Execution: the SQL path and the raw engine path agree.
        let mut session = SqlSession::new(&db);
        let SqlOutput::Rows { columns, rows } = session.execute_one(sql).expect("run q5 via SQL")
        else {
            panic!("q5 must return rows");
        };
        assert_eq!(columns, vec!["sum(l_quantity)", "sum(...)"]);
        let raw = db
            .session(IsolationLevel::ReadCommitted)
            .run(&hand)
            .expect("run q5 via engine AST");
        assert_eq!(
            rows, raw.rows,
            "SQL and AST paths disagree under {design:?}"
        );
        per_design.push(rows);
    }
    assert!(
        per_design.iter().all(|r| r == &per_design[0]),
        "designs disagree on q5: {per_design:?}"
    );
}

// ----------------------------------------------------- concurrent sessions

fn retry_script(session: &mut SqlSession<'_>, script: &str) {
    loop {
        match session.execute(script) {
            Ok(_) => return,
            Err(HpdError::LockTimeout(_)) | Err(HpdError::SerializationFailure(_)) => {
                // A failed statement leaves the script's transaction open;
                // roll it back and retry the whole script.
                if session.in_txn() {
                    session.execute_one("ROLLBACK").expect("rollback");
                }
                std::thread::yield_now();
            }
            Err(e) => panic!("script `{script}` failed: {e}"),
        }
    }
}

/// Eight sessions on one engine: four serializable writers incrementing the
/// same row (increments must not be lost) while four snapshot readers check
/// that their per-transaction view is stable. Everything — DDL, DML, txn
/// control — travels as SQL text through one shared plan cache.
#[test]
fn eight_concurrent_sessions_sustain_a_mixed_workload() {
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const INCREMENTS: usize = 12;

    let db = Database::new(DbConfig {
        lock_timeout: Duration::from_millis(50),
        ..DbConfig::default()
    });
    let cache = Arc::new(PlanCache::new(128));
    {
        let mut s = SqlSession::with_cache(&db, Arc::clone(&cache));
        s.execute("CREATE TABLE acct (id INT PRIMARY KEY, grp INT, bal INT)")
            .expect("create");
        for i in 0..16 {
            s.execute_one(&format!("INSERT INTO acct VALUES ({i}, {}, 100)", i % 4))
                .expect("seed row");
        }
    }

    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            let cache = Arc::clone(&cache);
            let db = &db;
            scope.spawn(move || {
                let mut s = SqlSession::with_cache(db, cache);
                s.execute_one("SET ISOLATION SERIALIZABLE")
                    .expect("set iso");
                for _ in 0..INCREMENTS {
                    retry_script(
                        &mut s,
                        "BEGIN; UPDATE acct SET bal = bal + 1 WHERE id = 0; COMMIT",
                    );
                }
            });
        }
        for _ in 0..READERS {
            let cache = Arc::clone(&cache);
            let db = &db;
            scope.spawn(move || {
                let mut s = SqlSession::with_cache(db, cache);
                s.execute_one("SET ISOLATION SNAPSHOT").expect("set iso");
                for _ in 0..INCREMENTS {
                    // Within one snapshot transaction, two reads of a row
                    // being hammered by the writers must agree.
                    s.execute_one("BEGIN").expect("begin");
                    let a = s
                        .execute_one("SELECT bal FROM acct WHERE id = 0")
                        .expect("read 1");
                    let b = s
                        .execute_one("SELECT bal FROM acct WHERE id = 0 AND grp = 0")
                        .expect("read 2");
                    let (SqlOutput::Rows { rows: ra, .. }, SqlOutput::Rows { rows: rb, .. }) =
                        (a, b)
                    else {
                        panic!("reads must return rows")
                    };
                    assert_eq!(ra, rb, "snapshot read tore within one transaction");
                    s.execute_one("COMMIT").expect("commit");
                }
            });
        }
    });

    let mut s = SqlSession::with_cache(&db, Arc::clone(&cache));
    let SqlOutput::Rows { rows, .. } = s
        .execute_one("SELECT bal FROM acct WHERE id = 0")
        .expect("final read")
    else {
        panic!("final read must return rows")
    };
    assert_eq!(
        rows[0].values()[0],
        Value::Int32(100 + (WRITERS * INCREMENTS) as i32),
        "increments were lost across concurrent sessions"
    );
    assert!(cache.hits() > 0, "sessions must share the plan cache");
}

/// Transaction state is per-session: one session's open transaction neither
/// blocks nor leaks into another's view until commit.
#[test]
fn sessions_have_independent_transaction_state() {
    let db = Database::new(DbConfig::default());
    let mut s1 = SqlSession::new(&db);
    let mut s2 = SqlSession::new(&db);
    s1.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        .expect("ddl");

    s2.execute_one("SET ISOLATION SNAPSHOT").expect("set iso");
    s2.execute_one("BEGIN").expect("s2 begin");
    // s2's snapshot predates s1's insert.
    s1.execute_one("BEGIN").expect("s1 begin");
    assert!(s1.in_txn() && s2.in_txn());
    s1.execute_one("INSERT INTO t VALUES (1, 10)")
        .expect("s1 insert");
    s1.execute_one("COMMIT").expect("s1 commit");
    assert!(
        !s1.in_txn() && s2.in_txn(),
        "commit in s1 must not close s2's txn"
    );

    let SqlOutput::Rows { rows, .. } = s2.execute_one("SELECT k FROM t").expect("s2 read") else {
        panic!()
    };
    assert!(
        rows.is_empty(),
        "snapshot session saw a post-snapshot commit"
    );
    s2.execute_one("COMMIT").expect("s2 commit");

    let SqlOutput::Rows { rows, .. } = s2.execute_one("SELECT k FROM t").expect("s2 reread") else {
        panic!()
    };
    assert_eq!(rows.len(), 1, "new snapshot must see the committed row");
}

// --------------------------------------------------------------- CLI smoke

/// Pipe a multi-statement script through `hpd-cli` and diff the transcript.
#[test]
fn cli_runs_a_scripted_session() {
    let script = "CREATE TABLE t (k INT PRIMARY KEY, v INT);\n\
                  INSERT INTO t VALUES (1, 10), (2, 20);\n\
                  SELECT k, v FROM t ORDER BY k;\n\
                  UPDATE t SET v = v + 5 WHERE k = 2;\n\
                  SELECT SUM(v) FROM t;\n\
                  SELECT nope FROM t;\n";
    let mut child = Command::new(env!("CARGO_BIN_EXE_hpd-cli"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hpd-cli");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("wait for hpd-cli");
    assert!(out.status.success(), "hpd-cli exited non-zero: {out:?}");

    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    let expected = "OK CREATE TABLE\n\
                    OK (2 affected)\n\
                    k | v\n\
                    1 | 10\n\
                    2 | 20\n\
                    (2 rows)\n\
                    OK (1 affected)\n\
                    sum(v)\n\
                    35\n\
                    (1 rows)\n\
                    ERR: invalid query: unknown-column at byte 7: unknown column 'nope'\n";
    assert_eq!(stdout, expected, "CLI transcript diverged");
}

// --------------------------------------------------------- partitioned DDL

/// `PARTITION BY` DDL end-to-end: rows route across partitions, queries
/// answer identically to an unpartitioned twin, and the CLI's
/// `\partitions` meta-command reports per-partition designs and counts.
#[test]
fn partitioned_create_table_routes_rows_and_reports() {
    let db = Database::new(DbConfig::default());
    let mut session = SqlSession::new(&db);
    session
        .execute(
            "CREATE TABLE m (k INT PRIMARY KEY, v INT) \
             PARTITION BY RANGE (k) VALUES LESS THAN (10, 20);
             INSERT INTO m VALUES (1, 100), (10, 200), (15, 300), (25, 400);",
        )
        .expect("partitioned DDL + insert");
    let counts = db
        .with_table("m", |t| {
            (0..t.num_parts())
                .map(|p| t.part(p).row_count())
                .collect::<Vec<_>>()
        })
        .unwrap();
    assert_eq!(counts, vec![1, 2, 1], "rows must route by range");

    let SqlOutput::Rows { rows, .. } = session
        .execute_one("SELECT SUM(v) FROM m WHERE k >= 10")
        .expect("query partitioned table")
    else {
        panic!("expected rows");
    };
    assert_eq!(rows[0].values()[0], Value::Int64(900));

    let report = hpd_sql::partitions_report(&db, "m").expect("partitions report");
    assert!(
        report.contains("range(col 0)"),
        "spec line missing: {report}"
    );
    assert!(
        report.contains("p0: rows=1") && report.contains("p1: rows=2"),
        "per-partition counts missing: {report}"
    );
    assert!(
        report.contains("PRIMARY B+TREE (k)"),
        "per-partition design missing: {report}"
    );

    // Hash partitioning through the same path.
    session
        .execute(
            "CREATE TABLE h (k INT PRIMARY KEY, v INT) USING COLUMNSTORE \
             PARTITION BY HASH (k) PARTITIONS 4;
             INSERT INTO h VALUES (1, 1), (2, 2), (3, 3), (4, 4), (5, 5);",
        )
        .expect("hash DDL + insert");
    let total: usize = db
        .with_table("h", |t| {
            (0..t.num_parts()).map(|p| t.part(p).row_count()).sum()
        })
        .unwrap();
    assert_eq!(total, 5);
    let SqlOutput::Rows { rows, .. } = session
        .execute_one("SELECT v FROM h WHERE k = 3")
        .expect("point query on hash-partitioned table")
    else {
        panic!("expected rows");
    };
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].values()[0], Value::Int32(3));
}

#[test]
fn cli_partitions_meta_command_reports_designs() {
    let script = "CREATE TABLE e (k INT PRIMARY KEY, v INT) \
                  PARTITION BY RANGE (k) VALUES LESS THAN (100);\n\
                  INSERT INTO e VALUES (1, 1), (200, 2);\n\
                  \\partitions e\n\
                  \\partitions missing\n";
    let mut child = Command::new(env!("CARGO_BIN_EXE_hpd-cli"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hpd-cli");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("wait for hpd-cli");
    assert!(out.status.success(), "hpd-cli exited non-zero: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    assert!(
        stdout.contains("e: range(col 0) less than (Int32(100)) -> 2 partitions"),
        "spec header missing:\n{stdout}"
    );
    assert!(
        stdout.contains("p0: rows=1 design=[PRIMARY B+TREE (k)]")
            && stdout.contains("p1: rows=1 design=[PRIMARY B+TREE (k)]"),
        "partition lines missing:\n{stdout}"
    );
    assert!(
        stdout.contains("ERR: unknown table 'missing'")
            || stdout.contains("ERR: unknown table: missing")
            || stdout.contains("ERR:"),
        "missing-table error missing:\n{stdout}"
    );
}
