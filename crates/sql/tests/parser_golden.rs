//! Golden-file parser corpus: each case's SQL is parsed and its debug AST
//! compared against a checked-in snapshot under `tests/golden/`. Regenerate
//! with `UPDATE_GOLDEN=1 cargo test -p hpd-sql --test parser_golden`.
//!
//! Negative cases assert the *named* error kind and the exact byte offset —
//! the front-end's diagnostics are part of its contract.

use std::path::PathBuf;

use hpd_common::{DataType, Schema};
use hpd_engine::{Database, DbConfig, IndexDescriptor};
use hpd_sql::{bind, parse, SqlErrorKind};

/// The positive corpus: one golden snapshot per named case.
const CASES: &[(&str, &str)] = &[
    ("select_star", "SELECT * FROM t"),
    (
        "projection_where",
        "SELECT k, v FROM t WHERE k >= 10 AND v <> 3",
    ),
    (
        "aggregates",
        "SELECT COUNT(*), SUM(v), MIN(v), MAX(k) FROM t WHERE v > 0",
    ),
    ("group_by", "SELECT v, COUNT(k) FROM t GROUP BY v"),
    (
        "join",
        "SELECT o.k, l.v FROM o JOIN l ON o.k = l.k WHERE l.v > 5",
    ),
    (
        "order_limit",
        "SELECT k, v FROM t ORDER BY 2 DESC, k ASC LIMIT 10",
    ),
    (
        "between_or_not",
        "SELECT k FROM t WHERE k BETWEEN 1 AND 9 OR NOT v = 2",
    ),
    ("arithmetic", "SELECT k FROM t WHERE v * (1 - k) + 2 > 0"),
    ("params", "SELECT k FROM t WHERE k = ? AND v > ?"),
    ("insert_multi", "INSERT INTO t VALUES (1, 2), (3, -4)"),
    (
        "update_top",
        "UPDATE TOP 5 t SET v = v + 1, k = 0 WHERE k = 9",
    ),
    ("delete_between", "DELETE FROM t WHERE k BETWEEN 1 AND 3"),
    ("begin_serializable", "BEGIN SERIALIZABLE"),
    ("set_isolation", "SET ISOLATION SNAPSHOT"),
    (
        "create_table",
        "CREATE TABLE orders (id INT PRIMARY KEY, total DECIMAL, placed DATE, note TEXT)",
    ),
    (
        "create_table_columnstore",
        "CREATE TABLE wide (id BIGINT PRIMARY KEY, x DOUBLE) USING COLUMNSTORE",
    ),
    (
        "create_table_partition_range",
        "CREATE TABLE events (id INT PRIMARY KEY, ts DATE, v BIGINT) \
         PARTITION BY RANGE (id) VALUES LESS THAN (100, 200, 300)",
    ),
    (
        "create_table_partition_hash",
        "CREATE TABLE users (id BIGINT PRIMARY KEY, name TEXT) \
         USING COLUMNSTORE PARTITION BY HASH (id) PARTITIONS 8",
    ),
    ("create_index_include", "CREATE INDEX ON t (k) INCLUDE (v)"),
    (
        "create_columnstore_index",
        "CREATE COLUMNSTORE INDEX ON t (k, v)",
    ),
    ("drop_index", "DROP INDEX 1 ON t"),
    (
        "string_escape_comment",
        "SELECT k FROM t WHERE s = 'it''s' -- trailing comment",
    ),
];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.ast"))
}

#[test]
fn parser_corpus_matches_golden_snapshots() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures = Vec::new();
    for (name, sql) in CASES {
        let ast = parse(sql).unwrap_or_else(|e| panic!("corpus case `{name}` failed: {e}"));
        let got = format!("{sql}\n=>\n{ast:#?}\n");
        let path = golden_path(name);
        if update {
            std::fs::write(&path, &got).expect("write golden file");
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!("missing golden file {path:?}; regenerate with UPDATE_GOLDEN=1")
        });
        if got != want {
            failures.push(format!(
                "`{name}` diverged from its snapshot\n--- got ---\n{got}\n--- want ---\n{want}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} snapshot(s) diverged (UPDATE_GOLDEN=1 regenerates):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn every_golden_snapshot_has_a_live_case() {
    // Deleting a case must not leave a stale snapshot behind.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for entry in std::fs::read_dir(dir).expect("golden dir") {
        let name = entry.unwrap().path();
        let stem = name.file_stem().unwrap().to_string_lossy().into_owned();
        assert!(
            CASES.iter().any(|(n, _)| *n == stem),
            "stale golden file {name:?} has no corpus case"
        );
    }
}

// ------------------------------------------------------------- negatives

/// A database with `t(k INT PRIMARY KEY, v INT)` for bind-level negatives.
fn test_db() -> Database {
    let db = Database::new(DbConfig::default());
    let schema = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int32)]);
    db.create_table(
        "t",
        schema,
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )
    .expect("create table");
    db
}

#[test]
fn unterminated_string_names_kind_and_offset() {
    let e = parse("SELECT k FROM t WHERE s = 'oops").unwrap_err();
    assert_eq!(e.kind, SqlErrorKind::UnterminatedString);
    assert_eq!(e.offset, 26, "offset must point at the opening quote");
    assert!(e.to_string().contains("unterminated-string at byte 26"));
}

#[test]
fn unknown_column_names_kind_and_offset() {
    let db = test_db();
    let ast = parse("SELECT nope FROM t").unwrap();
    let e = bind(&db, &ast, &[]).unwrap_err();
    assert_eq!(e.kind, SqlErrorKind::UnknownColumn);
    assert_eq!(e.offset, 7, "offset must point at the unknown identifier");
}

#[test]
fn type_mismatch_names_kind_and_offset() {
    let db = test_db();
    let ast = parse("INSERT INTO t VALUES ('x', 2)").unwrap();
    let e = bind(&db, &ast, &[]).unwrap_err();
    assert_eq!(e.kind, SqlErrorKind::TypeMismatch);
    assert_eq!(e.offset, 22, "offset must point at the offending literal");
}

#[test]
fn unexpected_token_at_end_of_input() {
    let e = parse("SELECT k FROM").unwrap_err();
    assert_eq!(e.kind, SqlErrorKind::UnexpectedToken);
    assert_eq!(e.offset, 13);
}

#[test]
fn malformed_number_is_invalid() {
    let e = parse("SELECT k FROM t WHERE k = 12abc").unwrap_err();
    assert_eq!(e.kind, SqlErrorKind::InvalidNumber);
    assert_eq!(e.offset, 26);
}

#[test]
fn partition_by_unknown_method_names_kind_and_offset() {
    let e = parse("CREATE TABLE t (k INT PRIMARY KEY) PARTITION BY LIST (k)").unwrap_err();
    assert_eq!(e.kind, SqlErrorKind::UnexpectedToken);
    assert_eq!(e.offset, 48, "offset must point at the bad method keyword");
    assert!(e.to_string().contains("expected RANGE or HASH"));
}

#[test]
fn partition_by_unknown_column_names_kind_and_offset() {
    let db = test_db();
    let ast =
        parse("CREATE TABLE p (k INT PRIMARY KEY) PARTITION BY RANGE (nope) VALUES LESS THAN (5)")
            .unwrap();
    let e = bind(&db, &ast, &[]).unwrap_err();
    assert_eq!(e.kind, SqlErrorKind::UnknownColumn);
    assert_eq!(e.offset, 55, "offset must point at the partition column");
}

#[test]
fn partition_bound_type_mismatch_names_kind_and_offset() {
    let db = test_db();
    let ast =
        parse("CREATE TABLE p (k INT PRIMARY KEY) PARTITION BY RANGE (k) VALUES LESS THAN ('x')")
            .unwrap();
    let e = bind(&db, &ast, &[]).unwrap_err();
    assert_eq!(e.kind, SqlErrorKind::TypeMismatch);
    assert_eq!(e.offset, 76, "offset must point at the offending bound");
}

#[test]
fn partition_bounds_must_increase() {
    let db = test_db();
    let ast =
        parse("CREATE TABLE p (k INT PRIMARY KEY) PARTITION BY RANGE (k) VALUES LESS THAN (9, 5)")
            .unwrap();
    let e = bind(&db, &ast, &[]).unwrap_err();
    assert_eq!(e.kind, SqlErrorKind::InvalidQuery);
    assert_eq!(e.offset, 55, "spec validation anchors at the column");
    assert!(e.to_string().contains("strictly increasing"));
}

#[test]
fn hash_partition_count_must_be_at_least_two() {
    let db = test_db();
    let ast =
        parse("CREATE TABLE p (k INT PRIMARY KEY) PARTITION BY HASH (k) PARTITIONS 1").unwrap();
    let e = bind(&db, &ast, &[]).unwrap_err();
    assert_eq!(e.kind, SqlErrorKind::InvalidQuery);
    assert_eq!(e.offset, 68, "validation anchors at the partition count");
    assert!(e.to_string().contains("at least two"));
}

#[test]
fn partition_bound_expression_is_rejected() {
    let e =
        parse("CREATE TABLE p (k INT PRIMARY KEY) PARTITION BY RANGE (k) VALUES LESS THAN (1 + 2)");
    // The clause takes literal primaries only; `+` ends the list and the
    // parser trips on it.
    let e = e.unwrap_err();
    assert_eq!(e.kind, SqlErrorKind::UnexpectedToken);
    assert_eq!(e.offset, 78);
}

#[test]
fn ambiguous_column_across_joined_tables() {
    let db = test_db();
    let schema = Schema::from_pairs(&[("k", DataType::Int32), ("w", DataType::Int32)]);
    db.create_table(
        "u",
        schema,
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )
    .expect("create table");
    let ast = parse("SELECT k FROM t JOIN u ON t.k = u.k").unwrap();
    let e = bind(&db, &ast, &[]).unwrap_err();
    assert_eq!(e.kind, SqlErrorKind::AmbiguousColumn);
    assert_eq!(e.offset, 7);
}
