//! Plan-cache behavior: hit/miss/invalidation accounting, normalization
//! equivalence classes, and invalidation on every physical-design change
//! (CREATE INDEX, DROP INDEX, `apply_design`).
//!
//! Per-cache counts are asserted exactly via the cache's local stats; the
//! process-global `sql.plancache.*` counters aggregate every cache in the
//! test binary, so those are only asserted to move.

use std::sync::Arc;

use hpd_common::{DataType, Row, Schema, Value};
use hpd_engine::{Database, DbConfig, IndexDescriptor, TableDesign};
use hpd_sql::{PlanCache, SqlOutput, SqlSession};

fn db_with_rows() -> Database {
    let db = Database::new(DbConfig::default());
    let schema = Schema::from_pairs(&[("k", DataType::Int32), ("v", DataType::Int32)]);
    db.create_table(
        "t",
        schema,
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )
    .expect("create table");
    db.load_table(
        "t",
        (0..20)
            .map(|k| Row::new(vec![Value::Int32(k), Value::Int32(k * 10)]))
            .collect::<Vec<_>>(),
    )
    .expect("load rows");
    db
}

fn rows_of(out: SqlOutput) -> Vec<Vec<i64>> {
    match out {
        SqlOutput::Rows { rows, .. } => rows
            .iter()
            .map(|r| r.values().iter().map(|v| v.as_i64().unwrap()).collect())
            .collect(),
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn equivalent_texts_share_one_entry_and_literals_rebind() {
    let db = db_with_rows();
    let cache = Arc::new(PlanCache::new(64));
    let mut s = SqlSession::with_cache(&db, Arc::clone(&cache));

    let a = rows_of(s.execute_one("SELECT v FROM t WHERE k = 3").unwrap());
    assert_eq!((cache.hits(), cache.misses()), (0, 1), "first text parses");

    // Same statement modulo whitespace, keyword case, and the literal:
    // all three must hit the one cached template.
    let b = rows_of(s.execute_one("select v\n  from T where K = 7").unwrap());
    let c = rows_of(s.execute_one("SELECT v FROM t WHERE k=11").unwrap());
    let d = rows_of(s.execute_one("SELECT v FROM t WHERE k = 3").unwrap());
    assert_eq!((cache.hits(), cache.misses()), (3, 1));
    assert_eq!(cache.len(), 1, "one normalized entry serves all four");

    // And the captured literals must actually rebind per execution.
    assert_eq!(a, vec![vec![30]]);
    assert_eq!(b, vec![vec![70]]);
    assert_eq!(c, vec![vec![110]]);
    assert_eq!(d, vec![vec![30]]);
}

#[test]
fn distinct_shapes_get_distinct_entries() {
    let db = db_with_rows();
    let cache = Arc::new(PlanCache::new(64));
    let mut s = SqlSession::with_cache(&db, Arc::clone(&cache));

    s.execute_one("SELECT v FROM t WHERE k = 1").unwrap();
    s.execute_one("SELECT v FROM t WHERE k > 1").unwrap();
    s.execute_one("SELECT k FROM t WHERE v = 10").unwrap();
    assert_eq!((cache.hits(), cache.misses()), (0, 3));
    assert_eq!(cache.len(), 3);
}

#[test]
fn prepared_statements_fill_explicit_params() {
    let db = db_with_rows();
    let mut s = SqlSession::new(&db);
    let p = s.prepare("SELECT v FROM t WHERE k = ?").unwrap();
    for k in [2i32, 9, 19] {
        let rows = rows_of(s.execute_prepared(&p, &[Value::Int32(k)]).unwrap());
        assert_eq!(rows, vec![vec![i64::from(k) * 10]]);
    }
    // Mixed captured-literal + explicit-param statements keep both: the
    // literal 10 is captured, the ? stays the caller's.
    let p = s.prepare("SELECT k FROM t WHERE v > 10 AND k < ?").unwrap();
    let mut rows = rows_of(s.execute_prepared(&p, &[Value::Int32(5)]).unwrap());
    rows.sort_unstable();
    assert_eq!(rows, vec![vec![2], vec![3], vec![4]]);
}

#[test]
fn create_index_invalidates_cached_plans() {
    let db = db_with_rows();
    let cache = Arc::new(PlanCache::new(64));
    let mut s = SqlSession::with_cache(&db, Arc::clone(&cache));

    s.execute_one("SELECT v FROM t WHERE k = 3").unwrap();
    s.execute_one("SELECT v FROM t WHERE k = 4").unwrap();
    assert_eq!(
        (cache.hits(), cache.misses(), cache.invalidations()),
        (1, 1, 0)
    );

    // The DDL statement itself counts one (uncached, non-cacheable) miss.
    s.execute_one("CREATE COLUMNSTORE INDEX ON t (k, v)")
        .unwrap();
    let out = rows_of(s.execute_one("SELECT v FROM t WHERE k = 5").unwrap());
    assert_eq!(out, vec![vec![50]]);
    assert_eq!(
        (cache.hits(), cache.misses(), cache.invalidations()),
        (1, 3, 1),
        "the DDL-stale entry is dropped, re-parsed, and re-cached"
    );

    // The re-cached entry is keyed at the new epoch: hits again.
    s.execute_one("SELECT v FROM t WHERE k = 6").unwrap();
    assert_eq!(
        (cache.hits(), cache.misses(), cache.invalidations()),
        (2, 3, 1)
    );
}

#[test]
fn drop_index_and_apply_design_also_invalidate() {
    let db = db_with_rows();
    db.create_index(
        "t",
        &IndexDescriptor::SecondaryCsi {
            columns: vec![0, 1],
        },
    )
    .expect("create secondary");
    let cache = Arc::new(PlanCache::new(64));
    let mut s = SqlSession::with_cache(&db, Arc::clone(&cache));

    s.execute_one("SELECT v FROM t WHERE k = 3").unwrap();
    s.execute_one("DROP INDEX 1 ON t").unwrap();
    s.execute_one("SELECT v FROM t WHERE k = 3").unwrap();
    assert_eq!(cache.invalidations(), 1, "DROP INDEX bumps the DDL epoch");

    // A physical-design change through the advisor path (apply_design)
    // must equally invalidate — plans may embed design-specific choices.
    db.apply_design(&TableDesign::new(
        "t",
        vec![IndexDescriptor::PrimaryBTree { keys: vec![0] }],
    ))
    .expect("apply design");
    let out = rows_of(s.execute_one("SELECT v FROM t WHERE k = 3").unwrap());
    assert_eq!(out, vec![vec![30]]);
    assert_eq!(cache.invalidations(), 2, "apply_design bumps the DDL epoch");
}

#[test]
fn global_plancache_metrics_move() {
    let before_hit = hpd_obs::global().counter("sql.plancache.hit").get();
    let before_miss = hpd_obs::global().counter("sql.plancache.miss").get();
    let before_inval = hpd_obs::global().counter("sql.plancache.invalidate").get();

    let db = db_with_rows();
    let mut s = SqlSession::new(&db);
    s.execute_one("SELECT v FROM t WHERE k = 1").unwrap();
    s.execute_one("SELECT v FROM t WHERE k = 2").unwrap();
    s.execute_one("CREATE COLUMNSTORE INDEX ON t (k, v)")
        .unwrap();
    s.execute_one("SELECT v FROM t WHERE k = 3").unwrap();

    assert!(hpd_obs::global().counter("sql.plancache.hit").get() > before_hit);
    assert!(hpd_obs::global().counter("sql.plancache.miss").get() > before_miss);
    assert!(hpd_obs::global().counter("sql.plancache.invalidate").get() > before_inval);
}

#[test]
fn capacity_is_bounded_fifo() {
    let db = db_with_rows();
    let cache = Arc::new(PlanCache::new(2));
    let mut s = SqlSession::with_cache(&db, Arc::clone(&cache));
    s.execute_one("SELECT v FROM t WHERE k = 1").unwrap();
    s.execute_one("SELECT v FROM t WHERE k > 1").unwrap();
    s.execute_one("SELECT k FROM t WHERE v = 10").unwrap();
    assert_eq!(cache.len(), 2, "capacity evicts the oldest entry");
    // The evicted (oldest) shape re-parses; the newest still hits.
    s.execute_one("SELECT k FROM t WHERE v = 20").unwrap();
    assert_eq!(cache.hits(), 1);
}
