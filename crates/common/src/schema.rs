//! Table schemas: ordered, named, typed columns.

use crate::{DataType, HpdError, Result, Row};

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
    /// Whether this column's type may be stored in a columnstore index.
    ///
    /// SQL Server excludes several data types from columnstores (paper §4.3);
    /// workload generators can mark columns ineligible to exercise the
    /// advisor's fallback to secondary CSIs that exclude such columns.
    pub csi_eligible: bool,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, dtype: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            dtype,
            csi_eligible: dtype.csi_supported(),
        }
    }

    /// Mark the column as ineligible for inclusion in a columnstore index.
    pub fn csi_ineligible(mut self) -> ColumnDef {
        self.csi_eligible = false;
        self
    }
}

/// An ordered list of columns describing a table or intermediate result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    pub fn new(columns: Vec<ColumnDef>) -> Schema {
        Schema { columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Schema {
        Schema {
            columns: pairs.iter().map(|(n, t)| ColumnDef::new(*n, *t)).collect(),
        }
    }

    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Ordinal of the column with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| HpdError::UnknownColumn(name.to_string()))
    }

    /// Schema containing only the given column ordinals, in that order.
    pub fn project(&self, ordinals: &[usize]) -> Schema {
        Schema {
            columns: ordinals.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }

    /// Planning-time width in bytes of one row of this schema.
    pub fn row_width(&self) -> usize {
        self.columns.iter().map(|c| c.dtype.fixed_width()).sum()
    }

    /// Verify that a row matches this schema's arity and column types.
    pub fn validate_row(&self, row: &Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(HpdError::Internal(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.columns.len()
            )));
        }
        for (v, c) in row.values().iter().zip(&self.columns) {
            if v.data_type() != c.dtype {
                return Err(HpdError::TypeMismatch {
                    expected: c.dtype.name(),
                    found: format!("{} in column {}", v.data_type(), c.name),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn sample() -> Schema {
        Schema::from_pairs(&[
            ("a", DataType::Int32),
            ("b", DataType::Utf8),
            ("c", DataType::Decimal),
        ])
    }

    #[test]
    fn index_of_finds_columns() {
        let s = sample();
        assert_eq!(s.index_of("a").unwrap(), 0);
        assert_eq!(s.index_of("c").unwrap(), 2);
        assert!(matches!(s.index_of("zz"), Err(HpdError::UnknownColumn(_))));
    }

    #[test]
    fn project_reorders() {
        let s = sample().project(&[2, 0]);
        assert_eq!(s.column(0).name, "c");
        assert_eq!(s.column(1).name, "a");
    }

    #[test]
    fn row_width_sums_fixed_widths() {
        assert_eq!(sample().row_width(), 4 + 16 + 8);
    }

    #[test]
    fn validate_row_checks_types_and_arity() {
        let s = sample();
        let good = Row::new(vec![Value::Int32(1), Value::str("x"), Value::Decimal(0)]);
        assert!(s.validate_row(&good).is_ok());
        let short = Row::new(vec![Value::Int32(1)]);
        assert!(s.validate_row(&short).is_err());
        let bad = Row::new(vec![Value::Int64(1), Value::str("x"), Value::Decimal(0)]);
        assert!(matches!(
            s.validate_row(&bad),
            Err(HpdError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn csi_eligibility_flag() {
        let c = ColumnDef::new("x", DataType::Utf8).csi_ineligible();
        assert!(!c.csi_eligible);
        assert!(ColumnDef::new("y", DataType::Int32).csi_eligible);
    }
}
