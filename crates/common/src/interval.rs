//! Value intervals extracted from predicates.
//!
//! An [`Interval`] describes the set of values a column may take under a
//! conjunctive predicate. Intervals drive two mechanisms central to the
//! paper: B+ tree *range seeks* (only the qualifying leaf range is read) and
//! columnstore *segment elimination* (segments whose `[min, max]` does not
//! intersect the interval are skipped, §3.2.1).

use crate::Value;

/// One endpoint of an interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    Unbounded,
    Inclusive(Value),
    Exclusive(Value),
}

/// A (possibly half-open) interval over the total order of [`Value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interval {
    pub lo: Bound,
    pub hi: Bound,
}

impl Interval {
    /// The interval covering all values.
    pub fn all() -> Interval {
        Interval {
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
        }
    }

    /// `[v, v]` — an equality point.
    pub fn point(v: Value) -> Interval {
        Interval {
            lo: Bound::Inclusive(v.clone()),
            hi: Bound::Inclusive(v),
        }
    }

    /// `(-inf, v)` or `(-inf, v]`.
    pub fn less_than(v: Value, inclusive: bool) -> Interval {
        Interval {
            lo: Bound::Unbounded,
            hi: if inclusive {
                Bound::Inclusive(v)
            } else {
                Bound::Exclusive(v)
            },
        }
    }

    /// `(v, +inf)` or `[v, +inf)`.
    pub fn greater_than(v: Value, inclusive: bool) -> Interval {
        Interval {
            lo: if inclusive {
                Bound::Inclusive(v)
            } else {
                Bound::Exclusive(v)
            },
            hi: Bound::Unbounded,
        }
    }

    /// `[lo, hi]` (both inclusive) — SQL `BETWEEN`.
    pub fn between(lo: Value, hi: Value) -> Interval {
        Interval {
            lo: Bound::Inclusive(lo),
            hi: Bound::Inclusive(hi),
        }
    }

    /// True if this interval is unconstrained on both sides.
    pub fn is_all(&self) -> bool {
        self.lo == Bound::Unbounded && self.hi == Bound::Unbounded
    }

    /// True if no value can satisfy the interval.
    pub fn is_empty(&self) -> bool {
        match (&self.lo, &self.hi) {
            (Bound::Inclusive(a), Bound::Inclusive(b)) => a > b,
            (Bound::Inclusive(a), Bound::Exclusive(b))
            | (Bound::Exclusive(a), Bound::Inclusive(b))
            | (Bound::Exclusive(a), Bound::Exclusive(b)) => a >= b,
            _ => false,
        }
    }

    /// True if `v` lies inside the interval.
    pub fn contains(&self, v: &Value) -> bool {
        let lo_ok = match &self.lo {
            Bound::Unbounded => true,
            Bound::Inclusive(b) => v >= b,
            Bound::Exclusive(b) => v > b,
        };
        let hi_ok = match &self.hi {
            Bound::Unbounded => true,
            Bound::Inclusive(b) => v <= b,
            Bound::Exclusive(b) => v < b,
        };
        lo_ok && hi_ok
    }

    /// Intersection of two intervals (conjunction of predicates).
    pub fn intersect(&self, other: &Interval) -> Interval {
        fn tighter_lo(a: &Bound, b: &Bound) -> Bound {
            match (a, b) {
                (Bound::Unbounded, x) | (x, Bound::Unbounded) => x.clone(),
                (Bound::Inclusive(x), Bound::Inclusive(y)) => {
                    Bound::Inclusive(std::cmp::max(x, y).clone())
                }
                (Bound::Exclusive(x), Bound::Exclusive(y)) => {
                    Bound::Exclusive(std::cmp::max(x, y).clone())
                }
                (Bound::Inclusive(x), Bound::Exclusive(y))
                | (Bound::Exclusive(y), Bound::Inclusive(x)) => {
                    if y >= x {
                        Bound::Exclusive(y.clone())
                    } else {
                        Bound::Inclusive(x.clone())
                    }
                }
            }
        }
        fn tighter_hi(a: &Bound, b: &Bound) -> Bound {
            match (a, b) {
                (Bound::Unbounded, x) | (x, Bound::Unbounded) => x.clone(),
                (Bound::Inclusive(x), Bound::Inclusive(y)) => {
                    Bound::Inclusive(std::cmp::min(x, y).clone())
                }
                (Bound::Exclusive(x), Bound::Exclusive(y)) => {
                    Bound::Exclusive(std::cmp::min(x, y).clone())
                }
                (Bound::Inclusive(x), Bound::Exclusive(y))
                | (Bound::Exclusive(y), Bound::Inclusive(x)) => {
                    if y <= x {
                        Bound::Exclusive(y.clone())
                    } else {
                        Bound::Inclusive(x.clone())
                    }
                }
            }
        }
        Interval {
            lo: tighter_lo(&self.lo, &other.lo),
            hi: tighter_hi(&self.hi, &other.hi),
        }
    }

    /// True if a range `[min, max]` (both inclusive, e.g. a column segment's
    /// small materialized aggregates) could contain values in this interval.
    pub fn overlaps_range(&self, min: &Value, max: &Value) -> bool {
        let above_lo = match &self.lo {
            Bound::Unbounded => true,
            Bound::Inclusive(b) => max >= b,
            Bound::Exclusive(b) => max > b,
        };
        let below_hi = match &self.hi {
            Bound::Unbounded => true,
            Bound::Inclusive(b) => min <= b,
            Bound::Exclusive(b) => min < b,
        };
        above_lo && below_hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i32v(v: i32) -> Value {
        Value::Int32(v)
    }

    #[test]
    fn contains_respects_bounds() {
        let iv = Interval::between(i32v(10), i32v(20));
        assert!(iv.contains(&i32v(10)));
        assert!(iv.contains(&i32v(20)));
        assert!(!iv.contains(&i32v(9)));
        let half = Interval::less_than(i32v(5), false);
        assert!(half.contains(&i32v(4)));
        assert!(!half.contains(&i32v(5)));
    }

    #[test]
    fn intersect_tightens() {
        let a = Interval::greater_than(i32v(5), true);
        let b = Interval::less_than(i32v(10), false);
        let c = a.intersect(&b);
        assert!(c.contains(&i32v(5)));
        assert!(c.contains(&i32v(9)));
        assert!(!c.contains(&i32v(10)));
    }

    #[test]
    fn intersect_mixed_bound_kinds_at_same_value() {
        let incl = Interval::greater_than(i32v(5), true);
        let excl = Interval::greater_than(i32v(5), false);
        let c = incl.intersect(&excl);
        assert!(!c.contains(&i32v(5)), "exclusive bound wins at equal value");
        assert!(c.contains(&i32v(6)));
    }

    #[test]
    fn emptiness() {
        assert!(Interval::between(i32v(5), i32v(4)).is_empty());
        assert!(!Interval::point(i32v(5)).is_empty());
        let e =
            Interval::greater_than(i32v(5), false).intersect(&Interval::less_than(i32v(5), true));
        assert!(e.is_empty());
    }

    #[test]
    fn segment_overlap() {
        let iv = Interval::less_than(i32v(100), false);
        assert!(iv.overlaps_range(&i32v(0), &i32v(50)));
        assert!(iv.overlaps_range(&i32v(50), &i32v(150)));
        assert!(!iv.overlaps_range(&i32v(100), &i32v(200)));
        let pt = Interval::point(i32v(42));
        assert!(pt.overlaps_range(&i32v(0), &i32v(42)));
        assert!(!pt.overlaps_range(&i32v(43), &i32v(99)));
    }
}
