//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across all `hpd-*` crates.
pub type Result<T> = std::result::Result<T, HpdError>;

/// Errors surfaced by the storage engine, executor, optimizer, and advisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HpdError {
    /// A value had a different [`crate::DataType`] than the operation expected.
    TypeMismatch {
        expected: &'static str,
        found: String,
    },
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A referenced index does not exist.
    UnknownIndex(String),
    /// An index with this name already exists.
    DuplicateIndex(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// The operation violates a structural constraint (e.g. two columnstore
    /// indexes on one table).
    Constraint(String),
    /// A query referenced something invalid (bad column ordinal, empty
    /// group-by for a streaming aggregate, ...).
    InvalidQuery(String),
    /// The executor ran out of its memory grant and the operator cannot spill.
    OutOfMemoryGrant { needed: usize, grant: usize },
    /// A query waited on the shared memory-grant broker past the configured
    /// admission timeout without being granted workspace memory.
    GrantWaitTimeout { requested: usize, waited_ms: u64 },
    /// A transaction was chosen as a deadlock victim or timed out on a lock.
    LockTimeout(String),
    /// Serialization failure under snapshot / serializable isolation.
    SerializationFailure(String),
    /// An armed [`crate::faults`] injection site fired. Only produced under
    /// test harnesses; lets callers distinguish injected failures from
    /// organic ones.
    FaultInjected(String),
    /// A simulated crash fired at a registered crash point. The process
    /// "loses" all volatile state; only WAL bytes flushed before the crash
    /// survive. Only produced under test harnesses.
    Crashed(String),
    /// Internal invariant violation — indicates a bug, not bad input.
    Internal(String),
}

impl fmt::Display for HpdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HpdError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            HpdError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            HpdError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            HpdError::UnknownIndex(i) => write!(f, "unknown index: {i}"),
            HpdError::DuplicateIndex(i) => write!(f, "index already exists: {i}"),
            HpdError::DuplicateTable(t) => write!(f, "table already exists: {t}"),
            HpdError::Constraint(m) => write!(f, "constraint violation: {m}"),
            HpdError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            HpdError::OutOfMemoryGrant { needed, grant } => {
                write!(
                    f,
                    "out of memory grant: needed {needed} bytes, grant {grant} bytes"
                )
            }
            HpdError::GrantWaitTimeout {
                requested,
                waited_ms,
            } => {
                write!(
                    f,
                    "memory grant wait timeout: requested {requested} bytes, waited {waited_ms} ms"
                )
            }
            HpdError::LockTimeout(m) => write!(f, "lock timeout: {m}"),
            HpdError::SerializationFailure(m) => write!(f, "serialization failure: {m}"),
            HpdError::FaultInjected(m) => write!(f, "fault injected: {m}"),
            HpdError::Crashed(m) => write!(f, "simulated crash: {m}"),
            HpdError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for HpdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = HpdError::TypeMismatch {
            expected: "Int32",
            found: "Utf8".into(),
        };
        assert_eq!(e.to_string(), "type mismatch: expected Int32, found Utf8");
        assert_eq!(
            HpdError::UnknownColumn("x".into()).to_string(),
            "unknown column: x"
        );
        assert_eq!(
            HpdError::OutOfMemoryGrant {
                needed: 10,
                grant: 5
            }
            .to_string(),
            "out of memory grant: needed 10 bytes, grant 5 bytes"
        );
        assert_eq!(
            HpdError::GrantWaitTimeout {
                requested: 64,
                waited_ms: 10
            }
            .to_string(),
            "memory grant wait timeout: requested 64 bytes, waited 10 ms"
        );
        assert_eq!(
            HpdError::FaultInjected("spill".into()).to_string(),
            "fault injected: spill"
        );
        assert_eq!(
            HpdError::Crashed("wal.crash.mid_apply".into()).to_string(),
            "simulated crash: wal.crash.mid_apply"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<HpdError>();
    }
}
