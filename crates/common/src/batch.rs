//! Column-oriented containers for vectorized ("batch mode") execution.
//!
//! A [`Batch`] is a set of equal-length [`ColumnVector`]s. Batch-mode
//! operators process a batch at a time over dense typed arrays, which is the
//! execution style the paper credits for the columnstore's CPU efficiency
//! (SQL Server's *batch mode*, §2).

use std::sync::Arc;

use crate::{DataType, HpdError, Result, Row, Value};

/// Default number of rows per batch. SQL Server's batch mode uses ~900-row
/// batches; we use a power of two in the same regime.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// A dense, typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVector {
    Int32(Vec<i32>),
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    /// Fixed-point decimals (raw scaled-by-10^4 representation).
    Decimal(Vec<i64>),
    /// Days since the Unix epoch.
    Date(Vec<i32>),
    Str(Vec<Arc<str>>),
}

impl ColumnVector {
    /// An empty vector of the given type with reserved capacity.
    pub fn with_capacity(dtype: DataType, cap: usize) -> ColumnVector {
        match dtype {
            DataType::Int32 => ColumnVector::Int32(Vec::with_capacity(cap)),
            DataType::Int64 => ColumnVector::Int64(Vec::with_capacity(cap)),
            DataType::Float64 => ColumnVector::Float64(Vec::with_capacity(cap)),
            DataType::Decimal => ColumnVector::Decimal(Vec::with_capacity(cap)),
            DataType::Date => ColumnVector::Date(Vec::with_capacity(cap)),
            DataType::Utf8 => ColumnVector::Str(Vec::with_capacity(cap)),
        }
    }

    pub fn data_type(&self) -> DataType {
        match self {
            ColumnVector::Int32(_) => DataType::Int32,
            ColumnVector::Int64(_) => DataType::Int64,
            ColumnVector::Float64(_) => DataType::Float64,
            ColumnVector::Decimal(_) => DataType::Decimal,
            ColumnVector::Date(_) => DataType::Date,
            ColumnVector::Str(_) => DataType::Utf8,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnVector::Int32(v) => v.len(),
            ColumnVector::Int64(v) => v.len(),
            ColumnVector::Float64(v) => v.len(),
            ColumnVector::Decimal(v) => v.len(),
            ColumnVector::Date(v) => v.len(),
            ColumnVector::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `idx`, boxed as a [`Value`]. This is the slow path used
    /// at mode transitions (batch → row); hot loops should match on the
    /// variant instead.
    pub fn value(&self, idx: usize) -> Value {
        match self {
            ColumnVector::Int32(v) => Value::Int32(v[idx]),
            ColumnVector::Int64(v) => Value::Int64(v[idx]),
            ColumnVector::Float64(v) => Value::Float64(v[idx]),
            ColumnVector::Decimal(v) => Value::Decimal(v[idx]),
            ColumnVector::Date(v) => Value::Date(v[idx]),
            ColumnVector::Str(v) => Value::Str(Arc::clone(&v[idx])),
        }
    }

    /// Append a value; the value's type must match the vector's type.
    pub fn push(&mut self, v: &Value) -> Result<()> {
        match (self, v) {
            (ColumnVector::Int32(vec), Value::Int32(x)) => vec.push(*x),
            (ColumnVector::Int64(vec), Value::Int64(x)) => vec.push(*x),
            (ColumnVector::Float64(vec), Value::Float64(x)) => vec.push(*x),
            (ColumnVector::Decimal(vec), Value::Decimal(x)) => vec.push(*x),
            (ColumnVector::Date(vec), Value::Date(x)) => vec.push(*x),
            (ColumnVector::Str(vec), Value::Str(x)) => vec.push(Arc::clone(x)),
            (me, v) => {
                return Err(HpdError::TypeMismatch {
                    expected: me.data_type().name(),
                    found: v.data_type().name().to_string(),
                })
            }
        }
        Ok(())
    }

    /// New vector containing only the rows where `mask` is true.
    /// `mask.len()` must equal `self.len()`.
    pub fn filter(&self, mask: &[bool]) -> ColumnVector {
        debug_assert_eq!(mask.len(), self.len());
        fn keep<T: Clone>(vals: &[T], mask: &[bool]) -> Vec<T> {
            vals.iter()
                .zip(mask)
                .filter(|&(_v, &m)| m)
                .map(|(v, &_m)| v.clone())
                .collect()
        }
        match self {
            ColumnVector::Int32(v) => ColumnVector::Int32(keep(v, mask)),
            ColumnVector::Int64(v) => ColumnVector::Int64(keep(v, mask)),
            ColumnVector::Float64(v) => ColumnVector::Float64(keep(v, mask)),
            ColumnVector::Decimal(v) => ColumnVector::Decimal(keep(v, mask)),
            ColumnVector::Date(v) => ColumnVector::Date(keep(v, mask)),
            ColumnVector::Str(v) => ColumnVector::Str(keep(v, mask)),
        }
    }

    /// New vector containing the rows at `indices`.
    pub fn take(&self, indices: &[usize]) -> ColumnVector {
        fn gather<T: Clone>(vals: &[T], idx: &[usize]) -> Vec<T> {
            idx.iter().map(|&i| vals[i].clone()).collect()
        }
        match self {
            ColumnVector::Int32(v) => ColumnVector::Int32(gather(v, indices)),
            ColumnVector::Int64(v) => ColumnVector::Int64(gather(v, indices)),
            ColumnVector::Float64(v) => ColumnVector::Float64(gather(v, indices)),
            ColumnVector::Decimal(v) => ColumnVector::Decimal(gather(v, indices)),
            ColumnVector::Date(v) => ColumnVector::Date(gather(v, indices)),
            ColumnVector::Str(v) => ColumnVector::Str(gather(v, indices)),
        }
    }

    /// In-memory byte footprint of the vector's payload.
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnVector::Int32(v) => v.len() * 4,
            ColumnVector::Int64(v) => v.len() * 8,
            ColumnVector::Float64(v) => v.len() * 8,
            ColumnVector::Decimal(v) => v.len() * 8,
            ColumnVector::Date(v) => v.len() * 4,
            ColumnVector::Str(v) => v.iter().map(|s| 2 + s.len()).sum(),
        }
    }

    /// Build a vector from an iterator of values of a known type.
    pub fn from_values(dtype: DataType, values: &[Value]) -> Result<ColumnVector> {
        let mut cv = ColumnVector::with_capacity(dtype, values.len());
        for v in values {
            cv.push(v)?;
        }
        Ok(cv)
    }
}

/// A set of equal-length column vectors: the unit of batch-mode execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    columns: Vec<ColumnVector>,
    rows: usize,
}

impl Batch {
    pub fn new(columns: Vec<ColumnVector>) -> Batch {
        let rows = columns.first().map_or(0, ColumnVector::len);
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        Batch { columns, rows }
    }

    /// An empty batch with the given column types.
    pub fn empty(dtypes: &[DataType]) -> Batch {
        Batch {
            columns: dtypes
                .iter()
                .map(|&t| ColumnVector::with_capacity(t, 0))
                .collect(),
            rows: 0,
        }
    }

    pub fn num_rows(&self) -> usize {
        self.rows
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, idx: usize) -> &ColumnVector {
        &self.columns[idx]
    }

    pub fn columns(&self) -> &[ColumnVector] {
        &self.columns
    }

    pub fn into_columns(self) -> Vec<ColumnVector> {
        self.columns
    }

    /// Extract row `idx` as a [`Row`] (slow path, for mode transitions).
    pub fn row(&self, idx: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.value(idx)).collect())
    }

    /// Convert the whole batch to rows (slow path).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.rows).map(|i| self.row(i)).collect()
    }

    /// Build a batch from rows (slow path, used by tests and mode
    /// transitions).
    pub fn from_rows(dtypes: &[DataType], rows: &[Row]) -> Result<Batch> {
        let mut columns: Vec<ColumnVector> = dtypes
            .iter()
            .map(|&t| ColumnVector::with_capacity(t, rows.len()))
            .collect();
        for row in rows {
            if row.len() != dtypes.len() {
                return Err(HpdError::Internal(format!(
                    "row arity {} != batch arity {}",
                    row.len(),
                    dtypes.len()
                )));
            }
            for (col, v) in columns.iter_mut().zip(row.values()) {
                col.push(v)?;
            }
        }
        Ok(Batch {
            rows: rows.len(),
            columns,
        })
    }

    /// Keep only rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Batch {
        let columns: Vec<ColumnVector> = self.columns.iter().map(|c| c.filter(mask)).collect();
        Batch::new(columns)
    }

    /// Keep only the given columns, in that order.
    pub fn project(&self, ordinals: &[usize]) -> Batch {
        Batch::new(ordinals.iter().map(|&i| self.columns[i].clone()).collect())
    }

    /// Total payload bytes across all columns.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(ColumnVector::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Batch {
        Batch::new(vec![
            ColumnVector::Int32(vec![1, 2, 3, 4]),
            ColumnVector::Str(vec![
                Arc::from("a"),
                Arc::from("b"),
                Arc::from("c"),
                Arc::from("d"),
            ]),
        ])
    }

    #[test]
    fn filter_keeps_masked_rows() {
        let b = sample().filter(&[true, false, true, false]);
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.column(0), &ColumnVector::Int32(vec![1, 3]));
        assert_eq!(b.row(1).values()[1], Value::str("c"));
    }

    #[test]
    fn take_gathers_rows() {
        let cv = ColumnVector::Int32(vec![10, 20, 30]);
        assert_eq!(cv.take(&[2, 0, 2]), ColumnVector::Int32(vec![30, 10, 30]));
    }

    #[test]
    fn row_round_trip() {
        let b = sample();
        let rows = b.to_rows();
        let back = Batch::from_rows(&[DataType::Int32, DataType::Utf8], &rows).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn push_rejects_wrong_type() {
        let mut cv = ColumnVector::with_capacity(DataType::Int32, 1);
        assert!(cv.push(&Value::Int64(1)).is_err());
        assert!(cv.push(&Value::Int32(1)).is_ok());
    }

    #[test]
    fn byte_size_counts_payload() {
        let b = sample();
        assert_eq!(b.byte_size(), 4 * 4 + 4 * 3);
    }

    #[test]
    fn projection_selects_columns() {
        let b = sample().project(&[1]);
        assert_eq!(b.num_columns(), 1);
        assert_eq!(b.column(0).data_type(), DataType::Utf8);
    }
}
