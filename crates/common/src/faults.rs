//! Deterministic fault-injection registry.
//!
//! Engine, columnstore, and storage code call [`fire`] at named injection
//! sites; the call returns `true` only when a test harness has armed that
//! site on the *current thread*. Unarmed threads pay a single thread-local
//! boolean load, so leaving the sites compiled into release builds is free.
//!
//! Two arming modes exist:
//!
//! * **Charges** ([`arm`]): each [`fire`] consumes one charge until the site
//!   runs dry. The differential harness arms one charge immediately before a
//!   scheduled statement and calls [`reset_charges`] right after it, so a
//!   fault fires at exactly one schedule point and reproduces from the seed.
//! * **Always-on** ([`set_always`]): the site fires on every call until
//!   cleared. Used for "deliberate bug" knobs (e.g. skipping the snapshot
//!   overlay) that must stay active across an entire harness run while the
//!   per-step charges are reset around it.
//!
//! The registry is thread-local on purpose: the harness drives all three
//! designs from one OS thread (determinism), and parallel `cargo test`
//! threads cannot contaminate each other's arming state.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

thread_local! {
    static ANY_ARMED: Cell<bool> = const { Cell::new(false) };
    static CHARGES: RefCell<HashMap<&'static str, u32>> = RefCell::new(HashMap::new());
    static ALWAYS: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static FIRED: RefCell<HashMap<&'static str, u64>> = RefCell::new(HashMap::new());
}

fn refresh_any_armed() {
    let armed = CHARGES.with(|c| c.borrow().values().any(|&n| n > 0))
        || ALWAYS.with(|a| !a.borrow().is_empty());
    ANY_ARMED.with(|f| f.set(armed));
}

/// Add `charges` one-shot firings to `site` on the current thread.
pub fn arm(site: &'static str, charges: u32) {
    CHARGES.with(|c| *c.borrow_mut().entry(site).or_insert(0) += charges);
    refresh_any_armed();
}

/// Turn `site` permanently on (`true`) or off (`false`) for this thread,
/// independent of charges. Survives [`reset_charges`].
pub fn set_always(site: &'static str, on: bool) {
    ALWAYS.with(|a| {
        let mut a = a.borrow_mut();
        a.retain(|s| *s != site);
        if on {
            a.push(site);
        }
    });
    refresh_any_armed();
}

/// Should the fault at `site` trigger now? Consumes one charge unless the
/// site is always-on. Cheap (one boolean load) when nothing is armed.
pub fn fire(site: &'static str) -> bool {
    if !ANY_ARMED.with(|f| f.get()) {
        return false;
    }
    let always = ALWAYS.with(|a| a.borrow().contains(&site));
    let hit = always
        || CHARGES.with(|c| {
            let mut c = c.borrow_mut();
            match c.get_mut(site) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    true
                }
                _ => false,
            }
        });
    if hit {
        FIRED.with(|f| *f.borrow_mut().entry(site).or_insert(0) += 1);
        refresh_any_armed();
    }
    hit
}

/// Remaining one-shot charges armed at `site`.
pub fn armed_charges(site: &'static str) -> u32 {
    CHARGES.with(|c| c.borrow().get(site).copied().unwrap_or(0))
}

/// Drop all un-fired charges (always-on sites stay). The harness calls this
/// after every scheduled statement so a charge that did not fire (e.g. a
/// spill-write fault on a statement that never spilled) cannot leak into a
/// later statement and break cross-design agreement.
pub fn reset_charges() {
    CHARGES.with(|c| c.borrow_mut().clear());
    refresh_any_armed();
}

/// Drop everything: charges, always-on sites, and fired counts.
pub fn clear_all() {
    CHARGES.with(|c| c.borrow_mut().clear());
    ALWAYS.with(|a| a.borrow_mut().clear());
    FIRED.with(|f| f.borrow_mut().clear());
    refresh_any_armed();
}

/// Number of times `site` has fired on this thread since [`clear_all`].
pub fn fired(site: &'static str) -> u64 {
    FIRED.with(|f| f.borrow().get(site).copied().unwrap_or(0))
}

/// Total firings across all sites on this thread since [`clear_all`].
pub fn fired_total() -> u64 {
    FIRED.with(|f| f.borrow().values().sum())
}

/// Injection sites threaded through the workspace. Kept in one place so the
/// harness's fault palette and the call sites cannot drift apart.
pub mod sites {
    /// `LockManager::acquire` fails immediately with a lock timeout.
    pub const LOCK_TIMEOUT: &str = "txn.lock.inject_timeout";
    /// `Txn::commit` aborts after validation but before applying writes.
    pub const COMMIT_FAIL: &str = "txn.commit.fail_before_apply";
    /// Snapshot reads skip the version overlay (deliberate-bug knob used to
    /// prove the harness catches and shrinks a real isolation violation).
    pub const OVERLAY_SKIP: &str = "engine.overlay.skip";
    /// Tuple mover runs even though the delta store is below capacity.
    pub const TUPLE_MOVE_FORCE: &str = "columnstore.tuple_move.force";
    /// Capacity-triggered tuple move is suppressed once.
    pub const TUPLE_MOVE_DEFER: &str = "columnstore.tuple_move.defer";
    /// Secondary-CSI delete buffer compacts regardless of threshold.
    pub const DELETE_BUFFER_COMPACT: &str = "columnstore.delete_buffer.force_compact";
    /// `DeltaStore::drain` hands back fewer rows than asked (interrupted
    /// mover; callers must loop, not assume one drain empties the delta).
    pub const DELTA_DRAIN_PARTIAL: &str = "columnstore.delta.drain_partial";
    /// A budgeted maintenance increment runs with half its row budget, as
    /// if the scheduler preempted the incremental mover mid-slice. The
    /// increment must stay consistent and resume on the next call.
    pub const MAINT_STEP_SHRINK: &str = "columnstore.maintenance.step_shrink";
    /// `SpillFile::write` fails as if the spill device were full.
    pub const SPILL_WRITE_FAIL: &str = "storage.spill.write_fail";
    /// `GrantBroker::acquire` fails as if the admission wait timed out,
    /// regardless of how much budget is actually free.
    pub const GRANT_TIMEOUT: &str = "exec.grant.inject_timeout";
    /// Buffer pool drops every cached page/blob before the next access.
    pub const BUFFERPOOL_EVICT: &str = "storage.bufferpool.force_evict";
    /// Crash inside `Txn::commit` after writes are applied but before the
    /// commit record is flushed: the transaction must be LOST by recovery.
    pub const CRASH_BEFORE_COMMIT_FLUSH: &str = "wal.crash.before_commit_flush";
    /// Crash immediately after the commit record reaches durable log bytes:
    /// the transaction must SURVIVE recovery.
    pub const CRASH_AFTER_COMMIT_FLUSH: &str = "wal.crash.after_commit_flush";
    /// Crash halfway through applying a transaction's writes (log records
    /// for the batch may be partially appended, none flushed): LOST.
    pub const CRASH_MID_APPLY: &str = "wal.crash.mid_apply";
    /// Crash between a fuzzy checkpoint's begin record and the atomic
    /// install of its image: recovery uses the previous checkpoint.
    pub const CRASH_IN_CHECKPOINT: &str = "wal.crash.in_checkpoint";
    /// Crash inside a maintenance increment, after the physical
    /// reorganization applied but before its `MaintenanceStep` record is
    /// flushed. Maintenance never changes logical contents, so recovery
    /// (which loses the record) must still equal the committed state.
    pub const CRASH_IN_MAINTENANCE: &str = "wal.crash.in_maintenance";
    /// Recovery skips redoing logged inserts into tables with a columnstore
    /// (deliberate-bug knob proving the crash harness catches and shrinks a
    /// real redo omission).
    pub const WAL_SKIP_DELTA_REDO: &str = "wal.recovery.skip_delta_redo";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_site_never_fires() {
        clear_all();
        assert!(!fire(sites::LOCK_TIMEOUT));
        assert_eq!(fired_total(), 0);
    }

    #[test]
    fn charges_are_consumed_one_per_fire() {
        clear_all();
        arm(sites::SPILL_WRITE_FAIL, 2);
        assert!(fire(sites::SPILL_WRITE_FAIL));
        assert!(fire(sites::SPILL_WRITE_FAIL));
        assert!(!fire(sites::SPILL_WRITE_FAIL));
        assert_eq!(fired(sites::SPILL_WRITE_FAIL), 2);
        clear_all();
    }

    #[test]
    fn reset_charges_keeps_always_on_sites() {
        clear_all();
        arm(sites::LOCK_TIMEOUT, 1);
        set_always(sites::OVERLAY_SKIP, true);
        reset_charges();
        assert!(!fire(sites::LOCK_TIMEOUT));
        assert!(fire(sites::OVERLAY_SKIP));
        assert!(fire(sites::OVERLAY_SKIP));
        clear_all();
        assert!(!fire(sites::OVERLAY_SKIP));
    }

    #[test]
    fn armed_charges_reports_remaining() {
        clear_all();
        arm(sites::TUPLE_MOVE_FORCE, 3);
        assert_eq!(armed_charges(sites::TUPLE_MOVE_FORCE), 3);
        fire(sites::TUPLE_MOVE_FORCE);
        assert_eq!(armed_charges(sites::TUPLE_MOVE_FORCE), 2);
        clear_all();
    }
}
