//! Packed `u64` selection bitmaps.
//!
//! A [`SelBitmap`] records which positions of a row group survive predicate
//! evaluation. Scan kernels AND per-predicate results into one bitmap a word
//! at a time, which is the selection-vector representation batch-mode
//! engines use to skip work proportional to selectivity (MonetDB/X100,
//! SQL Server batch mode). Bits above `len` are always zero, so popcounts
//! and word-wise ANDs need no tail special-casing.

/// A fixed-length bitmap packed into `u64` words. Bit `i` set means
/// position `i` is selected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelBitmap {
    words: Vec<u64>,
    len: usize,
}

impl SelBitmap {
    /// All `len` positions selected.
    pub fn all_set(len: usize) -> SelBitmap {
        let mut bm = SelBitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bm.mask_tail();
        bm
    }

    /// No positions selected.
    pub fn none_set(len: usize) -> SelBitmap {
        SelBitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Build from packed words where a **set** bit means *excluded* (the
    /// delete-bitmap convention): the result selects exactly the zero bits.
    /// `words` must hold at least `len` bits.
    pub fn from_inverted_words(words: &[u64], len: usize) -> SelBitmap {
        let n = len.div_ceil(64);
        debug_assert!(words.len() >= n);
        let inverted = words[..n].iter().map(|w| !w).collect();
        let mut bm = SelBitmap {
            words: inverted,
            len,
        };
        bm.mask_tail();
        bm
    }

    /// Build from a boolean slice (true = selected).
    pub fn from_bools(mask: &[bool]) -> SelBitmap {
        let mut bm = SelBitmap::none_set(mask.len());
        for (i, &m) in mask.iter().enumerate() {
            if m {
                bm.set(i);
            }
        }
        bm
    }

    /// Number of positions the bitmap covers (not the number selected).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed words. Bits above `len` are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of selected positions.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of selected positions in `[start, end)` — O(words spanned),
    /// used by run-arithmetic aggregate kernels to weigh whole RLE runs.
    pub fn count_range(&self, start: usize, end: usize) -> usize {
        let end = end.min(self.len);
        if start >= end {
            return 0;
        }
        let (fw, fb) = (start / 64, start % 64);
        let (lw, lb) = ((end - 1) / 64, (end - 1) % 64);
        if fw == lw {
            let mask = bits_from(fb) & bits_through(lb);
            return (self.words[fw] & mask).count_ones() as usize;
        }
        let mut n = (self.words[fw] & bits_from(fb)).count_ones() as usize;
        for w in &self.words[fw + 1..lw] {
            n += w.count_ones() as usize;
        }
        n + (self.words[lw] & bits_through(lb)).count_ones() as usize
    }

    /// True when no position is selected.
    pub fn is_none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True when every position is selected.
    pub fn is_all_set(&self) -> bool {
        self.count() == self.len
    }

    /// Word-wise AND with raw packed words (e.g. another bitmap's words).
    pub fn and_words(&mut self, other: &[u64]) {
        debug_assert!(other.len() >= self.words.len());
        for (w, &o) in self.words.iter_mut().zip(other) {
            *w &= o;
        }
    }

    /// Clear all bits in `[start, end)`.
    pub fn clear_range(&mut self, start: usize, end: usize) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        let (fw, fb) = (start / 64, start % 64);
        let (lw, lb) = ((end - 1) / 64, (end - 1) % 64);
        if fw == lw {
            let mask = bits_from(fb) & bits_through(lb);
            self.words[fw] &= !mask;
            return;
        }
        self.words[fw] &= !bits_from(fb);
        for w in &mut self.words[fw + 1..lw] {
            *w = 0;
        }
        self.words[lw] &= !bits_through(lb);
    }

    /// Set all bits in `[start, end)`.
    pub fn set_range(&mut self, start: usize, end: usize) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        let (fw, fb) = (start / 64, start % 64);
        let (lw, lb) = ((end - 1) / 64, (end - 1) % 64);
        if fw == lw {
            self.words[fw] |= bits_from(fb) & bits_through(lb);
            return;
        }
        self.words[fw] |= bits_from(fb);
        for w in &mut self.words[fw + 1..lw] {
            *w = u64::MAX;
        }
        self.words[lw] |= bits_through(lb);
    }

    /// Index of the first selected position, if any.
    pub fn first_set(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Call `f` for each selected position in ascending order.
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }

    /// Selected positions in ascending order.
    pub fn positions(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count());
        self.for_each_set(|i| out.push(i));
        out
    }

    /// Keep only selected positions where `f` returns true.
    pub fn retain(&mut self, mut f: impl FnMut(usize) -> bool) {
        for wi in 0..self.words.len() {
            let mut w = self.words[wi];
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                if !f(wi * 64 + bit) {
                    self.words[wi] &= !(1u64 << bit);
                }
                w &= w - 1;
            }
        }
    }

    /// Expand to a boolean mask (slow path, for interop with `Batch::filter`).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= bits_through(tail - 1);
            }
        }
    }
}

/// Mask with bits `[b, 63]` set.
fn bits_from(b: usize) -> u64 {
    u64::MAX << b
}

/// Mask with bits `[0, b]` set.
fn bits_through(b: usize) -> u64 {
    if b >= 63 {
        u64::MAX
    } else {
        (1u64 << (b + 1)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_set_masks_tail() {
        let bm = SelBitmap::all_set(70);
        assert_eq!(bm.count(), 70);
        assert!(bm.is_all_set());
        assert_eq!(bm.words()[1], (1u64 << 6) - 1);
    }

    #[test]
    fn set_clear_get() {
        let mut bm = SelBitmap::none_set(100);
        bm.set(0);
        bm.set(64);
        bm.set(99);
        assert!(bm.get(0) && bm.get(64) && bm.get(99) && !bm.get(50));
        bm.clear(64);
        assert!(!bm.get(64));
        assert_eq!(bm.count(), 2);
    }

    #[test]
    fn range_ops_match_loop() {
        for (start, end) in [(0, 0), (0, 64), (3, 70), (63, 65), (10, 130), (128, 130)] {
            let mut a = SelBitmap::all_set(130);
            a.clear_range(start, end);
            for i in 0..130 {
                assert_eq!(a.get(i), !(i >= start && i < end), "clear {i}");
            }
            let mut b = SelBitmap::none_set(130);
            b.set_range(start, end);
            for i in 0..130 {
                assert_eq!(b.get(i), i >= start && i < end, "set {i}");
            }
        }
    }

    #[test]
    fn inverted_words_respect_len() {
        let deleted = vec![0b101u64, u64::MAX];
        let bm = SelBitmap::from_inverted_words(&deleted, 66);
        assert!(!bm.get(0) && bm.get(1) && !bm.get(2) && bm.get(3));
        assert!(!bm.get(64) && !bm.get(65));
        assert_eq!(bm.count(), 62);
    }

    #[test]
    fn count_range_matches_loop() {
        let mut bm = SelBitmap::none_set(200);
        for i in (0..200).step_by(3) {
            bm.set(i);
        }
        for (start, end) in [(0, 0), (0, 200), (5, 64), (63, 65), (10, 130), (150, 400)] {
            let want = (start..end.min(200)).filter(|&i| bm.get(i)).count();
            assert_eq!(bm.count_range(start, end), want, "[{start},{end})");
        }
    }

    #[test]
    fn positions_retain_first_set() {
        let mut bm = SelBitmap::from_bools(&[true, false, true, true, false]);
        assert_eq!(bm.positions(), vec![0, 2, 3]);
        assert_eq!(bm.first_set(), Some(0));
        bm.retain(|i| i != 2);
        assert_eq!(bm.positions(), vec![0, 3]);
        bm.clear_range(0, 5);
        assert!(bm.is_none_set());
        assert_eq!(bm.first_set(), None);
    }
}
