//! Shared foundation types for the hybrid-physical-designs workspace.
//!
//! This crate defines the type system ([`DataType`], [`Value`]), tabular
//! metadata ([`Schema`], [`ColumnDef`]), row- and column-oriented data
//! containers ([`Row`], [`Batch`], [`ColumnVector`]), the scalar expression
//! language ([`Expr`]) with both row-at-a-time and vectorized evaluation, and
//! the common error type [`HpdError`].
//!
//! Everything in the workspace — the B+ tree, the columnstore, the execution
//! engine, and the tuning advisor — speaks these types.

pub mod batch;
pub mod bitmap;
pub mod error;
pub mod expr;
pub mod faults;
pub mod interval;
pub mod row;
pub mod schema;
pub mod types;

pub use batch::{Batch, ColumnVector};
pub use bitmap::SelBitmap;
pub use error::{HpdError, Result};
pub use expr::{AggFunc, BinOp, CmpOp, Expr};
pub use interval::Interval;
pub use row::{Key, Row};
pub use schema::{ColumnDef, Schema};
pub use types::{DataType, Value};
