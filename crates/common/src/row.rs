//! Row-oriented containers: [`Row`] and composite [`Key`].

use crate::Value;

/// A single tuple of values, ordered to match some [`crate::Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    pub fn new(values: Vec<Value>) -> Row {
        Row { values }
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    pub fn set(&mut self, idx: usize, v: Value) {
        self.values[idx] = v;
    }

    /// New row containing only the given ordinals, in that order.
    pub fn project(&self, ordinals: &[usize]) -> Row {
        Row {
            values: ordinals.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Composite key formed from the given ordinals.
    pub fn key(&self, ordinals: &[usize]) -> Key {
        Key::new(ordinals.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Actual in-memory byte footprint (for memory-grant accounting).
    pub fn byte_width(&self) -> usize {
        self.values.iter().map(Value::byte_width).sum()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row { values }
    }
}

impl std::ops::Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

/// A composite index/sort key: a sequence of values compared
/// lexicographically. `Key` is ordered because [`Value`] has a total order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    values: Vec<Value>,
}

impl Key {
    pub fn new(values: Vec<Value>) -> Key {
        Key { values }
    }

    /// A single-value key.
    pub fn single(v: Value) -> Key {
        Key { values: vec![v] }
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// True if `self` is a prefix of `other` (used for prefix seeks).
    pub fn is_prefix_of(&self, other: &Key) -> bool {
        self.values.len() <= other.values.len()
            && self.values.iter().zip(&other.values).all(|(a, b)| a == b)
    }

    pub fn byte_width(&self) -> usize {
        self.values.iter().map(Value::byte_width).sum()
    }
}

impl From<Vec<Value>> for Key {
    fn from(values: Vec<Value>) -> Self {
        Key { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_key_order() {
        let k1 = Key::new(vec![Value::Int32(1), Value::Int32(9)]);
        let k2 = Key::new(vec![Value::Int32(2), Value::Int32(0)]);
        let k3 = Key::new(vec![Value::Int32(1)]);
        assert!(k1 < k2);
        assert!(k3 < k1, "shorter key is a strict prefix and sorts first");
    }

    #[test]
    fn prefix_detection() {
        let p = Key::new(vec![Value::Int32(1)]);
        let full = Key::new(vec![Value::Int32(1), Value::Int32(2)]);
        assert!(p.is_prefix_of(&full));
        assert!(!full.is_prefix_of(&p));
        assert!(p.is_prefix_of(&p));
        let other = Key::new(vec![Value::Int32(7), Value::Int32(2)]);
        assert!(!p.is_prefix_of(&other));
    }

    #[test]
    fn row_projection_and_key_extraction() {
        let r = Row::new(vec![Value::Int32(10), Value::str("x"), Value::Int32(30)]);
        assert_eq!(
            r.project(&[2, 0]).values(),
            &[Value::Int32(30), Value::Int32(10)]
        );
        assert_eq!(r.key(&[1]), Key::new(vec![Value::str("x")]));
    }

    #[test]
    fn byte_width_sums_values() {
        let r = Row::new(vec![Value::Int32(10), Value::str("abc")]);
        assert_eq!(r.byte_width(), 4 + 5);
    }
}
