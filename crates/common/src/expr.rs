//! Scalar expressions with row-at-a-time and vectorized evaluation.
//!
//! The same [`Expr`] tree is evaluated in two modes, mirroring SQL Server's
//! *row mode* (used over B+ trees) and *batch mode* (used over columnstores):
//!
//! * [`Expr::eval_row`] computes one [`Value`] from one row;
//! * [`Expr::eval_mask`] / [`Expr::eval_batch`] compute a selection mask or a
//!   result column over a whole [`Batch`] of dense typed arrays.
//!
//! [`Expr::column_intervals`] extracts per-column [`Interval`]s from
//! conjunctive predicates; these feed B+ tree range seeks and columnstore
//! segment elimination.

use std::collections::HashMap;

use crate::{Batch, ColumnVector, HpdError, Interval, Result, Row, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn apply(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The operator with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Aggregate functions supported by the executors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// A scalar expression over the columns of one input relation.
///
/// Columns are referenced by ordinal into the input schema; the planner is
/// responsible for binding names to ordinals.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by ordinal.
    Col(usize),
    /// Literal value.
    Lit(Value),
    /// Comparison producing a boolean.
    Cmp {
        op: CmpOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Arithmetic over numeric values.
    Arith {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Conjunction; empty conjunction is `true`.
    And(Vec<Expr>),
    /// Disjunction; empty disjunction is `false`.
    Or(Vec<Expr>),
    Not(Box<Expr>),
}

impl Expr {
    pub fn col(idx: usize) -> Expr {
        Expr::Col(idx)
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `col <op> literal` — the most common predicate shape.
    pub fn col_cmp(col: usize, op: CmpOp, v: impl Into<Value>) -> Expr {
        Expr::cmp(op, Expr::Col(col), Expr::Lit(v.into()))
    }

    /// `col BETWEEN lo AND hi` (inclusive both ends).
    pub fn between(col: usize, lo: impl Into<Value>, hi: impl Into<Value>) -> Expr {
        Expr::And(vec![
            Expr::col_cmp(col, CmpOp::Ge, lo),
            Expr::col_cmp(col, CmpOp::Le, hi),
        ])
    }

    pub fn arith(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Arith {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    pub fn and(exprs: Vec<Expr>) -> Expr {
        Expr::And(exprs)
    }

    /// All column ordinals referenced anywhere in the expression.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => out.push(*i),
            Expr::Lit(_) => {}
            Expr::Cmp { lhs, rhs, .. } | Expr::Arith { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.collect_columns(out);
                }
            }
            Expr::Not(e) => e.collect_columns(out),
        }
    }

    /// Rewrite column ordinals through a mapping (old ordinal → new ordinal).
    /// Used when pushing predicates below projections.
    pub fn remap_columns(&self, map: &HashMap<usize, usize>) -> Result<Expr> {
        Ok(match self {
            Expr::Col(i) => Expr::Col(*map.get(i).ok_or_else(|| {
                HpdError::Internal(format!("column ordinal {i} missing from remap"))
            })?),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
                op: *op,
                lhs: Box::new(lhs.remap_columns(map)?),
                rhs: Box::new(rhs.remap_columns(map)?),
            },
            Expr::Arith { op, lhs, rhs } => Expr::Arith {
                op: *op,
                lhs: Box::new(lhs.remap_columns(map)?),
                rhs: Box::new(rhs.remap_columns(map)?),
            },
            Expr::And(es) => Expr::And(
                es.iter()
                    .map(|e| e.remap_columns(map))
                    .collect::<Result<_>>()?,
            ),
            Expr::Or(es) => Expr::Or(
                es.iter()
                    .map(|e| e.remap_columns(map))
                    .collect::<Result<_>>()?,
            ),
            Expr::Not(e) => Expr::Not(Box::new(e.remap_columns(map)?)),
        })
    }

    // ------------------------------------------------------------------
    // Row-mode evaluation
    // ------------------------------------------------------------------

    /// Evaluate to a scalar over one row. Booleans are represented as
    /// `Int32(0|1)`.
    pub fn eval_row(&self, row: &Row) -> Result<Value> {
        match self {
            Expr::Col(i) => {
                if *i >= row.len() {
                    return Err(HpdError::Internal(format!(
                        "column ordinal {i} out of bounds for row of arity {}",
                        row.len()
                    )));
                }
                Ok(row[*i].clone())
            }
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cmp { op, lhs, rhs } => {
                let l = lhs.eval_row(row)?;
                let r = rhs.eval_row(row)?;
                Ok(Value::Int32(op.apply(l.cmp(&r)) as i32))
            }
            Expr::Arith { op, lhs, rhs } => {
                let l = lhs.eval_row(row)?;
                let r = rhs.eval_row(row)?;
                arith_values(*op, &l, &r)
            }
            Expr::And(es) => {
                for e in es {
                    if !e.eval_bool_row(row)? {
                        return Ok(Value::Int32(0));
                    }
                }
                Ok(Value::Int32(1))
            }
            Expr::Or(es) => {
                for e in es {
                    if e.eval_bool_row(row)? {
                        return Ok(Value::Int32(1));
                    }
                }
                Ok(Value::Int32(0))
            }
            Expr::Not(e) => Ok(Value::Int32(!e.eval_bool_row(row)? as i32)),
        }
    }

    /// Evaluate as a boolean predicate over one row.
    pub fn eval_bool_row(&self, row: &Row) -> Result<bool> {
        Ok(match self.eval_row(row)? {
            Value::Int32(v) => v != 0,
            Value::Int64(v) => v != 0,
            other => {
                return Err(HpdError::TypeMismatch {
                    expected: "boolean (int)",
                    found: other.data_type().name().to_string(),
                })
            }
        })
    }

    // ------------------------------------------------------------------
    // Batch-mode (vectorized) evaluation
    // ------------------------------------------------------------------

    /// Evaluate as a predicate over a batch, producing a selection mask.
    pub fn eval_mask(&self, batch: &Batch) -> Result<Vec<bool>> {
        match self {
            Expr::And(es) => {
                let mut mask = vec![true; batch.num_rows()];
                for e in es {
                    let m = e.eval_mask(batch)?;
                    for (a, b) in mask.iter_mut().zip(&m) {
                        *a = *a && *b;
                    }
                }
                Ok(mask)
            }
            Expr::Or(es) => {
                let mut mask = vec![false; batch.num_rows()];
                for e in es {
                    let m = e.eval_mask(batch)?;
                    for (a, b) in mask.iter_mut().zip(&m) {
                        *a = *a || *b;
                    }
                }
                Ok(mask)
            }
            Expr::Not(e) => {
                let mut m = e.eval_mask(batch)?;
                for b in &mut m {
                    *b = !*b;
                }
                Ok(m)
            }
            Expr::Cmp { op, lhs, rhs } => eval_cmp_mask(*op, lhs, rhs, batch),
            other => {
                // Fallback: evaluate as a column and test non-zero.
                let col = other.eval_batch(batch)?;
                Ok((0..col.len())
                    .map(|i| col.value(i).as_i64().is_some_and(|v| v != 0))
                    .collect())
            }
        }
    }

    /// Evaluate to a column over a batch.
    pub fn eval_batch(&self, batch: &Batch) -> Result<ColumnVector> {
        match self {
            Expr::Col(i) => {
                if *i >= batch.num_columns() {
                    return Err(HpdError::Internal(format!(
                        "column ordinal {i} out of bounds for batch of arity {}",
                        batch.num_columns()
                    )));
                }
                Ok(batch.column(*i).clone())
            }
            Expr::Lit(v) => {
                let mut cv = ColumnVector::with_capacity(v.data_type(), batch.num_rows());
                for _ in 0..batch.num_rows() {
                    cv.push(v)?;
                }
                Ok(cv)
            }
            Expr::Arith { op, lhs, rhs } => {
                let l = lhs.eval_batch(batch)?;
                let r = rhs.eval_batch(batch)?;
                arith_vectors(*op, &l, &r)
            }
            Expr::Cmp { .. } | Expr::And(_) | Expr::Or(_) | Expr::Not(_) => {
                let mask = self.eval_mask(batch)?;
                Ok(ColumnVector::Int32(
                    mask.into_iter().map(|b| b as i32).collect(),
                ))
            }
        }
    }

    // ------------------------------------------------------------------
    // Predicate analysis
    // ------------------------------------------------------------------

    /// Extract per-column intervals implied by this predicate, considering
    /// only top-level conjuncts of the form `col <op> literal` (or the
    /// flipped form). Other conjuncts are ignored, so the returned intervals
    /// are a *superset* of the qualifying rows — safe for index seeks and
    /// segment elimination, which re-apply the full (residual) predicate.
    pub fn column_intervals(&self) -> HashMap<usize, Interval> {
        let mut out: HashMap<usize, Interval> = HashMap::new();
        self.collect_intervals(&mut out);
        out
    }

    fn collect_intervals(&self, out: &mut HashMap<usize, Interval>) {
        match self {
            Expr::And(es) => {
                for e in es {
                    e.collect_intervals(out);
                }
            }
            Expr::Cmp { op, lhs, rhs } => {
                let simple = match (lhs.as_ref(), rhs.as_ref()) {
                    (Expr::Col(c), Expr::Lit(v)) => Some((*c, *op, v.clone())),
                    (Expr::Lit(v), Expr::Col(c)) => Some((*c, op.flip(), v.clone())),
                    _ => None,
                };
                if let Some((col, op, v)) = simple {
                    let iv = match op {
                        CmpOp::Eq => Interval::point(v),
                        CmpOp::Lt => Interval::less_than(v, false),
                        CmpOp::Le => Interval::less_than(v, true),
                        CmpOp::Gt => Interval::greater_than(v, false),
                        CmpOp::Ge => Interval::greater_than(v, true),
                        CmpOp::Ne => return, // no useful contiguous interval
                    };
                    out.entry(col)
                        .and_modify(|e| *e = e.intersect(&iv))
                        .or_insert(iv);
                }
            }
            _ => {}
        }
    }

    /// True when the predicate is *exactly* the conjunction of the intervals
    /// [`Expr::column_intervals`] extracts from it — i.e. every conjunct is a
    /// simple `col <op> literal` (or flipped) with a contiguous interval, so
    /// a scan that applies those intervals needs no residual filter.
    pub fn covered_by_intervals(&self) -> bool {
        match self {
            Expr::And(es) => es.iter().all(Expr::covered_by_intervals),
            Expr::Cmp { op, lhs, rhs } => {
                !matches!(op, CmpOp::Ne)
                    && matches!(
                        (lhs.as_ref(), rhs.as_ref()),
                        (Expr::Col(_), Expr::Lit(_)) | (Expr::Lit(_), Expr::Col(_))
                    )
            }
            _ => false,
        }
    }

    /// Render the expression for plan printouts, resolving ordinals through
    /// `names` when available.
    pub fn display(&self, names: &[String]) -> String {
        let name = |i: usize| names.get(i).cloned().unwrap_or_else(|| format!("col{i}"));
        match self {
            Expr::Col(i) => name(*i),
            Expr::Lit(v) => v.to_string(),
            Expr::Cmp { op, lhs, rhs } => {
                format!(
                    "({} {} {})",
                    lhs.display(names),
                    op.symbol(),
                    rhs.display(names)
                )
            }
            Expr::Arith { op, lhs, rhs } => {
                format!(
                    "({} {} {})",
                    lhs.display(names),
                    op.symbol(),
                    rhs.display(names)
                )
            }
            Expr::And(es) => {
                if es.is_empty() {
                    "true".to_string()
                } else {
                    es.iter()
                        .map(|e| e.display(names))
                        .collect::<Vec<_>>()
                        .join(" AND ")
                }
            }
            Expr::Or(es) => {
                if es.is_empty() {
                    "false".to_string()
                } else {
                    format!(
                        "({})",
                        es.iter()
                            .map(|e| e.display(names))
                            .collect::<Vec<_>>()
                            .join(" OR ")
                    )
                }
            }
            Expr::Not(e) => format!("NOT {}", e.display(names)),
        }
    }
}

fn arith_values(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    // Integer-preserving paths for common cases; otherwise promote to f64.
    match (l, r) {
        (Value::Int64(a), Value::Int64(b)) => {
            let out = match op {
                BinOp::Add => a.checked_add(*b),
                BinOp::Sub => a.checked_sub(*b),
                BinOp::Mul => a.checked_mul(*b),
                BinOp::Div => {
                    if *b == 0 {
                        None
                    } else {
                        a.checked_div(*b)
                    }
                }
            };
            out.map(Value::Int64)
                .ok_or_else(|| HpdError::Internal("integer arithmetic overflow".into()))
        }
        (Value::Int32(a), Value::Int32(b)) => arith_values(
            op,
            &Value::Int64(i64::from(*a)),
            &Value::Int64(i64::from(*b)),
        ),
        (Value::Decimal(a), Value::Decimal(b)) => {
            let out = match op {
                BinOp::Add => a.checked_add(*b),
                BinOp::Sub => a.checked_sub(*b),
                // Fixed-point multiply/divide rescale by 10^4.
                BinOp::Mul => a.checked_mul(*b).map(|v| v / 10_000),
                BinOp::Div => {
                    if *b == 0 {
                        None
                    } else {
                        a.checked_mul(10_000).and_then(|v| v.checked_div(*b))
                    }
                }
            };
            out.map(Value::Decimal)
                .ok_or_else(|| HpdError::Internal("decimal arithmetic overflow".into()))
        }
        _ => {
            let (a, b) = (
                l.as_f64().ok_or(HpdError::TypeMismatch {
                    expected: "numeric",
                    found: l.data_type().name().to_string(),
                })?,
                r.as_f64().ok_or(HpdError::TypeMismatch {
                    expected: "numeric",
                    found: r.data_type().name().to_string(),
                })?,
            );
            Ok(Value::Float64(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
            }))
        }
    }
}

/// Vectorized comparison with fast paths for `col <op> literal` over the
/// primitive types, which is where batch mode earns its keep.
fn eval_cmp_mask(op: CmpOp, lhs: &Expr, rhs: &Expr, batch: &Batch) -> Result<Vec<bool>> {
    // Fast path: Col vs Lit on primitive columns.
    if let (Expr::Col(c), Expr::Lit(v)) = (lhs, rhs) {
        if let Some(mask) = cmp_col_lit_fast(op, batch.column(*c), v) {
            return Ok(mask);
        }
    }
    if let (Expr::Lit(v), Expr::Col(c)) = (lhs, rhs) {
        if let Some(mask) = cmp_col_lit_fast(op.flip(), batch.column(*c), v) {
            return Ok(mask);
        }
    }
    // General path: materialize both sides.
    let l = lhs.eval_batch(batch)?;
    let r = rhs.eval_batch(batch)?;
    Ok((0..batch.num_rows())
        .map(|i| op.apply(l.value(i).cmp(&r.value(i))))
        .collect())
}

macro_rules! prim_cmp {
    ($vals:expr, $lit:expr, $op:expr) => {{
        let lit = $lit;
        let mut mask = Vec::with_capacity($vals.len());
        match $op {
            CmpOp::Eq => mask.extend($vals.iter().map(|v| *v == lit)),
            CmpOp::Ne => mask.extend($vals.iter().map(|v| *v != lit)),
            CmpOp::Lt => mask.extend($vals.iter().map(|v| *v < lit)),
            CmpOp::Le => mask.extend($vals.iter().map(|v| *v <= lit)),
            CmpOp::Gt => mask.extend($vals.iter().map(|v| *v > lit)),
            CmpOp::Ge => mask.extend($vals.iter().map(|v| *v >= lit)),
        }
        Some(mask)
    }};
}

fn cmp_col_lit_fast(op: CmpOp, col: &ColumnVector, lit: &Value) -> Option<Vec<bool>> {
    match (col, lit) {
        (ColumnVector::Int32(v), Value::Int32(x)) => prim_cmp!(v, *x, op),
        (ColumnVector::Int64(v), Value::Int64(x)) => prim_cmp!(v, *x, op),
        (ColumnVector::Date(v), Value::Date(x)) => prim_cmp!(v, *x, op),
        (ColumnVector::Decimal(v), Value::Decimal(x)) => prim_cmp!(v, *x, op),
        (ColumnVector::Int32(v), Value::Int64(x)) => {
            let x = i32::try_from(*x).ok()?;
            prim_cmp!(v, x, op)
        }
        (ColumnVector::Float64(v), Value::Float64(x)) => {
            // total_cmp for consistency with Value's order.
            let x = *x;
            let mut mask = Vec::with_capacity(v.len());
            mask.extend(v.iter().map(|a| op.apply(a.total_cmp(&x))));
            Some(mask)
        }
        _ => None,
    }
}

fn arith_vectors(op: BinOp, l: &ColumnVector, r: &ColumnVector) -> Result<ColumnVector> {
    match (l, r) {
        (ColumnVector::Int64(a), ColumnVector::Int64(b)) => Ok(ColumnVector::Int64(
            a.iter()
                .zip(b)
                .map(|(x, y)| match op {
                    BinOp::Add => x.wrapping_add(*y),
                    BinOp::Sub => x.wrapping_sub(*y),
                    BinOp::Mul => x.wrapping_mul(*y),
                    BinOp::Div => {
                        if *y == 0 {
                            0
                        } else {
                            x / y
                        }
                    }
                })
                .collect(),
        )),
        (ColumnVector::Int32(a), ColumnVector::Int32(b)) => Ok(ColumnVector::Int64(
            a.iter()
                .zip(b)
                .map(|(x, y)| {
                    let (x, y) = (i64::from(*x), i64::from(*y));
                    match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => {
                            if y == 0 {
                                0
                            } else {
                                x / y
                            }
                        }
                    }
                })
                .collect(),
        )),
        (ColumnVector::Decimal(a), ColumnVector::Decimal(b)) => Ok(ColumnVector::Decimal(
            a.iter()
                .zip(b)
                .map(|(x, y)| match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => (x * y) / 10_000,
                    BinOp::Div => {
                        if *y == 0 {
                            0
                        } else {
                            x * 10_000 / y
                        }
                    }
                })
                .collect(),
        )),
        _ => {
            // General path through f64.
            let n = l.len();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let a = l.value(i).as_f64().ok_or(HpdError::TypeMismatch {
                    expected: "numeric",
                    found: l.data_type().name().to_string(),
                })?;
                let b = r.value(i).as_f64().ok_or(HpdError::TypeMismatch {
                    expected: "numeric",
                    found: r.data_type().name().to_string(),
                })?;
                out.push(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                });
            }
            Ok(ColumnVector::Float64(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataType;

    fn batch() -> Batch {
        Batch::new(vec![
            ColumnVector::Int32(vec![1, 5, 10, 15]),
            ColumnVector::Decimal(vec![10_000, 20_000, 30_000, 40_000]),
        ])
    }

    #[test]
    fn row_and_batch_modes_agree_on_predicate() {
        let pred = Expr::And(vec![
            Expr::col_cmp(0, CmpOp::Ge, Value::Int32(5)),
            Expr::col_cmp(0, CmpOp::Lt, Value::Int32(15)),
        ]);
        let b = batch();
        let mask = pred.eval_mask(&b).unwrap();
        assert_eq!(mask, vec![false, true, true, false]);
        for (i, row) in b.to_rows().iter().enumerate() {
            assert_eq!(pred.eval_bool_row(row).unwrap(), mask[i]);
        }
    }

    #[test]
    fn arithmetic_row_batch_consistency() {
        let e = Expr::arith(
            BinOp::Mul,
            Expr::Col(1),
            Expr::arith(BinOp::Sub, Expr::lit(Value::Decimal(10_000)), Expr::Col(1)),
        );
        let b = batch();
        let col = e.eval_batch(&b).unwrap();
        for i in 0..b.num_rows() {
            assert_eq!(col.value(i), e.eval_row(&b.row(i)).unwrap());
        }
    }

    #[test]
    fn interval_extraction_from_conjunction() {
        let pred = Expr::And(vec![
            Expr::col_cmp(0, CmpOp::Ge, Value::Int32(5)),
            Expr::col_cmp(0, CmpOp::Lt, Value::Int32(15)),
            Expr::col_cmp(2, CmpOp::Eq, Value::Int32(7)),
        ]);
        let ivs = pred.column_intervals();
        assert_eq!(ivs.len(), 2);
        let iv0 = &ivs[&0];
        assert!(iv0.contains(&Value::Int32(5)));
        assert!(!iv0.contains(&Value::Int32(15)));
        assert_eq!(ivs[&2], Interval::point(Value::Int32(7)));
    }

    #[test]
    fn flipped_literal_comparison_extracts_interval() {
        // 10 > col0  ⇔  col0 < 10
        let pred = Expr::cmp(CmpOp::Gt, Expr::lit(Value::Int32(10)), Expr::Col(0));
        let ivs = pred.column_intervals();
        assert!(ivs[&0].contains(&Value::Int32(9)));
        assert!(!ivs[&0].contains(&Value::Int32(10)));
    }

    #[test]
    fn or_does_not_produce_intervals() {
        let pred = Expr::Or(vec![
            Expr::col_cmp(0, CmpOp::Eq, Value::Int32(1)),
            Expr::col_cmp(0, CmpOp::Eq, Value::Int32(2)),
        ]);
        assert!(pred.column_intervals().is_empty());
    }

    #[test]
    fn not_and_or_masks() {
        let b = batch();
        let p = Expr::Not(Box::new(Expr::Or(vec![
            Expr::col_cmp(0, CmpOp::Lt, Value::Int32(5)),
            Expr::col_cmp(0, CmpOp::Gt, Value::Int32(10)),
        ])));
        assert_eq!(p.eval_mask(&b).unwrap(), vec![false, true, true, false]);
    }

    #[test]
    fn decimal_fixed_point_arithmetic() {
        // 2.0 * 3.0 = 6.0 in fixed point
        let v = arith_values(BinOp::Mul, &Value::Decimal(20_000), &Value::Decimal(30_000)).unwrap();
        assert_eq!(v, Value::Decimal(60_000));
        let d = arith_values(BinOp::Div, &Value::Decimal(60_000), &Value::Decimal(20_000)).unwrap();
        assert_eq!(d, Value::Decimal(30_000));
    }

    #[test]
    fn display_uses_names() {
        let e = Expr::And(vec![
            Expr::col_cmp(0, CmpOp::Lt, Value::Int32(3)),
            Expr::col_cmp(1, CmpOp::Eq, Value::str("x")),
        ]);
        let names = vec!["a".to_string(), "b".to_string()];
        assert_eq!(e.display(&names), "(a < 3) AND (b = 'x')");
    }

    #[test]
    fn empty_conjunction_is_true_disjunction_false() {
        let b = batch();
        assert!(Expr::And(vec![]).eval_mask(&b).unwrap().iter().all(|&m| m));
        assert!(Expr::Or(vec![]).eval_mask(&b).unwrap().iter().all(|&m| !m));
    }

    #[test]
    fn remap_columns_rewrites_ordinals() {
        let e = Expr::col_cmp(3, CmpOp::Eq, Value::Int32(1));
        let map: HashMap<usize, usize> = [(3usize, 0usize)].into_iter().collect();
        let r = e.remap_columns(&map).unwrap();
        assert_eq!(r, Expr::col_cmp(0, CmpOp::Eq, Value::Int32(1)));
        let missing = Expr::Col(9).remap_columns(&map);
        assert!(missing.is_err());
    }

    #[test]
    fn eval_batch_of_datatype_constructors() {
        // Ensure the Lit fast path materializes the correct type.
        let b = Batch::empty(&[DataType::Int32]);
        let lit = Expr::lit(Value::Int32(7)).eval_batch(&b).unwrap();
        assert_eq!(lit.len(), 0);
        assert_eq!(lit.data_type(), DataType::Int32);
    }
}
