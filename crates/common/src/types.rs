//! The scalar type system: [`DataType`] and [`Value`].
//!
//! Values have a *total* order (floats compare via `total_cmp`) so that they
//! can serve as B+ tree keys and sort keys without panics. Columns in this
//! workspace are non-nullable: the paper's experiments never exercise NULL
//! semantics, and keeping values total simplifies every index invariant.

use std::fmt;
use std::sync::Arc;

/// The data types supported by the engine.
///
/// `Date` is stored as days since 1970-01-01 (like an `i32` with calendar
/// helpers); `Decimal` is a fixed-point `i64` scaled by 10^4, which covers the
/// TPC-H money columns (`l_extendedprice`, `l_discount`) without float drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int32,
    Int64,
    Float64,
    /// Fixed-point decimal with 4 fractional digits, stored as `i64`.
    Decimal,
    /// Days since the Unix epoch.
    Date,
    Utf8,
}

impl DataType {
    /// Uncompressed width in bytes of one value of this type, as charged by
    /// the storage simulator. Strings are charged their actual length plus a
    /// 2-byte length prefix at the call sites that can see the value; this
    /// method returns the fixed-width estimate used for planning.
    pub fn fixed_width(self) -> usize {
        match self {
            DataType::Int32 | DataType::Date => 4,
            DataType::Int64 | DataType::Decimal | DataType::Float64 => 8,
            // Planning estimate for variable-length strings.
            DataType::Utf8 => 16,
        }
    }

    /// True if SQL Server-style columnstore indexes can contain this type.
    ///
    /// The paper (§4.3) notes that some column data types cannot be included
    /// in a columnstore index, which forces the advisor to fall back to a
    /// secondary CSI excluding them. We model that restriction with a
    /// blocked-type hook; by default every type here is eligible, and the
    /// workload generators mark specific columns as CSI-ineligible through
    /// [`crate::ColumnDef::csi_eligible`].
    pub fn csi_supported(self) -> bool {
        true
    }

    /// Short lowercase name used in plan printouts.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int32 => "int32",
            DataType::Int64 => "int64",
            DataType::Float64 => "float64",
            DataType::Decimal => "decimal",
            DataType::Date => "date",
            DataType::Utf8 => "utf8",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single scalar value.
///
/// `Value` implements `Ord` with a *total* order so it can be used directly
/// as a key in B+ trees, sorts, and aggregation hash tables. Values of
/// different types order by type tag first; well-typed plans never compare
/// across types, but the total order keeps data-structure invariants safe
/// even under adversarial property tests.
#[derive(Debug, Clone)]
pub enum Value {
    Int32(i32),
    Int64(i64),
    Float64(f64),
    /// Fixed-point decimal: `raw / 10_000`.
    Decimal(i64),
    /// Days since the Unix epoch.
    Date(i32),
    Str(Arc<str>),
}

impl Value {
    /// Construct a decimal from a float, rounding to 4 fractional digits.
    pub fn decimal_from_f64(v: f64) -> Value {
        Value::Decimal((v * 10_000.0).round() as i64)
    }

    /// Construct a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// A value that compares greater than or equal to every value the
    /// workloads produce: strings have the highest type rank, and this is a
    /// run of the maximum code point. Used to form upper bounds on
    /// composite-key prefixes (`[v, +∞)` seeks).
    pub fn sentinel_max() -> Value {
        Value::Str(Arc::from("\u{10FFFF}\u{10FFFF}\u{10FFFF}\u{10FFFF}"))
    }

    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int32(_) => DataType::Int32,
            Value::Int64(_) => DataType::Int64,
            Value::Float64(_) => DataType::Float64,
            Value::Decimal(_) => DataType::Decimal,
            Value::Date(_) => DataType::Date,
            Value::Str(_) => DataType::Utf8,
        }
    }

    pub fn as_i32(&self) -> Option<i32> {
        match self {
            Value::Int32(v) => Some(*v),
            Value::Date(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int32(v) => Some(i64::from(*v)),
            Value::Int64(v) => Some(*v),
            Value::Date(v) => Some(i64::from(*v)),
            Value::Decimal(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int32(v) => Some(f64::from(*v)),
            Value::Int64(v) => Some(*v as f64),
            Value::Float64(v) => Some(*v),
            Value::Decimal(v) => Some(*v as f64 / 10_000.0),
            Value::Date(v) => Some(f64::from(*v)),
            Value::Str(_) => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Actual in-memory byte footprint of this value (used for memory-grant
    /// accounting and size estimation).
    pub fn byte_width(&self) -> usize {
        match self {
            Value::Str(s) => 2 + s.len(),
            other => other.data_type().fixed_width(),
        }
    }

    /// Numeric addition used by SUM/AVG aggregates; integers stay integral,
    /// decimals stay fixed-point, anything involving a float becomes a float.
    pub fn checked_add(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Int32(a), Value::Int32(b)) => Some(Value::Int64(i64::from(*a) + i64::from(*b))),
            (Value::Int64(a), Value::Int64(b)) => a.checked_add(*b).map(Value::Int64),
            (Value::Int64(a), Value::Int32(b)) | (Value::Int32(b), Value::Int64(a)) => {
                a.checked_add(i64::from(*b)).map(Value::Int64)
            }
            (Value::Decimal(a), Value::Decimal(b)) => a.checked_add(*b).map(Value::Decimal),
            (a, b) => Some(Value::Float64(a.as_f64()? + b.as_f64()?)),
        }
    }

    /// Convert this value to the given type when a lossless (or standard
    /// numeric) conversion exists. Used to coerce computed UPDATE values
    /// back to their column types.
    pub fn coerce_to(&self, dtype: DataType) -> Option<Value> {
        if self.data_type() == dtype {
            return Some(self.clone());
        }
        match dtype {
            DataType::Int32 => i32::try_from(self.as_i64()?).ok().map(Value::Int32),
            DataType::Date => i32::try_from(self.as_i64()?).ok().map(Value::Date),
            DataType::Int64 => self.as_i64().map(Value::Int64),
            DataType::Float64 => self.as_f64().map(Value::Float64),
            DataType::Decimal => match self {
                Value::Int32(v) => Some(Value::Decimal(i64::from(*v) * 10_000)),
                Value::Int64(v) => v.checked_mul(10_000).map(Value::Decimal),
                Value::Float64(v) => Some(Value::decimal_from_f64(*v)),
                _ => None,
            },
            DataType::Utf8 => None,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Int32(_) => 0,
            Value::Int64(_) => 1,
            Value::Float64(_) => 2,
            Value::Decimal(_) => 3,
            Value::Date(_) => 4,
            Value::Str(_) => 5,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use Value::*;
        match (self, other) {
            (Int32(a), Int32(b)) => a.cmp(b),
            (Int64(a), Int64(b)) => a.cmp(b),
            (Float64(a), Float64(b)) => a.total_cmp(b),
            (Decimal(a), Decimal(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            // Mixed numeric comparisons promote to i64 / f64 so that
            // predicates like `int32_col < Int64(5)` behave naturally.
            (Int32(a), Int64(b)) => i64::from(*a).cmp(b),
            (Int64(a), Int32(b)) => a.cmp(&i64::from(*b)),
            (Int32(a), Float64(b)) => f64::from(*a).total_cmp(b),
            (Float64(a), Int32(b)) => a.total_cmp(&f64::from(*b)),
            (Int64(a), Float64(b)) => (*a as f64).total_cmp(b),
            (Float64(a), Int64(b)) => a.total_cmp(&(*b as f64)),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int32(v) => {
                0u8.hash(state);
                i64::from(*v).hash(state);
            }
            Value::Int64(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Value::Float64(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Decimal(v) => {
                2u8.hash(state);
                v.hash(state);
            }
            Value::Date(v) => {
                3u8.hash(state);
                v.hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Decimal(v) => {
                let sign = if *v < 0 { "-" } else { "" };
                let abs = v.unsigned_abs();
                write!(f, "{sign}{}.{:04}", abs / 10_000, abs % 10_000)
            }
            Value::Date(v) => write!(f, "date({v})"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int32(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_on_floats() {
        let nan = Value::Float64(f64::NAN);
        let one = Value::Float64(1.0);
        // total_cmp places NaN above all numbers; the key property is that
        // comparison never panics and is consistent.
        assert_eq!(nan.cmp(&nan), std::cmp::Ordering::Equal);
        assert!(nan > one);
    }

    #[test]
    fn mixed_numeric_comparisons() {
        assert!(Value::Int32(3) < Value::Int64(4));
        assert!(Value::Int64(4) > Value::Int32(3));
        assert_eq!(Value::Int32(5), Value::Int64(5));
        assert!(Value::Int32(2) < Value::Float64(2.5));
        assert!(Value::Float64(2.5) > Value::Int64(2));
    }

    #[test]
    fn decimal_round_trip_and_display() {
        let v = Value::decimal_from_f64(12.3456);
        assert_eq!(v, Value::Decimal(123_456));
        assert_eq!(v.to_string(), "12.3456");
        assert_eq!(v.as_f64(), Some(12.3456));
        assert_eq!(Value::Decimal(-5000).to_string(), "-0.5000");
    }

    #[test]
    fn checked_add_type_rules() {
        assert_eq!(
            Value::Int32(1).checked_add(&Value::Int32(2)),
            Some(Value::Int64(3))
        );
        assert_eq!(
            Value::Decimal(10_000).checked_add(&Value::Decimal(5_000)),
            Some(Value::Decimal(15_000))
        );
        assert_eq!(
            Value::Int64(i64::MAX).checked_add(&Value::Int64(1)),
            None,
            "overflow must be detected"
        );
        match Value::Float64(1.5).checked_add(&Value::Int32(1)) {
            Some(Value::Float64(v)) => assert_eq!(v, 2.5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn byte_width_accounts_for_strings() {
        assert_eq!(Value::Int32(0).byte_width(), 4);
        assert_eq!(Value::str("abcd").byte_width(), 6);
    }

    #[test]
    fn hash_consistent_with_eq_across_int_widths() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(Value::Int32(42), Value::Int64(42));
        assert_eq!(h(&Value::Int32(42)), h(&Value::Int64(42)));
    }
}
