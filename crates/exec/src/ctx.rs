//! Execution context and metrics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hpd_storage::{BufferPool, IoSnapshot, IoTracker, SpillManager};

use crate::memory::MemoryGrant;
use crate::sched::WorkerPool;

/// Everything an operator needs at runtime. Cheap to clone; clones share
/// the tracker, grant, and CPU accumulator (parallel workers take clones).
#[derive(Clone)]
pub struct ExecCtx<'a> {
    pub pool: &'a BufferPool,
    pub tracker: IoTracker,
    pub grant: MemoryGrant,
    pub spill: SpillManager,
    /// Shared worker-thread budget parallel operators draw from. Contexts
    /// built outside the engine get an unbounded pool; the engine passes its
    /// one shared pool so concurrent queries arbitrate threads.
    pub workers: WorkerPool,
    /// Busy time accumulated by parallel workers, nanoseconds.
    worker_cpu_ns: Arc<AtomicU64>,
    /// Wall time the coordinator spent blocked inside parallel sections,
    /// nanoseconds. Subtracted when deriving CPU time from wall time.
    parallel_wall_ns: Arc<AtomicU64>,
    /// Longest single worker's busy time, nanoseconds: the parallel
    /// section's critical path. On machines with fewer cores than the DOP
    /// the workers serialize, so elapsed time is *modelled* as
    /// `wall - parallel_wall + worker_critical_path` — the time an
    /// adequately provisioned machine (like the paper's 40-way server)
    /// would take.
    worker_max_ns: Arc<AtomicU64>,
}

impl<'a> ExecCtx<'a> {
    /// Context with an effectively unlimited memory grant.
    pub fn new(pool: &'a BufferPool) -> ExecCtx<'a> {
        ExecCtx::with_grant(pool, u64::MAX as usize >> 2)
    }

    /// Context with a bounded query working memory ("grant memory" in SQL
    /// Server terms).
    pub fn with_grant(pool: &'a BufferPool, grant_bytes: usize) -> ExecCtx<'a> {
        ExecCtx::with_resources(pool, MemoryGrant::new(grant_bytes), WorkerPool::unbounded())
    }

    /// Context running against engine-shared resources: a broker-issued
    /// memory grant and the engine's worker-thread pool.
    pub fn with_resources(
        pool: &'a BufferPool,
        grant: MemoryGrant,
        workers: WorkerPool,
    ) -> ExecCtx<'a> {
        ExecCtx {
            pool,
            tracker: IoTracker::new(),
            grant,
            spill: SpillManager::new(*pool.device()),
            workers,
            worker_cpu_ns: Arc::new(AtomicU64::new(0)),
            parallel_wall_ns: Arc::new(AtomicU64::new(0)),
            worker_max_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Record busy time from a parallel worker.
    pub fn add_worker_cpu(&self, busy: Duration) {
        let ns = busy.as_nanos() as u64;
        self.worker_cpu_ns.fetch_add(ns, Ordering::Relaxed);
        self.worker_max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    pub fn worker_cpu(&self) -> Duration {
        Duration::from_nanos(self.worker_cpu_ns.load(Ordering::Relaxed))
    }

    /// Record wall time spent blocked waiting for parallel workers.
    pub fn add_parallel_wall(&self, blocked: Duration) {
        self.parallel_wall_ns
            .fetch_add(blocked.as_nanos() as u64, Ordering::Relaxed);
    }

    pub fn parallel_wall(&self) -> Duration {
        Duration::from_nanos(self.parallel_wall_ns.load(Ordering::Relaxed))
    }

    /// Derive total CPU time for a query that ran for `wall` on the
    /// coordinator: coordinator busy time (wall minus blocked-on-workers)
    /// plus every worker's busy time.
    pub fn cpu_time(&self, wall: Duration) -> Duration {
        wall.saturating_sub(self.parallel_wall()) + self.worker_cpu()
    }

    /// Modelled elapsed compute time: the coordinator's busy time plus the
    /// parallel section's critical path (longest worker). Equals `wall` on
    /// a machine with enough cores; on smaller machines it reports what the
    /// paper's 40-way server would observe.
    pub fn critical_path(&self, wall: Duration) -> Duration {
        wall.saturating_sub(self.parallel_wall())
            + Duration::from_nanos(self.worker_max_ns.load(Ordering::Relaxed))
    }
}

/// Measured + simulated cost of one query execution.
///
/// * `wall` — real time spent executing (all parallel workers run for real,
///   so this is genuine elapsed compute time);
/// * `cpu` — `wall` of the coordinating thread plus the busy time of every
///   parallel worker (the "CPU time" axis of the paper's Figure 1(b));
/// * `io` — simulated device activity from the storage layer;
/// * `io_dop` — how many streams the plan's I/O was spread across; the
///   simulated I/O time is divided by it when computing elapsed time.
#[derive(Debug, Clone)]
pub struct ExecMetrics {
    pub wall: Duration,
    pub cpu: Duration,
    /// Modelled elapsed compute: coordinator busy time + longest worker
    /// (see [`ExecCtx::critical_path`]). Equals `wall` for serial plans.
    pub critical_path: Duration,
    pub io: IoSnapshot,
    pub io_dop: usize,
    pub dop: usize,
    pub rows_returned: usize,
    pub memory_peak_bytes: usize,
}

impl ExecMetrics {
    /// End-to-end execution time in microseconds: modelled compute time
    /// (critical path) plus simulated device time. Positioning overlaps
    /// across `io_dop` parallel streams; transfer shares the single
    /// device's bandwidth and is never divided.
    pub fn elapsed_us(&self) -> f64 {
        // Positioning overlap is bounded by how many independent requests
        // there were: a scan that issued two segment reads cannot overlap
        // eight ways.
        let overlap = (self.io_dop.max(1) as u64).min(self.io.physical_reads.max(1)) as f64;
        self.critical_path.as_secs_f64() * 1e6 + self.io.sim_seek_us / overlap + self.io.sim_bw_us
    }

    /// CPU time in microseconds (work done, regardless of parallelism).
    pub fn cpu_us(&self) -> f64 {
        self.cpu.as_secs_f64() * 1e6
    }

    /// Bytes physically read from the simulated device.
    pub fn bytes_read(&self) -> u64 {
        self.io.bytes_read
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpd_storage::DeviceProfile;

    #[test]
    fn worker_cpu_accumulates_across_clones() {
        let pool = BufferPool::unbounded(DeviceProfile::ram());
        let ctx = ExecCtx::new(&pool);
        let c2 = ctx.clone();
        c2.add_worker_cpu(Duration::from_millis(5));
        ctx.add_worker_cpu(Duration::from_millis(7));
        assert_eq!(ctx.worker_cpu(), Duration::from_millis(12));
    }

    #[test]
    fn elapsed_divides_io_by_dop() {
        let m = ExecMetrics {
            wall: Duration::from_micros(100),
            cpu: Duration::from_micros(100),
            critical_path: Duration::from_micros(100),
            io: IoSnapshot {
                sim_seek_us: 4000.0,
                physical_reads: 16, // enough requests to overlap 4 ways
                ..Default::default()
            },
            io_dop: 4,
            dop: 4,
            rows_returned: 0,
            memory_peak_bytes: 0,
        };
        assert!((m.elapsed_us() - 1100.0).abs() < 1e-9);
        assert!((m.cpu_us() - 100.0).abs() < 1e-9);
    }
}
