//! Query execution: row-mode and vectorized batch-mode operators.
//!
//! Mirrors the split the paper attributes to SQL Server: B+ tree access
//! paths execute *row mode* (tuple-at-a-time over [`hpd_common::Row`]s),
//! columnstore access paths execute *batch mode* (vectorized over
//! [`hpd_common::Batch`]es of dense arrays). All operators implement the
//! pull-based [`Operator`] trait and exchange batches; row-mode operators
//! simply process element-at-a-time internally, which is where their CPU
//! cost difference comes from.
//!
//! Memory-sensitive operators (hash aggregate, hash join, sort) run against
//! a [`MemoryGrant`] and spill to simulated disk when they exceed it —
//! reproducing the constrained-memory behaviour of the paper's Figures 3–4.

pub mod ctx;
pub mod grant_broker;
pub mod memory;
pub mod ops;
pub mod profile;
pub mod sched;

pub use ctx::{ExecCtx, ExecMetrics};
pub use grant_broker::{GrantBroker, GrantLease};
pub use memory::MemoryGrant;
pub use ops::agg::{AggSpec, CsiAggOp, HashAggOp, StreamAggOp};
pub use ops::filter::{FilterOp, Mode, ProjectOp};
pub use ops::join::{HashJoinOp, IndexLookupJoinOp, MergeJoinOp, NestedLoopJoinOp};
pub use ops::parallel::ParallelOp;
pub use ops::scan::{BTreeRangeScanOp, CsiScanOp, ValuesOp};
pub use ops::sort::{LimitOp, SortKey, SortOp};
pub use ops::{collect, collect_rows, Operator};
pub use profile::{OpStats, ProfiledOp};
pub use sched::{PoolLease, WorkerPool};
