//! Engine-wide worker-thread scheduling.
//!
//! SQL Server runs every parallel query against one shared scheduler: a DOP-8
//! plan does not get eight dedicated OS threads, it gets *up to* eight workers
//! from a machine-wide budget, and under concurrency its effective DOP is
//! clamped. [`WorkerPool`] reproduces that arbitration: a fixed token budget
//! of **extra** worker threads (the coordinating thread is always free), a
//! non-blocking [`WorkerPool::try_acquire`] that hands back however many
//! tokens are left, and a [`PoolLease`] that returns them on drop.
//!
//! `ParallelOp` draws its threads from here instead of spawning one per
//! worker sub-plan, so N concurrent queries can never oversubscribe the
//! machine beyond `budget + N` runnable threads — the fix the paper's §3.6
//! concurrency sweep needs to saturate instead of thrash.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hpd_obs::{Counter, Histogram};

/// Histogram of pool occupancy (threads in use) sampled at every acquire.
pub const POOL_OCCUPANCY: &str = "sched.pool.occupancy";
/// Total extra worker threads requested by parallel operators.
pub const POOL_REQUESTED: &str = "sched.pool.requested_threads";
/// Requested threads that were *not* granted (DOP degradation under load).
pub const POOL_CLAMPED: &str = "sched.pool.clamped_threads";

/// Shared budget of extra worker threads. Cloning shares the budget.
#[derive(Clone)]
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    budget: usize,
    in_use: AtomicUsize,
    peak_in_use: AtomicUsize,
    occupancy: Histogram,
    requested: Counter,
    clamped: Counter,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("budget", &self.inner.budget)
            .field("in_use", &self.in_use())
            .finish()
    }
}

impl WorkerPool {
    /// A pool allowing at most `budget` extra worker threads engine-wide.
    /// `budget = 0` forces every parallel plan to degrade to serial.
    pub fn new(budget: usize) -> WorkerPool {
        let reg = hpd_obs::global();
        WorkerPool {
            inner: Arc::new(PoolInner {
                budget,
                in_use: AtomicUsize::new(0),
                peak_in_use: AtomicUsize::new(0),
                occupancy: reg.histogram(POOL_OCCUPANCY),
                requested: reg.counter(POOL_REQUESTED),
                clamped: reg.counter(POOL_CLAMPED),
            }),
        }
    }

    /// A pool that never clamps — used by contexts built outside the engine
    /// (operator unit tests, standalone executors).
    pub fn unbounded() -> WorkerPool {
        WorkerPool::new(usize::MAX >> 1)
    }

    pub fn budget(&self) -> usize {
        self.inner.budget
    }

    pub fn in_use(&self) -> usize {
        self.inner.in_use.load(Ordering::Relaxed)
    }

    /// High-water mark of threads simultaneously leased — the value the
    /// thread-budget regression test asserts against.
    pub fn peak_in_use(&self) -> usize {
        self.inner.peak_in_use.load(Ordering::Relaxed)
    }

    /// Take up to `want` worker tokens without blocking. The lease may hold
    /// fewer tokens than asked — possibly zero — when the pool is busy;
    /// callers degrade their DOP instead of waiting.
    pub fn try_acquire(&self, want: usize) -> PoolLease {
        self.inner.requested.add(want as u64);
        let mut cur = self.inner.in_use.load(Ordering::Relaxed);
        let granted = loop {
            let take = want.min(self.inner.budget.saturating_sub(cur));
            if take == 0 {
                break 0;
            }
            match self.inner.in_use.compare_exchange_weak(
                cur,
                cur + take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner
                        .peak_in_use
                        .fetch_max(cur + take, Ordering::Relaxed);
                    break take;
                }
                Err(actual) => cur = actual,
            }
        };
        self.inner.clamped.add((want - granted) as u64);
        self.inner.occupancy.record(self.in_use() as u64);
        PoolLease {
            pool: Arc::clone(&self.inner),
            granted,
        }
    }
}

/// RAII lease over worker tokens; returns them to the pool on drop.
pub struct PoolLease {
    pool: Arc<PoolInner>,
    granted: usize,
}

impl PoolLease {
    /// How many extra worker threads this lease actually holds.
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for PoolLease {
    fn drop(&mut self) {
        if self.granted > 0 {
            self.pool.in_use.fetch_sub(self.granted, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_clamps_to_budget() {
        let pool = WorkerPool::new(4);
        let a = pool.try_acquire(3);
        assert_eq!(a.granted(), 3);
        let b = pool.try_acquire(3);
        assert_eq!(b.granted(), 1, "only one token left");
        let c = pool.try_acquire(2);
        assert_eq!(c.granted(), 0, "pool exhausted");
        drop(a);
        assert_eq!(pool.in_use(), 1);
        let d = pool.try_acquire(8);
        assert_eq!(d.granted(), 3);
        assert_eq!(pool.peak_in_use(), 4);
    }

    #[test]
    fn zero_budget_always_degrades_to_serial() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.try_acquire(8).granted(), 0);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn concurrent_acquires_never_exceed_budget() {
        let pool = WorkerPool::new(5);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        let lease = pool.try_acquire(3);
                        assert!(pool.in_use() <= pool.budget());
                        drop(lease);
                    }
                });
            }
        });
        assert_eq!(pool.in_use(), 0);
        assert!(pool.peak_in_use() <= 5);
    }
}
