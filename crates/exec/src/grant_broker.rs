//! Memory-grant admission control.
//!
//! SQL Server's resource semaphore admits a query only once its requested
//! workspace memory fits in the shared grant budget; waiters queue FIFO and
//! either time out or are admitted with a *reduced* grant that forces the
//! operators to spill. Under concurrency this wait — not CPU — dominates
//! tail latency in the paper's §3.4/§3.6 experiments. [`GrantBroker`] is
//! that semaphore: queries [`GrantBroker::acquire`] their optimizer-estimated
//! grant up front and hold a [`GrantLease`] for the whole execution; the
//! lease's embedded [`MemoryGrant`] is what the spilling operators reserve
//! against, so a reduced admission flows straight into the existing spill
//! path instead of failing the query.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hpd_common::{faults, HpdError, Result};
use hpd_obs::{Counter, Histogram};
use parking_lot::{Condvar, Mutex};

use crate::memory::MemoryGrant;

/// Histogram of microseconds queries spent waiting for admission.
pub const GRANT_WAIT_US: &str = "sched.grant.wait_us";
/// Histogram of queue depth (waiters including self) sampled at enqueue.
pub const GRANT_QUEUE_DEPTH: &str = "sched.grant.queue_depth";
/// Queries admitted (full or reduced grant).
pub const GRANT_ADMITTED: &str = "sched.grant.admitted";
/// Queries admitted with less memory than they requested.
pub const GRANT_REDUCED: &str = "sched.grant.reduced";
/// Queries that gave up waiting (includes fault-injected timeouts).
pub const GRANT_TIMEOUTS: &str = "sched.grant.timeouts";

/// FIFO admission controller over one shared memory budget.
/// Cloning shares the budget and the queue.
#[derive(Clone)]
pub struct GrantBroker {
    inner: Arc<BrokerInner>,
}

struct BrokerInner {
    budget: usize,
    /// Smallest grant worth admitting with; below this a waiter times out
    /// rather than being handed a uselessly tiny reduced grant.
    min_grant: usize,
    state: Mutex<BrokerState>,
    cv: Condvar,
    peak_reserved: AtomicUsize,
    wait_us: Histogram,
    queue_depth: Histogram,
    admitted: Counter,
    reduced: Counter,
    timeouts: Counter,
}

struct BrokerState {
    reserved: usize,
    /// Tickets of queries waiting for admission, front = next to admit.
    queue: VecDeque<u64>,
    next_ticket: u64,
}

impl std::fmt::Debug for GrantBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrantBroker")
            .field("budget", &self.inner.budget)
            .field("reserved", &self.reserved_bytes())
            .finish()
    }
}

impl GrantBroker {
    /// A broker over `budget` bytes of total workspace memory. Waiters at
    /// their deadline accept any reduced grant of at least
    /// `min_grant.min(requested)` bytes instead of failing.
    pub fn new(budget: usize, min_grant: usize) -> GrantBroker {
        let reg = hpd_obs::global();
        GrantBroker {
            inner: Arc::new(BrokerInner {
                budget,
                min_grant: min_grant.max(1),
                state: Mutex::new(BrokerState {
                    reserved: 0,
                    queue: VecDeque::new(),
                    next_ticket: 0,
                }),
                cv: Condvar::new(),
                peak_reserved: AtomicUsize::new(0),
                wait_us: reg.histogram(GRANT_WAIT_US),
                queue_depth: reg.histogram(GRANT_QUEUE_DEPTH),
                admitted: reg.counter(GRANT_ADMITTED),
                reduced: reg.counter(GRANT_REDUCED),
                timeouts: reg.counter(GRANT_TIMEOUTS),
            }),
        }
    }

    pub fn budget_bytes(&self) -> usize {
        self.inner.budget
    }

    pub fn reserved_bytes(&self) -> usize {
        self.inner.state.lock().reserved
    }

    /// High-water mark of simultaneously reserved bytes — asserted against
    /// the configured budget by the concurrency bench.
    pub fn peak_reserved_bytes(&self) -> usize {
        self.inner.peak_reserved.load(Ordering::Relaxed)
    }

    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// Admission-control a query asking for `requested` bytes of workspace
    /// memory. Blocks FIFO behind earlier waiters until the grant fits; at
    /// `timeout` the head waiter takes whatever is free (a reduced grant, at
    /// least `min_grant`) or fails with [`HpdError::GrantWaitTimeout`].
    ///
    /// Requests larger than the whole budget are admitted with the budget
    /// itself — an up-front reduction, mirroring the server clamping a grant
    /// to the resource pool size.
    pub fn acquire(&self, requested: usize, timeout: Duration) -> Result<GrantLease> {
        let start = Instant::now();
        if faults::fire(faults::sites::GRANT_TIMEOUT) {
            self.inner.timeouts.inc();
            return Err(HpdError::GrantWaitTimeout {
                requested,
                waited_ms: timeout.as_millis() as u64,
            });
        }
        let req = requested.clamp(1, self.inner.budget);
        let deadline = start + timeout;

        let inner = &*self.inner;
        let mut st = inner.state.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        inner.queue_depth.record(st.queue.len() as u64);

        loop {
            if st.queue.front() == Some(&ticket) {
                let available = inner.budget - st.reserved;
                if available >= req {
                    return Ok(self.admit(st, ticket, req, requested, start, false));
                }
                if Instant::now() >= deadline {
                    // Head-of-queue at the deadline: take a reduced grant if
                    // anything useful is free, otherwise give up.
                    let floor = inner.min_grant.min(req);
                    if available >= floor {
                        return Ok(self.admit(
                            st,
                            ticket,
                            available.min(req),
                            requested,
                            start,
                            true,
                        ));
                    }
                }
            }
            if Instant::now() >= deadline {
                st.queue.retain(|t| *t != ticket);
                drop(st);
                // The queue head may have changed; wake the new head.
                inner.cv.notify_all();
                inner.timeouts.inc();
                inner.wait_us.record(start.elapsed().as_micros() as u64);
                return Err(HpdError::GrantWaitTimeout {
                    requested,
                    waited_ms: start.elapsed().as_millis() as u64,
                });
            }
            inner.cv.wait_until(&mut st, deadline);
        }
    }

    fn admit(
        &self,
        mut st: parking_lot::MutexGuard<'_, BrokerState>,
        ticket: u64,
        granted: usize,
        requested: usize,
        start: Instant,
        is_reduced: bool,
    ) -> GrantLease {
        debug_assert_eq!(st.queue.front(), Some(&ticket));
        st.queue.pop_front();
        st.reserved += granted;
        let reserved = st.reserved;
        drop(st);
        let inner = &*self.inner;
        inner.peak_reserved.fetch_max(reserved, Ordering::Relaxed);
        // Admitting one waiter can unblock the next (e.g. it wanted less).
        inner.cv.notify_all();
        inner.admitted.inc();
        if is_reduced || granted < requested {
            inner.reduced.inc();
        }
        let wait = start.elapsed();
        inner.wait_us.record(wait.as_micros() as u64);
        GrantLease {
            broker: Arc::clone(&self.inner),
            grant: MemoryGrant::new(granted),
            granted,
            requested,
            wait,
        }
    }
}

/// An admitted query's hold on broker memory, released on drop. The
/// embedded [`MemoryGrant`] is sized to the *granted* bytes, so a reduced
/// admission makes the operators spill exactly as an undersized per-query
/// grant always did.
pub struct GrantLease {
    broker: Arc<BrokerInner>,
    grant: MemoryGrant,
    granted: usize,
    requested: usize,
    wait: Duration,
}

impl std::fmt::Debug for GrantLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrantLease")
            .field("granted", &self.granted)
            .field("requested", &self.requested)
            .field("wait", &self.wait)
            .finish()
    }
}

impl GrantLease {
    pub fn granted_bytes(&self) -> usize {
        self.granted
    }

    pub fn requested_bytes(&self) -> usize {
        self.requested
    }

    /// True when the broker admitted this query with less memory than the
    /// optimizer asked for.
    pub fn is_reduced(&self) -> bool {
        self.granted < self.requested
    }

    /// How long this query waited in the admission queue.
    pub fn wait(&self) -> Duration {
        self.wait
    }

    /// The per-query working-memory budget operators reserve against.
    pub fn grant(&self) -> MemoryGrant {
        self.grant.clone()
    }
}

impl Drop for GrantLease {
    fn drop(&mut self) {
        let mut st = self.broker.state.lock();
        debug_assert!(st.reserved >= self.granted);
        st.reserved -= self.granted;
        drop(st);
        self.broker.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn full_grant_when_budget_free() {
        let b = GrantBroker::new(1000, 10);
        let lease = b.acquire(400, ms(10)).unwrap();
        assert_eq!(lease.granted_bytes(), 400);
        assert!(!lease.is_reduced());
        assert_eq!(b.reserved_bytes(), 400);
        drop(lease);
        assert_eq!(b.reserved_bytes(), 0);
        assert_eq!(b.peak_reserved_bytes(), 400);
    }

    #[test]
    fn oversized_request_is_clamped_to_budget() {
        let b = GrantBroker::new(1000, 10);
        let lease = b.acquire(5000, ms(10)).unwrap();
        assert_eq!(lease.granted_bytes(), 1000);
        assert!(lease.is_reduced());
    }

    #[test]
    fn waiter_times_out_when_budget_held() {
        let b = GrantBroker::new(1000, 200);
        let _hold = b.acquire(1000, ms(10)).unwrap();
        let err = b.acquire(500, ms(20)).unwrap_err();
        match err {
            HpdError::GrantWaitTimeout { requested, .. } => assert_eq!(requested, 500),
            other => panic!("expected GrantWaitTimeout, got {other:?}"),
        }
    }

    #[test]
    fn waiter_admitted_when_holder_releases() {
        let b = GrantBroker::new(1000, 10);
        let hold = b.acquire(900, ms(10)).unwrap();
        let b2 = b.clone();
        let waiter = std::thread::spawn(move || b2.acquire(800, Duration::from_secs(5)));
        while b.queue_depth() == 0 {
            std::thread::yield_now();
        }
        drop(hold);
        let lease = waiter.join().unwrap().unwrap();
        assert_eq!(lease.granted_bytes(), 800);
        assert!(!lease.is_reduced());
    }

    #[test]
    fn deadline_head_takes_reduced_grant() {
        let b = GrantBroker::new(1000, 100);
        let _hold = b.acquire(700, ms(200)).unwrap();
        // 600 never fits behind the 700 hold; at the deadline 300 bytes are
        // free, above the 100-byte floor → reduced grant.
        let lease = b.acquire(600, ms(20)).unwrap();
        assert_eq!(lease.granted_bytes(), 300);
        assert!(lease.is_reduced());
        assert_eq!(b.reserved_bytes(), 1000);
    }

    #[test]
    fn fifo_order_is_respected() {
        let b = GrantBroker::new(100, 1);
        let hold = b.acquire(100, ms(10)).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut joins = Vec::new();
        for i in 0..3u32 {
            let bt = b.clone();
            let order = Arc::clone(&order);
            joins.push(std::thread::spawn(move || {
                let lease = bt.acquire(100, Duration::from_secs(5)).unwrap();
                order.lock().push(i);
                drop(lease);
            }));
            // Stagger enqueue so ticket order is deterministic.
            while b.queue_depth() < (i + 1) as usize {
                std::thread::yield_now();
            }
        }
        drop(hold);
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(
            *order.lock(),
            vec![0, 1, 2],
            "admissions follow enqueue order"
        );
    }

    #[test]
    fn fault_site_forces_timeout() {
        faults::clear_all();
        let b = GrantBroker::new(1000, 10);
        faults::arm(faults::sites::GRANT_TIMEOUT, 1);
        let err = b.acquire(10, ms(50)).unwrap_err();
        assert!(matches!(err, HpdError::GrantWaitTimeout { .. }));
        // Charge consumed: the next acquire succeeds instantly.
        assert!(b.acquire(10, ms(50)).is_ok());
        faults::clear_all();
    }
}
