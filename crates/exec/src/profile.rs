//! Per-operator runtime statistics for `EXPLAIN ANALYZE`.
//!
//! [`ProfiledOp`] wraps any [`Operator`] and accumulates actual rows,
//! batches, `next()` calls, inclusive wall time, spill activity, and the
//! grant's memory high-water mark into a shared [`OpStats`]. The wrapper
//! costs one `Instant::now()` pair and a handful of relaxed atomic adds per
//! `next()` call — batches carry hundreds to thousands of rows, so the
//! overhead is far below the noise floor of execution itself.
//!
//! One `Arc<OpStats>` may be shared by several wrappers: parallel scan
//! partitions all report into their plan node's single stats cell, so
//! `rows` is the node's true total and `wall_ns` is the node's total busy
//! time across workers (not coordinator elapsed time).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hpd_common::{Batch, DataType, Result};

use crate::ctx::ExecCtx;
use crate::ops::{Operator, PlanNode};

/// Accumulated actuals for one plan node. All counters are relaxed atomics;
/// read them after the query has drained.
#[derive(Debug, Default)]
pub struct OpStats {
    pub rows: AtomicU64,
    pub batches: AtomicU64,
    pub next_calls: AtomicU64,
    /// Inclusive wall time spent inside this node's `next()` (summed across
    /// workers when partitions share the cell).
    pub wall_ns: AtomicU64,
    /// Bytes spilled by the whole context while this node's `next()` was on
    /// the stack (inclusive of children; memory-intensive operators sit
    /// above scans, so in practice the spiller is the node charged).
    pub spilled_bytes: AtomicU64,
    /// Number of `next()` calls during which spill activity occurred.
    pub spill_events: AtomicU64,
    /// Highest grant usage observed when this node returned a batch.
    pub mem_peak_bytes: AtomicU64,
}

impl OpStats {
    pub fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }
}

/// Transparent instrumentation wrapper around an operator.
pub struct ProfiledOp<'a> {
    inner: PlanNode<'a>,
    stats: Arc<OpStats>,
    /// Trace span covering the operator's lifetime (lowering to drop),
    /// present only when tracing is enabled at wrap time. Detached so a
    /// partition moved into a worker thread can drop it safely.
    span: Option<hpd_obs::trace::DetachedSpan>,
}

impl<'a> ProfiledOp<'a> {
    pub fn new(inner: PlanNode<'a>, stats: Arc<OpStats>) -> ProfiledOp<'a> {
        ProfiledOp {
            inner,
            stats,
            span: None,
        }
    }

    /// Also record an `op` trace span (child of the current span, finished
    /// when the operator drops) labelled with the plan node's description.
    pub fn with_span(mut self, label: &str) -> ProfiledOp<'a> {
        let mut span = hpd_obs::trace::detached_span("op");
        if span.is_recording() {
            span.attr("op", label);
            self.span = Some(span);
        }
        self
    }
}

impl Drop for ProfiledOp<'_> {
    fn drop(&mut self) {
        if let Some(span) = &mut self.span {
            let s = &self.stats;
            span.attr("rows", s.rows.load(Ordering::Relaxed));
            span.attr("batches", s.batches.load(Ordering::Relaxed));
            span.attr("busy_us", s.wall_ns.load(Ordering::Relaxed) / 1_000);
            let spilled = s.spilled_bytes.load(Ordering::Relaxed);
            if spilled > 0 {
                span.attr("spilled_bytes", spilled);
            }
        }
        // self.span drops next and records itself.
    }
}

impl Operator for ProfiledOp<'_> {
    fn out_types(&self) -> Vec<DataType> {
        self.inner.out_types()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        let spill_before = ctx.spill.total_spilled_bytes();
        let start = Instant::now();
        let out = self.inner.next(ctx);
        let wall = start.elapsed().as_nanos() as u64;
        let s = &self.stats;
        s.next_calls.fetch_add(1, Ordering::Relaxed);
        s.wall_ns.fetch_add(wall, Ordering::Relaxed);
        let spilled = ctx.spill.total_spilled_bytes().saturating_sub(spill_before);
        if spilled > 0 {
            s.spilled_bytes.fetch_add(spilled, Ordering::Relaxed);
            s.spill_events.fetch_add(1, Ordering::Relaxed);
        }
        s.mem_peak_bytes
            .fetch_max(ctx.grant.peak_bytes() as u64, Ordering::Relaxed);
        if let Ok(Some(batch)) = &out {
            s.rows.fetch_add(batch.num_rows() as u64, Ordering::Relaxed);
            s.batches.fetch_add(1, Ordering::Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::collect_rows;
    use crate::ValuesOp;
    use hpd_common::{Row, Value};
    use hpd_storage::{BufferPool, DeviceProfile};

    #[test]
    fn counts_rows_batches_and_calls() {
        let pool = BufferPool::unbounded(DeviceProfile::ram());
        let ctx = ExecCtx::new(&pool);
        let rows: Vec<Row> = (0..10).map(|i| Row::new(vec![Value::Int32(i)])).collect();
        let values = ValuesOp::from_rows(vec![DataType::Int32], &rows).unwrap();
        let stats = Arc::new(OpStats::default());
        let mut op = ProfiledOp::new(Box::new(values), Arc::clone(&stats));
        let out = collect_rows(&mut op, &ctx).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(stats.rows(), 10);
        assert!(stats.batches.load(Ordering::Relaxed) >= 1);
        // One extra call returns None to end the stream.
        assert!(stats.next_calls.load(Ordering::Relaxed) > stats.batches.load(Ordering::Relaxed));
        assert_eq!(stats.spilled_bytes.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn shared_stats_accumulate_across_wrappers() {
        let pool = BufferPool::unbounded(DeviceProfile::ram());
        let ctx = ExecCtx::new(&pool);
        let stats = Arc::new(OpStats::default());
        for _ in 0..3 {
            let rows: Vec<Row> = (0..5).map(|i| Row::new(vec![Value::Int32(i)])).collect();
            let mut op = ProfiledOp::new(
                Box::new(ValuesOp::from_rows(vec![DataType::Int32], &rows).unwrap()),
                Arc::clone(&stats),
            );
            collect_rows(&mut op, &ctx).unwrap();
        }
        assert_eq!(stats.rows(), 15);
    }
}
