//! Query working-memory grants.
//!
//! SQL Server grants each query a bounded working memory; hash and sort
//! operators that exceed it fall back to disk-based algorithms. Operators
//! here reserve bytes against a shared [`MemoryGrant`]; a failed reservation
//! is the spill signal.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A shared, thread-safe memory budget for one query execution.
#[derive(Debug, Clone)]
pub struct MemoryGrant {
    inner: Arc<GrantInner>,
}

#[derive(Debug)]
struct GrantInner {
    limit: usize,
    used: AtomicUsize,
    peak: AtomicUsize,
}

impl MemoryGrant {
    pub fn new(limit_bytes: usize) -> MemoryGrant {
        MemoryGrant {
            inner: Arc::new(GrantInner {
                limit: limit_bytes,
                used: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
            }),
        }
    }

    pub fn limit_bytes(&self) -> usize {
        self.inner.limit
    }

    /// Try to reserve `bytes`; returns false (reserving nothing) if the
    /// grant would be exceeded.
    pub fn try_reserve(&self, bytes: usize) -> bool {
        let mut cur = self.inner.used.load(Ordering::Relaxed);
        loop {
            let Some(next) = cur.checked_add(bytes) else {
                return false;
            };
            if next > self.inner.limit {
                return false;
            }
            match self.inner.used.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(next, Ordering::Relaxed);
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Release previously reserved bytes.
    pub fn release(&self, bytes: usize) {
        let prev = self.inner.used.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "releasing more than reserved");
    }

    pub fn used_bytes(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// High-water mark — the "memory used" series of the paper's Fig. 3(b).
    pub fn peak_bytes(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_until_limit() {
        let g = MemoryGrant::new(100);
        assert!(g.try_reserve(60));
        assert!(!g.try_reserve(50));
        assert!(g.try_reserve(40));
        assert_eq!(g.used_bytes(), 100);
        assert_eq!(g.peak_bytes(), 100);
        g.release(100);
        assert_eq!(g.used_bytes(), 0);
        assert_eq!(g.peak_bytes(), 100, "peak persists");
    }

    #[test]
    fn clones_share_budget() {
        let g = MemoryGrant::new(10);
        let g2 = g.clone();
        assert!(g.try_reserve(8));
        assert!(!g2.try_reserve(5));
        g.release(8);
        assert!(g2.try_reserve(5));
    }

    #[test]
    fn concurrent_reservations_never_exceed_limit() {
        let g = MemoryGrant::new(1000);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                let mut held = 0usize;
                for _ in 0..1000 {
                    if g.try_reserve(3) {
                        held += 3;
                    }
                }
                held
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total <= 1000);
        assert_eq!(g.used_bytes(), total);
    }
}
