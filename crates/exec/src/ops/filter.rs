//! Filter and projection operators, in both execution modes.

use hpd_common::{Batch, DataType, Expr, Result};

use crate::ctx::ExecCtx;
use crate::ops::{Operator, PlanNode};

/// Execution mode of a mode-aware operator.
///
/// Row mode evaluates expressions tuple-at-a-time (the B+ tree pipeline);
/// batch mode evaluates them vectorized over dense arrays (the columnstore
/// pipeline). Identical semantics, very different CPU cost — the difference
/// the paper's micro-benchmarks quantify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Row,
    Batch,
}

/// Applies a boolean predicate.
pub struct FilterOp<'a> {
    child: PlanNode<'a>,
    predicate: Expr,
    mode: Mode,
}

impl<'a> FilterOp<'a> {
    pub fn new(child: PlanNode<'a>, predicate: Expr, mode: Mode) -> FilterOp<'a> {
        FilterOp {
            child,
            predicate,
            mode,
        }
    }
}

impl Operator for FilterOp<'_> {
    fn out_types(&self) -> Vec<DataType> {
        self.child.out_types()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        while let Some(batch) = self.child.next(ctx)? {
            let filtered = match self.mode {
                Mode::Batch => {
                    let mask = self.predicate.eval_mask(&batch)?;
                    batch.filter(&mask)
                }
                Mode::Row => {
                    // Tuple-at-a-time evaluation through boxed values.
                    let mut mask = Vec::with_capacity(batch.num_rows());
                    for i in 0..batch.num_rows() {
                        mask.push(self.predicate.eval_bool_row(&batch.row(i))?);
                    }
                    batch.filter(&mask)
                }
            };
            if filtered.num_rows() > 0 {
                return Ok(Some(filtered));
            }
        }
        Ok(None)
    }
}

/// Computes output expressions (column pruning, computed columns).
pub struct ProjectOp<'a> {
    child: PlanNode<'a>,
    exprs: Vec<Expr>,
    types: Vec<DataType>,
    mode: Mode,
}

impl<'a> ProjectOp<'a> {
    pub fn new(
        child: PlanNode<'a>,
        exprs: Vec<Expr>,
        types: Vec<DataType>,
        mode: Mode,
    ) -> ProjectOp<'a> {
        ProjectOp {
            child,
            exprs,
            types,
            mode,
        }
    }

    /// Pure column selection.
    pub fn columns(child: PlanNode<'a>, ordinals: &[usize], mode: Mode) -> ProjectOp<'a> {
        let child_types = child.out_types();
        let types = ordinals.iter().map(|&i| child_types[i]).collect();
        let exprs = ordinals.iter().map(|&i| Expr::Col(i)).collect();
        ProjectOp {
            child,
            exprs,
            types,
            mode,
        }
    }
}

impl Operator for ProjectOp<'_> {
    fn out_types(&self) -> Vec<DataType> {
        self.types.clone()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        let Some(batch) = self.child.next(ctx)? else {
            return Ok(None);
        };
        match self.mode {
            Mode::Batch => {
                let cols = self
                    .exprs
                    .iter()
                    .map(|e| e.eval_batch(&batch))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Some(Batch::new(cols)))
            }
            Mode::Row => {
                let mut rows = Vec::with_capacity(batch.num_rows());
                for i in 0..batch.num_rows() {
                    let row = batch.row(i);
                    let vals = self
                        .exprs
                        .iter()
                        .map(|e| e.eval_row(&row))
                        .collect::<Result<Vec<_>>>()?;
                    rows.push(hpd_common::Row::new(vals));
                }
                Ok(Some(Batch::from_rows(&self.types, &rows)?))
            }
        }
    }
}
