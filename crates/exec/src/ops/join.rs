//! Join operators: hash join (grace spill), merge join (sorted inputs,
//! streaming), nested-loop join, and index-lookup join (the "index seek +
//! nested loops" pattern of the paper's hybrid plans, §5.3).

use std::collections::HashMap;
use std::ops::Bound;

use hpd_btree::BTree;
use hpd_common::{Batch, DataType, Expr, Key, Result, Row, Value};

use crate::ctx::ExecCtx;
use crate::ops::{Operator, PlanNode};

/// Bytes charged per build-side hash table entry beyond the row payload.
const HASH_ENTRY_OVERHEAD: usize = 48;
const SPILL_PARTITIONS: usize = 16;

fn concat_rows(left: &Row, right: &Row) -> Row {
    let mut vals: Vec<Value> = Vec::with_capacity(left.len() + right.len());
    vals.extend_from_slice(left.values());
    vals.extend_from_slice(right.values());
    Row::new(vals)
}

/// Inner equi hash join. The **right** child is the build side.
///
/// Build entries accumulate against the memory grant; once exhausted, the
/// remaining build rows are hash-partitioned to spill files, and probe rows
/// falling in spilled partitions are spilled alongside and joined in a
/// second pass (hybrid grace hash join).
pub struct HashJoinOp<'a> {
    left: PlanNode<'a>,
    right: PlanNode<'a>,
    /// Pairs of (left column, right column) equality keys.
    keys: Vec<(usize, usize)>,
    types: Vec<DataType>,
    output: Option<std::vec::IntoIter<Batch>>,
}

impl<'a> HashJoinOp<'a> {
    pub fn new(
        left: PlanNode<'a>,
        right: PlanNode<'a>,
        keys: Vec<(usize, usize)>,
    ) -> HashJoinOp<'a> {
        let mut types = left.out_types();
        types.extend(right.out_types());
        HashJoinOp {
            left,
            right,
            keys,
            types,
            output: None,
        }
    }

    fn run(&mut self, ctx: &ExecCtx<'_>) -> Result<Vec<Batch>> {
        let right_keys: Vec<usize> = self.keys.iter().map(|&(_, r)| r).collect();
        let left_keys: Vec<usize> = self.keys.iter().map(|&(l, _)| l).collect();

        // Build phase.
        let mut table: HashMap<Key, Vec<Row>> = HashMap::new();
        let mut reserved = 0usize;
        let mut spilled_build: Option<Vec<(hpd_storage::SpillFile, Vec<Row>)>> = None;
        while let Some(batch) = self.right.next(ctx)? {
            for i in 0..batch.num_rows() {
                let row = batch.row(i);
                let key = row.key(&right_keys);
                let bytes = row.byte_width() + HASH_ENTRY_OVERHEAD;
                if spilled_build.is_none() && !ctx.grant.try_reserve(bytes) {
                    spilled_build = Some(
                        (0..SPILL_PARTITIONS)
                            .map(|_| (ctx.spill.create_file(), Vec::new()))
                            .collect(),
                    );
                }
                match spilled_build.as_mut() {
                    Some(parts) => {
                        let p = partition_of(&key);
                        parts[p].0.write(row.byte_width() as u64, &ctx.tracker)?;
                        parts[p].1.push(row);
                    }
                    None => {
                        reserved += bytes;
                        table.entry(key).or_default().push(row);
                    }
                }
            }
        }

        // Probe phase.
        let mut out_rows: Vec<Row> = Vec::new();
        let mut spilled_probe: Vec<Vec<Row>> = vec![Vec::new(); SPILL_PARTITIONS];
        let mut probe_files: Vec<Option<hpd_storage::SpillFile>> =
            (0..SPILL_PARTITIONS).map(|_| None).collect();
        while let Some(batch) = self.left.next(ctx)? {
            for i in 0..batch.num_rows() {
                let row = batch.row(i);
                let key = row.key(&left_keys);
                if let Some(matches) = table.get(&key) {
                    for m in matches {
                        out_rows.push(concat_rows(&row, m));
                    }
                }
                if let Some(parts) = spilled_build.as_ref() {
                    let p = partition_of(&key);
                    if !parts[p].1.is_empty() {
                        probe_files[p]
                            .get_or_insert_with(|| ctx.spill.create_file())
                            .write(row.byte_width() as u64, &ctx.tracker)?;
                        spilled_probe[p].push(row);
                    }
                }
            }
        }
        ctx.grant.release(reserved);
        drop(table);

        // Second pass over spilled partitions.
        if let Some(parts) = spilled_build {
            for (p, (build_file, build_rows)) in parts.into_iter().enumerate() {
                if build_rows.is_empty() {
                    continue;
                }
                build_file.read_all(&ctx.tracker);
                if let Some(f) = &probe_files[p] {
                    f.read_all(&ctx.tracker);
                }
                let mut part_table: HashMap<Key, Vec<Row>> = HashMap::new();
                for row in build_rows {
                    part_table
                        .entry(row.key(&right_keys))
                        .or_default()
                        .push(row);
                }
                for row in std::mem::take(&mut spilled_probe[p]) {
                    if let Some(matches) = part_table.get(&row.key(&left_keys)) {
                        for m in matches {
                            out_rows.push(concat_rows(&row, m));
                        }
                    }
                }
            }
        }

        rows_to_batches(&self.types, out_rows)
    }
}

fn partition_of(key: &Key) -> usize {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SPILL_PARTITIONS
}

fn rows_to_batches(types: &[DataType], rows: Vec<Row>) -> Result<Vec<Batch>> {
    let mut batches = Vec::new();
    for chunk in rows.chunks(4096) {
        batches.push(Batch::from_rows(types, chunk)?);
    }
    Ok(batches)
}

impl Operator for HashJoinOp<'_> {
    fn out_types(&self) -> Vec<DataType> {
        self.types.clone()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if self.output.is_none() {
            let batches = self.run(ctx)?;
            self.output = Some(batches.into_iter());
        }
        Ok(self.output.as_mut().expect("initialized above").next())
    }
}

/// Streaming merge join over inputs sorted ascending on their join keys.
/// Only the current duplicate group of each side is buffered.
pub struct MergeJoinOp<'a> {
    left: RowFeed<'a>,
    right: RowFeed<'a>,
    keys: Vec<(usize, usize)>,
    types: Vec<DataType>,
    pending: Vec<Row>,
    done: bool,
}

/// Pull-side adapter turning batches into a row stream with lookahead.
struct RowFeed<'a> {
    child: PlanNode<'a>,
    buf: std::collections::VecDeque<Row>,
    exhausted: bool,
}

impl<'a> RowFeed<'a> {
    fn new(child: PlanNode<'a>) -> RowFeed<'a> {
        RowFeed {
            child,
            buf: std::collections::VecDeque::new(),
            exhausted: false,
        }
    }

    fn peek(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<&Row>> {
        while self.buf.is_empty() && !self.exhausted {
            match self.child.next(ctx)? {
                None => self.exhausted = true,
                Some(b) => self.buf.extend(b.to_rows()),
            }
        }
        Ok(self.buf.front())
    }

    fn pop(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Row>> {
        self.peek(ctx)?;
        Ok(self.buf.pop_front())
    }

    /// Pop every leading row whose key equals `key`.
    fn pop_group(&mut self, key: &Key, ords: &[usize], ctx: &ExecCtx<'_>) -> Result<Vec<Row>> {
        let mut group = Vec::new();
        while let Some(row) = self.peek(ctx)? {
            if &row.key(ords) != key {
                break;
            }
            group.push(self.pop(ctx)?.expect("peeked"));
        }
        Ok(group)
    }
}

impl<'a> MergeJoinOp<'a> {
    pub fn new(
        left: PlanNode<'a>,
        right: PlanNode<'a>,
        keys: Vec<(usize, usize)>,
    ) -> MergeJoinOp<'a> {
        let mut types = left.out_types();
        types.extend(right.out_types());
        MergeJoinOp {
            left: RowFeed::new(left),
            right: RowFeed::new(right),
            keys,
            types,
            pending: Vec::new(),
            done: false,
        }
    }
}

impl Operator for MergeJoinOp<'_> {
    fn out_types(&self) -> Vec<DataType> {
        self.types.clone()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        let lk: Vec<usize> = self.keys.iter().map(|&(l, _)| l).collect();
        let rk: Vec<usize> = self.keys.iter().map(|&(_, r)| r).collect();
        while self.pending.is_empty() && !self.done {
            let (Some(l), Some(r)) = ({
                // Split borrows: peek both sides.
                let l = self.left.peek(ctx)?.cloned();
                let r = self.right.peek(ctx)?.cloned();
                (l, r)
            }) else {
                self.done = true;
                break;
            };
            let (lkey, rkey) = (l.key(&lk), r.key(&rk));
            match lkey.cmp(&rkey) {
                std::cmp::Ordering::Less => {
                    self.left.pop(ctx)?;
                }
                std::cmp::Ordering::Greater => {
                    self.right.pop(ctx)?;
                }
                std::cmp::Ordering::Equal => {
                    let lgroup = self.left.pop_group(&lkey, &lk, ctx)?;
                    let rgroup = self.right.pop_group(&rkey, &rk, ctx)?;
                    for a in &lgroup {
                        for b in &rgroup {
                            self.pending.push(concat_rows(a, b));
                        }
                    }
                }
            }
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        let rows = std::mem::take(&mut self.pending);
        Ok(Some(Batch::from_rows(&self.types, &rows)?))
    }
}

/// Nested-loop join with an arbitrary residual predicate evaluated over the
/// concatenated row (`left ++ right` ordinals). The right side is
/// materialized once.
pub struct NestedLoopJoinOp<'a> {
    left: PlanNode<'a>,
    right: PlanNode<'a>,
    predicate: Option<Expr>,
    types: Vec<DataType>,
    inner: Option<Vec<Row>>,
    pending: Vec<Row>,
    done: bool,
}

impl<'a> NestedLoopJoinOp<'a> {
    pub fn new(
        left: PlanNode<'a>,
        right: PlanNode<'a>,
        predicate: Option<Expr>,
    ) -> NestedLoopJoinOp<'a> {
        let mut types = left.out_types();
        types.extend(right.out_types());
        NestedLoopJoinOp {
            left,
            right,
            predicate,
            types,
            inner: None,
            pending: Vec::new(),
            done: false,
        }
    }
}

impl Operator for NestedLoopJoinOp<'_> {
    fn out_types(&self) -> Vec<DataType> {
        self.types.clone()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if self.inner.is_none() {
            let mut rows = Vec::new();
            while let Some(b) = self.right.next(ctx)? {
                rows.extend(b.to_rows());
            }
            self.inner = Some(rows);
        }
        let inner = self.inner.as_ref().expect("materialized above");
        while self.pending.is_empty() && !self.done {
            match self.left.next(ctx)? {
                None => self.done = true,
                Some(batch) => {
                    for i in 0..batch.num_rows() {
                        let l = batch.row(i);
                        for r in inner {
                            let joined = concat_rows(&l, r);
                            let keep = match &self.predicate {
                                Some(p) => p.eval_bool_row(&joined)?,
                                None => true,
                            };
                            if keep {
                                self.pending.push(joined);
                            }
                        }
                    }
                }
            }
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        let rows = std::mem::take(&mut self.pending);
        Ok(Some(Batch::from_rows(&self.types, &rows)?))
    }
}

/// Index nested-loop join: for each outer row, seek a B+ tree on a key
/// formed from outer columns and emit `outer ++ payload` for every match.
/// This is the plan shape DTA's hybrid recommendations exploit: selective
/// dimension predicates drive cheap seeks into a large fact-table index.
pub struct IndexLookupJoinOp<'a> {
    outer: PlanNode<'a>,
    tree: &'a BTree,
    /// Outer column ordinals forming the seek key (a prefix of the tree key).
    key_columns: Vec<usize>,
    types: Vec<DataType>,
    pending: Vec<Row>,
    done: bool,
}

impl<'a> IndexLookupJoinOp<'a> {
    pub fn new(
        outer: PlanNode<'a>,
        tree: &'a BTree,
        key_columns: Vec<usize>,
        payload_types: Vec<DataType>,
    ) -> IndexLookupJoinOp<'a> {
        let mut types = outer.out_types();
        types.extend(payload_types.iter().copied());
        IndexLookupJoinOp {
            outer,
            tree,
            key_columns,
            types,
            pending: Vec::new(),
            done: false,
        }
    }

    /// Seek every payload whose tree key starts with `prefix`. The scan is
    /// bounded above by `prefix ++ sentinel`, so exactly the matching
    /// entries are pulled (a probe that matches one row touches one row).
    fn seek_prefix(&self, prefix: &Key, ctx: &ExecCtx<'_>) -> Vec<Row> {
        let mut out = Vec::new();
        let mut cursor = self
            .tree
            .cursor_seek(Bound::Included(prefix), ctx.pool, &ctx.tracker);
        let mut hi_vals = prefix.values().to_vec();
        hi_vals.push(hpd_common::Value::sentinel_max());
        let hi = Key::new(hi_vals);
        loop {
            let exhausted = self.tree.cursor_fill_rows(
                &mut cursor,
                Bound::Included(&hi),
                64,
                &mut out,
                ctx.pool,
                &ctx.tracker,
            );
            if exhausted {
                return out;
            }
        }
    }
}

impl Operator for IndexLookupJoinOp<'_> {
    fn out_types(&self) -> Vec<DataType> {
        self.types.clone()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        while self.pending.is_empty() && !self.done {
            match self.outer.next(ctx)? {
                None => self.done = true,
                Some(batch) => {
                    for i in 0..batch.num_rows() {
                        let outer_row = batch.row(i);
                        let key = outer_row.key(&self.key_columns);
                        for payload in self.seek_prefix(&key, ctx) {
                            self.pending.push(concat_rows(&outer_row, &payload));
                        }
                    }
                }
            }
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        let rows = std::mem::take(&mut self.pending);
        Ok(Some(Batch::from_rows(&self.types, &rows)?))
    }
}
