//! Intra-query parallelism: run N worker sub-plans on real threads and
//! gather their batches.
//!
//! The planner chooses the degree of parallelism (DOP); a serial plan skips
//! this operator entirely. Each worker's busy time is accumulated into the
//! context so "CPU time" counts total work while wall time reflects the
//! parallel speedup — the split visible between Figures 1(a) and 1(b) of the
//! paper, where switching to a parallel plan drops execution time but jumps
//! CPU time.

use std::time::Instant;

use hpd_common::{Batch, DataType, HpdError, Result};

use crate::ctx::ExecCtx;
use crate::ops::{collect, Operator, PlanNode};

/// Executes worker sub-plans concurrently and yields their output batches.
pub struct ParallelOp<'a> {
    workers: Vec<PlanNode<'a>>,
    types: Vec<DataType>,
    output: Option<std::vec::IntoIter<Batch>>,
}

impl<'a> ParallelOp<'a> {
    /// `workers` must all produce the same output schema.
    pub fn new(workers: Vec<PlanNode<'a>>) -> ParallelOp<'a> {
        assert!(!workers.is_empty(), "ParallelOp needs at least one worker");
        let types = workers[0].out_types();
        debug_assert!(workers.iter().all(|w| w.out_types() == types));
        ParallelOp {
            workers,
            types,
            output: None,
        }
    }

    pub fn dop(&self) -> usize {
        self.workers.len()
    }

    fn run(&mut self, ctx: &ExecCtx<'_>) -> Result<Vec<Batch>> {
        let workers = std::mem::take(&mut self.workers);
        if workers.len() == 1 {
            // Degenerate DOP 1: run inline.
            let mut w = workers;
            return collect(w[0].as_mut(), ctx);
        }
        let scope_start = Instant::now();
        let results = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .into_iter()
                .map(|mut w| {
                    let wctx = ctx.clone();
                    scope.spawn(move |_| {
                        let start = Instant::now();
                        let out = collect(w.as_mut(), &wctx);
                        wctx.add_worker_cpu(start.elapsed());
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect::<Vec<Result<Vec<Batch>>>>()
        })
        .map_err(|_| HpdError::Internal("parallel scope panicked".into()))?;
        ctx.add_parallel_wall(scope_start.elapsed());

        let mut batches = Vec::new();
        for r in results {
            batches.extend(r?);
        }
        Ok(batches)
    }
}

impl Operator for ParallelOp<'_> {
    fn out_types(&self) -> Vec<DataType> {
        self.types.clone()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if self.output.is_none() {
            let batches = self.run(ctx)?;
            self.output = Some(batches.into_iter());
        }
        Ok(self.output.as_mut().expect("initialized above").next())
    }
}
