//! Intra-query parallelism: run N worker sub-plans over pooled threads and
//! gather their batches.
//!
//! The planner chooses the degree of parallelism (DOP); a serial plan skips
//! this operator entirely. Threads come from the context's shared
//! [`WorkerPool`](crate::sched::WorkerPool), not raw spawns: the operator
//! leases up to `DOP - 1` extra threads and runs the sub-plans off a shared
//! work queue, with the coordinating thread always participating as one
//! lane. When the pool is busy the lease comes back short — the same plan
//! executes at a lower effective DOP (fully serial at zero) instead of
//! oversubscribing the machine.
//!
//! Each lane's busy time is accumulated into the context so "CPU time"
//! counts total work while wall time reflects the parallel speedup — the
//! split visible between Figures 1(a) and 1(b) of the paper, where switching
//! to a parallel plan drops execution time but jumps CPU time. A clamped
//! lease lengthens the critical path (one lane runs several sub-plans), so
//! DOP degradation shows up in modelled elapsed time exactly like it would
//! on a loaded server.

use std::time::Instant;

use hpd_common::{Batch, DataType, HpdError, Result};
use parking_lot::Mutex;

use crate::ctx::ExecCtx;
use crate::ops::{collect, Operator, PlanNode};

/// Executes worker sub-plans concurrently and yields their output batches.
pub struct ParallelOp<'a> {
    workers: Vec<PlanNode<'a>>,
    types: Vec<DataType>,
    output: Option<std::vec::IntoIter<Batch>>,
}

impl<'a> ParallelOp<'a> {
    /// `workers` must all produce the same output schema.
    pub fn new(workers: Vec<PlanNode<'a>>) -> ParallelOp<'a> {
        assert!(!workers.is_empty(), "ParallelOp needs at least one worker");
        let types = workers[0].out_types();
        debug_assert!(workers.iter().all(|w| w.out_types() == types));
        ParallelOp {
            workers,
            types,
            output: None,
        }
    }

    pub fn dop(&self) -> usize {
        self.workers.len()
    }

    fn run(&mut self, ctx: &ExecCtx<'_>) -> Result<Vec<Batch>> {
        let workers = std::mem::take(&mut self.workers);
        let n = workers.len();
        if n == 1 {
            // Degenerate DOP 1: run inline.
            let mut w = workers;
            return collect(w[0].as_mut(), ctx);
        }
        // Lease extra threads; the coordinator is always one lane, so DOP n
        // needs at most n-1 extras. A short (even zero) lease degrades the
        // effective DOP instead of blocking or over-spawning.
        let lease = ctx.workers.try_acquire(n - 1);
        let extra = lease.granted();

        let scope_start = Instant::now();
        // Index-tagged work queue; lanes pop from the back so sub-plans are
        // claimed in order, and results land in their slot to keep the
        // output batch order identical to the per-thread original.
        let queue: Mutex<Vec<(usize, PlanNode<'a>)>> =
            Mutex::new(workers.into_iter().enumerate().rev().collect());
        let results: Mutex<Vec<Option<Result<Vec<Batch>>>>> =
            Mutex::new((0..n).map(|_| None).collect());
        let run_lane = |wctx: &ExecCtx<'_>| {
            let start = Instant::now();
            loop {
                let item = queue.lock().pop();
                let Some((idx, mut plan)) = item else { break };
                let out = collect(plan.as_mut(), wctx);
                results.lock()[idx] = Some(out);
            }
            wctx.add_worker_cpu(start.elapsed());
        };

        if extra == 0 {
            // Pool exhausted: the whole parallel section runs serially on
            // the coordinating thread.
            run_lane(ctx);
        } else {
            crossbeam::thread::scope(|scope| {
                for _ in 0..extra {
                    let wctx = ctx.clone();
                    let run_lane = &run_lane;
                    scope.spawn(move |_| run_lane(&wctx));
                }
                run_lane(ctx);
            })
            .map_err(|_| HpdError::Internal("parallel scope panicked".into()))?;
        }
        drop(lease);
        ctx.add_parallel_wall(scope_start.elapsed());

        let mut batches = Vec::new();
        for r in results.into_inner() {
            batches.extend(r.expect("every sub-plan was claimed by a lane")?);
        }
        Ok(batches)
    }
}

impl Operator for ParallelOp<'_> {
    fn out_types(&self) -> Vec<DataType> {
        self.types.clone()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if self.output.is_none() {
            let batches = self.run(ctx)?;
            self.output = Some(batches.into_iter());
        }
        Ok(self.output.as_mut().expect("initialized above").next())
    }
}
