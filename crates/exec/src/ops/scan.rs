//! Access-path operators: B+ tree range scans (row mode), columnstore scans
//! (batch mode), and an in-memory values source.

use std::collections::{HashMap, HashSet};
use std::ops::Bound;
use std::sync::Arc;

use hpd_btree::{BTree, Cursor};
use hpd_columnstore::ColumnStoreIndex;
use hpd_common::{Batch, DataType, Interval, Key, Result, Row};

use crate::ctx::ExecCtx;
use crate::ops::Operator;

/// Rows a row-mode operator materializes per output batch.
pub const ROW_MODE_BATCH: usize = 512;

/// An in-memory batch source (materialized inputs, tests, VALUES lists).
pub struct ValuesOp {
    types: Vec<DataType>,
    batches: std::vec::IntoIter<Batch>,
}

impl ValuesOp {
    pub fn new(types: Vec<DataType>, batches: Vec<Batch>) -> ValuesOp {
        ValuesOp {
            types,
            batches: batches.into_iter(),
        }
    }

    pub fn from_rows(types: Vec<DataType>, rows: &[Row]) -> Result<ValuesOp> {
        let batch = Batch::from_rows(&types, rows)?;
        Ok(ValuesOp::new(types, vec![batch]))
    }
}

impl Operator for ValuesOp {
    fn out_types(&self) -> Vec<DataType> {
        self.types.clone()
    }

    fn next(&mut self, _ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        Ok(self.batches.next())
    }
}

/// Row-mode range scan over a B+ tree. Emits the tree's payload rows for
/// keys in `[lo, hi]`; the payload is the full row for a primary index or a
/// locator row for a secondary index.
pub struct BTreeRangeScanOp<'a> {
    tree: &'a BTree,
    types: Vec<DataType>,
    lo: Bound<Key>,
    hi: Bound<Key>,
    cursor: Option<Cursor>,
    done: bool,
}

impl<'a> BTreeRangeScanOp<'a> {
    pub fn new(
        tree: &'a BTree,
        types: Vec<DataType>,
        lo: Bound<Key>,
        hi: Bound<Key>,
    ) -> BTreeRangeScanOp<'a> {
        BTreeRangeScanOp {
            tree,
            types,
            lo,
            hi,
            cursor: None,
            done: false,
        }
    }

    /// Full scan of the leaf level.
    pub fn full(tree: &'a BTree, types: Vec<DataType>) -> BTreeRangeScanOp<'a> {
        BTreeRangeScanOp::new(tree, types, Bound::Unbounded, Bound::Unbounded)
    }
}

impl Operator for BTreeRangeScanOp<'_> {
    fn out_types(&self) -> Vec<DataType> {
        self.types.clone()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        if self.cursor.is_none() {
            self.cursor = Some(
                self.tree
                    .cursor_seek(bound_ref(&self.lo), ctx.pool, &ctx.tracker),
            );
        }
        let cursor = self.cursor.as_mut().expect("cursor initialized above");
        let mut rows: Vec<Row> = Vec::with_capacity(ROW_MODE_BATCH);
        let exhausted = self.tree.cursor_fill_rows(
            cursor,
            bound_ref(&self.hi),
            ROW_MODE_BATCH,
            &mut rows,
            ctx.pool,
            &ctx.tracker,
        );
        if exhausted {
            self.done = true;
        }
        if rows.is_empty() {
            return Ok(if exhausted {
                None
            } else {
                Some(Batch::empty(&self.types))
            });
        }
        Ok(Some(Batch::from_rows(&self.types, &rows)?))
    }
}

/// Batch-mode scan over a columnstore index: a subset of row groups (for
/// parallel partitioning) plus optionally the delta store, with segment
/// elimination and delete handling.
pub struct CsiScanOp<'a> {
    index: &'a ColumnStoreIndex,
    rowgroups: std::vec::IntoIter<usize>,
    projection: Vec<usize>,
    types: Vec<DataType>,
    intervals: HashMap<usize, Interval>,
    probe: Option<Arc<HashSet<Key>>>,
    probe_built: bool,
    include_delta: bool,
    delta_done: bool,
}

impl<'a> CsiScanOp<'a> {
    /// Scan everything: all row groups plus the delta store. The anti-join
    /// probe is built lazily on first pull.
    pub fn full(
        index: &'a ColumnStoreIndex,
        projection: Vec<usize>,
        intervals: HashMap<usize, Interval>,
    ) -> CsiScanOp<'a> {
        let all: Vec<usize> = (0..index.num_rowgroups()).collect();
        CsiScanOp::over_rowgroups(index, all, projection, intervals, true, None)
    }

    /// Scan a specific row-group subset — the unit of parallel partitioning.
    /// A shared probe must be supplied when the index has buffered deletes
    /// (pass the result of [`ColumnStoreIndex::antijoin_probe`]).
    pub fn over_rowgroups(
        index: &'a ColumnStoreIndex,
        rowgroups: Vec<usize>,
        projection: Vec<usize>,
        intervals: HashMap<usize, Interval>,
        include_delta: bool,
        probe: Option<Arc<HashSet<Key>>>,
    ) -> CsiScanOp<'a> {
        let types = projection
            .iter()
            .map(|&c| index.schema().column(c).dtype)
            .collect();
        let probe_built = probe.is_some();
        CsiScanOp {
            index,
            rowgroups: rowgroups.into_iter(),
            projection,
            types,
            intervals,
            probe,
            probe_built,
            include_delta,
            delta_done: false,
        }
    }
}

impl Operator for CsiScanOp<'_> {
    fn out_types(&self) -> Vec<DataType> {
        self.types.clone()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if !self.probe_built {
            self.probe_built = true;
            self.probe = self
                .index
                .antijoin_probe(ctx.pool, &ctx.tracker)
                .map(Arc::new);
        }
        for rg in self.rowgroups.by_ref() {
            if let Some(batch) = self.index.scan_rowgroup(
                rg,
                &self.projection,
                &self.intervals,
                self.probe.as_deref(),
                ctx.pool,
                &ctx.tracker,
            ) {
                return Ok(Some(batch));
            }
        }
        if self.include_delta && !self.delta_done {
            self.delta_done = true;
            if self.index.delta_rows() > 0 {
                return Ok(Some(self.index.scan_delta(
                    &self.projection,
                    &self.intervals,
                    ctx.pool,
                    &ctx.tracker,
                )));
            }
        }
        Ok(None)
    }
}

fn bound_ref(b: &Bound<Key>) -> Bound<&Key> {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(k) => Bound::Included(k),
        Bound::Excluded(k) => Bound::Excluded(k),
    }
}
