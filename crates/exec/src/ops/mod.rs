//! Physical operators.

pub mod agg;
pub mod filter;
pub mod join;
pub mod parallel;
pub mod scan;
pub mod sort;

use hpd_common::{Batch, DataType, Result, Row};

use crate::ctx::ExecCtx;

/// A pull-based physical operator producing batches.
///
/// Operators are composed into trees by the planner; `Box<dyn Operator + 'a>`
/// is the plan node type (`'a` borrows the underlying index structures).
/// Batch sizes are whatever is natural for the producer (a columnstore scan
/// yields one batch per surviving row group; row-mode operators yield
/// moderate fixed-size batches).
pub trait Operator: Send {
    /// Output column types.
    fn out_types(&self) -> Vec<DataType>;

    /// Produce the next non-empty batch, or `None` when exhausted. An empty
    /// batch is permitted and simply means "call again".
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>>;
}

/// A boxed plan node.
pub type PlanNode<'a> = Box<dyn Operator + 'a>;

/// Drain an operator into a list of non-empty batches.
pub fn collect(op: &mut dyn Operator, ctx: &ExecCtx<'_>) -> Result<Vec<Batch>> {
    let mut out = Vec::new();
    while let Some(b) = op.next(ctx)? {
        if b.num_rows() > 0 {
            out.push(b);
        }
    }
    Ok(out)
}

/// Drain an operator into rows (convenience for tests and result surfaces).
pub fn collect_rows(op: &mut dyn Operator, ctx: &ExecCtx<'_>) -> Result<Vec<Row>> {
    let mut rows = Vec::new();
    for b in collect(op, ctx)? {
        rows.extend(b.to_rows());
    }
    Ok(rows)
}
