//! Aggregation: hash aggregate (with grace-style spilling under memory
//! pressure) and streaming aggregate (requires sorted input, constant
//! memory).
//!
//! The contrast between these two under a constrained memory grant is the
//! paper's Figure 4: the columnstore pipeline must hash-aggregate and falls
//! off a cliff once the table exceeds the grant, while the B+ tree's sort
//! order admits a streaming aggregate that never spills.

use std::collections::HashMap;

use hpd_common::{AggFunc, Batch, DataType, HpdError, Key, Result, Row, Value};
use hpd_storage::SpillFile;

use crate::ctx::ExecCtx;
use crate::ops::{Operator, PlanNode};

/// One aggregate computation: `func(child_column)`.
#[derive(Debug, Clone, Copy)]
pub struct AggSpec {
    pub func: AggFunc,
    /// Child column ordinal (ignored for `Count`).
    pub input: usize,
}

impl AggSpec {
    pub fn new(func: AggFunc, input: usize) -> AggSpec {
        AggSpec { func, input }
    }

    /// Result type given the input column type.
    pub fn out_type(&self, input_type: DataType) -> DataType {
        match self.func {
            AggFunc::Count => DataType::Int64,
            AggFunc::Avg => DataType::Float64,
            AggFunc::Min | AggFunc::Max => input_type,
            AggFunc::Sum => match input_type {
                DataType::Int32 | DataType::Int64 | DataType::Date => DataType::Int64,
                DataType::Decimal => DataType::Decimal,
                DataType::Float64 => DataType::Float64,
                DataType::Utf8 => DataType::Utf8, // rejected at runtime
            },
        }
    }
}

/// Running state of one aggregate for one group.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    SumI(i64),
    SumD(i64),
    SumF(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, count: i64 },
}

impl AggState {
    fn new(func: AggFunc, input_type: DataType) -> Result<AggState> {
        Ok(match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Sum => match input_type {
                DataType::Int32 | DataType::Int64 | DataType::Date => AggState::SumI(0),
                DataType::Decimal => AggState::SumD(0),
                DataType::Float64 => AggState::SumF(0.0),
                DataType::Utf8 => {
                    return Err(HpdError::InvalidQuery("SUM over a string column".into()))
                }
            },
        })
    }

    fn update(&mut self, v: &Value) -> Result<()> {
        match self {
            AggState::Count(c) => *c += 1,
            AggState::SumI(s) => {
                *s = s
                    .checked_add(v.as_i64().ok_or(HpdError::TypeMismatch {
                        expected: "integer",
                        found: v.data_type().name().to_string(),
                    })?)
                    .ok_or_else(|| HpdError::Internal("SUM overflow".into()))?;
            }
            AggState::SumD(s) => {
                let Value::Decimal(d) = v else {
                    return Err(HpdError::TypeMismatch {
                        expected: "decimal",
                        found: v.data_type().name().to_string(),
                    });
                };
                *s = s
                    .checked_add(*d)
                    .ok_or_else(|| HpdError::Internal("SUM overflow".into()))?;
            }
            AggState::SumF(s) => {
                *s += v.as_f64().ok_or(HpdError::TypeMismatch {
                    expected: "numeric",
                    found: v.data_type().name().to_string(),
                })?;
            }
            AggState::Min(m) => {
                if m.as_ref().is_none_or(|cur| v < cur) {
                    *m = Some(v.clone());
                }
            }
            AggState::Max(m) => {
                if m.as_ref().is_none_or(|cur| v > cur) {
                    *m = Some(v.clone());
                }
            }
            AggState::Avg { sum, count } => {
                *sum += v.as_f64().ok_or(HpdError::TypeMismatch {
                    expected: "numeric",
                    found: v.data_type().name().to_string(),
                })?;
                *count += 1;
            }
        }
        Ok(())
    }

    /// Final value. Empty MIN/MAX (global aggregate over no rows) yields a
    /// zero value of the declared type; this engine has no NULLs.
    fn finish(self, out_type: DataType) -> Value {
        match self {
            AggState::Count(c) => Value::Int64(c),
            AggState::SumI(s) => Value::Int64(s),
            AggState::SumD(s) => Value::Decimal(s),
            AggState::SumF(s) => Value::Float64(s),
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or_else(|| zero_of(out_type)),
            AggState::Avg { sum, count } => {
                Value::Float64(if count == 0 { 0.0 } else { sum / count as f64 })
            }
        }
    }
}

fn zero_of(t: DataType) -> Value {
    match t {
        DataType::Int32 => Value::Int32(0),
        DataType::Int64 => Value::Int64(0),
        DataType::Float64 => Value::Float64(0.0),
        DataType::Decimal => Value::Decimal(0),
        DataType::Date => Value::Date(0),
        DataType::Utf8 => Value::str(""),
    }
}

/// Bytes charged per resident group (key payload + state overhead).
const GROUP_OVERHEAD: usize = 48;

/// Number of spill partitions for the external path.
const SPILL_PARTITIONS: usize = 16;

/// Hash aggregate with spilling.
///
/// While the grant allows, groups accumulate in an in-memory hash table.
/// Once a new group cannot be admitted, rows of unseen groups are
/// hash-partitioned to spill files (existing groups keep updating in
/// memory); at end-of-input the resident groups are emitted and each spilled
/// partition is recursively aggregated after reading it back — charging the
/// write+read I/O that makes disk-based aggregation slow.
pub struct HashAggOp<'a> {
    child: PlanNode<'a>,
    group_by: Vec<usize>,
    aggs: Vec<AggSpec>,
    out_types: Vec<DataType>,
    child_types: Vec<DataType>,
    output: Option<std::vec::IntoIter<Batch>>,
}

impl<'a> HashAggOp<'a> {
    pub fn new(child: PlanNode<'a>, group_by: Vec<usize>, aggs: Vec<AggSpec>) -> HashAggOp<'a> {
        let child_types = child.out_types();
        let mut out_types: Vec<DataType> = group_by.iter().map(|&g| child_types[g]).collect();
        out_types.extend(aggs.iter().map(|a| a.out_type(child_types[a.input])));
        HashAggOp {
            child,
            group_by,
            aggs,
            out_types,
            child_types,
            output: None,
        }
    }

    fn run(&mut self, ctx: &ExecCtx<'_>) -> Result<Vec<Batch>> {
        let mut table: HashMap<Key, Vec<AggState>> = HashMap::new();
        let mut reserved = 0usize;
        let mut spill: Option<Vec<(SpillFile, Vec<Row>)>> = None;

        while let Some(batch) = self.child.next(ctx)? {
            self.consume_batch(&batch, &mut table, &mut reserved, &mut spill, ctx)?;
        }

        let mut out_rows: Vec<Row> = Vec::with_capacity(table.len());
        self.emit_table(std::mem::take(&mut table), &mut out_rows);
        ctx.grant.release(reserved);

        // Process spilled partitions, one at a time, after the table memory
        // is released.
        if let Some(partitions) = spill {
            for (file, rows) in partitions {
                file.read_all(&ctx.tracker);
                self.aggregate_partition(rows, &mut out_rows, ctx, 0)?;
            }
        }

        let mut batches = Vec::new();
        for chunk in out_rows.chunks(4096) {
            batches.push(Batch::from_rows(&self.out_types, chunk)?);
        }
        if batches.is_empty() && self.group_by.is_empty() {
            // Global aggregate over an empty input: one row of identities.
            let states = self
                .aggs
                .iter()
                .map(|a| AggState::new(a.func, self.child_types[a.input]))
                .collect::<Result<Vec<_>>>()?;
            let mut row = Vec::new();
            for (st, spec) in states.into_iter().zip(&self.aggs) {
                row.push(st.finish(spec.out_type(self.child_types[spec.input])));
            }
            batches.push(Batch::from_rows(&self.out_types, &[Row::new(row)])?);
        }
        Ok(batches)
    }

    fn consume_batch(
        &self,
        batch: &Batch,
        table: &mut HashMap<Key, Vec<AggState>>,
        reserved: &mut usize,
        spill: &mut Option<Vec<(SpillFile, Vec<Row>)>>,
        ctx: &ExecCtx<'_>,
    ) -> Result<()> {
        for i in 0..batch.num_rows() {
            let key = Key::new(
                self.group_by
                    .iter()
                    .map(|&g| batch.column(g).value(i))
                    .collect(),
            );
            if let Some(states) = table.get_mut(&key) {
                for (st, spec) in states.iter_mut().zip(&self.aggs) {
                    st.update(&batch.column(spec.input).value(i))?;
                }
                continue;
            }
            let entry_bytes = key.byte_width() + GROUP_OVERHEAD * self.aggs.len().max(1);
            if spill.is_none() && !ctx.grant.try_reserve(entry_bytes) {
                // Out of grant: start spilling unseen groups.
                *spill = Some(
                    (0..SPILL_PARTITIONS)
                        .map(|_| (ctx.spill.create_file(), Vec::new()))
                        .collect(),
                );
            }
            if let Some(partitions) = spill.as_mut() {
                let row = batch.row(i);
                let p = partition_of(&key);
                let (file, rows) = &mut partitions[p];
                file.write(row.byte_width() as u64, &ctx.tracker)?;
                rows.push(row);
            } else {
                *reserved += entry_bytes;
                let mut states = Vec::with_capacity(self.aggs.len());
                for spec in &self.aggs {
                    let mut st = AggState::new(spec.func, self.child_types[spec.input])?;
                    st.update(&batch.column(spec.input).value(i))?;
                    states.push(st);
                }
                table.insert(key, states);
            }
        }
        Ok(())
    }

    fn emit_table(&self, table: HashMap<Key, Vec<AggState>>, out: &mut Vec<Row>) {
        for (key, states) in table {
            let mut row: Vec<Value> = key.values().to_vec();
            for (st, spec) in states.into_iter().zip(&self.aggs) {
                row.push(st.finish(spec.out_type(self.child_types[spec.input])));
            }
            out.push(Row::new(row));
        }
    }

    /// Aggregate one spilled partition in memory; if it *still* exceeds the
    /// grant, recurse one level by re-partitioning, then give up and finish
    /// in memory (charging no further honesty than the two passes — matches
    /// a bounded-recursion grace hash).
    fn aggregate_partition(
        &self,
        rows: Vec<Row>,
        out: &mut Vec<Row>,
        ctx: &ExecCtx<'_>,
        depth: usize,
    ) -> Result<()> {
        let mut table: HashMap<Key, Vec<AggState>> = HashMap::new();
        let mut reserved = 0usize;
        let mut overflow: Vec<Row> = Vec::new();
        for row in rows {
            let key = row.key(&self.group_by);
            if let Some(states) = table.get_mut(&key) {
                for (st, spec) in states.iter_mut().zip(&self.aggs) {
                    st.update(&row[spec.input])?;
                }
                continue;
            }
            let entry_bytes = key.byte_width() + GROUP_OVERHEAD * self.aggs.len().max(1);
            if depth < 2 && !ctx.grant.try_reserve(entry_bytes) {
                overflow.push(row);
                continue;
            }
            if depth < 2 {
                reserved += entry_bytes;
            }
            let mut states = Vec::with_capacity(self.aggs.len());
            for spec in &self.aggs {
                let mut st = AggState::new(spec.func, self.child_types[spec.input])?;
                st.update(&row[spec.input])?;
                states.push(st);
            }
            table.insert(key, states);
        }
        self.emit_table(table, out);
        ctx.grant.release(reserved);
        if !overflow.is_empty() {
            // Re-spill the overflow once (charging another disk round trip).
            let mut file = ctx.spill.create_file();
            let bytes: u64 = overflow.iter().map(|r| r.byte_width() as u64).sum();
            file.write(bytes, &ctx.tracker)?;
            file.read_all(&ctx.tracker);
            self.aggregate_partition(overflow, out, ctx, depth + 1)?;
        }
        Ok(())
    }
}

fn partition_of(key: &Key) -> usize {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SPILL_PARTITIONS
}

impl Operator for HashAggOp<'_> {
    fn out_types(&self) -> Vec<DataType> {
        self.out_types.clone()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if self.output.is_none() {
            let batches = self.run(ctx)?;
            self.output = Some(batches.into_iter());
        }
        Ok(self.output.as_mut().expect("initialized above").next())
    }
}

/// Streaming aggregate over input sorted by the group-by columns.
/// Constant memory: only the current group's states are held.
pub struct StreamAggOp<'a> {
    child: PlanNode<'a>,
    group_by: Vec<usize>,
    aggs: Vec<AggSpec>,
    out_types: Vec<DataType>,
    child_types: Vec<DataType>,
    current: Option<(Key, Vec<AggState>)>,
    pending: Vec<Row>,
    done: bool,
    saw_input: bool,
}

impl<'a> StreamAggOp<'a> {
    pub fn new(child: PlanNode<'a>, group_by: Vec<usize>, aggs: Vec<AggSpec>) -> StreamAggOp<'a> {
        let child_types = child.out_types();
        let mut out_types: Vec<DataType> = group_by.iter().map(|&g| child_types[g]).collect();
        out_types.extend(aggs.iter().map(|a| a.out_type(child_types[a.input])));
        StreamAggOp {
            child,
            group_by,
            aggs,
            out_types,
            child_types,
            current: None,
            pending: Vec::new(),
            done: false,
            saw_input: false,
        }
    }

    fn close_current(&mut self) {
        if let Some((key, states)) = self.current.take() {
            let mut row: Vec<Value> = key.values().to_vec();
            for (st, spec) in states.into_iter().zip(&self.aggs) {
                row.push(st.finish(spec.out_type(self.child_types[spec.input])));
            }
            self.pending.push(Row::new(row));
        }
    }
}

impl Operator for StreamAggOp<'_> {
    fn out_types(&self) -> Vec<DataType> {
        self.out_types.clone()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        while self.pending.is_empty() && !self.done {
            match self.child.next(ctx)? {
                None => {
                    self.done = true;
                    self.close_current();
                    if !self.saw_input && self.group_by.is_empty() {
                        // Global aggregate over empty input.
                        let mut row = Vec::new();
                        for spec in &self.aggs {
                            let st = AggState::new(spec.func, self.child_types[spec.input])?;
                            row.push(st.finish(spec.out_type(self.child_types[spec.input])));
                        }
                        self.pending.push(Row::new(row));
                    }
                }
                Some(batch) => {
                    for i in 0..batch.num_rows() {
                        self.saw_input = true;
                        let key = Key::new(
                            self.group_by
                                .iter()
                                .map(|&g| batch.column(g).value(i))
                                .collect(),
                        );
                        let same = self.current.as_ref().is_some_and(|(cur, _)| cur == &key);
                        if !same {
                            self.close_current();
                            let mut states = Vec::with_capacity(self.aggs.len());
                            for spec in &self.aggs {
                                states
                                    .push(AggState::new(spec.func, self.child_types[spec.input])?);
                            }
                            self.current = Some((key, states));
                        }
                        let (_, states) = self.current.as_mut().expect("set above");
                        for (st, spec) in states.iter_mut().zip(&self.aggs) {
                            st.update(&batch.column(spec.input).value(i))?;
                        }
                    }
                }
            }
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        let rows = std::mem::take(&mut self.pending);
        Ok(Some(Batch::from_rows(&self.out_types, &rows)?))
    }
}

/// Covered-aggregate pushdown: a *leaf* operator that folds global
/// SUM/COUNT/MIN/MAX/AVG directly on a columnstore index's encoded
/// segments ([`hpd_columnstore::ColumnStoreIndex::agg_collect`]) and emits
/// one single-row batch — survivors are never materialized. The planner
/// lowers a global `Agg` over a covered `CsiScan` onto this operator; the
/// encoded fold visits rows in the same order the scan would, so results
/// (including order-sensitive f64 sums) are identical.
pub struct CsiAggOp<'a> {
    index: &'a hpd_columnstore::ColumnStoreIndex,
    aggs: Vec<hpd_columnstore::PushdownAgg>,
    intervals: HashMap<usize, hpd_common::Interval>,
    out_types: Vec<DataType>,
    done: bool,
}

impl<'a> CsiAggOp<'a> {
    /// `aggs` input ordinals index the *index's stored schema* (the caller
    /// translates table ordinals). Output column order follows `aggs`.
    pub fn new(
        index: &'a hpd_columnstore::ColumnStoreIndex,
        aggs: Vec<hpd_columnstore::PushdownAgg>,
        intervals: HashMap<usize, hpd_common::Interval>,
    ) -> CsiAggOp<'a> {
        let out_types = aggs
            .iter()
            .map(|a| AggSpec::new(a.func, a.col).out_type(index.schema().column(a.col).dtype))
            .collect();
        CsiAggOp {
            index,
            aggs,
            intervals,
            out_types,
            done: false,
        }
    }
}

impl Operator for CsiAggOp<'_> {
    fn out_types(&self) -> Vec<DataType> {
        self.out_types.clone()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let values = self
            .index
            .agg_collect(&self.aggs, &self.intervals, ctx.pool, &ctx.tracker)
            .ok_or_else(|| {
                HpdError::Internal("aggregate pushdown on unsupported column type".into())
            })??;
        Ok(Some(Batch::from_rows(
            &self.out_types,
            &[Row::new(values)],
        )?))
    }
}
