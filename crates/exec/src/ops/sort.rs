//! Sorting: grant-aware external merge sort, plus LIMIT.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use hpd_common::{Batch, DataType, Result, Row};
use hpd_storage::SpillFile;

use crate::ctx::ExecCtx;
use crate::ops::{Operator, PlanNode};

/// One sort key: child column ordinal + direction.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    pub column: usize,
    pub ascending: bool,
}

impl SortKey {
    pub fn asc(column: usize) -> SortKey {
        SortKey {
            column,
            ascending: true,
        }
    }

    pub fn desc(column: usize) -> SortKey {
        SortKey {
            column,
            ascending: false,
        }
    }
}

fn compare_rows(a: &Row, b: &Row, keys: &[SortKey]) -> Ordering {
    for k in keys {
        let ord = a[k.column].cmp(&b[k.column]);
        let ord = if k.ascending { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sorts its input. Rows accumulate against the memory grant; when it is
/// exhausted the current run is sorted and spilled, and the runs are merged
/// at the end — a classic external merge sort whose extra I/O reproduces the
/// memory-constrained sort behaviour of the paper's Figure 3.
pub struct SortOp<'a> {
    child: PlanNode<'a>,
    keys: Vec<SortKey>,
    types: Vec<DataType>,
    output: Option<std::vec::IntoIter<Batch>>,
}

impl<'a> SortOp<'a> {
    pub fn new(child: PlanNode<'a>, keys: Vec<SortKey>) -> SortOp<'a> {
        let types = child.out_types();
        SortOp {
            child,
            keys,
            types,
            output: None,
        }
    }

    fn run(&mut self, ctx: &ExecCtx<'_>) -> Result<Vec<Batch>> {
        let mut runs: Vec<(SpillFile, Vec<Row>)> = Vec::new();
        let mut current: Vec<Row> = Vec::new();
        let mut reserved = 0usize;

        while let Some(batch) = self.child.next(ctx)? {
            for i in 0..batch.num_rows() {
                let row = batch.row(i);
                let bytes = row.byte_width() + 24;
                if !ctx.grant.try_reserve(bytes) {
                    // Spill the current run.
                    if !current.is_empty() {
                        current.sort_unstable_by(|a, b| compare_rows(a, b, &self.keys));
                        let mut file = ctx.spill.create_file();
                        let run_bytes: u64 = current.iter().map(|r| r.byte_width() as u64).sum();
                        file.write(run_bytes, &ctx.tracker)?;
                        runs.push((file, std::mem::take(&mut current)));
                        ctx.grant.release(reserved);
                        reserved = 0;
                    }
                    // The row itself must be admitted; a single row always
                    // fits conceptually even under a tiny grant.
                    let _ = ctx.grant.try_reserve(bytes);
                }
                reserved += bytes;
                current.push(row);
            }
        }

        let sorted: Vec<Row> = if runs.is_empty() {
            current.sort_unstable_by(|a, b| compare_rows(a, b, &self.keys));
            ctx.grant.release(reserved);
            current
        } else {
            // Final in-memory run joins the merge without spilling.
            current.sort_unstable_by(|a, b| compare_rows(a, b, &self.keys));
            for (file, _) in &runs {
                file.read_all(&ctx.tracker);
            }
            let merged = merge_runs(
                runs.into_iter()
                    .map(|(_, rows)| rows)
                    .chain(std::iter::once(current))
                    .collect(),
                &self.keys,
            );
            ctx.grant.release(reserved);
            merged
        };

        let mut batches = Vec::new();
        for chunk in sorted.chunks(4096) {
            batches.push(Batch::from_rows(&self.types, chunk)?);
        }
        Ok(batches)
    }
}

/// K-way merge of sorted runs.
fn merge_runs(runs: Vec<Vec<Row>>, keys: &[SortKey]) -> Vec<Row> {
    struct HeapItem<'k> {
        row: Row,
        run: usize,
        keys: &'k [SortKey],
    }
    impl PartialEq for HeapItem<'_> {
        fn eq(&self, other: &Self) -> bool {
            compare_rows(&self.row, &other.row, self.keys) == Ordering::Equal
        }
    }
    impl Eq for HeapItem<'_> {}
    impl PartialOrd for HeapItem<'_> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for HeapItem<'_> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse for a min-heap on top of BinaryHeap's max-heap.
            compare_rows(&other.row, &self.row, self.keys)
        }
    }

    let total: usize = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<Row>> = runs.into_iter().map(|r| r.into_iter()).collect();
    let mut heap = BinaryHeap::with_capacity(iters.len());
    for (i, it) in iters.iter_mut().enumerate() {
        if let Some(row) = it.next() {
            heap.push(HeapItem { row, run: i, keys });
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(HeapItem { row, run, .. }) = heap.pop() {
        out.push(row);
        if let Some(next) = iters[run].next() {
            heap.push(HeapItem {
                row: next,
                run,
                keys,
            });
        }
    }
    out
}

impl Operator for SortOp<'_> {
    fn out_types(&self) -> Vec<DataType> {
        self.types.clone()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if self.output.is_none() {
            let batches = self.run(ctx)?;
            self.output = Some(batches.into_iter());
        }
        Ok(self.output.as_mut().expect("initialized above").next())
    }
}

/// Pass through the first `n` rows (TOP / LIMIT).
pub struct LimitOp<'a> {
    child: PlanNode<'a>,
    remaining: usize,
}

impl<'a> LimitOp<'a> {
    pub fn new(child: PlanNode<'a>, n: usize) -> LimitOp<'a> {
        LimitOp {
            child,
            remaining: n,
        }
    }
}

impl Operator for LimitOp<'_> {
    fn out_types(&self) -> Vec<DataType> {
        self.child.out_types()
    }

    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let Some(batch) = self.child.next(ctx)? else {
            return Ok(None);
        };
        if batch.num_rows() <= self.remaining {
            self.remaining -= batch.num_rows();
            return Ok(Some(batch));
        }
        let mask: Vec<bool> = (0..batch.num_rows()).map(|i| i < self.remaining).collect();
        self.remaining = 0;
        Ok(Some(batch.filter(&mask)))
    }
}
