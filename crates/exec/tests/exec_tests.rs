//! Operator tests: correctness of each operator, spill behaviour under
//! constrained grants, and row/batch mode equivalence.

use std::collections::HashMap;
use std::ops::Bound;

use hpd_btree::{BTree, BTreeConfig};
use hpd_columnstore::{ColumnStoreIndex, CsiConfig, CsiKind, SortMode};
use hpd_common::{
    AggFunc, Batch, CmpOp, ColumnVector, DataType, Expr, Interval, Key, Row, Schema, Value,
};
use hpd_exec::ops::sort::SortKey;
use hpd_exec::{
    collect_rows, AggSpec, BTreeRangeScanOp, CsiScanOp, ExecCtx, FilterOp, HashAggOp, HashJoinOp,
    IndexLookupJoinOp, LimitOp, MergeJoinOp, Mode, NestedLoopJoinOp, Operator, ParallelOp,
    ProjectOp, SortOp, StreamAggOp, ValuesOp,
};
use hpd_storage::{BufferPool, DeviceProfile, IoTracker, StorageAllocator};
use proptest::prelude::*;

fn pool() -> BufferPool {
    BufferPool::unbounded(DeviceProfile::ram())
}

fn int_batch(vals: &[(i32, i32)]) -> Batch {
    Batch::new(vec![
        ColumnVector::Int32(vals.iter().map(|v| v.0).collect()),
        ColumnVector::Int32(vals.iter().map(|v| v.1).collect()),
    ])
}

fn values_op(vals: &[(i32, i32)]) -> Box<ValuesOp> {
    Box::new(ValuesOp::new(
        vec![DataType::Int32, DataType::Int32],
        vec![int_batch(vals)],
    ))
}

fn rows_to_pairs(rows: Vec<Row>) -> Vec<(i32, i32)> {
    rows.iter()
        .map(|r| (r[0].as_i32().unwrap(), r[1].as_i32().unwrap()))
        .collect()
}

#[test]
fn filter_modes_agree() {
    let data: Vec<(i32, i32)> = (0..100).map(|i| (i, i * 3)).collect();
    let pred = Expr::col_cmp(0, CmpOp::Lt, Value::Int32(10));
    let p = pool();
    for mode in [Mode::Row, Mode::Batch] {
        let ctx = ExecCtx::new(&p);
        let mut op = FilterOp::new(values_op(&data), pred.clone(), mode);
        let rows = collect_rows(&mut op, &ctx).unwrap();
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r[0].as_i32().unwrap() < 10));
    }
}

#[test]
fn project_computes_expressions() {
    let data = [(1, 10), (2, 20)];
    let p = pool();
    let ctx = ExecCtx::new(&p);
    let mut op = ProjectOp::new(
        values_op(&data),
        vec![Expr::arith(
            hpd_common::BinOp::Add,
            Expr::Col(0),
            Expr::Col(1),
        )],
        vec![DataType::Int64],
        Mode::Batch,
    );
    let rows = collect_rows(&mut op, &ctx).unwrap();
    assert_eq!(rows[0][0], Value::Int64(11));
    assert_eq!(rows[1][0], Value::Int64(22));
}

#[test]
fn hash_agg_groups_correctly() {
    let data: Vec<(i32, i32)> = (0..1000).map(|i| (i % 10, 1)).collect();
    let p = pool();
    let ctx = ExecCtx::new(&p);
    let mut op = HashAggOp::new(
        values_op(&data),
        vec![0],
        vec![
            AggSpec::new(AggFunc::Count, 0),
            AggSpec::new(AggFunc::Sum, 1),
        ],
    );
    let mut rows = collect_rows(&mut op, &ctx).unwrap();
    rows.sort_by_key(|r| r[0].as_i32().unwrap());
    assert_eq!(rows.len(), 10);
    for (g, r) in rows.iter().enumerate() {
        assert_eq!(r[0], Value::Int32(g as i32));
        assert_eq!(r[1], Value::Int64(100));
        assert_eq!(r[2], Value::Int64(100));
    }
}

#[test]
fn hash_agg_spills_under_tight_grant_and_stays_correct() {
    // 10k distinct groups with a grant that fits only a fraction.
    let data: Vec<(i32, i32)> = (0..10_000).map(|i| (i, 2)).collect();
    let p = pool();
    let ctx = ExecCtx::with_grant(&p, 64 * 1024);
    let mut op = HashAggOp::new(
        values_op(&data),
        vec![0],
        vec![AggSpec::new(AggFunc::Sum, 1)],
    );
    let rows = collect_rows(&mut op, &ctx).unwrap();
    assert_eq!(rows.len(), 10_000);
    assert!(rows.iter().all(|r| r[1] == Value::Int64(2)));
    let io = ctx.tracker.snapshot();
    assert!(io.bytes_written > 0, "spill must write to disk");
    assert!(io.bytes_read > 0, "spilled partitions must be read back");
}

#[test]
fn hash_agg_no_spill_with_ample_grant() {
    let data: Vec<(i32, i32)> = (0..1000).map(|i| (i, 1)).collect();
    let p = pool();
    let ctx = ExecCtx::with_grant(&p, 10 << 20);
    let mut op = HashAggOp::new(
        values_op(&data),
        vec![0],
        vec![AggSpec::new(AggFunc::Count, 0)],
    );
    let rows = collect_rows(&mut op, &ctx).unwrap();
    assert_eq!(rows.len(), 1000);
    assert_eq!(ctx.tracker.snapshot().bytes_written, 0);
    assert!(ctx.grant.peak_bytes() > 0);
    assert_eq!(ctx.grant.used_bytes(), 0, "memory released at end");
}

#[test]
fn global_aggregates_on_empty_and_nonempty_input() {
    let p = pool();
    let ctx = ExecCtx::new(&p);
    let mut op = HashAggOp::new(
        values_op(&[]),
        vec![],
        vec![
            AggSpec::new(AggFunc::Count, 0),
            AggSpec::new(AggFunc::Sum, 1),
            AggSpec::new(AggFunc::Avg, 1),
        ],
    );
    let rows = collect_rows(&mut op, &ctx).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::Int64(0));
    assert_eq!(rows[0][1], Value::Int64(0));
    assert_eq!(rows[0][2], Value::Float64(0.0));

    let mut op = HashAggOp::new(
        values_op(&[(1, 4), (2, 6)]),
        vec![],
        vec![
            AggSpec::new(AggFunc::Min, 1),
            AggSpec::new(AggFunc::Max, 1),
            AggSpec::new(AggFunc::Avg, 1),
        ],
    );
    let rows = collect_rows(&mut op, &ctx).unwrap();
    assert_eq!(rows[0][0], Value::Int32(4));
    assert_eq!(rows[0][1], Value::Int32(6));
    assert_eq!(rows[0][2], Value::Float64(5.0));
}

#[test]
fn stream_agg_matches_hash_agg_on_sorted_input() {
    let mut data: Vec<(i32, i32)> = (0..500).map(|i| (i % 7, i)).collect();
    data.sort();
    let p = pool();
    let ctx = ExecCtx::new(&p);
    let mut hash = HashAggOp::new(
        values_op(&data),
        vec![0],
        vec![AggSpec::new(AggFunc::Sum, 1), AggSpec::new(AggFunc::Max, 1)],
    );
    let mut stream = StreamAggOp::new(
        values_op(&data),
        vec![0],
        vec![AggSpec::new(AggFunc::Sum, 1), AggSpec::new(AggFunc::Max, 1)],
    );
    let mut h = collect_rows(&mut hash, &ctx).unwrap();
    let s = collect_rows(&mut stream, &ctx).unwrap();
    h.sort_by_key(|r| r[0].as_i32().unwrap());
    assert_eq!(h, s, "stream output is already sorted by group key");
}

#[test]
fn stream_agg_uses_no_grant_memory() {
    let mut data: Vec<(i32, i32)> = (0..5000).map(|i| (i, 1)).collect();
    data.sort();
    let p = pool();
    let ctx = ExecCtx::with_grant(&p, 1024); // tiny grant
    let mut op = StreamAggOp::new(
        values_op(&data),
        vec![0],
        vec![AggSpec::new(AggFunc::Count, 0)],
    );
    let rows = collect_rows(&mut op, &ctx).unwrap();
    assert_eq!(rows.len(), 5000);
    assert_eq!(ctx.tracker.snapshot().bytes_written, 0, "never spills");
}

#[test]
fn sort_in_memory_and_external_agree() {
    let data: Vec<(i32, i32)> = (0..2000)
        .map(|i| ((i * 37) % 500, (i * 13) % 100))
        .collect();
    let p = pool();
    let sorted_with = |grant: usize| {
        let ctx = ExecCtx::with_grant(&p, grant);
        let mut op = SortOp::new(values_op(&data), vec![SortKey::asc(0), SortKey::desc(1)]);
        let rows = collect_rows(&mut op, &ctx).unwrap();
        (rows_to_pairs(rows), ctx.tracker.snapshot())
    };
    let (in_mem, io_mem) = sorted_with(100 << 20);
    let (external, io_ext) = sorted_with(8 * 1024);
    assert_eq!(in_mem, external);
    assert_eq!(io_mem.bytes_written, 0);
    assert!(io_ext.bytes_written > 0, "external sort spills runs");
    // Verify ordering.
    for w in in_mem.windows(2) {
        assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 >= w[1].1));
    }
}

#[test]
fn limit_truncates() {
    let data: Vec<(i32, i32)> = (0..100).map(|i| (i, i)).collect();
    let p = pool();
    let ctx = ExecCtx::new(&p);
    let mut op = LimitOp::new(values_op(&data), 7);
    assert_eq!(collect_rows(&mut op, &ctx).unwrap().len(), 7);
    let mut op = LimitOp::new(values_op(&data), 1000);
    assert_eq!(collect_rows(&mut op, &ctx).unwrap().len(), 100);
}

#[test]
fn hash_join_inner_equi() {
    let left: Vec<(i32, i32)> = vec![(1, 10), (2, 20), (3, 30), (2, 21)];
    let right: Vec<(i32, i32)> = vec![(2, 200), (3, 300), (4, 400), (2, 201)];
    let p = pool();
    let ctx = ExecCtx::new(&p);
    let mut op = HashJoinOp::new(values_op(&left), values_op(&right), vec![(0, 0)]);
    let mut rows = collect_rows(&mut op, &ctx).unwrap();
    rows.sort();
    assert_eq!(rows.len(), 5); // 2 left twos × 2 right twos + one three
    assert!(rows
        .iter()
        .all(|r| r[0].as_i32().unwrap() == r[2].as_i32().unwrap()));
}

#[test]
fn hash_join_spills_and_stays_correct() {
    let left: Vec<(i32, i32)> = (0..3000).map(|i| (i % 1000, i)).collect();
    let right: Vec<(i32, i32)> = (0..1000).map(|i| (i, i * 2)).collect();
    let p = pool();
    let expected = {
        let ctx = ExecCtx::new(&p);
        let mut op = HashJoinOp::new(values_op(&left), values_op(&right), vec![(0, 0)]);
        let mut rows = collect_rows(&mut op, &ctx).unwrap();
        rows.sort();
        rows
    };
    let ctx = ExecCtx::with_grant(&p, 8 * 1024);
    let mut op = HashJoinOp::new(values_op(&left), values_op(&right), vec![(0, 0)]);
    let mut rows = collect_rows(&mut op, &ctx).unwrap();
    rows.sort();
    assert_eq!(rows, expected);
    assert!(
        ctx.tracker.snapshot().bytes_written > 0,
        "grace partitions spill"
    );
}

#[test]
fn merge_join_with_duplicates() {
    let mut left: Vec<(i32, i32)> = vec![(1, 10), (2, 20), (2, 21), (5, 50)];
    let mut right: Vec<(i32, i32)> = vec![(2, 200), (2, 201), (3, 300), (5, 500)];
    left.sort();
    right.sort();
    let p = pool();
    let ctx = ExecCtx::new(&p);
    let mut op = MergeJoinOp::new(values_op(&left), values_op(&right), vec![(0, 0)]);
    let mut rows = collect_rows(&mut op, &ctx).unwrap();
    rows.sort();
    // 2×2 for key 2, 1 for key 5.
    assert_eq!(rows.len(), 5);

    // Cross-check against hash join.
    let mut hj = HashJoinOp::new(values_op(&left), values_op(&right), vec![(0, 0)]);
    let mut expected = collect_rows(&mut hj, &ctx).unwrap();
    expected.sort();
    assert_eq!(rows, expected);
}

#[test]
fn nested_loop_join_theta() {
    let left = [(1, 0), (5, 0)];
    let right = [(3, 0), (7, 0)];
    let p = pool();
    let ctx = ExecCtx::new(&p);
    // join condition: left.col0 < right.col0 (ordinal 2 after concat)
    let mut op = NestedLoopJoinOp::new(
        values_op(&left),
        values_op(&right),
        Some(Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::Col(2))),
    );
    let rows = collect_rows(&mut op, &ctx).unwrap();
    assert_eq!(rows.len(), 3); // (1,3),(1,7),(5,7)
}

#[test]
fn index_lookup_join_seeks_per_outer_row() {
    // Build a primary B+ tree keyed on col0 with duplicate keys.
    let p = BufferPool::unbounded(DeviceProfile::hdd_raid());
    let t = IoTracker::new();
    let entries: Vec<(Key, Row)> = (0..1000)
        .map(|i| {
            (
                Key::single(Value::Int32(i / 2)),
                Row::new(vec![Value::Int32(i / 2), Value::Int32(i)]),
            )
        })
        .collect();
    let tree = BTree::bulk_load(
        BTreeConfig::for_entry_width(16),
        StorageAllocator::new(),
        entries,
        &p,
        &t,
    )
    .unwrap();
    p.clear();
    let ctx = ExecCtx::new(&p);
    let outer = values_op(&[(100, 0), (200, 0)]);
    let mut op = IndexLookupJoinOp::new(
        outer,
        &tree,
        vec![0],
        vec![DataType::Int32, DataType::Int32],
    );
    let rows = collect_rows(&mut op, &ctx).unwrap();
    assert_eq!(rows.len(), 4, "two matches per outer key");
    // Selective seeks touch few pages compared to the tree's leaf count.
    let io = ctx.tracker.snapshot();
    assert!(io.logical_reads < 20);
}

#[test]
fn btree_scan_operator_respects_bounds() {
    let p = pool();
    let t = IoTracker::new();
    let entries: Vec<(Key, Row)> = (0..100)
        .map(|i| {
            (
                Key::single(Value::Int32(i)),
                Row::new(vec![Value::Int32(i), Value::Int32(i * 2)]),
            )
        })
        .collect();
    let tree = BTree::bulk_load(
        BTreeConfig::default(),
        StorageAllocator::new(),
        entries,
        &p,
        &t,
    )
    .unwrap();
    let ctx = ExecCtx::new(&p);
    let mut op = BTreeRangeScanOp::new(
        &tree,
        vec![DataType::Int32, DataType::Int32],
        Bound::Included(Key::single(Value::Int32(10))),
        Bound::Excluded(Key::single(Value::Int32(15))),
    );
    let rows = collect_rows(&mut op, &ctx).unwrap();
    assert_eq!(
        rows.iter()
            .map(|r| r[0].as_i32().unwrap())
            .collect::<Vec<_>>(),
        vec![10, 11, 12, 13, 14]
    );
}

fn build_csi(n: i32) -> (ColumnStoreIndex, BufferPool) {
    let pool = BufferPool::unbounded(DeviceProfile::ram());
    let t = IoTracker::new();
    let rows: Vec<Row> = (0..n)
        .map(|i| Row::new(vec![Value::Int32(i), Value::Int32(i % 50)]))
        .collect();
    let idx = ColumnStoreIndex::build(
        Schema::from_pairs(&[("id", DataType::Int32), ("val", DataType::Int32)]),
        CsiKind::Primary,
        vec![0],
        CsiConfig {
            rowgroup_capacity: 128,
            sort_mode: SortMode::Greedy,
            ..CsiConfig::default()
        },
        &rows,
        StorageAllocator::new(),
        &pool,
        &t,
    );
    (idx, pool)
}

#[test]
fn csi_scan_operator_full_and_filtered() {
    let (idx, p) = build_csi(1000);
    let ctx = ExecCtx::new(&p);
    let mut op = CsiScanOp::full(&idx, vec![0, 1], HashMap::new());
    let rows = collect_rows(&mut op, &ctx).unwrap();
    assert_eq!(rows.len(), 1000);

    let mut intervals = HashMap::new();
    intervals.insert(0usize, Interval::less_than(Value::Int32(100), false));
    let scan = Box::new(CsiScanOp::full(&idx, vec![0, 1], intervals));
    let mut filt = FilterOp::new(
        scan,
        Expr::col_cmp(0, CmpOp::Lt, Value::Int32(100)),
        Mode::Batch,
    );
    let rows = collect_rows(&mut filt, &ctx).unwrap();
    assert_eq!(rows.len(), 100);
}

#[test]
fn parallel_csi_scan_equals_serial() {
    let (idx, p) = build_csi(2000);
    let serial = {
        let ctx = ExecCtx::new(&p);
        let mut op = CsiScanOp::full(&idx, vec![0], HashMap::new());
        let mut rows = collect_rows(&mut op, &ctx).unwrap();
        rows.sort();
        rows
    };
    let dop = 4;
    let workers: Vec<Box<dyn Operator + '_>> = (0..dop)
        .map(|w| {
            let rgs: Vec<usize> = (0..idx.num_rowgroups())
                .filter(|rg| rg % dop == w)
                .collect();
            Box::new(CsiScanOp::over_rowgroups(
                &idx,
                rgs,
                vec![0],
                HashMap::new(),
                w == 0, // only one worker scans the delta
                None,
            )) as Box<dyn Operator + '_>
        })
        .collect();
    let ctx = ExecCtx::new(&p);
    let mut par = ParallelOp::new(workers);
    assert_eq!(par.dop(), 4);
    let mut rows = collect_rows(&mut par, &ctx).unwrap();
    rows.sort();
    assert_eq!(rows, serial);
    assert!(ctx.worker_cpu() > std::time::Duration::ZERO);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_hash_agg_spill_equals_no_spill(
        data in prop::collection::vec((0i32..200, -50i32..50), 0..400),
        grant_kb in 1usize..64,
    ) {
        let data: Vec<(i32,i32)> = data;
        let p = pool();
        let run = |grant: usize| {
            let ctx = ExecCtx::with_grant(&p, grant);
            let mut op = HashAggOp::new(
                values_op(&data),
                vec![0],
                vec![
                    AggSpec::new(AggFunc::Count, 0),
                    AggSpec::new(AggFunc::Sum, 1),
                    AggSpec::new(AggFunc::Min, 1),
                    AggSpec::new(AggFunc::Max, 1),
                ],
            );
            let mut rows = collect_rows(&mut op, &ctx).unwrap();
            rows.sort_by_key(|r| r[0].as_i32().unwrap());
            rows
        };
        prop_assert_eq!(run(grant_kb * 1024), run(usize::MAX >> 2));
    }

    #[test]
    fn prop_sort_external_equals_std_sort(
        data in prop::collection::vec((-100i32..100, -100i32..100), 0..300),
    ) {
        let data: Vec<(i32,i32)> = data;
        let p = pool();
        let ctx = ExecCtx::with_grant(&p, 2048);
        let mut op = SortOp::new(values_op(&data), vec![SortKey::asc(0)]);
        let got: Vec<i32> = collect_rows(&mut op, &ctx).unwrap()
            .iter().map(|r| r[0].as_i32().unwrap()).collect();
        let mut expected: Vec<i32> = data.iter().map(|d| d.0).collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn prop_merge_join_equals_hash_join(
        mut left in prop::collection::vec((0i32..30, 0i32..1000), 0..80),
        mut right in prop::collection::vec((0i32..30, 0i32..1000), 0..80),
    ) {
        left.sort();
        right.sort();
        let p = pool();
        let ctx = ExecCtx::new(&p);
        let mut mj = MergeJoinOp::new(values_op(&left), values_op(&right), vec![(0, 0)]);
        let mut m = collect_rows(&mut mj, &ctx).unwrap();
        let mut hj = HashJoinOp::new(values_op(&left), values_op(&right), vec![(0, 0)]);
        let mut h = collect_rows(&mut hj, &ctx).unwrap();
        m.sort();
        h.sort();
        prop_assert_eq!(m, h);
    }
}
