//! Scaled TPC-H `lineitem` and the paper's update/mixed-workload statements.
//!
//! Used by the Figure 5 (update cost) and Figure 6 (mixed workload)
//! experiments. Columns cover everything Q4/Q5 and the three §3.4 physical
//! designs touch.

use hpd_common::{AggFunc, BinOp, CmpOp, DataType, Expr, Result, Row, Schema, Value};
use hpd_engine::{
    AggItem, ColRef, Database, IndexDescriptor, SelectQuery, Statement, TableInput, UpdateStmt,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Column ordinals of `lineitem`.
pub mod col {
    pub const L_ORDERKEY: usize = 0;
    pub const L_LINENUMBER: usize = 1;
    pub const L_QUANTITY: usize = 2;
    pub const L_EXTENDEDPRICE: usize = 3;
    pub const L_DISCOUNT: usize = 4;
    pub const L_SHIPDATE: usize = 5;
    pub const L_SUPPKEY: usize = 6;
    pub const L_PARTKEY: usize = 7;
}

/// Number of distinct ship dates (TPC-H spans ~2,526 days).
pub const SHIPDATE_DAYS: i32 = 2400;

pub fn lineitem_schema() -> Schema {
    Schema::from_pairs(&[
        ("l_orderkey", DataType::Int32),
        ("l_linenumber", DataType::Int32),
        ("l_quantity", DataType::Decimal),
        ("l_extendedprice", DataType::Decimal),
        ("l_discount", DataType::Decimal),
        ("l_shipdate", DataType::Date),
        ("l_suppkey", DataType::Int32),
        ("l_partkey", DataType::Int32),
    ])
}

/// Generate ~`rows` lineitem rows (orders of 1–7 lines), deterministic in
/// `seed`.
pub fn lineitem_rows(rows: usize, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(rows);
    let mut orderkey = 0i32;
    while out.len() < rows {
        orderkey += 1;
        let lines = rng.gen_range(1usize..=7).min(rows - out.len());
        for line in 1..=lines {
            let quantity = rng.gen_range(1..=50) as i64 * 10_000;
            let price = rng.gen_range(90_000i64..=10_490_000) * 100; // 900.00..104900.00 in 1e-4
            let discount = rng.gen_range(0..=10) as i64 * 1_000; // 0.00..0.10
            out.push(Row::new(vec![
                Value::Int32(orderkey),
                Value::Int32(line as i32),
                Value::Decimal(quantity),
                Value::Decimal(price),
                Value::Decimal(discount),
                Value::Date(rng.gen_range(0..SHIPDATE_DAYS)),
                Value::Int32(rng.gen_range(0..10_000)),
                Value::Int32(rng.gen_range(0..200_000)),
            ]));
        }
    }
    out
}

/// The three §3.4 physical designs for the mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixedDesign {
    /// (A) primary B+ tree on (l_orderkey, l_linenumber) + secondary B+
    /// tree on l_shipdate.
    BTreeOnly,
    /// (B) = (A) plus a secondary columnstore on all columns.
    BTreeWithSecondaryCsi,
    /// (C) primary columnstore + secondary B+ tree on l_shipdate.
    PrimaryCsi,
}

/// Create + load `lineitem` under one of the three designs.
pub fn load_lineitem(db: &Database, rows: usize, seed: u64, design: MixedDesign) -> Result<()> {
    let pk = vec![col::L_ORDERKEY, col::L_LINENUMBER];
    let primary = match design {
        MixedDesign::BTreeOnly | MixedDesign::BTreeWithSecondaryCsi => {
            IndexDescriptor::PrimaryBTree { keys: pk.clone() }
        }
        MixedDesign::PrimaryCsi => IndexDescriptor::PrimaryCsi,
    };
    db.create_table("lineitem", lineitem_schema(), pk, primary)?;
    db.load_table("lineitem", lineitem_rows(rows, seed))?;
    // Secondary B+ tree on l_shipdate helps Q4's selective predicate in all
    // three designs.
    db.create_index(
        "lineitem",
        &IndexDescriptor::SecondaryBTree {
            keys: vec![col::L_SHIPDATE],
            includes: vec![],
        },
    )?;
    if design == MixedDesign::BTreeWithSecondaryCsi {
        db.create_index(
            "lineitem",
            &IndexDescriptor::SecondaryCsi {
                columns: (0..lineitem_schema().len()).collect(),
            },
        )?;
    }
    Ok(())
}

/// **Q4**: `UPDATE top(N) lineitem SET l_quantity += 1, l_extendedprice +=
/// 0.01 WHERE l_shipdate = ?` (paper §3.3).
pub fn q4_update(n_rows: usize, shipdate: i32) -> Statement {
    Statement::Update(UpdateStmt {
        table: "lineitem".into(),
        predicate: Expr::col_cmp(col::L_SHIPDATE, CmpOp::Eq, Value::Date(shipdate)),
        top: Some(n_rows),
        set: vec![
            (
                col::L_QUANTITY,
                Expr::arith(
                    BinOp::Add,
                    Expr::Col(col::L_QUANTITY),
                    Expr::lit(Value::Decimal(10_000)),
                ),
            ),
            (
                col::L_EXTENDEDPRICE,
                Expr::arith(
                    BinOp::Add,
                    Expr::Col(col::L_EXTENDEDPRICE),
                    Expr::lit(Value::Decimal(100)),
                ),
            ),
        ],
    })
}

/// **Q5**: `SELECT sum(l_quantity), sum(l_extendedprice * (1 - l_discount))
/// FROM lineitem WHERE l_shipdate BETWEEN ? AND ?+1` (paper §3.4).
pub fn q5_scan(shipdate: i32) -> Statement {
    q5_scan_range(shipdate, shipdate + 1)
}

/// Q5 generalized to a ship-date window. The paper's window of two days over
/// 180 M rows touches ~150 k rows, making every analytic query
/// resource-dominant over the 10-row updates; at scaled row counts the
/// window must widen to preserve that scan-to-update work ratio
/// (the Figure 6 mixed-workload experiment uses a wide window).
pub fn q5_scan_range(from: i32, to: i32) -> Statement {
    Statement::Select(SelectQuery {
        tables: vec![TableInput::with_predicate(
            "lineitem",
            Expr::between(col::L_SHIPDATE, Value::Date(from), Value::Date(to)),
        )],
        aggregates: vec![
            AggItem::column(AggFunc::Sum, ColRef::new(0, col::L_QUANTITY)),
            AggItem::new(
                AggFunc::Sum,
                0,
                Expr::arith(
                    BinOp::Mul,
                    Expr::Col(col::L_EXTENDEDPRICE),
                    Expr::arith(
                        BinOp::Sub,
                        Expr::lit(Value::Decimal(10_000)),
                        Expr::Col(col::L_DISCOUNT),
                    ),
                ),
            ),
        ],
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpd_engine::DbConfig;

    #[test]
    fn lineitem_generation_shape() {
        let rows = lineitem_rows(10_000, 1);
        assert_eq!(rows.len(), 10_000);
        // (orderkey, linenumber) unique.
        let mut keys: Vec<(i32, i32)> = rows
            .iter()
            .map(|r| (r[0].as_i32().unwrap(), r[1].as_i32().unwrap()))
            .collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "pk must be unique");
        // Shipdates within range.
        assert!(rows
            .iter()
            .all(|r| (0..SHIPDATE_DAYS).contains(&r[5].as_i32().unwrap())));
    }

    #[test]
    fn q4_and_q5_run_on_all_three_designs() {
        for design in [
            MixedDesign::BTreeOnly,
            MixedDesign::BTreeWithSecondaryCsi,
            MixedDesign::PrimaryCsi,
        ] {
            let mut cfg = DbConfig::default();
            cfg.csi.rowgroup_capacity = 4096;
            let db = Database::new(cfg);
            load_lineitem(&db, 20_000, 7, design).unwrap();
            let upd = db.query(&q4_update(10, 100)).run().unwrap();
            let affected = upd.rows[0][0].as_i64().unwrap();
            // ~8 rows/day at this scale; TOP caps at 10.
            assert!(
                (1..=10).contains(&affected),
                "{design:?}: affected {affected}"
            );
            let scan = db.query(&q5_scan(100)).run().unwrap();
            assert_eq!(scan.rows.len(), 1);
            assert!(scan.rows[0][0].as_f64().unwrap() > 0.0);
        }
    }

    #[test]
    fn q4_update_actually_bumps_values() {
        let db = Database::new(DbConfig::default());
        load_lineitem(&db, 5_000, 3, MixedDesign::BTreeOnly).unwrap();
        let before = db.query(&q5_scan(42)).run().unwrap().rows[0][0].clone();
        // Update every line shipped on day 42 (top high enough).
        db.query(&q4_update(100_000, 42)).run().unwrap();
        let after = db.query(&q5_scan(42)).run().unwrap().rows[0][0].clone();
        assert!(
            after.as_f64().unwrap() > before.as_f64().unwrap(),
            "sum(l_quantity) should grow: {before:?} -> {after:?}"
        );
    }
}
