//! The §3 micro-benchmark substrate: uniform synthetic tables and the
//! parameterized queries Q1–Q3.
//!
//! "Synthetic data set consists of tables with different numbers of columns.
//! Each column contains uniformly distributed 32-bit integers in range from
//! 0 to 2³¹ − 1 (similar to Kester et al.)."

use hpd_common::{AggFunc, CmpOp, DataType, Expr, Result, Row, Schema, Value};
use hpd_engine::{AggItem, ColRef, Database, IndexDescriptor, SelectQuery, TableInput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Domain of the uniform columns: `[0, 2^31)`.
pub const DOMAIN: i64 = 1 << 31;

/// Whether data arrives sorted on column 0 (enables columnstore segment
/// elimination — the "CSI sorted" configuration of Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortedLoad {
    Random,
    SortedByCol0,
}

/// Descriptor for one micro-benchmark table.
#[derive(Debug, Clone)]
pub struct MicroTable {
    pub name: String,
    pub columns: usize,
    pub rows: usize,
    pub seed: u64,
    pub sorted: SortedLoad,
    /// Distinct values of column 0 (`None` = full uniform domain). Used by
    /// the group-by experiment (Figure 4) to control the number of groups.
    pub col0_distinct: Option<usize>,
}

impl MicroTable {
    pub fn new(name: impl Into<String>, columns: usize, rows: usize) -> MicroTable {
        MicroTable {
            name: name.into(),
            columns,
            rows,
            seed: 0xC0FFEE,
            sorted: SortedLoad::Random,
            col0_distinct: None,
        }
    }

    pub fn sorted(mut self) -> MicroTable {
        self.sorted = SortedLoad::SortedByCol0;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> MicroTable {
        self.seed = seed;
        self
    }

    pub fn with_col0_distinct(mut self, d: usize) -> MicroTable {
        self.col0_distinct = Some(d);
        self
    }

    pub fn schema(&self) -> Schema {
        Schema::new(
            (0..self.columns)
                .map(|i| hpd_common::ColumnDef::new(format!("col{}", i + 1), DataType::Int32))
                .collect(),
        )
    }

    /// Generate the rows (deterministic in the seed).
    pub fn rows(&self) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut rows: Vec<Row> = (0..self.rows)
            .map(|_| {
                Row::new(
                    (0..self.columns)
                        .map(|c| {
                            let v = match (c, self.col0_distinct) {
                                (0, Some(d)) => rng.gen_range(0..d as i64),
                                _ => rng.gen_range(0..DOMAIN),
                            };
                            Value::Int32(v as i32)
                        })
                        .collect(),
                )
            })
            .collect();
        if self.sorted == SortedLoad::SortedByCol0 {
            rows.sort_by(|a, b| a[0].cmp(&b[0]));
        }
        rows
    }

    /// Create + load the table with the given primary index. The primary
    /// key is column 0 (values are effectively unique over the 2³¹ domain;
    /// the B+ tree tolerates duplicates).
    pub fn load(&self, db: &Database, primary: IndexDescriptor) -> Result<()> {
        db.create_table(&self.name, self.schema(), vec![0], primary)?;
        db.load_table(&self.name, self.rows())
    }

    /// Create + load with the primary B+ tree keyed on an arbitrary column
    /// (Figure 3's design (c): primary keyed on col2).
    pub fn load_keyed_on(&self, db: &Database, key_col: usize) -> Result<()> {
        db.create_table(
            &self.name,
            self.schema(),
            vec![key_col],
            IndexDescriptor::PrimaryBTree {
                keys: vec![key_col],
            },
        )?;
        db.load_table(&self.name, self.rows())
    }

    /// The predicate cut-off producing `selectivity` (fraction in [0,1]).
    pub fn cutoff(selectivity: f64) -> i32 {
        (((DOMAIN as f64) * selectivity).round() as i64).min(i32::MAX as i64) as i32
    }

    /// The predicate range producing `selectivity`: a window of
    /// `selectivity × DOMAIN` values positioned *inside* the domain, so
    /// that per-row-group min/max on randomly loaded data cannot skip it.
    ///
    /// (A `col1 < tiny` predicate would let even random data eliminate
    /// every row group at our scaled row counts, because each row group's
    /// minimum exceeds the cutoff — an artifact the paper's 1 M-row row
    /// groups over 1.3 B rows do not exhibit.)
    pub fn range_for(selectivity: f64) -> (i32, i32) {
        let width = ((DOMAIN as f64) * selectivity).round() as i64;
        let lo = (DOMAIN - width) / 4;
        let hi = (lo + width).min(DOMAIN - 1);
        (lo as i32, hi as i32)
    }

    fn range_predicate(selectivity: f64) -> Expr {
        let (lo, hi) = Self::range_for(selectivity);
        if selectivity <= 0.0 {
            // Empty range below the domain.
            Expr::col_cmp(0, CmpOp::Lt, Value::Int32(0))
        } else {
            Expr::And(vec![
                Expr::col_cmp(0, CmpOp::Ge, Value::Int32(lo)),
                Expr::col_cmp(0, CmpOp::Lt, Value::Int32(hi)),
            ])
        }
    }

    /// **Q1**: `SELECT sum(col1) FROM t WHERE col1 in a window` — the
    /// data-skipping micro-benchmark of Figures 1–2 (see
    /// [`MicroTable::range_for`] for why the paper's `<` becomes a window).
    pub fn q1(&self, selectivity: f64) -> SelectQuery {
        SelectQuery {
            tables: vec![TableInput::with_predicate(
                &self.name,
                Self::range_predicate(selectivity),
            )],
            aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(0, 0))],
            ..Default::default()
        }
    }

    /// **Q2**: `SELECT col1, col2 FROM t WHERE col1 in a window ORDER BY
    /// col2` — the explicit-sort-order benchmark of Figure 3.
    pub fn q2(&self, selectivity: f64) -> SelectQuery {
        SelectQuery {
            tables: vec![TableInput::with_predicate(
                &self.name,
                Self::range_predicate(selectivity),
            )],
            select: vec![ColRef::new(0, 0), ColRef::new(0, 1)],
            order_by: vec![(1, true)],
            ..Default::default()
        }
    }

    /// **Q3**: `SELECT col1, sum(col2) FROM t GROUP BY col1` — the
    /// aggregation-memory benchmark of Figure 4 (control the group count
    /// via [`MicroTable::with_col0_distinct`]).
    pub fn q3(&self) -> SelectQuery {
        SelectQuery {
            tables: vec![TableInput::new(&self.name)],
            group_by: vec![ColRef::new(0, 0)],
            aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(0, 1))],
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpd_engine::{DbConfig, Statement};

    #[test]
    fn deterministic_generation() {
        let t = MicroTable::new("m", 2, 1000);
        assert_eq!(t.rows(), t.rows());
        let other = MicroTable::new("m", 2, 1000).with_seed(1);
        assert_ne!(t.rows(), other.rows());
    }

    #[test]
    fn sorted_load_sorts_col0() {
        let rows = MicroTable::new("m", 2, 500).sorted().rows();
        assert!(rows.windows(2).all(|w| w[0][0] <= w[1][0]));
    }

    #[test]
    fn col0_distinct_controls_groups() {
        let rows = MicroTable::new("m", 2, 2000).with_col0_distinct(10).rows();
        let mut vals: Vec<i32> = rows.iter().map(|r| r[0].as_i32().unwrap()).collect();
        vals.sort_unstable();
        vals.dedup();
        assert!(vals.len() <= 10);
    }

    #[test]
    fn q1_selectivity_roughly_matches() {
        let db = Database::new(DbConfig::default());
        let t = MicroTable::new("m", 1, 20_000);
        t.load(&db, IndexDescriptor::PrimaryBTree { keys: vec![0] })
            .unwrap();
        for sel in [0.01, 0.5] {
            let q = SelectQuery {
                select: vec![ColRef::new(0, 0)],
                aggregates: vec![],
                ..t.q1(sel)
            };
            let n = db.query(&Statement::Select(q)).run().unwrap().rows.len();
            let frac = n as f64 / 20_000.0;
            assert!((frac - sel).abs() < 0.02, "sel {sel}: got fraction {frac}");
        }
    }

    #[test]
    fn q1_sum_consistent_across_designs() {
        let mut cfg = DbConfig::default();
        cfg.csi.rowgroup_capacity = 2048;
        let db_bt = Database::new(cfg.clone());
        let db_cs = Database::new(cfg);
        let t = MicroTable::new("m", 1, 10_000);
        t.load(&db_bt, IndexDescriptor::PrimaryBTree { keys: vec![0] })
            .unwrap();
        t.load(&db_cs, IndexDescriptor::PrimaryCsi).unwrap();
        let q = t.q1(0.1);
        let a = db_bt.query(&Statement::Select(q.clone())).run().unwrap();
        let b = db_cs.query(&Statement::Select(q)).run().unwrap();
        assert_eq!(a.rows, b.rows);
    }
}
