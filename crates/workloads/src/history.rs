//! Mixed OLTP/OLAP transaction histories for the differential harness.
//!
//! A history is a set of transaction specifications over one logical table
//! `(k INT PRIMARY KEY, a INT, b INT)`: point/range updates and deletes,
//! inserts of never-reused keys, range scans, and aggregates — the §3.5/§3.6
//! read/write mixes in miniature. The generator is deterministic in its
//! seed; the harness owns scheduling (interleaving) and fault placement.
//!
//! Two generation constraints keep the three physical designs comparable:
//! inserts draw keys from a monotone pool disjoint from every other key ever
//! used (the engine does not reject duplicate primary keys), and updates /
//! deletes never use `TOP n` (the row subset a bounded write statement picks
//! is physical-order-dependent and thus design-dependent).

use hpd_common::{AggFunc, BinOp, CmpOp, ColumnDef, DataType, Expr, Row, Schema, Value};
use hpd_engine::{
    AggItem, ColRef, DeleteStmt, InsertStmt, IsolationLevel, SelectQuery, Statement, TableInput,
    UpdateStmt,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Column ordinals of the history table.
pub const COL_K: usize = 0;
pub const COL_A: usize = 1;
pub const COL_B: usize = 2;

/// One operation inside a transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum MixedOp {
    /// `UPDATE SET b = b + delta WHERE k = key`
    PointUpdate { key: i32, delta: i32 },
    /// `UPDATE SET b = b + delta WHERE k BETWEEN lo AND hi`
    RangeUpdate { lo: i32, hi: i32, delta: i32 },
    /// `DELETE WHERE k = key`
    PointDelete { key: i32 },
    /// `DELETE WHERE k BETWEEN lo AND hi`
    RangeDelete { lo: i32, hi: i32 },
    /// `INSERT (key, a, b)`; `key` is globally fresh within the history.
    Insert { key: i32, a: i32, b: i32 },
    /// `SELECT k, a, b WHERE k BETWEEN lo AND hi ORDER BY k [LIMIT n]`
    RangeScan {
        lo: i32,
        hi: i32,
        limit: Option<usize>,
    },
    /// `SELECT count(k), sum(b), min(b), max(b) WHERE a BETWEEN lo AND hi`
    Agg { lo: i32, hi: i32 },
    /// `SELECT a, count(k), sum(b) WHERE k BETWEEN lo AND hi GROUP BY a`
    GroupAgg { lo: i32, hi: i32 },
    /// Run columnstore maintenance (tuple mover + delete-buffer compaction)
    /// between statements — the background process at a chosen point.
    Maintenance,
}

impl MixedOp {
    /// Is this a write (affects committed state)?
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            MixedOp::PointUpdate { .. }
                | MixedOp::RangeUpdate { .. }
                | MixedOp::PointDelete { .. }
                | MixedOp::RangeDelete { .. }
                | MixedOp::Insert { .. }
        )
    }

    /// Engine statement for this op against `table`; `None` for
    /// [`MixedOp::Maintenance`], which is not a statement.
    pub fn to_statement(&self, table: &str) -> Option<Statement> {
        let add_b = |delta: i32| {
            vec![(
                COL_B,
                Expr::arith(BinOp::Add, Expr::col(COL_B), Expr::lit(Value::Int32(delta))),
            )]
        };
        Some(match *self {
            MixedOp::PointUpdate { key, delta } => Statement::Update(UpdateStmt {
                table: table.into(),
                predicate: Expr::col_cmp(COL_K, CmpOp::Eq, Value::Int32(key)),
                top: None,
                set: add_b(delta),
            }),
            MixedOp::RangeUpdate { lo, hi, delta } => Statement::Update(UpdateStmt {
                table: table.into(),
                predicate: Expr::between(COL_K, Value::Int32(lo), Value::Int32(hi)),
                top: None,
                set: add_b(delta),
            }),
            MixedOp::PointDelete { key } => Statement::Delete(DeleteStmt {
                table: table.into(),
                predicate: Expr::col_cmp(COL_K, CmpOp::Eq, Value::Int32(key)),
                top: None,
            }),
            MixedOp::RangeDelete { lo, hi } => Statement::Delete(DeleteStmt {
                table: table.into(),
                predicate: Expr::between(COL_K, Value::Int32(lo), Value::Int32(hi)),
                top: None,
            }),
            MixedOp::Insert { key, a, b } => Statement::Insert(InsertStmt {
                table: table.into(),
                rows: vec![Row::new(vec![
                    Value::Int32(key),
                    Value::Int32(a),
                    Value::Int32(b),
                ])],
            }),
            MixedOp::RangeScan { lo, hi, limit } => Statement::Select(SelectQuery {
                tables: vec![TableInput::with_predicate(
                    table,
                    Expr::between(COL_K, Value::Int32(lo), Value::Int32(hi)),
                )],
                select: vec![
                    ColRef::new(0, COL_K),
                    ColRef::new(0, COL_A),
                    ColRef::new(0, COL_B),
                ],
                order_by: vec![(0, true)],
                limit,
                ..Default::default()
            }),
            MixedOp::Agg { lo, hi } => Statement::Select(SelectQuery {
                tables: vec![TableInput::with_predicate(
                    table,
                    Expr::between(COL_A, Value::Int32(lo), Value::Int32(hi)),
                )],
                aggregates: vec![
                    AggItem::column(AggFunc::Count, ColRef::new(0, COL_K)),
                    AggItem::column(AggFunc::Sum, ColRef::new(0, COL_B)),
                    AggItem::column(AggFunc::Min, ColRef::new(0, COL_B)),
                    AggItem::column(AggFunc::Max, ColRef::new(0, COL_B)),
                ],
                ..Default::default()
            }),
            MixedOp::GroupAgg { lo, hi } => Statement::Select(SelectQuery {
                tables: vec![TableInput::with_predicate(
                    table,
                    Expr::between(COL_K, Value::Int32(lo), Value::Int32(hi)),
                )],
                group_by: vec![ColRef::new(0, COL_A)],
                aggregates: vec![
                    AggItem::column(AggFunc::Count, ColRef::new(0, COL_K)),
                    AggItem::column(AggFunc::Sum, ColRef::new(0, COL_B)),
                ],
                // The grouping column is also projected, mirroring the SQL
                // form `SELECT a, count(k), sum(b) ... GROUP BY a` (the
                // executor's grouped output is group_by ++ aggregates
                // either way).
                select: vec![ColRef::new(0, COL_A)],
                ..Default::default()
            }),
            MixedOp::Maintenance => return None,
        })
    }

    /// SQL text for this op against `table`, in the front-end's dialect;
    /// `None` for [`MixedOp::Maintenance`]. Lowering this text through the
    /// SQL binder must produce exactly [`MixedOp::to_statement`]'s AST —
    /// the harness's SQL mode cross-checks the two on every statement.
    pub fn to_sql(&self, table: &str) -> Option<String> {
        Some(match *self {
            MixedOp::PointUpdate { key, delta } => {
                format!("UPDATE {table} SET b = b + {delta} WHERE k = {key}")
            }
            MixedOp::RangeUpdate { lo, hi, delta } => {
                format!("UPDATE {table} SET b = b + {delta} WHERE k BETWEEN {lo} AND {hi}")
            }
            MixedOp::PointDelete { key } => {
                format!("DELETE FROM {table} WHERE k = {key}")
            }
            MixedOp::RangeDelete { lo, hi } => {
                format!("DELETE FROM {table} WHERE k BETWEEN {lo} AND {hi}")
            }
            MixedOp::Insert { key, a, b } => {
                format!("INSERT INTO {table} VALUES ({key}, {a}, {b})")
            }
            MixedOp::RangeScan { lo, hi, limit } => {
                let mut s =
                    format!("SELECT k, a, b FROM {table} WHERE k BETWEEN {lo} AND {hi} ORDER BY k");
                if let Some(n) = limit {
                    s.push_str(&format!(" LIMIT {n}"));
                }
                s
            }
            MixedOp::Agg { lo, hi } => {
                format!(
                    "SELECT COUNT(k), SUM(b), MIN(b), MAX(b) FROM {table} \
                     WHERE a BETWEEN {lo} AND {hi}"
                )
            }
            MixedOp::GroupAgg { lo, hi } => {
                format!(
                    "SELECT a, COUNT(k), SUM(b) FROM {table} \
                     WHERE k BETWEEN {lo} AND {hi} GROUP BY a"
                )
            }
            MixedOp::Maintenance => return None,
        })
    }

    /// Strictly simpler variants of this op, for history shrinking: deltas
    /// move to 1, ranges collapse toward points, limits vanish. Returns
    /// candidates in decreasing aggressiveness; an empty vec means the op is
    /// already minimal.
    pub fn shrunk(&self) -> Vec<MixedOp> {
        match *self {
            MixedOp::PointUpdate { key, delta } if delta != 1 => {
                vec![MixedOp::PointUpdate { key, delta: 1 }]
            }
            MixedOp::RangeUpdate { lo, hi, delta } => {
                let mut cands = Vec::new();
                if lo != hi {
                    cands.push(MixedOp::RangeUpdate { lo, hi: lo, delta });
                }
                if delta != 1 {
                    cands.push(MixedOp::RangeUpdate { lo, hi, delta: 1 });
                }
                cands
            }
            MixedOp::RangeDelete { lo, hi } if lo != hi => {
                vec![MixedOp::RangeDelete { lo, hi: lo }]
            }
            MixedOp::Insert { key, a, b } if a != 0 || b != 0 => {
                vec![MixedOp::Insert { key, a: 0, b: 0 }]
            }
            MixedOp::RangeScan { lo, hi, limit } => {
                let mut cands = Vec::new();
                if limit.is_some() {
                    cands.push(MixedOp::RangeScan {
                        lo,
                        hi,
                        limit: None,
                    });
                }
                if lo != hi {
                    cands.push(MixedOp::RangeScan { lo, hi: lo, limit });
                }
                cands
            }
            MixedOp::Agg { lo, hi } if lo != hi => vec![MixedOp::Agg { lo, hi: lo }],
            MixedOp::GroupAgg { lo, hi } => {
                let mut cands = vec![MixedOp::Agg { lo, hi }];
                if lo != hi {
                    cands.push(MixedOp::GroupAgg { lo, hi: lo });
                }
                cands
            }
            _ => Vec::new(),
        }
    }
}

/// One transaction: isolation level, statements, and its intended ending.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnSpec {
    pub isolation: IsolationLevel,
    pub ops: Vec<MixedOp>,
    /// `true` = commit at the end; `false` = deliberate abort.
    pub commit: bool,
}

/// Knobs of the history generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryConfig {
    /// Number of transactions.
    pub txns: usize,
    /// Maximum statements per transaction (at least 1 is generated).
    pub max_ops: usize,
    /// Rows preloaded with keys `0..initial_rows`.
    pub initial_rows: i32,
    /// Column `a` domain `[0, a_domain)` — small, so group-bys collide.
    pub a_domain: i32,
    /// Column `b` domain `[0, b_domain)`.
    pub b_domain: i32,
}

impl Default for HistoryConfig {
    fn default() -> HistoryConfig {
        HistoryConfig {
            txns: 10,
            max_ops: 6,
            initial_rows: 64,
            a_domain: 8,
            b_domain: 1_000,
        }
    }
}

/// Schema of the history table.
pub fn history_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("k", DataType::Int32),
        ColumnDef::new("a", DataType::Int32),
        ColumnDef::new("b", DataType::Int32),
    ])
}

/// Initial table contents: keys `0..initial_rows` with seeded `a`/`b`.
pub fn initial_rows(seed: u64, cfg: &HistoryConfig) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1157_0AD5);
    (0..cfg.initial_rows)
        .map(|k| {
            Row::new(vec![
                Value::Int32(k),
                Value::Int32(rng.gen_range(0..cfg.a_domain)),
                Value::Int32(rng.gen_range(0..cfg.b_domain)),
            ])
        })
        .collect()
}

/// Generate a transaction history, deterministic in `seed`.
pub fn generate(seed: u64, cfg: &HistoryConfig) -> Vec<TxnSpec> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6E15_70C1);
    // Fresh insert keys: monotone, never reused, disjoint from the preload.
    let mut next_fresh = cfg.initial_rows;
    let mut txns = Vec::with_capacity(cfg.txns);
    for _ in 0..cfg.txns {
        let isolation = match rng.gen_range(0u32..10) {
            0..=3 => IsolationLevel::ReadCommitted,
            4..=7 => IsolationLevel::Snapshot,
            _ => IsolationLevel::Serializable,
        };
        let n_ops = rng.gen_range(1..=cfg.max_ops.max(1));
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            // `key_hint` over-approximates the live key space: preloaded
            // keys plus every fresh key handed out so far. Targeting an
            // already-deleted or not-yet-inserted key is a valid no-op.
            let key_hint = next_fresh;
            let point_key = |rng: &mut StdRng| rng.gen_range(0..key_hint.max(1));
            let op = match rng.gen_range(0u32..100) {
                0..=17 => MixedOp::PointUpdate {
                    key: point_key(&mut rng),
                    delta: rng.gen_range(-50i32..=50),
                },
                18..=25 => {
                    let lo = point_key(&mut rng);
                    MixedOp::RangeUpdate {
                        lo,
                        hi: lo + rng.gen_range(0..8),
                        delta: rng.gen_range(-50i32..=50),
                    }
                }
                26..=35 => MixedOp::PointDelete {
                    key: point_key(&mut rng),
                },
                36..=39 => {
                    let lo = point_key(&mut rng);
                    MixedOp::RangeDelete {
                        lo,
                        hi: lo + rng.gen_range(0..4),
                    }
                }
                40..=54 => {
                    let key = next_fresh;
                    next_fresh += 1;
                    MixedOp::Insert {
                        key,
                        a: rng.gen_range(0..cfg.a_domain),
                        b: rng.gen_range(0..cfg.b_domain),
                    }
                }
                55..=69 => {
                    let lo = point_key(&mut rng);
                    MixedOp::RangeScan {
                        lo,
                        hi: lo + rng.gen_range(0..32),
                        limit: if rng.gen_bool(0.25) {
                            Some(rng.gen_range(1usize..8))
                        } else {
                            None
                        },
                    }
                }
                70..=81 => {
                    let lo = rng.gen_range(0..cfg.a_domain);
                    MixedOp::Agg {
                        lo,
                        hi: lo + rng.gen_range(0..cfg.a_domain),
                    }
                }
                82..=89 => {
                    let lo = point_key(&mut rng);
                    MixedOp::GroupAgg {
                        lo,
                        hi: lo + rng.gen_range(0..24),
                    }
                }
                _ => MixedOp::Maintenance,
            };
            ops.push(op);
        }
        txns.push(TxnSpec {
            isolation,
            ops,
            commit: rng.gen_bool(0.85),
        });
    }
    txns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = HistoryConfig::default();
        assert_eq!(generate(7, &cfg), generate(7, &cfg));
        assert_eq!(initial_rows(7, &cfg), initial_rows(7, &cfg));
        assert_ne!(generate(7, &cfg), generate(8, &cfg));
    }

    #[test]
    fn insert_keys_are_fresh_and_unique() {
        let cfg = HistoryConfig {
            txns: 50,
            ..Default::default()
        };
        let mut seen = std::collections::HashSet::new();
        for t in generate(3, &cfg) {
            for op in t.ops {
                if let MixedOp::Insert { key, .. } = op {
                    assert!(key >= cfg.initial_rows, "insert key collides with preload");
                    assert!(seen.insert(key), "insert key {key} reused");
                }
            }
        }
    }

    #[test]
    fn statements_cover_every_op_kind() {
        let op = MixedOp::RangeScan {
            lo: 0,
            hi: 5,
            limit: Some(3),
        };
        assert!(matches!(op.to_statement("t"), Some(Statement::Select(_))));
        assert!(MixedOp::Maintenance.to_statement("t").is_none());
        assert!(MixedOp::PointDelete { key: 1 }.to_statement("t").is_some());
    }

    #[test]
    fn shrunk_candidates_are_simpler() {
        let op = MixedOp::RangeUpdate {
            lo: 3,
            hi: 9,
            delta: -17,
        };
        let cands = op.shrunk();
        assert!(!cands.is_empty());
        assert!(cands.contains(&MixedOp::RangeUpdate {
            lo: 3,
            hi: 3,
            delta: -17
        }));
        assert!(MixedOp::PointDelete { key: 0 }.shrunk().is_empty());
    }
}
