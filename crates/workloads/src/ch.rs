//! The CH-benCHmark: TPC-C transactional schema + transactions, plus
//! TPC-H-like analytic queries over the same data (Cole et al., DBTest'11).
//!
//! This drives the paper's mixed-workload evaluation (Figure 11): C-threads
//! run the five TPC-C transactions while H-threads run analytic queries,
//! under different isolation levels and physical designs.
//!
//! Scaled for laptop runs; deviations from the spec are structural
//! simplifications, not behavioural ones: order ids allocate from a global
//! counter, `order_line` carries an explicit `ol_supplier` foreign key (the
//! CH paper derives it arithmetically), and a representative twenty of the
//! 22 analytic queries are implemented in the engine's SPJA query shape.

use std::sync::atomic::{AtomicI32, AtomicI64, Ordering};

use hpd_common::{AggFunc, BinOp, CmpOp, DataType, Expr, HpdError, Result, Row, Schema, Value};
use hpd_engine::{
    AggItem, ColRef, Database, DeleteStmt, EquiJoin, IndexDescriptor, InsertStmt, SelectQuery,
    Statement, TableInput, Txn, UpdateStmt,
};
use rand::Rng;

/// Scale parameters (TPC-C uses 10 districts/warehouse, 3000
/// customers/district, 100k items; we scale down).
#[derive(Debug, Clone, Copy)]
pub struct ChScale {
    pub warehouses: i32,
    pub districts_per_warehouse: i32,
    pub customers_per_district: i32,
    pub initial_orders_per_district: i32,
    pub items: i32,
    pub suppliers: i32,
    pub seed: u64,
}

impl Default for ChScale {
    fn default() -> ChScale {
        ChScale {
            warehouses: 2,
            districts_per_warehouse: 10,
            customers_per_district: 300,
            initial_orders_per_district: 300,
            items: 1_000,
            suppliers: 100,
            seed: 0xC4,
        }
    }
}

impl ChScale {
    pub fn tiny() -> ChScale {
        ChScale {
            warehouses: 1,
            districts_per_warehouse: 2,
            customers_per_district: 30,
            initial_orders_per_district: 30,
            items: 100,
            suppliers: 10,
            ..ChScale::default()
        }
    }
}

/// All CH tables.
pub const TABLES: [&str; 11] = [
    "warehouse",
    "district",
    "customer",
    "orders",
    "new_order",
    "order_line",
    "item",
    "stock",
    "history",
    "supplier",
    "nation",
];

/// Create and bulk-load the CH schema.
pub fn load(db: &Database, scale: ChScale) -> Result<()> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(scale.seed);

    db.create_table(
        "warehouse",
        Schema::from_pairs(&[
            ("w_id", DataType::Int32),
            ("w_tax", DataType::Decimal),
            ("w_ytd", DataType::Decimal),
        ]),
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )?;
    db.load_table(
        "warehouse",
        (0..scale.warehouses)
            .map(|w| {
                Row::new(vec![
                    Value::Int32(w),
                    Value::Decimal(rng.gen_range(0..2000)),
                    Value::Decimal(3_000_000_000),
                ])
            })
            .collect(),
    )?;

    db.create_table(
        "district",
        Schema::from_pairs(&[
            ("d_w_id", DataType::Int32),
            ("d_id", DataType::Int32),
            ("d_tax", DataType::Decimal),
            ("d_ytd", DataType::Decimal),
            ("d_next_o_id", DataType::Int32),
        ]),
        vec![0, 1],
        IndexDescriptor::PrimaryBTree { keys: vec![0, 1] },
    )?;
    let mut district_rows = Vec::new();
    for w in 0..scale.warehouses {
        for d in 0..scale.districts_per_warehouse {
            district_rows.push(Row::new(vec![
                Value::Int32(w),
                Value::Int32(d),
                Value::Decimal(rng.gen_range(0..2000)),
                Value::Decimal(300_000_000),
                Value::Int32(scale.initial_orders_per_district),
            ]));
        }
    }
    db.load_table("district", district_rows)?;

    db.create_table(
        "customer",
        Schema::from_pairs(&[
            ("c_w_id", DataType::Int32),
            ("c_d_id", DataType::Int32),
            ("c_id", DataType::Int32),
            ("c_balance", DataType::Decimal),
            ("c_ytd_payment", DataType::Decimal),
            ("c_payment_cnt", DataType::Int32),
            ("c_delivery_cnt", DataType::Int32),
            ("c_last", DataType::Utf8),
            ("c_credit", DataType::Int32),
        ]),
        vec![0, 1, 2],
        IndexDescriptor::PrimaryBTree {
            keys: vec![0, 1, 2],
        },
    )?;
    const LAST_NAMES: [&str; 10] = [
        "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
    ];
    let mut customer_rows = Vec::new();
    for w in 0..scale.warehouses {
        for d in 0..scale.districts_per_warehouse {
            for c in 0..scale.customers_per_district {
                customer_rows.push(Row::new(vec![
                    Value::Int32(w),
                    Value::Int32(d),
                    Value::Int32(c),
                    Value::Decimal(-100_000),
                    Value::Decimal(100_000),
                    Value::Int32(1),
                    Value::Int32(0),
                    Value::str(LAST_NAMES[(c % 10) as usize]),
                    Value::Int32((c % 5 != 0) as i32), // 1 = good credit
                ]));
            }
        }
    }
    db.load_table("customer", customer_rows)?;

    db.create_table(
        "orders",
        Schema::from_pairs(&[
            ("o_w_id", DataType::Int32),
            ("o_d_id", DataType::Int32),
            ("o_id", DataType::Int32),
            ("o_c_id", DataType::Int32),
            ("o_entry_d", DataType::Date),
            ("o_carrier_id", DataType::Int32), // 0 = undelivered
            ("o_ol_cnt", DataType::Int32),
        ]),
        vec![0, 1, 2],
        IndexDescriptor::PrimaryBTree {
            keys: vec![0, 1, 2],
        },
    )?;
    db.create_table(
        "new_order",
        Schema::from_pairs(&[
            ("no_w_id", DataType::Int32),
            ("no_d_id", DataType::Int32),
            ("no_o_id", DataType::Int32),
        ]),
        vec![0, 1, 2],
        IndexDescriptor::PrimaryBTree {
            keys: vec![0, 1, 2],
        },
    )?;
    db.create_table(
        "order_line",
        Schema::from_pairs(&[
            ("ol_w_id", DataType::Int32),
            ("ol_d_id", DataType::Int32),
            ("ol_o_id", DataType::Int32),
            ("ol_number", DataType::Int32),
            ("ol_i_id", DataType::Int32),
            ("ol_supplier", DataType::Int32),
            ("ol_delivery_d", DataType::Date), // 0 = undelivered
            ("ol_quantity", DataType::Int32),
            ("ol_amount", DataType::Decimal),
        ]),
        vec![0, 1, 2, 3],
        IndexDescriptor::PrimaryBTree {
            keys: vec![0, 1, 2, 3],
        },
    )?;

    let mut orders_rows = Vec::new();
    let mut new_order_rows = Vec::new();
    let mut order_line_rows = Vec::new();
    for w in 0..scale.warehouses {
        for d in 0..scale.districts_per_warehouse {
            for o in 0..scale.initial_orders_per_district {
                let delivered = o < scale.initial_orders_per_district * 7 / 10;
                let ol_cnt = rng.gen_range(5..=15);
                orders_rows.push(Row::new(vec![
                    Value::Int32(w),
                    Value::Int32(d),
                    Value::Int32(o),
                    Value::Int32(rng.gen_range(0..scale.customers_per_district)),
                    Value::Date(o % 365),
                    Value::Int32(if delivered { rng.gen_range(1..=10) } else { 0 }),
                    Value::Int32(ol_cnt),
                ]));
                if !delivered {
                    new_order_rows.push(Row::new(vec![
                        Value::Int32(w),
                        Value::Int32(d),
                        Value::Int32(o),
                    ]));
                }
                for n in 0..ol_cnt {
                    let item = rng.gen_range(0..scale.items);
                    order_line_rows.push(Row::new(vec![
                        Value::Int32(w),
                        Value::Int32(d),
                        Value::Int32(o),
                        Value::Int32(n),
                        Value::Int32(item),
                        Value::Int32(item % scale.suppliers),
                        Value::Date(if delivered { o % 365 + 1 } else { 0 }),
                        Value::Int32(rng.gen_range(1..=10)),
                        Value::Decimal(rng.gen_range(10_000i64..10_000_000)),
                    ]));
                }
            }
        }
    }
    db.load_table("orders", orders_rows)?;
    db.load_table("new_order", new_order_rows)?;
    db.load_table("order_line", order_line_rows)?;

    db.create_table(
        "item",
        Schema::from_pairs(&[
            ("i_id", DataType::Int32),
            ("i_im_id", DataType::Int32),
            ("i_price", DataType::Decimal),
            ("i_name", DataType::Utf8),
        ]),
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )?;
    db.load_table(
        "item",
        (0..scale.items)
            .map(|i| {
                Row::new(vec![
                    Value::Int32(i),
                    Value::Int32(i % 1000),
                    Value::Decimal(rng.gen_range(10_000i64..1_000_000)),
                    Value::str(format!("item-{i}")),
                ])
            })
            .collect(),
    )?;

    db.create_table(
        "stock",
        Schema::from_pairs(&[
            ("s_w_id", DataType::Int32),
            ("s_i_id", DataType::Int32),
            ("s_quantity", DataType::Int32),
            ("s_ytd", DataType::Int32),
            ("s_order_cnt", DataType::Int32),
            ("s_remote_cnt", DataType::Int32),
        ]),
        vec![0, 1],
        IndexDescriptor::PrimaryBTree { keys: vec![0, 1] },
    )?;
    let mut stock_rows = Vec::new();
    for w in 0..scale.warehouses {
        for i in 0..scale.items {
            stock_rows.push(Row::new(vec![
                Value::Int32(w),
                Value::Int32(i),
                Value::Int32(rng.gen_range(10..=100)),
                Value::Int32(0),
                Value::Int32(0),
                Value::Int32(0),
            ]));
        }
    }
    db.load_table("stock", stock_rows)?;

    db.create_table(
        "history",
        Schema::from_pairs(&[
            ("h_id", DataType::Int64),
            ("h_c_w_id", DataType::Int32),
            ("h_c_d_id", DataType::Int32),
            ("h_c_id", DataType::Int32),
            ("h_amount", DataType::Decimal),
            ("h_date", DataType::Date),
        ]),
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )?;
    db.load_table("history", Vec::new())?;

    db.create_table(
        "supplier",
        Schema::from_pairs(&[
            ("su_suppkey", DataType::Int32),
            ("su_nationkey", DataType::Int32),
            ("su_acctbal", DataType::Decimal),
        ]),
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )?;
    db.load_table(
        "supplier",
        (0..scale.suppliers)
            .map(|s| {
                Row::new(vec![
                    Value::Int32(s),
                    Value::Int32(s % 25),
                    Value::Decimal(rng.gen_range(-990_000i64..9_990_000)),
                ])
            })
            .collect(),
    )?;

    db.create_table(
        "nation",
        Schema::from_pairs(&[
            ("n_nationkey", DataType::Int32),
            ("n_regionkey", DataType::Int32),
        ]),
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )?;
    db.load_table(
        "nation",
        (0..25)
            .map(|n| Row::new(vec![Value::Int32(n), Value::Int32(n % 5)]))
            .collect(),
    )?;

    Ok(())
}

/// Runtime state shared by concurrent C-threads: id allocators.
pub struct ChRuntime {
    pub scale: ChScale,
    next_order_id: AtomicI32,
    next_history_id: AtomicI64,
}

impl ChRuntime {
    pub fn new(scale: ChScale) -> ChRuntime {
        ChRuntime {
            scale,
            next_order_id: AtomicI32::new(scale.initial_orders_per_district),
            next_history_id: AtomicI64::new(0),
        }
    }

    fn alloc_order_id(&self) -> i32 {
        self.next_order_id.fetch_add(1, Ordering::Relaxed)
    }

    fn alloc_history_id(&self) -> i64 {
        self.next_history_id.fetch_add(1, Ordering::Relaxed)
    }

    /// **NewOrder**: read customer & district, insert the order, its
    /// new-order entry and 5–15 order lines, update the stock rows.
    pub fn new_order(&self, txn: &mut Txn<'_>, rng: &mut impl Rng) -> Result<()> {
        let w = rng.gen_range(0..self.scale.warehouses);
        let d = rng.gen_range(0..self.scale.districts_per_warehouse);
        let c = rng.gen_range(0..self.scale.customers_per_district);
        let o_id = self.alloc_order_id();

        // Read customer credit + district tax.
        txn.execute(&Statement::Select(point_customer(w, d, c, vec![3, 8])))?;
        txn.execute(&Statement::Select(SelectQuery::single_table(
            "district",
            Some(Expr::And(vec![
                Expr::col_cmp(0, CmpOp::Eq, Value::Int32(w)),
                Expr::col_cmp(1, CmpOp::Eq, Value::Int32(d)),
            ])),
            vec![2, 4],
        )))?;

        let ol_cnt = rng.gen_range(5..=15);
        txn.execute(&Statement::Insert(InsertStmt {
            table: "orders".into(),
            rows: vec![Row::new(vec![
                Value::Int32(w),
                Value::Int32(d),
                Value::Int32(o_id),
                Value::Int32(c),
                Value::Date(365),
                Value::Int32(0),
                Value::Int32(ol_cnt),
            ])],
        }))?;
        txn.execute(&Statement::Insert(InsertStmt {
            table: "new_order".into(),
            rows: vec![Row::new(vec![
                Value::Int32(w),
                Value::Int32(d),
                Value::Int32(o_id),
            ])],
        }))?;

        let mut lines = Vec::with_capacity(ol_cnt as usize);
        for n in 0..ol_cnt {
            let item = rng.gen_range(0..self.scale.items);
            lines.push(Row::new(vec![
                Value::Int32(w),
                Value::Int32(d),
                Value::Int32(o_id),
                Value::Int32(n),
                Value::Int32(item),
                Value::Int32(item % self.scale.suppliers),
                Value::Date(0),
                Value::Int32(rng.gen_range(1..=10)),
                Value::Decimal(rng.gen_range(10_000i64..10_000_000)),
            ]));
            // Stock decrement for this item.
            txn.execute(&Statement::Update(UpdateStmt {
                table: "stock".into(),
                predicate: Expr::And(vec![
                    Expr::col_cmp(0, CmpOp::Eq, Value::Int32(w)),
                    Expr::col_cmp(1, CmpOp::Eq, Value::Int32(item)),
                ]),
                top: None,
                set: vec![
                    (
                        2,
                        Expr::arith(BinOp::Sub, Expr::Col(2), Expr::lit(Value::Int32(1))),
                    ),
                    (
                        3,
                        Expr::arith(BinOp::Add, Expr::Col(3), Expr::lit(Value::Int32(1))),
                    ),
                ],
            }))?;
        }
        txn.execute(&Statement::Insert(InsertStmt {
            table: "order_line".into(),
            rows: lines,
        }))?;
        Ok(())
    }

    /// **Payment**: bump warehouse/district YTD and the customer balance,
    /// insert a history row.
    pub fn payment(&self, txn: &mut Txn<'_>, rng: &mut impl Rng) -> Result<()> {
        let w = rng.gen_range(0..self.scale.warehouses);
        let d = rng.gen_range(0..self.scale.districts_per_warehouse);
        let c = rng.gen_range(0..self.scale.customers_per_district);
        let amount = rng.gen_range(10_000i64..50_000_000);

        txn.execute(&Statement::Update(UpdateStmt {
            table: "warehouse".into(),
            predicate: Expr::col_cmp(0, CmpOp::Eq, Value::Int32(w)),
            top: None,
            set: vec![(
                2,
                Expr::arith(BinOp::Add, Expr::Col(2), Expr::lit(Value::Decimal(amount))),
            )],
        }))?;
        txn.execute(&Statement::Update(UpdateStmt {
            table: "district".into(),
            predicate: Expr::And(vec![
                Expr::col_cmp(0, CmpOp::Eq, Value::Int32(w)),
                Expr::col_cmp(1, CmpOp::Eq, Value::Int32(d)),
            ]),
            top: None,
            set: vec![(
                3,
                Expr::arith(BinOp::Add, Expr::Col(3), Expr::lit(Value::Decimal(amount))),
            )],
        }))?;
        txn.execute(&Statement::Update(UpdateStmt {
            table: "customer".into(),
            predicate: Expr::And(vec![
                Expr::col_cmp(0, CmpOp::Eq, Value::Int32(w)),
                Expr::col_cmp(1, CmpOp::Eq, Value::Int32(d)),
                Expr::col_cmp(2, CmpOp::Eq, Value::Int32(c)),
            ]),
            top: None,
            set: vec![
                (
                    3,
                    Expr::arith(BinOp::Sub, Expr::Col(3), Expr::lit(Value::Decimal(amount))),
                ),
                (
                    4,
                    Expr::arith(BinOp::Add, Expr::Col(4), Expr::lit(Value::Decimal(amount))),
                ),
                (
                    5,
                    Expr::arith(BinOp::Add, Expr::Col(5), Expr::lit(Value::Int32(1))),
                ),
            ],
        }))?;
        txn.execute(&Statement::Insert(InsertStmt {
            table: "history".into(),
            rows: vec![Row::new(vec![
                Value::Int64(self.alloc_history_id()),
                Value::Int32(w),
                Value::Int32(d),
                Value::Int32(c),
                Value::Decimal(amount),
                Value::Date(365),
            ])],
        }))?;
        Ok(())
    }

    /// **OrderStatus** (read-only): customer, their latest order, its lines.
    pub fn order_status(&self, txn: &mut Txn<'_>, rng: &mut impl Rng) -> Result<()> {
        let w = rng.gen_range(0..self.scale.warehouses);
        let d = rng.gen_range(0..self.scale.districts_per_warehouse);
        let c = rng.gen_range(0..self.scale.customers_per_district);
        txn.execute(&Statement::Select(point_customer(w, d, c, vec![3, 7])))?;
        let latest = txn.execute(&Statement::Select(SelectQuery {
            tables: vec![TableInput::with_predicate(
                "orders",
                Expr::And(vec![
                    Expr::col_cmp(0, CmpOp::Eq, Value::Int32(w)),
                    Expr::col_cmp(1, CmpOp::Eq, Value::Int32(d)),
                    Expr::col_cmp(3, CmpOp::Eq, Value::Int32(c)),
                ]),
            )],
            select: vec![ColRef::new(0, 2), ColRef::new(0, 5)],
            order_by: vec![(0, false)],
            limit: Some(1),
            ..Default::default()
        }))?;
        if let Some(row) = latest.rows.first() {
            let o_id = row[0].as_i32().ok_or(HpdError::Internal("o_id".into()))?;
            txn.execute(&Statement::Select(SelectQuery::single_table(
                "order_line",
                Some(Expr::And(vec![
                    Expr::col_cmp(0, CmpOp::Eq, Value::Int32(w)),
                    Expr::col_cmp(1, CmpOp::Eq, Value::Int32(d)),
                    Expr::col_cmp(2, CmpOp::Eq, Value::Int32(o_id)),
                ])),
                vec![4, 7, 8, 6],
            )))?;
        }
        Ok(())
    }

    /// **Delivery**: deliver the oldest new order of one district.
    pub fn delivery(&self, txn: &mut Txn<'_>, rng: &mut impl Rng) -> Result<()> {
        let w = rng.gen_range(0..self.scale.warehouses);
        let d = rng.gen_range(0..self.scale.districts_per_warehouse);
        let oldest = txn.execute(&Statement::Select(SelectQuery {
            tables: vec![TableInput::with_predicate(
                "new_order",
                Expr::And(vec![
                    Expr::col_cmp(0, CmpOp::Eq, Value::Int32(w)),
                    Expr::col_cmp(1, CmpOp::Eq, Value::Int32(d)),
                ]),
            )],
            select: vec![ColRef::new(0, 2)],
            order_by: vec![(0, true)],
            limit: Some(1),
            ..Default::default()
        }))?;
        let Some(row) = oldest.rows.first() else {
            return Ok(()); // nothing to deliver
        };
        let o_id = row[0]
            .as_i32()
            .ok_or(HpdError::Internal("no_o_id".into()))?;
        let key_pred = Expr::And(vec![
            Expr::col_cmp(0, CmpOp::Eq, Value::Int32(w)),
            Expr::col_cmp(1, CmpOp::Eq, Value::Int32(d)),
            Expr::col_cmp(2, CmpOp::Eq, Value::Int32(o_id)),
        ]);
        txn.execute(&Statement::Delete(DeleteStmt {
            table: "new_order".into(),
            predicate: key_pred.clone(),
            top: None,
        }))?;
        txn.execute(&Statement::Update(UpdateStmt {
            table: "orders".into(),
            predicate: key_pred.clone(),
            top: None,
            set: vec![(5, Expr::lit(Value::Int32(5)))],
        }))?;
        txn.execute(&Statement::Update(UpdateStmt {
            table: "order_line".into(),
            predicate: key_pred,
            top: None,
            set: vec![(6, Expr::lit(Value::Date(366)))],
        }))?;
        Ok(())
    }

    /// **StockLevel** (read-only): low-stock items among recent orders.
    pub fn stock_level(&self, txn: &mut Txn<'_>, rng: &mut impl Rng) -> Result<()> {
        let w = rng.gen_range(0..self.scale.warehouses);
        let d = rng.gen_range(0..self.scale.districts_per_warehouse);
        let threshold = rng.gen_range(10..=20);
        let recent = self.next_order_id.load(Ordering::Relaxed) - 20;
        txn.execute(&Statement::Select(SelectQuery {
            tables: vec![
                TableInput::with_predicate(
                    "order_line",
                    Expr::And(vec![
                        Expr::col_cmp(0, CmpOp::Eq, Value::Int32(w)),
                        Expr::col_cmp(1, CmpOp::Eq, Value::Int32(d)),
                        Expr::col_cmp(2, CmpOp::Ge, Value::Int32(recent)),
                    ]),
                ),
                TableInput::with_predicate(
                    "stock",
                    Expr::And(vec![
                        Expr::col_cmp(0, CmpOp::Eq, Value::Int32(w)),
                        Expr::col_cmp(2, CmpOp::Lt, Value::Int32(threshold)),
                    ]),
                ),
            ],
            joins: vec![EquiJoin {
                left: ColRef::new(0, 4),
                right: ColRef::new(1, 1),
            }],
            aggregates: vec![AggItem::column(AggFunc::Count, ColRef::new(1, 1))],
            ..Default::default()
        }))?;
        Ok(())
    }
}

fn point_customer(w: i32, d: i32, c: i32, cols: Vec<usize>) -> SelectQuery {
    SelectQuery::single_table(
        "customer",
        Some(Expr::And(vec![
            Expr::col_cmp(0, CmpOp::Eq, Value::Int32(w)),
            Expr::col_cmp(1, CmpOp::Eq, Value::Int32(d)),
            Expr::col_cmp(2, CmpOp::Eq, Value::Int32(c)),
        ])),
        cols,
    )
}

/// The analytic (H) queries: a representative twenty of the CH-benCHmark's
/// 22, expressed in the engine's SPJA shape. Labels keep the CH numbering.
#[allow(clippy::vec_init_then_push)] // one labeled push per CH query reads best
pub fn analytic_queries() -> Vec<(String, SelectQuery)> {
    let mut out: Vec<(String, SelectQuery)> = Vec::new();

    // Q1: pricing summary by line number over delivered lines.
    out.push((
        "CH-Q1".into(),
        SelectQuery {
            tables: vec![TableInput::with_predicate(
                "order_line",
                Expr::col_cmp(6, CmpOp::Gt, Value::Date(0)),
            )],
            group_by: vec![ColRef::new(0, 3)],
            aggregates: vec![
                AggItem::column(AggFunc::Sum, ColRef::new(0, 7)),
                AggItem::column(AggFunc::Sum, ColRef::new(0, 8)),
                AggItem::column(AggFunc::Avg, ColRef::new(0, 8)),
                AggItem::column(AggFunc::Count, ColRef::new(0, 3)),
            ],
            ..Default::default()
        },
    ));

    // Q3: unshipped-order revenue per order (customer ⋈ orders ⋈ lines).
    out.push((
        "CH-Q3".into(),
        SelectQuery {
            tables: vec![
                TableInput::with_predicate("orders", Expr::col_cmp(5, CmpOp::Eq, Value::Int32(0))),
                TableInput::new("order_line"),
                TableInput::with_predicate(
                    "customer",
                    Expr::col_cmp(8, CmpOp::Eq, Value::Int32(0)),
                ),
            ],
            joins: vec![
                EquiJoin {
                    left: ColRef::new(0, 0),
                    right: ColRef::new(1, 0),
                },
                EquiJoin {
                    left: ColRef::new(0, 1),
                    right: ColRef::new(1, 1),
                },
                EquiJoin {
                    left: ColRef::new(0, 2),
                    right: ColRef::new(1, 2),
                },
                EquiJoin {
                    left: ColRef::new(0, 0),
                    right: ColRef::new(2, 0),
                },
                EquiJoin {
                    left: ColRef::new(0, 1),
                    right: ColRef::new(2, 1),
                },
                EquiJoin {
                    left: ColRef::new(0, 3),
                    right: ColRef::new(2, 2),
                },
            ],
            group_by: vec![ColRef::new(0, 2), ColRef::new(0, 4)],
            aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(1, 8))],
            ..Default::default()
        },
    ));

    // Q4: order count by carrier for a date window.
    out.push((
        "CH-Q4".into(),
        SelectQuery {
            tables: vec![TableInput::with_predicate(
                "orders",
                Expr::between(4, Value::Date(0), Value::Date(180)),
            )],
            group_by: vec![ColRef::new(0, 5)],
            aggregates: vec![AggItem::column(AggFunc::Count, ColRef::new(0, 2))],
            ..Default::default()
        },
    ));

    // Q5: revenue by supplier nation.
    out.push((
        "CH-Q5".into(),
        SelectQuery {
            tables: vec![
                TableInput::new("order_line"),
                TableInput::new("supplier"),
                TableInput::new("nation"),
            ],
            joins: vec![
                EquiJoin {
                    left: ColRef::new(0, 5),
                    right: ColRef::new(1, 0),
                },
                EquiJoin {
                    left: ColRef::new(1, 1),
                    right: ColRef::new(2, 0),
                },
            ],
            group_by: vec![ColRef::new(2, 1)],
            aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(0, 8))],
            ..Default::default()
        },
    ));

    // Q6: big-scan revenue with quantity & date filters.
    out.push((
        "CH-Q6".into(),
        SelectQuery {
            tables: vec![TableInput::with_predicate(
                "order_line",
                Expr::And(vec![
                    Expr::col_cmp(6, CmpOp::Ge, Value::Date(1)),
                    Expr::between(7, Value::Int32(2), Value::Int32(8)),
                ]),
            )],
            aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(0, 8))],
            ..Default::default()
        },
    ));

    // Q7-ish: volume by supplier nation x order year (two groups).
    out.push((
        "CH-Q7".into(),
        SelectQuery {
            tables: vec![TableInput::new("order_line"), TableInput::new("supplier")],
            joins: vec![EquiJoin {
                left: ColRef::new(0, 5),
                right: ColRef::new(1, 0),
            }],
            group_by: vec![ColRef::new(1, 1), ColRef::new(0, 3)],
            aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(0, 8))],
            ..Default::default()
        },
    ));

    // Q9-ish: profit by item class.
    out.push((
        "CH-Q9".into(),
        SelectQuery {
            tables: vec![TableInput::new("order_line"), TableInput::new("item")],
            joins: vec![EquiJoin {
                left: ColRef::new(0, 4),
                right: ColRef::new(1, 0),
            }],
            group_by: vec![ColRef::new(1, 1)],
            aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(0, 8))],
            ..Default::default()
        },
    ));

    // Q12: shipping modes / carrier split by delivery status.
    out.push((
        "CH-Q12".into(),
        SelectQuery {
            tables: vec![
                TableInput::new("orders"),
                TableInput::with_predicate(
                    "order_line",
                    Expr::col_cmp(6, CmpOp::Gt, Value::Date(0)),
                ),
            ],
            joins: vec![
                EquiJoin {
                    left: ColRef::new(0, 0),
                    right: ColRef::new(1, 0),
                },
                EquiJoin {
                    left: ColRef::new(0, 1),
                    right: ColRef::new(1, 1),
                },
                EquiJoin {
                    left: ColRef::new(0, 2),
                    right: ColRef::new(1, 2),
                },
            ],
            group_by: vec![ColRef::new(0, 6)],
            aggregates: vec![AggItem::column(AggFunc::Count, ColRef::new(0, 2))],
            ..Default::default()
        },
    ));

    // Q14-ish: revenue share of promo-ish items (low i_im_id).
    out.push((
        "CH-Q14".into(),
        SelectQuery {
            tables: vec![
                TableInput::new("order_line"),
                TableInput::with_predicate("item", Expr::col_cmp(1, CmpOp::Lt, Value::Int32(100))),
            ],
            joins: vec![EquiJoin {
                left: ColRef::new(0, 4),
                right: ColRef::new(1, 0),
            }],
            aggregates: vec![
                AggItem::column(AggFunc::Sum, ColRef::new(0, 8)),
                AggItem::column(AggFunc::Count, ColRef::new(0, 8)),
            ],
            ..Default::default()
        },
    ));

    // Q15-ish: top supplier by revenue.
    out.push((
        "CH-Q15".into(),
        SelectQuery {
            tables: vec![TableInput::new("order_line")],
            group_by: vec![ColRef::new(0, 5)],
            aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(0, 8))],
            order_by: vec![(1, false)],
            limit: Some(10),
            ..Default::default()
        },
    ));

    // Q18: large-volume customers.
    out.push((
        "CH-Q18".into(),
        SelectQuery {
            tables: vec![TableInput::new("orders"), TableInput::new("order_line")],
            joins: vec![
                EquiJoin {
                    left: ColRef::new(0, 0),
                    right: ColRef::new(1, 0),
                },
                EquiJoin {
                    left: ColRef::new(0, 1),
                    right: ColRef::new(1, 1),
                },
                EquiJoin {
                    left: ColRef::new(0, 2),
                    right: ColRef::new(1, 2),
                },
            ],
            group_by: vec![ColRef::new(0, 3)],
            aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(1, 8))],
            order_by: vec![(1, false)],
            limit: Some(100),
            ..Default::default()
        },
    ));

    // Q19-ish: discounted revenue for mid-range quantities on cheap items.
    out.push((
        "CH-Q19".into(),
        SelectQuery {
            tables: vec![
                TableInput::with_predicate(
                    "order_line",
                    Expr::between(7, Value::Int32(1), Value::Int32(5)),
                ),
                TableInput::with_predicate(
                    "item",
                    Expr::col_cmp(2, CmpOp::Le, Value::Decimal(500_000)),
                ),
            ],
            joins: vec![EquiJoin {
                left: ColRef::new(0, 4),
                right: ColRef::new(1, 0),
            }],
            aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(0, 8))],
            ..Default::default()
        },
    ));

    // Q2-ish: lowest-stock supplier per item class (stock ⋈ supplier).
    out.push((
        "CH-Q2".into(),
        SelectQuery {
            tables: vec![
                TableInput::with_predicate("stock", Expr::col_cmp(2, CmpOp::Lt, Value::Int32(40))),
                TableInput::new("item"),
            ],
            joins: vec![EquiJoin {
                left: ColRef::new(0, 1),
                right: ColRef::new(1, 0),
            }],
            group_by: vec![ColRef::new(1, 1)],
            aggregates: vec![
                AggItem::column(AggFunc::Min, ColRef::new(0, 2)),
                AggItem::column(AggFunc::Count, ColRef::new(0, 1)),
            ],
            ..Default::default()
        },
    ));

    // Q8-ish: market share proxy — average line amount per supplier nation
    // for cheap items.
    out.push((
        "CH-Q8".into(),
        SelectQuery {
            tables: vec![
                TableInput::new("order_line"),
                TableInput::with_predicate(
                    "item",
                    Expr::col_cmp(2, CmpOp::Lt, Value::Decimal(300_000)),
                ),
                TableInput::new("supplier"),
            ],
            joins: vec![
                EquiJoin {
                    left: ColRef::new(0, 4),
                    right: ColRef::new(1, 0),
                },
                EquiJoin {
                    left: ColRef::new(0, 5),
                    right: ColRef::new(2, 0),
                },
            ],
            group_by: vec![ColRef::new(2, 1)],
            aggregates: vec![AggItem::column(AggFunc::Avg, ColRef::new(0, 8))],
            ..Default::default()
        },
    ));

    // Q10-ish: returned-ish amounts per customer (balance < 0) over a date
    // window.
    out.push((
        "CH-Q10".into(),
        SelectQuery {
            tables: vec![
                TableInput::with_predicate(
                    "customer",
                    Expr::col_cmp(3, CmpOp::Lt, Value::Decimal(0)),
                ),
                TableInput::with_predicate(
                    "orders",
                    Expr::between(4, Value::Date(30), Value::Date(120)),
                ),
                TableInput::new("order_line"),
            ],
            joins: vec![
                EquiJoin {
                    left: ColRef::new(0, 0),
                    right: ColRef::new(1, 0),
                },
                EquiJoin {
                    left: ColRef::new(0, 1),
                    right: ColRef::new(1, 1),
                },
                EquiJoin {
                    left: ColRef::new(0, 2),
                    right: ColRef::new(1, 3),
                },
                EquiJoin {
                    left: ColRef::new(1, 0),
                    right: ColRef::new(2, 0),
                },
                EquiJoin {
                    left: ColRef::new(1, 1),
                    right: ColRef::new(2, 1),
                },
                EquiJoin {
                    left: ColRef::new(1, 2),
                    right: ColRef::new(2, 2),
                },
            ],
            group_by: vec![ColRef::new(0, 2)],
            aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(2, 8))],
            order_by: vec![(1, false)],
            limit: Some(20),
            ..Default::default()
        },
    ));

    // Q11-ish: most valuable stock positions.
    out.push((
        "CH-Q11".into(),
        SelectQuery {
            tables: vec![TableInput::new("stock")],
            group_by: vec![ColRef::new(0, 1)],
            aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(0, 3))],
            order_by: vec![(1, false)],
            limit: Some(50),
            ..Default::default()
        },
    ));

    // Q16-ish: item/supplier relationship counts for non-premium items.
    out.push((
        "CH-Q16".into(),
        SelectQuery {
            tables: vec![
                TableInput::new("stock"),
                TableInput::with_predicate("item", Expr::col_cmp(1, CmpOp::Ge, Value::Int32(100))),
            ],
            joins: vec![EquiJoin {
                left: ColRef::new(0, 1),
                right: ColRef::new(1, 0),
            }],
            group_by: vec![ColRef::new(1, 1)],
            aggregates: vec![AggItem::column(AggFunc::Count, ColRef::new(0, 1))],
            ..Default::default()
        },
    ));

    // Q17-ish: average yearly revenue proxy for small-quantity lines of
    // cheap items.
    out.push((
        "CH-Q17".into(),
        SelectQuery {
            tables: vec![
                TableInput::with_predicate(
                    "order_line",
                    Expr::col_cmp(7, CmpOp::Lt, Value::Int32(4)),
                ),
                TableInput::with_predicate(
                    "item",
                    Expr::col_cmp(2, CmpOp::Lt, Value::Decimal(200_000)),
                ),
            ],
            joins: vec![EquiJoin {
                left: ColRef::new(0, 4),
                right: ColRef::new(1, 0),
            }],
            aggregates: vec![
                AggItem::column(AggFunc::Sum, ColRef::new(0, 8)),
                AggItem::column(AggFunc::Count, ColRef::new(0, 8)),
            ],
            ..Default::default()
        },
    ));

    // Q20-ish: suppliers with healthy balances supplying low stock.
    out.push((
        "CH-Q20".into(),
        SelectQuery {
            tables: vec![
                TableInput::with_predicate(
                    "supplier",
                    Expr::col_cmp(2, CmpOp::Gt, Value::Decimal(0)),
                ),
                TableInput::new("order_line"),
            ],
            joins: vec![EquiJoin {
                left: ColRef::new(0, 0),
                right: ColRef::new(1, 5),
            }],
            group_by: vec![ColRef::new(0, 0)],
            aggregates: vec![AggItem::column(AggFunc::Sum, ColRef::new(1, 7))],
            ..Default::default()
        },
    ));

    // Q21-ish: per-warehouse undelivered order lines (suppliers who kept
    // orders waiting).
    out.push((
        "CH-Q21".into(),
        SelectQuery {
            tables: vec![TableInput::with_predicate(
                "order_line",
                Expr::col_cmp(6, CmpOp::Eq, Value::Date(0)),
            )],
            group_by: vec![ColRef::new(0, 5)],
            aggregates: vec![AggItem::column(AggFunc::Count, ColRef::new(0, 2))],
            order_by: vec![(1, false)],
            limit: Some(20),
            ..Default::default()
        },
    ));

    // Q22-ish: customers with positive balance by last-name bucket.
    out.push((
        "CH-Q22".into(),
        SelectQuery {
            tables: vec![TableInput::with_predicate(
                "customer",
                Expr::col_cmp(3, CmpOp::Gt, Value::Decimal(0)),
            )],
            group_by: vec![ColRef::new(0, 7)],
            aggregates: vec![
                AggItem::column(AggFunc::Count, ColRef::new(0, 2)),
                AggItem::column(AggFunc::Sum, ColRef::new(0, 3)),
            ],
            ..Default::default()
        },
    ));

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpd_engine::{DbConfig, IsolationLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn load_and_run_all_transactions() {
        let db = Database::new(DbConfig::default());
        let scale = ChScale::tiny();
        load(&db, scale).unwrap();
        let rt = ChRuntime::new(scale);
        let mut rng = StdRng::seed_from_u64(1);
        let session = db.session(IsolationLevel::ReadCommitted);
        for _ in 0..5 {
            let mut txn = session.begin();
            rt.new_order(&mut txn, &mut rng).unwrap();
            txn.commit().unwrap();
            let mut txn = session.begin();
            rt.payment(&mut txn, &mut rng).unwrap();
            txn.commit().unwrap();
            let mut txn = session.begin();
            rt.order_status(&mut txn, &mut rng).unwrap();
            txn.commit().unwrap();
            let mut txn = session.begin();
            rt.delivery(&mut txn, &mut rng).unwrap();
            txn.commit().unwrap();
            let mut txn = session.begin();
            rt.stock_level(&mut txn, &mut rng).unwrap();
            txn.commit().unwrap();
        }
        // NewOrder inserted orders beyond the initial ones.
        let count = db
            .query(&Statement::Select(SelectQuery {
                tables: vec![TableInput::new("orders")],
                aggregates: vec![AggItem::column(AggFunc::Count, ColRef::new(0, 2))],
                ..Default::default()
            }))
            .run()
            .unwrap();
        let initial =
            scale.warehouses * scale.districts_per_warehouse * scale.initial_orders_per_district;
        assert_eq!(count.rows[0][0], Value::Int64(initial as i64 + 5));
        // History got payment rows.
        let hist = db
            .query(&Statement::Select(SelectQuery {
                tables: vec![TableInput::new("history")],
                aggregates: vec![AggItem::column(AggFunc::Count, ColRef::new(0, 0))],
                ..Default::default()
            }))
            .run()
            .unwrap();
        assert_eq!(hist.rows[0][0], Value::Int64(5));
    }

    #[test]
    fn all_analytic_queries_execute() {
        let db = Database::new(DbConfig::default());
        load(&db, ChScale::tiny()).unwrap();
        for (label, q) in analytic_queries() {
            let r = db.query(&Statement::Select(q)).run();
            assert!(r.is_ok(), "{label} failed: {r:?}");
        }
    }

    #[test]
    fn analytic_q1_matches_manual_sum() {
        let db = Database::new(DbConfig::default());
        let scale = ChScale::tiny();
        load(&db, scale).unwrap();
        let (label, q1) = analytic_queries().into_iter().next().unwrap();
        assert_eq!(label, "CH-Q1");
        let rows = db.query(&Statement::Select(q1)).run().unwrap().rows;
        // Grouped by ol_number (5..15 possible), counts positive.
        assert!(!rows.is_empty());
        for r in rows {
            assert!(r[4].as_i64().unwrap() > 0);
        }
    }
}
