//! A TPC-DS-like star schema and a 97-query decision-support workload.
//!
//! Two fact tables (`store_sales`, `web_sales`) and six dimensions mirror
//! the tables the paper's §5.3 example plans reference (`item`, `date_dim`,
//! `customer_address`, `store`, `household_demographics`). The query
//! generator produces the TPC-DS *shape*: star joins with selective
//! dimension predicates, grouped aggregates over fact measures, and a tail
//! of full-scan rollups — the mix that makes hybrid designs win.

use hpd_common::{AggFunc, CmpOp, DataType, Expr, Result, Row, Schema, Value};
use hpd_engine::{AggItem, ColRef, Database, EquiJoin, IndexDescriptor, SelectQuery, TableInput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale knobs for the generated database.
#[derive(Debug, Clone, Copy)]
pub struct DsScale {
    pub store_sales_rows: usize,
    pub web_sales_rows: usize,
    pub items: usize,
    pub dates: usize,
    pub addresses: usize,
    pub stores: usize,
    pub households: usize,
    pub seed: u64,
}

impl Default for DsScale {
    fn default() -> DsScale {
        DsScale {
            store_sales_rows: 200_000,
            web_sales_rows: 100_000,
            items: 2_000,
            dates: 1_461, // four years
            addresses: 5_000,
            stores: 50,
            households: 720,
            seed: 0xD5,
        }
    }
}

impl DsScale {
    pub fn small() -> DsScale {
        DsScale {
            store_sales_rows: 40_000,
            web_sales_rows: 20_000,
            items: 500,
            dates: 366,
            addresses: 1_000,
            stores: 10,
            households: 144,
            ..DsScale::default()
        }
    }
}

/// Fact column ordinals (shared by both fact tables).
pub mod fact {
    pub const ID: usize = 0;
    pub const ITEM_SK: usize = 1;
    pub const DATE_SK: usize = 2;
    pub const ADDR_SK: usize = 3;
    pub const STORE_SK: usize = 4;
    pub const HDEMO_SK: usize = 5;
    pub const QUANTITY: usize = 6;
    pub const SALES_PRICE: usize = 7;
    pub const EXT_SALES_PRICE: usize = 8;
    pub const NET_PROFIT: usize = 9;
}

fn fact_schema(prefix: &str) -> Schema {
    Schema::from_pairs(&[
        (&format!("{prefix}_id") as &str, DataType::Int64),
        (&format!("{prefix}_item_sk"), DataType::Int32),
        (&format!("{prefix}_sold_date_sk"), DataType::Int32),
        (&format!("{prefix}_addr_sk"), DataType::Int32),
        (&format!("{prefix}_store_sk"), DataType::Int32),
        (&format!("{prefix}_hdemo_sk"), DataType::Int32),
        (&format!("{prefix}_quantity"), DataType::Int32),
        (&format!("{prefix}_sales_price"), DataType::Decimal),
        (&format!("{prefix}_ext_sales_price"), DataType::Decimal),
        (&format!("{prefix}_net_profit"), DataType::Decimal),
    ])
}

/// Names of all tables the generator creates.
pub const TABLES: [&str; 8] = [
    "store_sales",
    "web_sales",
    "item",
    "date_dim",
    "customer_address",
    "store",
    "household_demographics",
    "promotion",
];

/// Create and load the whole schema.
pub fn load(db: &Database, scale: DsScale) -> Result<()> {
    let mut rng = StdRng::seed_from_u64(scale.seed);

    // Dimensions -------------------------------------------------------
    db.create_table(
        "item",
        Schema::from_pairs(&[
            ("i_item_sk", DataType::Int32),
            ("i_category", DataType::Int32), // 10 categories
            ("i_brand", DataType::Int32),    // ~100 brands
            ("i_current_price", DataType::Decimal),
        ]),
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )?;
    db.load_table(
        "item",
        (0..scale.items as i32)
            .map(|i| {
                Row::new(vec![
                    Value::Int32(i),
                    Value::Int32(i % 10),
                    Value::Int32(i % 100),
                    Value::Decimal((i as i64 % 90 + 10) * 10_000),
                ])
            })
            .collect(),
    )?;

    db.create_table(
        "date_dim",
        Schema::from_pairs(&[
            ("d_date_sk", DataType::Int32),
            ("d_year", DataType::Int32),
            ("d_moy", DataType::Int32),
            ("d_dom", DataType::Int32),
        ]),
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )?;
    db.load_table(
        "date_dim",
        (0..scale.dates as i32)
            .map(|d| {
                Row::new(vec![
                    Value::Int32(d),
                    Value::Int32(1998 + d / 365),
                    Value::Int32(d / 30 % 12 + 1),
                    Value::Int32(d % 30 + 1),
                ])
            })
            .collect(),
    )?;

    db.create_table(
        "customer_address",
        Schema::from_pairs(&[
            ("ca_address_sk", DataType::Int32),
            ("ca_state", DataType::Int32),      // 50 states
            ("ca_gmt_offset", DataType::Int32), // -10..-5
        ]),
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )?;
    db.load_table(
        "customer_address",
        (0..scale.addresses as i32)
            .map(|a| {
                Row::new(vec![
                    Value::Int32(a),
                    Value::Int32(a % 50),
                    Value::Int32(-(a % 6) - 5),
                ])
            })
            .collect(),
    )?;

    db.create_table(
        "store",
        Schema::from_pairs(&[
            ("s_store_sk", DataType::Int32),
            ("s_state", DataType::Int32),
            ("s_market_id", DataType::Int32),
        ]),
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )?;
    db.load_table(
        "store",
        (0..scale.stores as i32)
            .map(|s| {
                Row::new(vec![
                    Value::Int32(s),
                    Value::Int32(s % 50),
                    Value::Int32(s % 10),
                ])
            })
            .collect(),
    )?;

    db.create_table(
        "household_demographics",
        Schema::from_pairs(&[
            ("hd_demo_sk", DataType::Int32),
            ("hd_dep_count", DataType::Int32),     // 0..9
            ("hd_vehicle_count", DataType::Int32), // 0..4
        ]),
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )?;
    db.load_table(
        "household_demographics",
        (0..scale.households as i32)
            .map(|h| {
                Row::new(vec![
                    Value::Int32(h),
                    Value::Int32(h % 10),
                    Value::Int32(h % 5),
                ])
            })
            .collect(),
    )?;

    db.create_table(
        "promotion",
        Schema::from_pairs(&[
            ("p_promo_sk", DataType::Int32),
            ("p_channel", DataType::Int32),
            ("p_response_target", DataType::Int32),
        ]),
        vec![0],
        IndexDescriptor::PrimaryBTree { keys: vec![0] },
    )?;
    db.load_table(
        "promotion",
        (0..300i32)
            .map(|p| {
                Row::new(vec![
                    Value::Int32(p),
                    Value::Int32(p % 4),
                    Value::Int32(p % 20),
                ])
            })
            .collect(),
    )?;

    // Facts -------------------------------------------------------------
    for (name, prefix, rows) in [
        ("store_sales", "ss", scale.store_sales_rows),
        ("web_sales", "ws", scale.web_sales_rows),
    ] {
        db.create_table(
            name,
            fact_schema(prefix),
            vec![0],
            IndexDescriptor::PrimaryBTree { keys: vec![0] },
        )?;
        let data: Vec<Row> = (0..rows as i64)
            .map(|i| {
                let price = rng.gen_range(100i64..100_000) * 100;
                let qty = rng.gen_range(1..=20);
                Row::new(vec![
                    Value::Int64(i),
                    Value::Int32(rng.gen_range(0..scale.items as i32)),
                    Value::Int32(rng.gen_range(0..scale.dates as i32)),
                    Value::Int32(rng.gen_range(0..scale.addresses as i32)),
                    Value::Int32(rng.gen_range(0..scale.stores as i32)),
                    Value::Int32(rng.gen_range(0..scale.households as i32)),
                    Value::Int32(qty),
                    Value::Decimal(price),
                    Value::Decimal(price * qty as i64),
                    Value::Decimal(rng.gen_range(-20_000i64..80_000) * 100),
                ])
            })
            .collect();
        db.load_table(name, data)?;
    }
    Ok(())
}

/// Dimension descriptor used by the query generator.
struct Dim {
    name: &'static str,
    /// Fact ordinal holding the FK to this dimension.
    fact_col: usize,
    /// (predicate column, domain size) pairs usable as selective filters.
    filters: &'static [(usize, i32)],
    /// Columns usable as group-by attributes.
    group_cols: &'static [usize],
}

const DIMS: [Dim; 5] = [
    Dim {
        name: "item",
        fact_col: fact::ITEM_SK,
        filters: &[(1, 10), (2, 100)],
        group_cols: &[1, 2],
    },
    Dim {
        name: "date_dim",
        fact_col: fact::DATE_SK,
        filters: &[(1, 5), (2, 12)],
        group_cols: &[1, 2],
    },
    Dim {
        name: "customer_address",
        fact_col: fact::ADDR_SK,
        filters: &[(1, 50), (2, 6)],
        group_cols: &[1],
    },
    Dim {
        name: "store",
        fact_col: fact::STORE_SK,
        filters: &[(1, 50), (2, 10)],
        group_cols: &[2],
    },
    Dim {
        name: "household_demographics",
        fact_col: fact::HDEMO_SK,
        filters: &[(1, 10), (2, 5)],
        group_cols: &[1],
    },
];

/// Generate the decision-support workload: `n` star queries (97 for the
/// paper's TPC-DS setup), deterministic in `seed`.
pub fn queries(n: usize, seed: u64) -> Vec<(String, SelectQuery)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for qid in 0..n {
        let fact_name = if rng.gen_bool(0.65) {
            "store_sales"
        } else {
            "web_sales"
        };
        // 1–4 joined dimensions.
        let n_dims = rng.gen_range(1..=4usize);
        let mut dim_ids: Vec<usize> = (0..DIMS.len()).collect();
        for i in (1..dim_ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            dim_ids.swap(i, j);
        }
        dim_ids.truncate(n_dims);

        let mut tables = vec![TableInput::new(fact_name)];
        let mut joins = Vec::new();
        let mut group_by = Vec::new();
        // Selective query (~50%): tight dimension predicates that make B+
        // tree plans attractive; otherwise a broad scan shape.
        let selective = rng.gen_bool(0.5);
        for (pos, &di) in dim_ids.iter().enumerate() {
            let dim = &DIMS[di];
            let ti = pos + 1;
            let mut pred: Option<Expr> = None;
            if selective || rng.gen_bool(0.3) {
                let (pcol, domain) = dim.filters[rng.gen_range(0..dim.filters.len())];
                let v = rng.gen_range(0..domain);
                let base = Expr::col_cmp(pcol, CmpOp::Eq, Value::Int32(v));
                pred = Some(match pred {
                    None => base,
                    Some(p) => Expr::And(vec![p, base]),
                });
            }
            tables.push(match pred {
                Some(p) => TableInput::with_predicate(dim.name, p),
                None => TableInput::new(dim.name),
            });
            joins.push(EquiJoin {
                left: ColRef::new(0, dim.fact_col),
                right: ColRef::new(ti, 0),
            });
            if group_by.is_empty() && !dim.group_cols.is_empty() && rng.gen_bool(0.6) {
                let g = dim.group_cols[rng.gen_range(0..dim.group_cols.len())];
                group_by.push(ColRef::new(ti, g));
            }
        }
        // Optional fact-local predicate.
        if rng.gen_bool(0.3) {
            tables[0].predicate = Some(Expr::col_cmp(
                fact::QUANTITY,
                CmpOp::Le,
                Value::Int32(rng.gen_range(2..20)),
            ));
        }
        let aggregates = vec![
            AggItem::column(AggFunc::Sum, ColRef::new(0, fact::EXT_SALES_PRICE)),
            AggItem::column(AggFunc::Count, ColRef::new(0, fact::ID)),
        ];
        out.push((
            format!("DS-Q{:02}", qid + 1),
            SelectQuery {
                tables,
                joins,
                group_by,
                aggregates,
                ..Default::default()
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpd_engine::{Database, DbConfig, Statement};

    #[test]
    fn load_and_run_sample_queries() {
        let db = Database::new(DbConfig::default());
        let scale = DsScale {
            store_sales_rows: 5_000,
            web_sales_rows: 2_000,
            items: 100,
            dates: 100,
            addresses: 200,
            stores: 10,
            households: 72,
            seed: 1,
        };
        load(&db, scale).unwrap();
        for (label, q) in queries(10, 7) {
            let r = db.query(&Statement::Select(q)).run().unwrap();
            assert!(r.rows.len() < 5_000, "{label} exploded");
        }
    }

    #[test]
    fn workload_is_deterministic_and_diverse() {
        let a = queries(97, 42);
        let b = queries(97, 42);
        assert_eq!(a.len(), 97);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1.tables.len(), y.1.tables.len());
        }
        // Diversity: both selective and non-selective queries appear.
        let with_pred = a
            .iter()
            .filter(|(_, q)| q.tables.iter().any(|t| t.predicate.is_some()))
            .count();
        assert!(with_pred > 20 && with_pred < 97);
        // Join fan varies.
        let joins: std::collections::HashSet<usize> =
            a.iter().map(|(_, q)| q.joins.len()).collect();
        assert!(joins.len() >= 3);
    }
}
