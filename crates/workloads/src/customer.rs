//! Synthesized "real customer workload" stand-ins.
//!
//! The paper evaluates on five proprietary customer workloads, characterized
//! only by the aggregate statistics of Table 2 (database size, table count,
//! max table size, average column count, query count, average joins per
//! query). This module generates schemas, data, and query sets matching
//! those aggregates: a few large fact-like tables, a tail of small
//! dimension-like tables connected by synthetic foreign keys, and SPJA
//! queries whose join fan and predicate selectivity are drawn to hit the
//! published averages.

use hpd_common::{AggFunc, CmpOp, ColumnDef, DataType, Expr, Result, Row, Schema, Value};
use hpd_engine::{AggItem, ColRef, Database, EquiJoin, IndexDescriptor, SelectQuery, TableInput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters mirroring one row of the paper's Table 2 (row counts scaled).
#[derive(Debug, Clone)]
pub struct CustomerProfile {
    pub name: &'static str,
    pub tables: usize,
    /// Rows of the largest table; others fall off geometrically.
    pub max_table_rows: usize,
    pub avg_columns: usize,
    pub queries: usize,
    pub avg_joins: f64,
    pub seed: u64,
}

/// The five customer workloads of Table 2, scaled to laptop size while
/// preserving the published *ratios* (relative table counts, column widths,
/// query counts, join fan).
pub fn profiles() -> Vec<CustomerProfile> {
    vec![
        CustomerProfile {
            name: "cust1",
            tables: 23,
            max_table_rows: 120_000,
            avg_columns: 14,
            queries: 36,
            avg_joins: 7.2,
            seed: 0xC1,
        },
        CustomerProfile {
            name: "cust2",
            tables: 40, // 614 in the paper; queries touch a similar active set
            max_table_rows: 90_000,
            avg_columns: 23,
            queries: 40,
            avg_joins: 8.1,
            seed: 0xC2,
        },
        CustomerProfile {
            name: "cust3",
            tables: 48, // 3394 in the paper
            max_table_rows: 150_000,
            avg_columns: 26,
            queries: 40,
            avg_joins: 8.75,
            seed: 0xC3,
        },
        CustomerProfile {
            name: "cust4",
            tables: 22,
            max_table_rows: 110_000,
            avg_columns: 20,
            queries: 24,
            avg_joins: 6.9,
            seed: 0xC4,
        },
        CustomerProfile {
            name: "cust5",
            tables: 30, // 474 in the paper
            max_table_rows: 20_000,
            avg_columns: 5,
            queries: 47,
            avg_joins: 21.6,
            seed: 0xC5,
        },
    ]
}

/// A generated customer database: per-table fan-out structure retained for
/// query generation.
pub struct CustomerDb {
    pub profile: CustomerProfile,
    pub table_names: Vec<String>,
    /// `fk[t]` = (column ordinal in t, referenced table index) pairs.
    fk: Vec<Vec<(usize, usize)>>,
    /// Column counts per table.
    cols: Vec<usize>,
    rows: Vec<usize>,
}

/// Column layout per table: pk(0), FK columns, low-cardinality attributes,
/// measures.
fn table_spec(
    idx: usize,
    profile: &CustomerProfile,
    rng: &mut StdRng,
) -> (usize, usize, Vec<usize>) {
    // Geometric size falloff: table 0 is the biggest.
    let rows = (profile.max_table_rows as f64 * 0.75f64.powi(idx as i32)).max(200.0) as usize;
    let n_cols =
        rng.gen_range(profile.avg_columns.saturating_sub(2).max(3)..=profile.avg_columns + 3);
    // Later tables reference up to three earlier tables.
    let n_fk = if idx == 0 {
        0
    } else {
        rng.gen_range(1..=3.min(idx))
    };
    let mut refs: Vec<usize> = Vec::new();
    for _ in 0..n_fk {
        refs.push(rng.gen_range(0..idx));
    }
    refs.sort_unstable();
    refs.dedup();
    (rows, n_cols, refs)
}

/// Create + load the synthetic customer database.
pub fn load(db: &Database, profile: CustomerProfile) -> Result<CustomerDb> {
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let mut table_names = Vec::new();
    let mut fk: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut cols = Vec::new();
    let mut rows_per = Vec::new();

    for t in 0..profile.tables {
        let (rows, n_cols, refs) = table_spec(t, &profile, &mut rng);
        let name = format!("{}_t{t}", profile.name);

        let mut defs = vec![ColumnDef::new("id", DataType::Int64)];
        let mut fks = Vec::new();
        for (i, &r) in refs.iter().enumerate() {
            defs.push(ColumnDef::new(format!("fk{i}"), DataType::Int64));
            fks.push((defs.len() - 1, r));
        }
        // Attribute columns: a mix of low-cardinality ints, decimals, dates
        // (always at least one attribute beyond pk + FKs).
        let target_cols = n_cols.max(defs.len() + 1);
        while defs.len() < target_cols {
            let i = defs.len();
            let dtype = match i % 4 {
                0 => DataType::Int32,
                1 => DataType::Decimal,
                2 => DataType::Date,
                _ => DataType::Int32,
            };
            defs.push(ColumnDef::new(format!("a{i}"), dtype));
        }
        let schema = Schema::new(defs.clone());
        db.create_table(
            &name,
            schema,
            vec![0],
            IndexDescriptor::PrimaryBTree { keys: vec![0] },
        )?;

        let ref_rows: Vec<usize> = fks.iter().map(|&(_, r)| rows_per[r]).collect();
        let data: Vec<Row> = (0..rows as i64)
            .map(|i| {
                let mut vals = vec![Value::Int64(i)];
                for (k, _) in fks.iter().enumerate() {
                    vals.push(Value::Int64(rng.gen_range(0..ref_rows[k].max(1) as i64)));
                }
                for def in defs.iter().skip(1 + fks.len()) {
                    vals.push(match def.dtype {
                        DataType::Int32 => Value::Int32(rng.gen_range(0..200)),
                        DataType::Decimal => Value::Decimal(rng.gen_range(0..100_000_000)),
                        DataType::Date => Value::Date(rng.gen_range(0..1461)),
                        _ => Value::Int32(0),
                    });
                }
                Row::new(vals)
            })
            .collect();
        db.load_table(&name, data)?;

        table_names.push(name);
        fk.push(fks);
        cols.push(defs.len());
        rows_per.push(rows);
    }

    Ok(CustomerDb {
        profile,
        table_names,
        fk,
        cols,
        rows: rows_per,
    })
}

impl CustomerDb {
    /// Generate the workload's queries: join chains following the FK graph,
    /// selective predicates on small tables, aggregates over measures.
    pub fn queries(&self) -> Vec<(String, SelectQuery)> {
        let mut rng = StdRng::seed_from_u64(self.profile.seed ^ 0x9E3779B97F4A7C15);
        let mut out = Vec::with_capacity(self.profile.queries);
        for qid in 0..self.profile.queries {
            // Join fan around the profile average (but bounded by the graph).
            let want = (self.profile.avg_joins + rng.gen_range(-2.0..2.0))
                .clamp(0.0, (self.table_names.len() - 1) as f64)
                .round() as usize;

            // Random walk over the FK graph starting from a random table.
            let start = rng.gen_range(0..self.table_names.len());
            let mut tables_idx = vec![start];
            let mut joins: Vec<EquiJoin> = Vec::new();
            while joins.len() < want {
                // Extend from any included table via one of its FKs, or via
                // a table referencing it.
                let mut extended = false;
                let anchors: Vec<usize> = (0..tables_idx.len()).collect();
                for &a in anchors.iter().rev() {
                    let t = tables_idx[a];
                    // FKs out of t.
                    for &(col, target) in &self.fk[t] {
                        if !tables_idx.contains(&target) {
                            tables_idx.push(target);
                            joins.push(EquiJoin {
                                left: ColRef::new(a, col),
                                right: ColRef::new(tables_idx.len() - 1, 0),
                            });
                            extended = true;
                            break;
                        }
                    }
                    if extended {
                        break;
                    }
                    // Tables referencing t.
                    for (other, fks) in self.fk.iter().enumerate() {
                        if tables_idx.contains(&other) {
                            continue;
                        }
                        if let Some(&(col, _)) = fks.iter().find(|&&(_, r)| r == t) {
                            tables_idx.push(other);
                            joins.push(EquiJoin {
                                left: ColRef::new(tables_idx.len() - 1, col),
                                right: ColRef::new(a, 0),
                            });
                            extended = true;
                            break;
                        }
                    }
                    if extended {
                        break;
                    }
                }
                if !extended {
                    break; // graph exhausted
                }
            }

            // Predicates: selective on ~half of the queries.
            let mut inputs: Vec<TableInput> = tables_idx
                .iter()
                .map(|&t| TableInput::new(&self.table_names[t]))
                .collect();
            let selective = rng.gen_bool(0.5);
            if selective {
                let victim = rng.gen_range(0..inputs.len());
                let t = tables_idx[victim];
                // Attribute columns start after pk + fks.
                let first_attr = 1 + self.fk[t].len();
                if first_attr < self.cols[t] {
                    let col = rng.gen_range(first_attr..self.cols[t]);
                    // Equality on a 0..200 attribute or a narrow range.
                    inputs[victim].predicate = Some(Expr::col_cmp(
                        col,
                        CmpOp::Eq,
                        match col % 4 {
                            1 => Value::Decimal(rng.gen_range(0..100_000_000)),
                            2 => Value::Date(rng.gen_range(0..1461)),
                            _ => Value::Int32(rng.gen_range(0..200)),
                        },
                    ));
                }
            }

            // Aggregate over the first table's last attribute.
            let t0 = tables_idx[0];
            let measure = self.cols[t0] - 1;
            let group_t = rng.gen_range(0..tables_idx.len());
            let gt = tables_idx[group_t];
            let first_attr = 1 + self.fk[gt].len();
            let group_col = if first_attr < self.cols[gt] {
                first_attr
            } else {
                0
            };
            out.push((
                format!("{}-Q{:02}", self.profile.name, qid + 1),
                SelectQuery {
                    tables: inputs,
                    joins,
                    group_by: vec![ColRef::new(group_t, group_col)],
                    aggregates: vec![
                        AggItem::column(AggFunc::Sum, ColRef::new(0, measure)),
                        AggItem::column(AggFunc::Count, ColRef::new(0, 0)),
                    ],
                    ..Default::default()
                },
            ));
        }
        out
    }

    /// Aggregate statistics in Table 2's shape:
    /// (total bytes, #tables, max table rows, avg columns, #queries,
    /// avg joins/query).
    pub fn table2_stats(
        &self,
        queries: &[(String, SelectQuery)],
    ) -> (usize, usize, usize, f64, usize, f64) {
        let total_bytes: usize = self
            .rows
            .iter()
            .zip(&self.cols)
            .map(|(&r, &c)| r * c * 8)
            .sum();
        let avg_cols = self.cols.iter().sum::<usize>() as f64 / self.cols.len() as f64;
        let avg_joins = queries
            .iter()
            .map(|(_, q)| q.joins.len() as f64)
            .sum::<f64>()
            / queries.len().max(1) as f64;
        (
            total_bytes,
            self.table_names.len(),
            self.rows.iter().copied().max().unwrap_or(0),
            avg_cols,
            queries.len(),
            avg_joins,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpd_engine::{DbConfig, Statement};

    fn tiny_profile() -> CustomerProfile {
        CustomerProfile {
            name: "custx",
            tables: 6,
            max_table_rows: 2_000,
            avg_columns: 6,
            queries: 8,
            avg_joins: 2.0,
            seed: 11,
        }
    }

    #[test]
    fn load_and_run_generated_queries() {
        let db = Database::new(DbConfig::default());
        let cdb = load(&db, tiny_profile()).unwrap();
        let queries = cdb.queries();
        assert_eq!(queries.len(), 8);
        for (label, q) in &queries {
            let r = db.query(&Statement::Select(q.clone())).run();
            assert!(r.is_ok(), "{label}: {r:?}");
        }
    }

    #[test]
    fn stats_match_profile_shape() {
        let db = Database::new(DbConfig::default());
        let cdb = load(&db, tiny_profile()).unwrap();
        let queries = cdb.queries();
        let (bytes, tables, max_rows, avg_cols, n_q, avg_joins) = cdb.table2_stats(&queries);
        assert!(bytes > 0);
        assert_eq!(tables, 6);
        assert_eq!(max_rows, 2_000);
        assert!(avg_cols >= 4.0);
        assert_eq!(n_q, 8);
        assert!(avg_joins >= 0.5, "avg joins {avg_joins}");
    }

    #[test]
    fn generation_is_deterministic() {
        let db1 = Database::new(DbConfig::default());
        let db2 = Database::new(DbConfig::default());
        let c1 = load(&db1, tiny_profile()).unwrap();
        let c2 = load(&db2, tiny_profile()).unwrap();
        let q1 = c1.queries();
        let q2 = c2.queries();
        for (a, b) in q1.iter().zip(&q2) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.joins.len(), b.1.joins.len());
        }
    }
}
