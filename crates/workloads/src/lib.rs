//! Workload and data generators for the reproduction.
//!
//! * [`micro`] — the §3 micro-benchmarks: uniform synthetic tables (after
//!   Kester et al.) and queries Q1–Q3;
//! * [`tpch`] — a scaled TPC-H `lineitem` with the paper's Q4 (update) and
//!   Q5 (analytic) statements and the three §3.4 physical designs;
//! * [`tpcds`] — a TPC-DS-like star schema with a 97-query parameterized
//!   decision-support workload;
//! * [`ch`] — the CH-benCHmark: TPC-C tables + transactions plus analytic
//!   queries over the shared schema;
//! * [`customer`] — a synthesizer for "real customer workload"-shaped
//!   schemas and query sets, parameterized by the aggregate statistics the
//!   paper publishes in Table 2;
//! * [`history`] — mixed OLTP/OLAP transaction histories for the
//!   differential concurrency harness (`crates/harness`).
//!
//! Every generator is deterministic in its seed.

pub mod ch;
pub mod customer;
pub mod history;
pub mod micro;
pub mod tpcds;
pub mod tpch;

pub use history::{HistoryConfig, MixedOp, TxnSpec};
pub use micro::{MicroTable, SortedLoad};
