//! Property tests for the encoded-domain scan kernels: for every integer
//! encoding (RLE, bit-packed, raw), every interval shape, dictionary
//! strings, floats, and the delete-bitmap/delta-store interaction, the
//! pushed-down kernel must select exactly the rows a naive
//! decode-then-filter pass selects.

use std::collections::{HashMap, HashSet};

use hpd_columnstore::{
    ColumnStoreIndex, CsiConfig, CsiKind, IntEncoding, PushdownAgg, Segment, SortMode,
};
use hpd_common::interval::Bound;
use hpd_common::{AggFunc, ColumnVector, DataType, Interval, Key, Row, SelBitmap, Value};
use hpd_storage::{BufferPool, DeviceProfile, IoTracker, StorageAllocator};
use proptest::prelude::*;

fn build_segment(dtype: DataType, values: &[Value]) -> Segment {
    let col = ColumnVector::from_values(dtype, values).unwrap();
    Segment::build(&col, &StorageAllocator::new())
}

/// Decode-then-filter reference: positions whose value satisfies the
/// interval.
fn naive_positions(seg: &Segment, iv: &Interval) -> Vec<usize> {
    let col = seg.decode();
    (0..col.len())
        .filter(|&i| iv.contains(&col.value(i)))
        .collect()
}

/// Kernel result: positions surviving `eval_interval` starting from an
/// all-set selection. Panics if the segment reports the interval as
/// unsupported (these tests only use supported type pairings).
fn kernel_positions(seg: &Segment, iv: &Interval) -> Vec<usize> {
    let mut sel = SelBitmap::all_set(seg.rows());
    assert!(
        seg.eval_interval(iv, &mut sel),
        "interval unexpectedly unsupported: {iv:?} on {:?}",
        seg.data_type()
    );
    sel.positions()
}

fn assert_kernel_matches_naive(seg: &Segment, iv: &Interval) {
    let naive = naive_positions(seg, iv);
    let kernel = kernel_positions(seg, iv);
    assert_eq!(
        kernel,
        naive,
        "kernel/naive mismatch for {iv:?} on {:?} segment",
        seg.encoding()
    );
}

/// Interval from a generated shape selector and two pivots: exercises
/// unbounded, point, half-open, and both-inclusivity range forms.
fn int_interval(kind: i32, a: i32, b: i32, inc_lo: bool, inc_hi: bool) -> Interval {
    let (lo, hi) = (a.min(b), a.max(b));
    match kind {
        0 => Interval::all(),
        1 => Interval::point(Value::Int32(a)),
        2 => Interval::less_than(Value::Int32(hi), inc_hi),
        3 => Interval::greater_than(Value::Int32(lo), inc_lo),
        4 => Interval::between(Value::Int32(lo), Value::Int32(hi)),
        _ => Interval {
            lo: if inc_lo {
                Bound::Inclusive(Value::Int32(lo))
            } else {
                Bound::Exclusive(Value::Int32(lo))
            },
            hi: if inc_hi {
                Bound::Inclusive(Value::Int32(hi))
            } else {
                Bound::Exclusive(Value::Int32(hi))
            },
        },
    }
}

/// Integer data shaped to hit a specific encoding: runs for RLE, a dense
/// small domain for bit-packing, a wide sparse domain for raw, a monotone
/// wide-range small-step series for FOR/delta, and interleaved few-distinct
/// wide values for the numeric dictionary.
fn shaped_ints(shape: i32, seeds: &[(i32, i32)]) -> Vec<Value> {
    match shape {
        // Long runs: RLE (16 B/run) must beat dict-coding the 6 distinct
        // levels (~3 bits/row), so runs are ~60-90 rows.
        0 => seeds
            .iter()
            .flat_map(|&(level, run)| {
                std::iter::repeat_n(Value::Int32((level % 6) * 10), 60 + (run % 30) as usize)
            })
            .collect(),
        1 => seeds
            .iter()
            .map(|&(a, b)| Value::Int32(a.wrapping_mul(31).wrapping_add(b) & 0x3ff))
            .collect(),
        2 => seeds
            .iter()
            .map(|&(a, b)| {
                let spread = i64::from(a) * 1_000_000_007 * 130_000_000;
                Value::Int64(i64::MIN / 2 + spread + i64::from(b))
            })
            .collect(),
        // Monotone with ~2^30 steps: values span billions (defeating
        // bit-packing) but the step variation packs into 6 delta bits.
        3 => {
            let mut acc = 1i64 << 30;
            seeds
                .iter()
                .map(|&(a, b)| {
                    acc += (1 << 30) + i64::from((a * 64 + b) % 64);
                    Value::Int64(acc)
                })
                .collect()
        }
        // 8 interleaved levels of 10^15 magnitude: too many runs for RLE,
        // too wide for bit-packing, 3-bit dictionary codes win.
        _ => seeds
            .iter()
            .map(|&(a, b)| Value::Int64(i64::from((a + b) % 8) * 1_000_000_000_000_000))
            .collect(),
    }
}

#[test]
fn shaped_data_hits_all_encodings() {
    // Pin the encodings the shapes are designed to produce, so the
    // property tests below demonstrably cover RLE, BitPacked, Raw,
    // ForDelta, and Dict.
    let seeds: Vec<(i32, i32)> = (0..64).map(|i| (i % 7, i * 13 % 29)).collect();
    let rle = build_segment(DataType::Int32, &shaped_ints(0, &seeds));
    assert_eq!(rle.encoding(), IntEncoding::Rle);
    let packed = build_segment(DataType::Int32, &shaped_ints(1, &seeds));
    assert_eq!(packed.encoding(), IntEncoding::BitPacked);
    let raw = build_segment(DataType::Int64, &shaped_ints(2, &seeds));
    assert_eq!(raw.encoding(), IntEncoding::Raw);
    let fordelta = build_segment(DataType::Int64, &shaped_ints(3, &seeds));
    assert_eq!(fordelta.encoding(), IntEncoding::ForDelta);
    let dict = build_segment(DataType::Int64, &shaped_ints(4, &seeds));
    assert_eq!(dict.encoding(), IntEncoding::Dict);
}

/// Interval from two pivot values drawn from the segment's own domain
/// (Int32 literals can't reach the wide FOR/delta and dict domains).
fn value_interval(kind: i32, a: Value, b: Value, inc_lo: bool, inc_hi: bool) -> Interval {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    match kind {
        0 => Interval::all(),
        1 => Interval::point(lo),
        2 => Interval::less_than(hi, inc_hi),
        3 => Interval::greater_than(lo, inc_lo),
        4 => Interval::between(lo, hi),
        _ => Interval {
            lo: if inc_lo {
                Bound::Inclusive(lo)
            } else {
                Bound::Exclusive(lo)
            },
            hi: if inc_hi {
                Bound::Inclusive(hi)
            } else {
                Bound::Exclusive(hi)
            },
        },
    }
}

fn shape_dtype(shape: i32) -> DataType {
    if shape >= 2 {
        DataType::Int64
    } else {
        DataType::Int32
    }
}

#[test]
fn interval_shapes_on_each_encoding() {
    let seeds: Vec<(i32, i32)> = (0..80).map(|i| (i % 9, i * 17 % 23)).collect();
    for shape in 0..5 {
        let dtype = shape_dtype(shape);
        let data = shaped_ints(shape, &seeds);
        let seg = build_segment(dtype, &data);
        // Point at an existing value, a run boundary, an absent value, and
        // bounds beyond both extremes.
        let probe: Vec<Interval> = vec![
            Interval::all(),
            Interval::point(data[0].clone()),
            Interval::point(data[data.len() - 1].clone()),
            Interval::point(Value::Int32(-1)),
            Interval::less_than(seg.min().clone(), false),
            Interval::greater_than(seg.max().clone(), false),
            Interval::between(seg.min().clone(), seg.max().clone()),
            Interval {
                lo: Bound::Exclusive(seg.min().clone()),
                hi: Bound::Exclusive(seg.max().clone()),
            },
        ];
        for iv in &probe {
            assert_kernel_matches_naive(&seg, iv);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_int_kernels_match_naive(
        shape in 0i32..5,
        seeds in prop::collection::vec((0i32..64, 0i32..64), 1..120),
        kind in 0i32..6,
        a in -5i32..70,
        b in -5i32..70,
        inc_lo in prop::bool::ANY,
        inc_hi in prop::bool::ANY,
    ) {
        let data = shaped_ints(shape, &seeds);
        let seg = build_segment(shape_dtype(shape), &data);
        let iv = int_interval(kind, a, b, inc_lo, inc_hi);
        let naive = naive_positions(&seg, &iv);
        let kernel = kernel_positions(&seg, &iv);
        prop_assert_eq!(kernel, naive);
    }

    #[test]
    fn prop_domain_pivot_kernels_match_naive(
        shape in 0i32..5,
        seeds in prop::collection::vec((0i32..64, 0i32..64), 1..120),
        kind in 0i32..6,
        a in 0usize..4096,
        b in 0usize..4096,
        off_a in -1i64..2,
        off_b in -1i64..2,
        inc_lo in prop::bool::ANY,
        inc_hi in prop::bool::ANY,
    ) {
        // Pivots drawn from the data itself (±1 to probe absent neighbors)
        // so bounds land inside the wide FOR/delta and dict domains, on run
        // boundaries, and between dictionary entries.
        let data = shaped_ints(shape, &seeds);
        let seg = build_segment(shape_dtype(shape), &data);
        let pivot = |i: usize, off: i64| -> Value {
            match &data[i % data.len()] {
                Value::Int32(v) => Value::Int32(v.saturating_add(off as i32)),
                Value::Int64(v) => Value::Int64(v.saturating_add(off)),
                _ => unreachable!("shaped data is integer"),
            }
        };
        let iv = value_interval(kind, pivot(a, off_a), pivot(b, off_b), inc_lo, inc_hi);
        let naive = naive_positions(&seg, &iv);
        let kernel = kernel_positions(&seg, &iv);
        prop_assert_eq!(kernel, naive);
    }

    #[test]
    fn prop_agg_pushdown_matches_materialize_then_fold(
        shape in 0i32..5,
        seeds in prop::collection::vec((0i32..64, 0i32..64), 2..60),
        deletes in prop::collection::vec(0i32..2000, 0..40),
        delta in prop::collection::vec(0i32..40, 0..20),
        kind in 0i32..6,
        a in 0usize..4096,
        b in 0usize..4096,
        inc_lo in prop::bool::ANY,
        inc_hi in prop::bool::ANY,
        compact in prop::bool::ANY,
    ) {
        // The encoded fold must equal a materializing scan followed by a
        // row fold — including deletes (bitmap and buffered), delta rows,
        // and order-sensitive f64 sums — for every encoding shape.
        let pool = BufferPool::unbounded(DeviceProfile::ram());
        let t = IoTracker::new();
        let vals = shaped_ints(shape, &seeds);
        let vdtype = shape_dtype(shape);
        let schema = hpd_common::Schema::from_pairs(&[
            ("id", DataType::Int32),
            ("val", vdtype),
            ("f", DataType::Float64),
        ]);
        let rows: Vec<Row> = vals
            .iter()
            .enumerate()
            .map(|(i, v)| {
                Row::new(vec![
                    Value::Int32(i as i32),
                    v.clone(),
                    Value::Float64(i as f64 * 0.1 + 0.3),
                ])
            })
            .collect();
        let mut idx = ColumnStoreIndex::build(
            schema,
            CsiKind::Secondary,
            vec![0],
            CsiConfig { rowgroup_capacity: 64, sort_mode: SortMode::Greedy, ..CsiConfig::default() },
            &rows,
            StorageAllocator::new(),
            &pool,
            &t,
        );
        let nrows = rows.len() as i32;
        for d in &deletes {
            if *d < nrows {
                idx.delete(&Key::single(Value::Int32(*d)), &pool, &t);
            }
        }
        let uniq: HashSet<i32> = delta.iter().copied().collect();
        for d in &uniq {
            let v = match vdtype {
                DataType::Int64 => Value::Int64(i64::from(d * 11)),
                _ => Value::Int32(d * 11),
            };
            idx.insert(
                Row::new(vec![
                    Value::Int32(1_000_000 + d),
                    v,
                    Value::Float64(f64::from(*d) * 0.7 + 0.1),
                ]),
                &pool,
                &t,
            );
        }
        if compact {
            idx.compact_deletes_budget(usize::MAX, &pool, &t);
        }
        let pivot = |i: usize| vals[i % vals.len()].clone();
        let mut intervals = HashMap::new();
        intervals.insert(1usize, value_interval(kind, pivot(a), pivot(b), inc_lo, inc_hi));

        let aggs = vec![
            PushdownAgg { func: AggFunc::Count, col: 0 },
            PushdownAgg { func: AggFunc::Sum, col: 1 },
            PushdownAgg { func: AggFunc::Min, col: 1 },
            PushdownAgg { func: AggFunc::Max, col: 1 },
            PushdownAgg { func: AggFunc::Avg, col: 1 },
            PushdownAgg { func: AggFunc::Sum, col: 2 },
            PushdownAgg { func: AggFunc::Max, col: 2 },
        ];
        // Materialize-then-fold reference over the scan path, accumulating
        // in scan order (rowgroups then delta) — the order the pushdown
        // fold promises to match bit-for-bit on f64.
        let mut count = 0i64;
        let mut sum_v = 0i128;
        let mut min_v: Option<Value> = None;
        let mut max_v: Option<Value> = None;
        let mut avg_sum = 0.0f64;
        let mut sum_f = 0.0f64;
        let mut max_f: Option<Value> = None;
        for batch in idx.scan_collect(&[1, 2], &intervals, &pool, &t) {
            for i in 0..batch.num_rows() {
                let v = batch.column(0).value(i);
                let f = batch.column(1).value(i);
                count += 1;
                sum_v += i128::from(v.as_i64().unwrap());
                if min_v.as_ref().is_none_or(|m| &v < m) { min_v = Some(v.clone()); }
                if max_v.as_ref().is_none_or(|m| &v > m) { max_v = Some(v.clone()); }
                avg_sum += v.as_f64().unwrap();
                sum_f += f.as_f64().unwrap();
                if max_f.as_ref().is_none_or(|m| &f > m) { max_f = Some(f.clone()); }
            }
        }

        let result = idx
            .agg_collect(&aggs, &intervals, &pool, &t)
            .expect("numeric aggregates have pushdown kernels");
        if let Ok(total) = i64::try_from(sum_v) {
            let pushed = result.unwrap();
            let zero = match vdtype {
                DataType::Int64 => Value::Int64(0),
                _ => Value::Int32(0),
            };
            prop_assert_eq!(&pushed[0], &Value::Int64(count));
            prop_assert_eq!(&pushed[1], &Value::Int64(total));
            prop_assert_eq!(&pushed[2], &min_v.unwrap_or_else(|| zero.clone()));
            prop_assert_eq!(&pushed[3], &max_v.unwrap_or(zero));
            let avg = if count == 0 { 0.0 } else { avg_sum / count as f64 };
            prop_assert_eq!(&pushed[4], &Value::Float64(avg));
            prop_assert_eq!(&pushed[5], &Value::Float64(sum_f));
            prop_assert_eq!(&pushed[6], &max_f.unwrap_or(Value::Float64(0.0)));
        } else {
            // Totals outside i64 must error on both paths (the wide raw
            // shape legitimately overflows after a couple of rows).
            prop_assert!(result.is_err(), "expected SUM overflow, got {result:?}");
        }
    }

    #[test]
    fn prop_float_kernels_match_naive(
        seeds in prop::collection::vec(-40i32..40, 1..120),
        kind in 0i32..6,
        a in -12i32..12,
        b in -12i32..12,
        inc_lo in prop::bool::ANY,
        inc_hi in prop::bool::ANY,
        int_bounds in prop::bool::ANY,
    ) {
        // Quarters exercise fractional bounds; the bit-domain translation
        // must keep exclusive float bounds exact.
        let data: Vec<Value> = seeds.iter().map(|&s| Value::Float64(f64::from(s) / 4.0)).collect();
        let seg = build_segment(DataType::Float64, &data);
        let mk = |v: i32| if int_bounds { Value::Int64(i64::from(v)) } else { Value::Float64(f64::from(v) / 2.0) };
        let (lo, hi) = (a.min(b), a.max(b));
        let iv = match kind {
            0 => Interval::all(),
            1 => Interval::point(mk(a)),
            2 => Interval::less_than(mk(hi), inc_hi),
            3 => Interval::greater_than(mk(lo), inc_lo),
            4 => Interval::between(mk(lo), mk(hi)),
            _ => Interval {
                lo: if inc_lo { Bound::Inclusive(mk(lo)) } else { Bound::Exclusive(mk(lo)) },
                hi: if inc_hi { Bound::Inclusive(mk(hi)) } else { Bound::Exclusive(mk(hi)) },
            },
        };
        let naive = naive_positions(&seg, &iv);
        let kernel = kernel_positions(&seg, &iv);
        prop_assert_eq!(kernel, naive);
    }

    #[test]
    fn prop_dict_string_kernels_match_naive(
        seeds in prop::collection::vec(0i32..40, 1..120),
        kind in 0i32..6,
        a in -2i32..44,
        b in -2i32..44,
        inc_lo in prop::bool::ANY,
        inc_hi in prop::bool::ANY,
    ) {
        // Bounds may fall between dictionary entries ("s007x") or outside
        // the stored domain entirely.
        let data: Vec<Value> = seeds.iter().map(|&s| Value::str(format!("s{s:03}"))).collect();
        let seg = build_segment(DataType::Utf8, &data);
        let mk = |v: i32| {
            if v % 3 == 0 { Value::str(format!("s{v:03}x")) } else { Value::str(format!("s{v:03}")) }
        };
        let (lo, hi) = (a.min(b), a.max(b));
        let iv = match kind {
            0 => Interval::all(),
            1 => Interval::point(mk(a)),
            2 => Interval::less_than(mk(hi), inc_hi),
            3 => Interval::greater_than(mk(lo), inc_lo),
            4 => Interval::between(mk(lo), mk(hi)),
            _ => Interval {
                lo: if inc_lo { Bound::Inclusive(mk(lo)) } else { Bound::Exclusive(mk(lo)) },
                hi: if inc_hi { Bound::Inclusive(mk(hi)) } else { Bound::Exclusive(mk(hi)) },
            },
        };
        let naive = naive_positions(&seg, &iv);
        let kernel = kernel_positions(&seg, &iv);
        prop_assert_eq!(kernel, naive);
    }

    #[test]
    fn prop_scan_with_deletes_and_delta_matches_model(
        n in 20i32..120,
        deletes in prop::collection::vec(0i32..120, 0..40),
        delta in prop::collection::vec(200i32..260, 0..20),
        lo in 0i32..50,
        width in 0i32..30,
        compact in prop::bool::ANY,
    ) {
        // End-to-end: pushdown must compose with delete bitmaps, the
        // delete buffer's anti-join, and row-mode delta filtering.
        let pool = BufferPool::unbounded(DeviceProfile::ram());
        let t = IoTracker::new();
        let schema = hpd_common::Schema::from_pairs(&[
            ("id", DataType::Int32),
            ("val", DataType::Int32),
        ]);
        let rows: Vec<Row> = (0..n)
            .map(|i| Row::new(vec![Value::Int32(i), Value::Int32(i * 7 % 50)]))
            .collect();
        let mut idx = ColumnStoreIndex::build(
            schema,
            CsiKind::Secondary,
            vec![0],
            CsiConfig { rowgroup_capacity: 16, sort_mode: SortMode::Greedy, ..CsiConfig::default() },
            &rows,
            StorageAllocator::new(),
            &pool,
            &t,
        );
        let mut model: HashMap<i32, i32> = rows
            .iter()
            .map(|r| (r.values()[0].as_i32().unwrap(), r.values()[1].as_i32().unwrap()))
            .collect();
        // Secondary-CSI deletes are logical (no existence check), so only
        // delete keys the model still holds — matching the engine, which
        // locates rows through the primary index first.
        for d in &deletes {
            if model.remove(d).is_some() {
                prop_assert!(idx.delete(&Key::single(Value::Int32(*d)), &pool, &t));
            }
        }
        let uniq: HashSet<i32> = delta.iter().copied().collect();
        for d in &uniq {
            idx.insert(Row::new(vec![Value::Int32(*d), Value::Int32(d % 50)]), &pool, &t);
            model.insert(*d, d % 50);
        }
        if compact {
            idx.compact_deletes_budget(usize::MAX, &pool, &t);
        }
        let mut intervals = HashMap::new();
        intervals.insert(1usize, Interval::between(Value::Int32(lo), Value::Int32(lo + width)));
        let iv = intervals[&1].clone();
        let mut got: Vec<(i32, i32)> = idx
            .scan_collect(&[0, 1], &intervals, &pool, &t)
            .iter()
            .flat_map(|b| {
                (0..b.num_rows()).map(|i| {
                    (b.column(0).value(i).as_i32().unwrap(), b.column(1).value(i).as_i32().unwrap())
                }).collect::<Vec<_>>()
            })
            .collect();
        got.sort_unstable();
        let mut want: Vec<(i32, i32)> = model
            .iter()
            .filter(|&(_, v)| iv.contains(&Value::Int32(*v)))
            .map(|(&k, &v)| (k, v))
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}

#[test]
fn decoded_cache_respects_byte_cap_and_evicts() {
    let pool = BufferPool::unbounded(DeviceProfile::ram());
    let t = IoTracker::new();
    let schema =
        hpd_common::Schema::from_pairs(&[("id", DataType::Int32), ("val", DataType::Int32)]);
    let rows: Vec<Row> = (0..2000)
        .map(|i| Row::new(vec![Value::Int32(i), Value::Int32(i * 7 % 100)]))
        .collect();
    // Cap fits roughly one decoded rowgroup column (256 rows × 4 bytes),
    // far less than the 8 rowgroups × 2 columns a full scan decodes.
    let idx = ColumnStoreIndex::build(
        schema,
        CsiKind::Primary,
        vec![0],
        CsiConfig {
            rowgroup_capacity: 256,
            sort_mode: SortMode::Greedy,
            decoded_cache_bytes: 2 * 256 * 4,
            ..CsiConfig::default()
        },
        &rows,
        StorageAllocator::new(),
        &pool,
        &t,
    );
    let before = hpd_obs::global().snapshot();
    for _ in 0..2 {
        let total: usize = idx
            .scan_collect(&[0, 1], &HashMap::new(), &pool, &t)
            .iter()
            .map(hpd_common::Batch::num_rows)
            .sum();
        assert_eq!(total, 2000);
        assert!(idx.decoded_cache_bytes_used() <= 2 * 256 * 4);
    }
    let d = hpd_obs::global().snapshot().delta(&before);
    // 8 rowgroups × 2 columns × 2 scans decode through a cache that holds
    // at most two segments: evictions are mandatory. (≥, not ==: the obs
    // registry is process-global and other tests run concurrently.)
    assert!(d.counter("columnstore.segcache.evict") >= 8);
    assert!(d.counter("columnstore.segcache.miss") >= 16);
}

#[test]
fn decoded_cache_hits_on_repeated_scans() {
    let pool = BufferPool::unbounded(DeviceProfile::ram());
    let t = IoTracker::new();
    let schema =
        hpd_common::Schema::from_pairs(&[("id", DataType::Int32), ("val", DataType::Int32)]);
    let rows: Vec<Row> = (0..1000)
        .map(|i| Row::new(vec![Value::Int32(i), Value::Int32(i % 10)]))
        .collect();
    let idx = ColumnStoreIndex::build(
        schema,
        CsiKind::Primary,
        vec![0],
        CsiConfig {
            rowgroup_capacity: 250,
            sort_mode: SortMode::Greedy,
            decoded_cache_bytes: 1 << 20,
            ..CsiConfig::default()
        },
        &rows,
        StorageAllocator::new(),
        &pool,
        &t,
    );
    let before = hpd_obs::global().snapshot();
    for _ in 0..3 {
        let total: usize = idx
            .scan_collect(&[0, 1], &HashMap::new(), &pool, &t)
            .iter()
            .map(hpd_common::Batch::num_rows)
            .sum();
        assert_eq!(total, 1000);
    }
    let d = hpd_obs::global().snapshot().delta(&before);
    // First scan misses (4 rowgroups × 2 columns), the next two hit.
    assert!(d.counter("columnstore.segcache.hit") >= 16);
    assert!(idx.decoded_cache_bytes_used() > 0);
    assert!(idx.decoded_cache_bytes_used() <= 1 << 20);
}
