//! Property tests for the encoded-domain scan kernels: for every integer
//! encoding (RLE, bit-packed, raw), every interval shape, dictionary
//! strings, floats, and the delete-bitmap/delta-store interaction, the
//! pushed-down kernel must select exactly the rows a naive
//! decode-then-filter pass selects.

use std::collections::{HashMap, HashSet};

use hpd_columnstore::{ColumnStoreIndex, CsiConfig, CsiKind, IntEncoding, Segment, SortMode};
use hpd_common::interval::Bound;
use hpd_common::{ColumnVector, DataType, Interval, Key, Row, SelBitmap, Value};
use hpd_storage::{BufferPool, DeviceProfile, IoTracker, StorageAllocator};
use proptest::prelude::*;

fn build_segment(dtype: DataType, values: &[Value]) -> Segment {
    let col = ColumnVector::from_values(dtype, values).unwrap();
    Segment::build(&col, &StorageAllocator::new())
}

/// Decode-then-filter reference: positions whose value satisfies the
/// interval.
fn naive_positions(seg: &Segment, iv: &Interval) -> Vec<usize> {
    let col = seg.decode();
    (0..col.len())
        .filter(|&i| iv.contains(&col.value(i)))
        .collect()
}

/// Kernel result: positions surviving `eval_interval` starting from an
/// all-set selection. Panics if the segment reports the interval as
/// unsupported (these tests only use supported type pairings).
fn kernel_positions(seg: &Segment, iv: &Interval) -> Vec<usize> {
    let mut sel = SelBitmap::all_set(seg.rows());
    assert!(
        seg.eval_interval(iv, &mut sel),
        "interval unexpectedly unsupported: {iv:?} on {:?}",
        seg.data_type()
    );
    sel.positions()
}

fn assert_kernel_matches_naive(seg: &Segment, iv: &Interval) {
    let naive = naive_positions(seg, iv);
    let kernel = kernel_positions(seg, iv);
    assert_eq!(
        kernel,
        naive,
        "kernel/naive mismatch for {iv:?} on {:?} segment",
        seg.encoding()
    );
}

/// Interval from a generated shape selector and two pivots: exercises
/// unbounded, point, half-open, and both-inclusivity range forms.
fn int_interval(kind: i32, a: i32, b: i32, inc_lo: bool, inc_hi: bool) -> Interval {
    let (lo, hi) = (a.min(b), a.max(b));
    match kind {
        0 => Interval::all(),
        1 => Interval::point(Value::Int32(a)),
        2 => Interval::less_than(Value::Int32(hi), inc_hi),
        3 => Interval::greater_than(Value::Int32(lo), inc_lo),
        4 => Interval::between(Value::Int32(lo), Value::Int32(hi)),
        _ => Interval {
            lo: if inc_lo {
                Bound::Inclusive(Value::Int32(lo))
            } else {
                Bound::Exclusive(Value::Int32(lo))
            },
            hi: if inc_hi {
                Bound::Inclusive(Value::Int32(hi))
            } else {
                Bound::Exclusive(Value::Int32(hi))
            },
        },
    }
}

/// Integer data shaped to hit a specific encoding: runs for RLE, a dense
/// small domain for bit-packing, and a wide sparse domain for raw.
fn shaped_ints(shape: i32, seeds: &[(i32, i32)]) -> Vec<Value> {
    match shape {
        0 => seeds
            .iter()
            .flat_map(|&(level, run)| {
                std::iter::repeat_n(Value::Int32((level % 6) * 10), 10 + (run % 30) as usize)
            })
            .collect(),
        1 => seeds
            .iter()
            .map(|&(a, b)| Value::Int32(a.wrapping_mul(31).wrapping_add(b) & 0x3ff))
            .collect(),
        _ => seeds
            .iter()
            .map(|&(a, b)| {
                let spread = i64::from(a) * 1_000_000_007 * 130_000_000;
                Value::Int64(i64::MIN / 2 + spread + i64::from(b))
            })
            .collect(),
    }
}

#[test]
fn shaped_data_hits_all_encodings() {
    // Pin the encodings the shapes are designed to produce, so the
    // property tests below demonstrably cover RLE, BitPacked, and Raw.
    let seeds: Vec<(i32, i32)> = (0..64).map(|i| (i % 7, i * 13 % 29)).collect();
    let rle = build_segment(DataType::Int32, &shaped_ints(0, &seeds));
    assert_eq!(rle.encoding(), IntEncoding::Rle);
    let packed = build_segment(DataType::Int32, &shaped_ints(1, &seeds));
    assert_eq!(packed.encoding(), IntEncoding::BitPacked);
    let raw = build_segment(DataType::Int64, &shaped_ints(2, &seeds));
    assert_eq!(raw.encoding(), IntEncoding::Raw);
}

#[test]
fn interval_shapes_on_each_encoding() {
    let seeds: Vec<(i32, i32)> = (0..80).map(|i| (i % 9, i * 17 % 23)).collect();
    for shape in 0..3 {
        let dtype = if shape == 2 {
            DataType::Int64
        } else {
            DataType::Int32
        };
        let data = shaped_ints(shape, &seeds);
        let seg = build_segment(dtype, &data);
        // Point at an existing value, a run boundary, an absent value, and
        // bounds beyond both extremes.
        let probe: Vec<Interval> = vec![
            Interval::all(),
            Interval::point(data[0].clone()),
            Interval::point(data[data.len() - 1].clone()),
            Interval::point(Value::Int32(-1)),
            Interval::less_than(seg.min().clone(), false),
            Interval::greater_than(seg.max().clone(), false),
            Interval::between(seg.min().clone(), seg.max().clone()),
            Interval {
                lo: Bound::Exclusive(seg.min().clone()),
                hi: Bound::Exclusive(seg.max().clone()),
            },
        ];
        for iv in &probe {
            assert_kernel_matches_naive(&seg, iv);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_int_kernels_match_naive(
        shape in 0i32..3,
        seeds in prop::collection::vec((0i32..64, 0i32..64), 1..120),
        kind in 0i32..6,
        a in -5i32..70,
        b in -5i32..70,
        inc_lo in prop::bool::ANY,
        inc_hi in prop::bool::ANY,
    ) {
        let dtype = if shape == 2 { DataType::Int64 } else { DataType::Int32 };
        let data = shaped_ints(shape, &seeds);
        let seg = build_segment(dtype, &data);
        let iv = int_interval(kind, a, b, inc_lo, inc_hi);
        let naive = naive_positions(&seg, &iv);
        let kernel = kernel_positions(&seg, &iv);
        prop_assert_eq!(kernel, naive);
    }

    #[test]
    fn prop_float_kernels_match_naive(
        seeds in prop::collection::vec(-40i32..40, 1..120),
        kind in 0i32..6,
        a in -12i32..12,
        b in -12i32..12,
        inc_lo in prop::bool::ANY,
        inc_hi in prop::bool::ANY,
        int_bounds in prop::bool::ANY,
    ) {
        // Quarters exercise fractional bounds; the bit-domain translation
        // must keep exclusive float bounds exact.
        let data: Vec<Value> = seeds.iter().map(|&s| Value::Float64(f64::from(s) / 4.0)).collect();
        let seg = build_segment(DataType::Float64, &data);
        let mk = |v: i32| if int_bounds { Value::Int64(i64::from(v)) } else { Value::Float64(f64::from(v) / 2.0) };
        let (lo, hi) = (a.min(b), a.max(b));
        let iv = match kind {
            0 => Interval::all(),
            1 => Interval::point(mk(a)),
            2 => Interval::less_than(mk(hi), inc_hi),
            3 => Interval::greater_than(mk(lo), inc_lo),
            4 => Interval::between(mk(lo), mk(hi)),
            _ => Interval {
                lo: if inc_lo { Bound::Inclusive(mk(lo)) } else { Bound::Exclusive(mk(lo)) },
                hi: if inc_hi { Bound::Inclusive(mk(hi)) } else { Bound::Exclusive(mk(hi)) },
            },
        };
        let naive = naive_positions(&seg, &iv);
        let kernel = kernel_positions(&seg, &iv);
        prop_assert_eq!(kernel, naive);
    }

    #[test]
    fn prop_dict_string_kernels_match_naive(
        seeds in prop::collection::vec(0i32..40, 1..120),
        kind in 0i32..6,
        a in -2i32..44,
        b in -2i32..44,
        inc_lo in prop::bool::ANY,
        inc_hi in prop::bool::ANY,
    ) {
        // Bounds may fall between dictionary entries ("s007x") or outside
        // the stored domain entirely.
        let data: Vec<Value> = seeds.iter().map(|&s| Value::str(format!("s{s:03}"))).collect();
        let seg = build_segment(DataType::Utf8, &data);
        let mk = |v: i32| {
            if v % 3 == 0 { Value::str(format!("s{v:03}x")) } else { Value::str(format!("s{v:03}")) }
        };
        let (lo, hi) = (a.min(b), a.max(b));
        let iv = match kind {
            0 => Interval::all(),
            1 => Interval::point(mk(a)),
            2 => Interval::less_than(mk(hi), inc_hi),
            3 => Interval::greater_than(mk(lo), inc_lo),
            4 => Interval::between(mk(lo), mk(hi)),
            _ => Interval {
                lo: if inc_lo { Bound::Inclusive(mk(lo)) } else { Bound::Exclusive(mk(lo)) },
                hi: if inc_hi { Bound::Inclusive(mk(hi)) } else { Bound::Exclusive(mk(hi)) },
            },
        };
        let naive = naive_positions(&seg, &iv);
        let kernel = kernel_positions(&seg, &iv);
        prop_assert_eq!(kernel, naive);
    }

    #[test]
    fn prop_scan_with_deletes_and_delta_matches_model(
        n in 20i32..120,
        deletes in prop::collection::vec(0i32..120, 0..40),
        delta in prop::collection::vec(200i32..260, 0..20),
        lo in 0i32..50,
        width in 0i32..30,
        compact in prop::bool::ANY,
    ) {
        // End-to-end: pushdown must compose with delete bitmaps, the
        // delete buffer's anti-join, and row-mode delta filtering.
        let pool = BufferPool::unbounded(DeviceProfile::ram());
        let t = IoTracker::new();
        let schema = hpd_common::Schema::from_pairs(&[
            ("id", DataType::Int32),
            ("val", DataType::Int32),
        ]);
        let rows: Vec<Row> = (0..n)
            .map(|i| Row::new(vec![Value::Int32(i), Value::Int32(i * 7 % 50)]))
            .collect();
        let mut idx = ColumnStoreIndex::build(
            schema,
            CsiKind::Secondary,
            vec![0],
            CsiConfig { rowgroup_capacity: 16, sort_mode: SortMode::Greedy, ..CsiConfig::default() },
            &rows,
            StorageAllocator::new(),
            &pool,
            &t,
        );
        let mut model: HashMap<i32, i32> = rows
            .iter()
            .map(|r| (r.values()[0].as_i32().unwrap(), r.values()[1].as_i32().unwrap()))
            .collect();
        // Secondary-CSI deletes are logical (no existence check), so only
        // delete keys the model still holds — matching the engine, which
        // locates rows through the primary index first.
        for d in &deletes {
            if model.remove(d).is_some() {
                prop_assert!(idx.delete(&Key::single(Value::Int32(*d)), &pool, &t));
            }
        }
        let uniq: HashSet<i32> = delta.iter().copied().collect();
        for d in &uniq {
            idx.insert(Row::new(vec![Value::Int32(*d), Value::Int32(d % 50)]), &pool, &t);
            model.insert(*d, d % 50);
        }
        if compact {
            idx.compact_delete_buffer(&pool, &t);
        }
        let mut intervals = HashMap::new();
        intervals.insert(1usize, Interval::between(Value::Int32(lo), Value::Int32(lo + width)));
        let iv = intervals[&1].clone();
        let mut got: Vec<(i32, i32)> = idx
            .scan_collect(&[0, 1], &intervals, &pool, &t)
            .iter()
            .flat_map(|b| {
                (0..b.num_rows()).map(|i| {
                    (b.column(0).value(i).as_i32().unwrap(), b.column(1).value(i).as_i32().unwrap())
                }).collect::<Vec<_>>()
            })
            .collect();
        got.sort_unstable();
        let mut want: Vec<(i32, i32)> = model
            .iter()
            .filter(|&(_, v)| iv.contains(&Value::Int32(*v)))
            .map(|(&k, &v)| (k, v))
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}

#[test]
fn decoded_cache_respects_byte_cap_and_evicts() {
    let pool = BufferPool::unbounded(DeviceProfile::ram());
    let t = IoTracker::new();
    let schema =
        hpd_common::Schema::from_pairs(&[("id", DataType::Int32), ("val", DataType::Int32)]);
    let rows: Vec<Row> = (0..2000)
        .map(|i| Row::new(vec![Value::Int32(i), Value::Int32(i * 7 % 100)]))
        .collect();
    // Cap fits roughly one decoded rowgroup column (256 rows × 4 bytes),
    // far less than the 8 rowgroups × 2 columns a full scan decodes.
    let idx = ColumnStoreIndex::build(
        schema,
        CsiKind::Primary,
        vec![0],
        CsiConfig {
            rowgroup_capacity: 256,
            sort_mode: SortMode::Greedy,
            decoded_cache_bytes: 2 * 256 * 4,
            ..CsiConfig::default()
        },
        &rows,
        StorageAllocator::new(),
        &pool,
        &t,
    );
    let before = hpd_obs::global().snapshot();
    for _ in 0..2 {
        let total: usize = idx
            .scan_collect(&[0, 1], &HashMap::new(), &pool, &t)
            .iter()
            .map(hpd_common::Batch::num_rows)
            .sum();
        assert_eq!(total, 2000);
        assert!(idx.decoded_cache_bytes_used() <= 2 * 256 * 4);
    }
    let d = hpd_obs::global().snapshot().delta(&before);
    // 8 rowgroups × 2 columns × 2 scans decode through a cache that holds
    // at most two segments: evictions are mandatory. (≥, not ==: the obs
    // registry is process-global and other tests run concurrently.)
    assert!(d.counter("columnstore.segcache.evict") >= 8);
    assert!(d.counter("columnstore.segcache.miss") >= 16);
}

#[test]
fn decoded_cache_hits_on_repeated_scans() {
    let pool = BufferPool::unbounded(DeviceProfile::ram());
    let t = IoTracker::new();
    let schema =
        hpd_common::Schema::from_pairs(&[("id", DataType::Int32), ("val", DataType::Int32)]);
    let rows: Vec<Row> = (0..1000)
        .map(|i| Row::new(vec![Value::Int32(i), Value::Int32(i % 10)]))
        .collect();
    let idx = ColumnStoreIndex::build(
        schema,
        CsiKind::Primary,
        vec![0],
        CsiConfig {
            rowgroup_capacity: 250,
            sort_mode: SortMode::Greedy,
            decoded_cache_bytes: 1 << 20,
            ..CsiConfig::default()
        },
        &rows,
        StorageAllocator::new(),
        &pool,
        &t,
    );
    let before = hpd_obs::global().snapshot();
    for _ in 0..3 {
        let total: usize = idx
            .scan_collect(&[0, 1], &HashMap::new(), &pool, &t)
            .iter()
            .map(hpd_common::Batch::num_rows)
            .sum();
        assert_eq!(total, 1000);
    }
    let d = hpd_obs::global().snapshot().delta(&before);
    // First scan misses (4 rowgroups × 2 columns), the next two hit.
    assert!(d.counter("columnstore.segcache.hit") >= 16);
    assert!(idx.decoded_cache_bytes_used() > 0);
    assert!(idx.decoded_cache_bytes_used() <= 1 << 20);
}
