//! Integration and property tests for the columnstore index.

use std::collections::HashMap;

use hpd_columnstore::{ColumnStoreIndex, CsiConfig, CsiKind, SortMode};
use hpd_common::{DataType, Interval, Key, Row, Schema, Value};
use hpd_storage::{BufferPool, DeviceProfile, IoTracker, StorageAllocator};
use proptest::prelude::*;

fn schema2() -> Schema {
    Schema::from_pairs(&[("id", DataType::Int32), ("val", DataType::Int32)])
}

fn rows2(n: i32) -> Vec<Row> {
    (0..n)
        .map(|i| Row::new(vec![Value::Int32(i), Value::Int32(i * 7 % 100)]))
        .collect()
}

fn small_config() -> CsiConfig {
    CsiConfig {
        rowgroup_capacity: 100,
        sort_mode: SortMode::Greedy,
        ..CsiConfig::default()
    }
}

fn setup(kind: CsiKind, n: i32) -> (ColumnStoreIndex, BufferPool, IoTracker) {
    let pool = BufferPool::unbounded(DeviceProfile::ram());
    let t = IoTracker::new();
    let idx = ColumnStoreIndex::build(
        schema2(),
        kind,
        vec![0],
        small_config(),
        &rows2(n),
        StorageAllocator::new(),
        &pool,
        &t,
    );
    (idx, pool, t)
}

fn all_ids(idx: &ColumnStoreIndex, pool: &BufferPool) -> Vec<i32> {
    let t = IoTracker::new();
    let mut ids: Vec<i32> = idx
        .scan_collect(&[0], &HashMap::new(), pool, &t)
        .iter()
        .flat_map(|b| {
            (0..b.num_rows())
                .map(|i| b.column(0).value(i).as_i32().unwrap())
                .collect::<Vec<_>>()
        })
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn heat_tracks_reads_prunes_writes_and_decays() {
    let (mut idx, pool, t) = setup(CsiKind::Primary, 1000);
    // Rows are built in key order, so id ranges map to distinct rowgroups:
    // a selective scan reads some rowgroups and prunes the rest.
    let iv: HashMap<usize, Interval> =
        [(0usize, Interval::between(Value::Int32(0), Value::Int32(99)))]
            .into_iter()
            .collect();
    idx.scan_collect(&[0, 1], &iv, &pool, &t);
    idx.scan_collect(&[0, 1], &iv, &pool, &t);
    let heat = idx.heat_report();
    assert_eq!(heat.rowgroups.len(), idx.num_rowgroups());
    // Each snapshot names the chosen encoding per stored column segment.
    assert_eq!(heat.rowgroups[0].encodings.len(), 2);
    assert_eq!(heat.rowgroups[0].reads, 2);
    assert_eq!(heat.rowgroups[0].rows_read, 200);
    let last = heat.rowgroups.last().unwrap();
    assert_eq!(last.prunes, 2);
    assert_eq!(last.reads, 0);
    assert!(heat.rowgroups[0].score() > last.score());
    // Deletes charge writes to the victim rowgroup.
    assert!(idx.delete(&Key::new(vec![Value::Int32(5)]), &pool, &t));
    assert_eq!(idx.heat_report().rowgroups[0].writes, 1);
    // Inserts land in the delta store.
    idx.insert(
        Row::new(vec![Value::Int32(5000), Value::Int32(0)]),
        &pool,
        &t,
    );
    assert_eq!(idx.heat_report().delta_writes, 1);
    // Decay halves everything and counts the pass.
    idx.decay_heat();
    let decayed = idx.heat_report();
    assert_eq!(decayed.rowgroups[0].reads, 1);
    assert_eq!(decayed.rowgroups[0].rows_read, 100);
    assert_eq!(decayed.rowgroups[0].writes, 0);
    assert_eq!(decayed.delta_writes, 0);
    assert_eq!(decayed.decay_passes, 1);
}

#[test]
fn build_splits_into_rowgroups() {
    let (idx, _, _) = setup(CsiKind::Primary, 1000);
    assert_eq!(idx.num_rowgroups(), 10);
    assert_eq!(idx.active_rows(), 1000);
    assert_eq!(idx.delta_rows(), 0);
}

#[test]
fn scan_returns_all_rows() {
    let (idx, pool, _) = setup(CsiKind::Primary, 500);
    assert_eq!(all_ids(&idx, &pool), (0..500).collect::<Vec<_>>());
}

#[test]
fn segment_elimination_skips_rowgroups() {
    // Data arrives sorted by id, so per-rowgroup id ranges are disjoint.
    let (idx, pool, _) = setup(CsiKind::Primary, 1000);
    let t = IoTracker::new();
    let mut intervals = HashMap::new();
    intervals.insert(0usize, Interval::less_than(Value::Int32(150), false));
    let batches = idx.scan_collect(&[0], &intervals, &pool, &t);
    let rows: usize = batches.iter().map(|b| b.num_rows()).sum();
    // Row groups 0 and 1 survive elimination (ids 0..200); within them the
    // pushed-down interval prunes rows 150..200 in the encoded domain.
    assert_eq!(rows, 150);
    let eliminated: usize = (0..idx.num_rowgroups())
        .filter(|&i| idx.rowgroup_eliminated(i, &intervals))
        .count();
    assert_eq!(eliminated, 8);
}

#[test]
fn elimination_reduces_bytes_read() {
    let (idx, _, _) = setup(CsiKind::Primary, 2000);
    let pool = BufferPool::unbounded(DeviceProfile::hdd_raid());
    let sel = {
        let t = IoTracker::new();
        let mut iv = HashMap::new();
        iv.insert(0usize, Interval::point(Value::Int32(42)));
        idx.scan_collect(&[0, 1], &iv, &pool, &t);
        t.snapshot().bytes_read
    };
    pool.clear();
    let full = {
        let t = IoTracker::new();
        idx.scan_collect(&[0, 1], &HashMap::new(), &pool, &t);
        t.snapshot().bytes_read
    };
    assert!(
        sel * 5 < full,
        "selective scan read {sel} bytes vs full {full}"
    );
}

#[test]
fn inserts_go_to_delta_then_tuple_move() {
    let (mut idx, pool, t) = setup(CsiKind::Primary, 150);
    assert_eq!(idx.num_rowgroups(), 2);
    for i in 1000..1049 {
        idx.insert(Row::new(vec![Value::Int32(i), Value::Int32(0)]), &pool, &t);
    }
    assert_eq!(idx.delta_rows(), 49, "delta below capacity stays");
    assert_eq!(idx.active_rows(), 199);
    // Scanning sees delta rows.
    assert_eq!(all_ids(&idx, &pool).len(), 199);
    // Push delta to capacity: triggers synchronous tuple move.
    for i in 2000..2051 {
        idx.insert(Row::new(vec![Value::Int32(i), Value::Int32(0)]), &pool, &t);
    }
    assert!(idx.delta_rows() < 100);
    assert_eq!(idx.num_rowgroups(), 3);
    assert_eq!(idx.active_rows(), 250);
}

#[test]
fn secondary_delete_buffers_and_hides_rows() {
    let (mut idx, pool, t) = setup(CsiKind::Secondary, 300);
    assert!(idx.delete(&Key::single(Value::Int32(42)), &pool, &t));
    assert_eq!(idx.delete_buffer_len(), 1);
    assert_eq!(idx.active_rows(), 299);
    let ids = all_ids(&idx, &pool);
    assert_eq!(ids.len(), 299);
    assert!(!ids.contains(&42), "anti-join hides buffered delete");
}

#[test]
fn secondary_delete_is_cheaper_than_primary_delete() {
    // Shuffled keys defeat segment elimination, so a primary-CSI delete must
    // scan key segments across row groups; a secondary-CSI delete is one
    // delete-buffer insert. Compare simulated HDD time (the paper's Fig. 5
    // asymmetry).
    let mut keys: Vec<i32> = (0..5000).collect();
    let mut state = 99u64;
    for i in (1..keys.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        keys.swap(i, (state >> 33) as usize % (i + 1));
    }
    let rows: Vec<Row> = keys
        .iter()
        .map(|&k| Row::new(vec![Value::Int32(k), Value::Int32(k % 10)]))
        .collect();
    let build = |kind| {
        let pool = BufferPool::unbounded(DeviceProfile::hdd_raid());
        let t = IoTracker::new();
        let idx = ColumnStoreIndex::build(
            schema2(),
            kind,
            vec![0],
            small_config(),
            &rows,
            StorageAllocator::new(),
            &pool,
            &t,
        );
        pool.clear();
        (idx, pool)
    };
    let (mut pri, pool_p) = build(CsiKind::Primary);
    let (mut sec, pool_s) = build(CsiKind::Secondary);
    let tp = IoTracker::new();
    assert!(pri.delete(&Key::single(Value::Int32(2500)), &pool_p, &tp));
    let ts = IoTracker::new();
    assert!(sec.delete(&Key::single(Value::Int32(2500)), &pool_s, &ts));
    assert!(
        tp.snapshot().sim_io_us() > 5.0 * ts.snapshot().sim_io_us(),
        "primary delete {}us vs secondary {}us",
        tp.snapshot().sim_io_us(),
        ts.snapshot().sim_io_us()
    );
    assert_eq!(pri.active_rows(), 4999);
    assert_eq!(sec.active_rows(), 4999);
}

#[test]
fn primary_delete_marks_bitmap() {
    let (mut idx, pool, t) = setup(CsiKind::Primary, 250);
    assert!(idx.delete(&Key::single(Value::Int32(99)), &pool, &t));
    assert!(
        !idx.delete(&Key::single(Value::Int32(99)), &pool, &t),
        "already gone"
    );
    assert!(
        !idx.delete(&Key::single(Value::Int32(9_999)), &pool, &t),
        "never existed"
    );
    let ids = all_ids(&idx, &pool);
    assert_eq!(ids.len(), 249);
    assert!(!ids.contains(&99));
}

#[test]
fn delete_from_delta_store_directly() {
    let (mut idx, pool, t) = setup(CsiKind::Secondary, 150);
    idx.insert(
        Row::new(vec![Value::Int32(7_000), Value::Int32(1)]),
        &pool,
        &t,
    );
    assert_eq!(idx.delta_rows(), 1);
    assert!(idx.delete(&Key::single(Value::Int32(7_000)), &pool, &t));
    assert_eq!(idx.delta_rows(), 0);
    assert_eq!(idx.delete_buffer_len(), 0, "delta delete bypasses buffer");
}

#[test]
fn compact_delete_buffer_resolves_to_bitmap() {
    let (mut idx, pool, t) = setup(CsiKind::Secondary, 300);
    for k in [10, 20, 30] {
        idx.delete(&Key::single(Value::Int32(k)), &pool, &t);
    }
    assert_eq!(idx.delete_buffer_len(), 3);
    idx.compact_deletes_budget(usize::MAX, &pool, &t);
    assert_eq!(idx.delete_buffer_len(), 0);
    assert_eq!(idx.active_rows(), 297);
    let ids = all_ids(&idx, &pool);
    assert!(!ids.contains(&10) && !ids.contains(&20) && !ids.contains(&30));
    // After compaction scans no longer pay the anti-join probe.
    assert!(idx.antijoin_probe(&pool, &t).is_none());
}

#[test]
fn update_is_delete_plus_insert() {
    let (mut idx, pool, t) = setup(CsiKind::Secondary, 200);
    let updated = idx.update(
        &Key::single(Value::Int32(5)),
        Row::new(vec![Value::Int32(5), Value::Int32(999)]),
        &pool,
        &t,
    );
    assert!(updated);
    assert_eq!(idx.active_rows(), 200);
    assert_eq!(idx.delta_rows(), 1);
    // The new version is visible, the old hidden.
    let t2 = IoTracker::new();
    let mut iv = HashMap::new();
    iv.insert(0usize, Interval::point(Value::Int32(5)));
    let batches = idx.scan_collect(&[0, 1], &iv, &pool, &t2);
    let vals: Vec<i32> = batches
        .iter()
        .flat_map(|b| {
            (0..b.num_rows())
                .filter(|&i| b.column(0).value(i) == Value::Int32(5))
                .map(|i| b.column(1).value(i).as_i32().unwrap())
                .collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(vals, vec![999]);
}

#[test]
fn projection_decodes_only_needed_columns() {
    let (idx, _, _) = setup(CsiKind::Primary, 1000);
    let pool = BufferPool::unbounded(DeviceProfile::hdd_raid());
    let one_col = {
        let t = IoTracker::new();
        idx.scan_collect(&[1], &HashMap::new(), &pool, &t);
        t.snapshot().bytes_read
    };
    pool.clear();
    let both = {
        let t = IoTracker::new();
        idx.scan_collect(&[0, 1], &HashMap::new(), &pool, &t);
        t.snapshot().bytes_read
    };
    assert!(one_col < both, "column pruning must reduce I/O");
}

#[test]
fn column_sizes_sum_to_total() {
    let (idx, _, _) = setup(CsiKind::Primary, 1000);
    let sizes = idx.column_sizes();
    assert_eq!(sizes.len(), 2);
    assert_eq!(sizes.iter().sum::<usize>(), idx.size_bytes());
    assert!(sizes.iter().all(|&s| s > 0));
}

#[test]
fn compress_all_delta_flushes_remainder() {
    let (mut idx, pool, t) = setup(CsiKind::Primary, 0);
    for i in 0..42 {
        idx.insert(Row::new(vec![Value::Int32(i), Value::Int32(0)]), &pool, &t);
    }
    assert_eq!(idx.num_rowgroups(), 0);
    idx.maintenance_full(&pool, &t);
    assert_eq!(idx.delta_rows(), 0);
    assert_eq!(idx.num_rowgroups(), 1);
    assert_eq!(all_ids(&idx, &pool), (0..42).collect::<Vec<_>>());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_inserts_deletes_match_model(
        ops in prop::collection::vec((0i32..100, prop::bool::ANY), 1..120)
    ) {
        let pool = BufferPool::unbounded(DeviceProfile::ram());
        let t = IoTracker::new();
        let mut idx = ColumnStoreIndex::build(
            schema2(),
            CsiKind::Secondary,
            vec![0],
            CsiConfig { rowgroup_capacity: 16, sort_mode: SortMode::Greedy, ..CsiConfig::default() },
            &[],
            StorageAllocator::new(),
            &pool,
            &t,
        );
        let mut model: Vec<i32> = Vec::new();
        for (k, is_insert) in ops {
            if is_insert {
                if !model.contains(&k) { // keys stay unique
                    idx.insert(Row::new(vec![Value::Int32(k), Value::Int32(k)]), &pool, &t);
                    model.push(k);
                }
            } else if let Some(pos) = model.iter().position(|&x| x == k) {
                prop_assert!(idx.delete(&Key::single(Value::Int32(k)), &pool, &t));
                model.remove(pos);
            }
        }
        model.sort_unstable();
        prop_assert_eq!(all_ids(&idx, &pool), model.clone());
        prop_assert_eq!(idx.active_rows(), model.len());
        // Compaction must not change visible contents.
        idx.compact_deletes_budget(usize::MAX, &pool, &t);
        prop_assert_eq!(all_ids(&idx, &pool), model);
    }

    #[test]
    fn prop_scan_with_interval_superset_of_exact_filter(
        n in 1i32..400,
        lo in 0i32..400,
        width in 0i32..100,
    ) {
        let (idx, pool, _) = setup(CsiKind::Primary, n);
        let t = IoTracker::new();
        let mut iv = HashMap::new();
        iv.insert(0usize, Interval::between(Value::Int32(lo), Value::Int32(lo + width)));
        let batches = idx.scan_collect(&[0], &iv, &pool, &t);
        let mut got: Vec<i32> = batches.iter().flat_map(|b| {
            (0..b.num_rows()).map(|i| b.column(0).value(i).as_i32().unwrap()).collect::<Vec<_>>()
        }).collect();
        got.sort_unstable();
        // Elimination is conservative: every truly matching row must appear.
        let expected: Vec<i32> = (0..n).filter(|&i| i >= lo && i <= lo + width).collect();
        for e in &expected {
            prop_assert!(got.contains(e));
        }
        // And everything returned is within the surviving rowgroups (no
        // correctness requirement beyond superset, but ids must be valid).
        for g in &got {
            prop_assert!(*g >= 0 && *g < n);
        }
    }
}

/// The checked-in `csi_tests.proptest-regressions` file must actually be
/// found and parsed by the harness (its entries replay before novel cases
/// in every `proptest!` block above). Guards the `file!()`-relative path
/// resolution against cwd changes in cargo.
#[test]
fn checked_in_regressions_are_live() {
    let recorded = proptest::regressions::load(file!());
    assert!(
        !recorded.is_empty(),
        "csi_tests.proptest-regressions was not loaded"
    );
    assert!(
        matches!(recorded[0], proptest::regressions::Recorded::Seed(_)),
        "the legacy hex token must parse as a hashed seed"
    );
}
