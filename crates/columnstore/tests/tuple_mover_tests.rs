//! Tuple-mover boundary tests (ISSUE 3 satellite): exact-capacity delta
//! fills, compaction of fully-deleted row groups, scans interleaved with
//! mover activity driven through the fault-injection points, and the
//! merge-compaction phase that defragments the under-filled row groups the
//! budgeted mover leaves behind.

use std::collections::HashMap;

use hpd_columnstore::{ColumnStoreIndex, CsiConfig, CsiKind, SortMode};
use hpd_common::{faults, DataType, Key, Row, Schema, Value};
use hpd_storage::{BufferPool, DeviceProfile, IoTracker, StorageAllocator};

const CAP: usize = 64;

fn schema2() -> Schema {
    Schema::from_pairs(&[("id", DataType::Int32), ("val", DataType::Int32)])
}

fn row(i: i32) -> Row {
    Row::new(vec![Value::Int32(i), Value::Int32(i * 3 % 50)])
}

fn setup(kind: CsiKind, n: i32) -> (ColumnStoreIndex, BufferPool, IoTracker) {
    let pool = BufferPool::unbounded(DeviceProfile::ram());
    let t = IoTracker::new();
    let idx = ColumnStoreIndex::build(
        schema2(),
        kind,
        vec![0],
        CsiConfig {
            rowgroup_capacity: CAP,
            sort_mode: SortMode::Greedy,
            // Keep deletes buffered unless a test compacts explicitly.
            delete_buffer_compact_threshold: 1_000_000,
            ..CsiConfig::default()
        },
        &(0..n).map(row).collect::<Vec<_>>(),
        StorageAllocator::new(),
        &pool,
        &t,
    );
    (idx, pool, t)
}

fn visible_ids(idx: &ColumnStoreIndex, pool: &BufferPool) -> Vec<i32> {
    let t = IoTracker::new();
    let mut ids: Vec<i32> = idx
        .scan_collect(&[0], &HashMap::new(), pool, &t)
        .iter()
        .flat_map(|b| {
            (0..b.num_rows())
                .map(|i| b.column(0).value(i).as_i32().unwrap())
                .collect::<Vec<_>>()
        })
        .collect();
    ids.sort_unstable();
    ids
}

/// The mover must fire exactly at capacity: `CAP - 1` inserts stay in the
/// delta store, the `CAP`-th drains all of them into one new row group,
/// and the very next insert starts a fresh delta generation.
#[test]
fn delta_fill_to_exact_capacity_triggers_one_move() {
    let (mut idx, pool, t) = setup(CsiKind::Primary, 0);
    assert_eq!(idx.num_rowgroups(), 0);

    for i in 0..(CAP as i32 - 1) {
        idx.insert(row(i), &pool, &t);
    }
    assert_eq!(idx.num_rowgroups(), 0, "below capacity: no move yet");
    assert_eq!(idx.delta_rows(), CAP - 1);

    idx.insert(row(CAP as i32 - 1), &pool, &t);
    assert_eq!(idx.num_rowgroups(), 1, "capacity reached: exactly one move");
    assert_eq!(idx.delta_rows(), 0, "the move drains the full delta");

    idx.insert(row(CAP as i32), &pool, &t);
    assert_eq!(idx.num_rowgroups(), 1);
    assert_eq!(idx.delta_rows(), 1, "next insert opens a new delta");
    assert_eq!(
        visible_ids(&idx, &pool),
        (0..=CAP as i32).collect::<Vec<_>>()
    );
}

/// Deleting 100% of a primary CSI's rows must leave scans empty without
/// disturbing the row-group structure (bitmap-only deletes), and rows
/// inserted afterwards must come back alone.
#[test]
fn fully_deleted_primary_rowgroups_scan_empty() {
    let n = 2 * CAP as i32;
    let (mut idx, pool, t) = setup(CsiKind::Primary, n);
    assert_eq!(idx.num_rowgroups(), 2);

    for i in 0..n {
        assert!(idx.delete(&Key::single(Value::Int32(i)), &pool, &t));
    }
    assert_eq!(idx.active_rows(), 0);
    assert_eq!(idx.num_rowgroups(), 2, "deletes are logical, groups remain");
    assert!(visible_ids(&idx, &pool).is_empty());

    idx.insert(row(n), &pool, &t);
    assert_eq!(visible_ids(&idx, &pool), vec![n]);
}

/// Compacting a delete buffer that covers 100% of a secondary CSI's rows:
/// every buffered key resolves to a bitmap bit, the buffer empties, and
/// scans agree before and after compaction (anti-join vs. bitmap paths).
#[test]
fn fully_deleted_secondary_compaction_resolves_all_keys() {
    let n = 2 * CAP as i32;
    let (mut idx, pool, t) = setup(CsiKind::Secondary, n);

    for i in 0..n {
        idx.delete(&Key::single(Value::Int32(i)), &pool, &t);
    }
    assert_eq!(idx.delete_buffer_len(), n as usize);
    assert!(
        visible_ids(&idx, &pool).is_empty(),
        "anti-join must hide every buffered delete"
    );

    idx.compact_deletes_budget(usize::MAX, &pool, &t);
    assert_eq!(idx.delete_buffer_len(), 0);
    assert_eq!(idx.active_rows(), 0);
    assert!(visible_ids(&idx, &pool).is_empty());
}

/// A deferred mover (TUPLE_MOVE_DEFER) lets the delta grow past capacity;
/// scans taken mid-backlog must still see every row, and the next
/// unhindered insert drains the whole backlog in capacity-sized chunks.
#[test]
fn scan_sees_all_rows_while_mover_deferred() {
    let (mut idx, pool, t) = setup(CsiKind::Primary, 0);

    faults::arm(faults::sites::TUPLE_MOVE_DEFER, u32::MAX);
    let backlog = 3 * CAP as i32 + 7;
    for i in 0..backlog {
        idx.insert(row(i), &pool, &t);
    }
    assert_eq!(idx.num_rowgroups(), 0, "mover deferred: nothing compressed");
    assert_eq!(idx.delta_rows(), backlog as usize);
    // Scan during the (simulated) mover outage: delta-only reads.
    assert_eq!(visible_ids(&idx, &pool), (0..backlog).collect::<Vec<_>>());
    faults::reset_charges();

    idx.insert(row(backlog), &pool, &t);
    assert_eq!(idx.num_rowgroups(), 3, "backlog drained in capacity chunks");
    assert!(idx.delta_rows() < CAP);
    assert_eq!(visible_ids(&idx, &pool), (0..=backlog).collect::<Vec<_>>());
}

/// An eager mover (TUPLE_MOVE_FORCE) compresses undersized row groups on
/// every insert; interleaved scans must agree with the logical contents at
/// each step. This is the scan-during-compaction schedule the harness
/// exercises, reduced to the columnstore layer.
#[test]
fn scan_agrees_across_forced_early_compactions() {
    let (mut idx, pool, t) = setup(CsiKind::Primary, 0);
    let mut expect = Vec::new();
    for i in 0..10i32 {
        // Every other insert is immediately force-compacted.
        if i % 2 == 0 {
            faults::arm(faults::sites::TUPLE_MOVE_FORCE, 1);
        }
        idx.insert(row(i), &pool, &t);
        faults::reset_charges();
        expect.push(i);
        assert_eq!(visible_ids(&idx, &pool), expect, "after insert {i}");
    }
    assert!(idx.num_rowgroups() >= 5, "forced moves made tiny rowgroups");
}

/// Regression (harness seed 55) at the columnstore layer: an UPDATE leaves
/// a buffered delete of the old version and a delta insert of the new one.
/// `compress_all_delta` must compact the delete buffer *before* draining
/// the delta, or the stale buffered delete anti-joins away the freshly
/// compressed new version and the row vanishes.
#[test]
fn compress_all_delta_compacts_stale_buffered_deletes_first() {
    let n = CAP as i32;
    let (mut idx, pool, t) = setup(CsiKind::Secondary, n);
    assert_eq!(idx.num_rowgroups(), 1);

    // UPDATE id=5: buffered delete of the compressed version, delta insert
    // of the new version (same key).
    idx.delete(&Key::single(Value::Int32(5)), &pool, &t);
    idx.insert(row(5), &pool, &t);
    assert_eq!(idx.delete_buffer_len(), 1);
    assert_eq!(idx.delta_rows(), 1);
    assert_eq!(visible_ids(&idx, &pool), (0..n).collect::<Vec<_>>());

    idx.maintenance_full(&pool, &t);
    assert_eq!(idx.delta_rows(), 0);
    assert_eq!(idx.delete_buffer_len(), 0);
    assert_eq!(
        visible_ids(&idx, &pool),
        (0..n).collect::<Vec<_>>(),
        "the updated row must survive reorganization"
    );
}

/// Budget slicing (ISSUE 9): a budgeted increment must stop at its row
/// budget and the next increment must resume exactly where it stopped —
/// scans between increments see every row exactly once, and the increments
/// sum to the full backlog with nothing lost or duplicated.
#[test]
fn budgeted_increments_resume_partial_drain_exactly() {
    let (mut idx, pool, t) = setup(CsiKind::Primary, 0);

    faults::arm(faults::sites::TUPLE_MOVE_DEFER, u32::MAX);
    let backlog = 2 * CAP as i32 + 9;
    for i in 0..backlog {
        idx.insert(row(i), &pool, &t);
    }
    faults::reset_charges();
    assert_eq!(idx.delta_rows(), backlog as usize);

    let budget = CAP / 4;
    let mut total_moved = 0;
    let mut increments = 0;
    loop {
        let before = idx.delta_rows();
        let step = idx.maintenance_step(budget, &pool, &t);
        assert!(step.rows_moved <= budget, "increment exceeded its budget");
        assert_eq!(
            idx.delta_rows(),
            before - step.rows_moved,
            "resume point drifted between increments"
        );
        total_moved += step.rows_moved;
        increments += 1;
        // Every intermediate state is fully scannable: no row lost to a
        // half-finished move, none duplicated across delta and row groups.
        assert_eq!(
            visible_ids(&idx, &pool),
            (0..backlog).collect::<Vec<_>>(),
            "after increment {increments}"
        );
        if step.done {
            break;
        }
        assert!(increments < 64, "budgeted drain failed to terminate");
    }
    assert_eq!(total_moved, backlog as usize);
    assert_eq!(idx.delta_rows(), 0);
    assert!(increments >= (backlog as usize).div_ceil(budget));
}

/// A row budget below the delete-buffer depth slices the buffer: each
/// increment resolves exactly `budget` keys (smallest first) into bitmap
/// bits, the rest keep anti-joining scans, and no delta row may compress
/// while any buffered delete remains.
#[test]
fn budgeted_step_slices_delete_buffer_and_preserves_antijoin() {
    let n = 2 * CAP as i32;
    let (mut idx, pool, t) = setup(CsiKind::Secondary, n);
    for k in 0..10 {
        assert!(idx.delete(&Key::single(Value::Int32(k)), &pool, &t));
    }
    // Stage a delta row too: it must NOT move while deletes are buffered.
    idx.insert(row(n), &pool, &t);
    assert_eq!(idx.delete_buffer_len(), 10);

    let expected: Vec<i32> = (10..=n).collect();
    let mut remaining = 10usize;
    let mut delta_moved = 0;
    while remaining > 0 {
        let step = idx.maintenance_step(3, &pool, &t);
        assert_eq!(step.deletes_compacted, remaining.min(3));
        remaining -= step.deletes_compacted;
        if remaining > 0 {
            // While any delete stays buffered, no delta row may compress:
            // a stale buffered delete would anti-join the moved row away.
            assert_eq!(
                step.rows_moved, 0,
                "delta rows compressed past a non-empty delete buffer"
            );
        } else {
            // The final slice drained the buffer; leftover budget may now
            // be spent on the delta row within the same increment.
            delta_moved += step.rows_moved;
        }
        assert_eq!(idx.delete_buffer_len(), remaining);
        assert_eq!(visible_ids(&idx, &pool), expected);
    }
    // Whatever budget remained, the delta row must end up compressed.
    if delta_moved == 0 {
        let step = idx.maintenance_step(CAP, &pool, &t);
        delta_moved += step.rows_moved;
        assert!(step.done);
    }
    assert_eq!(delta_moved, 1);
    assert_eq!(idx.delta_rows(), 0);
    assert_eq!(visible_ids(&idx, &pool), expected);
}

/// The PR 3 invariant under budgeted increments: an UPDATE's stale
/// buffered delete (old compressed version) plus delta insert (new
/// version) must be compacted-then-moved in that order even when each
/// increment has a one-row budget — the new version must never vanish.
#[test]
fn budgeted_increments_preserve_stale_buffered_delete_invariant() {
    let n = CAP as i32;
    let (mut idx, pool, t) = setup(CsiKind::Secondary, n);
    idx.delete(&Key::single(Value::Int32(5)), &pool, &t);
    idx.insert(row(5), &pool, &t);
    assert_eq!(idx.delete_buffer_len(), 1);
    assert_eq!(idx.delta_rows(), 1);

    // Budget 1: the whole increment is spent resolving the buffered
    // delete; the delta row must wait for the next increment.
    let step = idx.maintenance_step(1, &pool, &t);
    assert_eq!((step.deletes_compacted, step.rows_moved), (1, 0));
    assert_eq!(
        visible_ids(&idx, &pool),
        (0..n).collect::<Vec<_>>(),
        "updated row lost between increments"
    );

    let step = idx.maintenance_step(1, &pool, &t);
    assert_eq!((step.deletes_compacted, step.rows_moved), (0, 1));
    assert!(step.done);
    assert_eq!(
        visible_ids(&idx, &pool),
        (0..n).collect::<Vec<_>>(),
        "the updated row must survive budgeted reorganization"
    );
}

/// The MAINT_STEP_SHRINK fault halves an increment's budget; the shrunken
/// increment must stay consistent and later increments finish the job.
#[test]
fn shrunken_increment_stays_consistent_and_resumes() {
    let (mut idx, pool, t) = setup(CsiKind::Primary, 0);
    faults::arm(faults::sites::TUPLE_MOVE_DEFER, u32::MAX);
    for i in 0..CAP as i32 {
        idx.insert(row(i), &pool, &t);
    }
    faults::reset_charges();

    faults::arm(faults::sites::MAINT_STEP_SHRINK, 1);
    let step = idx.maintenance_step(CAP, &pool, &t);
    faults::reset_charges();
    assert_eq!(step.rows_moved, CAP / 2, "shrunk to half the budget");
    assert_eq!(
        visible_ids(&idx, &pool),
        (0..CAP as i32).collect::<Vec<_>>()
    );

    let step = idx.maintenance_step(CAP, &pool, &t);
    assert_eq!(step.rows_moved, CAP - CAP / 2);
    assert!(step.done);
    assert_eq!(
        visible_ids(&idx, &pool),
        (0..CAP as i32).collect::<Vec<_>>()
    );
}

/// Budgeted increments fragment the index into budget-sized row groups;
/// the next full pass's merge phase folds adjacent under-filled groups
/// back into capacity-sized ones without touching a single logical row.
#[test]
fn budgeted_fragmentation_is_merge_compacted_by_full_pass() {
    let (mut idx, pool, t) = setup(CsiKind::Primary, 0);
    faults::arm(faults::sites::TUPLE_MOVE_DEFER, u32::MAX);
    let n = 2 * CAP as i32;
    for i in 0..n {
        idx.insert(row(i), &pool, &t);
    }
    faults::reset_charges();

    // Drain at CAP/8 rows per increment: every chunk becomes its own tiny
    // row group (the accepted cost of incremental progress).
    while !idx.maintenance_step(CAP / 8, &pool, &t).done {}
    assert_eq!(idx.num_rowgroups(), 16, "budgeted drain fragments");

    let step = idx.maintenance_step(usize::MAX, &pool, &t);
    assert_eq!(idx.num_rowgroups(), 2, "merge refills to capacity");
    assert_eq!(step.rowgroups_merged, 14);
    assert_eq!(step.rows_rewritten, n as usize);
    assert!((0..idx.num_rowgroups()).all(|g| idx.rowgroup(g).rows() <= CAP));
    assert_eq!(visible_ids(&idx, &pool), (0..n).collect::<Vec<_>>());

    // Idempotent at the fixed point: nothing left to merge.
    let step = idx.maintenance_step(usize::MAX, &pool, &t);
    assert_eq!(step.rowgroups_merged, 0);
    assert_eq!(idx.num_rowgroups(), 2);
}

/// Boundary contract: a group at capacity never combines with a live
/// neighbor, so full groups are not churned, and no merge may produce a
/// group above capacity.
#[test]
fn merge_leaves_full_groups_alone_and_never_exceeds_capacity() {
    // Two exact-capacity groups from the bulk load...
    let (mut idx, pool, t) = setup(CsiKind::Primary, 2 * CAP as i32);
    assert_eq!(idx.num_rowgroups(), 2);
    // ...then two under-filled ones from a budgeted drain.
    faults::arm(faults::sites::TUPLE_MOVE_DEFER, u32::MAX);
    for i in 0..40i32 {
        idx.insert(row(2 * CAP as i32 + i), &pool, &t);
    }
    faults::reset_charges();
    while !idx.maintenance_step(20, &pool, &t).done {}
    assert_eq!(idx.num_rowgroups(), 4);

    let step = idx.maintenance_step(usize::MAX, &pool, &t);
    assert_eq!(step.rowgroups_merged, 1, "only the two tails merge");
    assert_eq!(step.rows_rewritten, 40);
    assert_eq!(idx.num_rowgroups(), 3);
    assert_eq!(idx.rowgroup(0).rows(), CAP, "full group untouched");
    assert_eq!(idx.rowgroup(1).rows(), CAP, "full group untouched");
    assert_eq!(idx.rowgroup(2).rows(), 40);
    assert_eq!(
        visible_ids(&idx, &pool),
        (0..2 * CAP as i32 + 40).collect::<Vec<_>>()
    );
}

/// Merging is the one path that reclaims bitmap-deleted space: a fully
/// dead group plus a hollowed-out neighbor rewrite into a single group
/// holding only live rows.
#[test]
fn merge_reclaims_bitmap_deleted_space() {
    let n = 2 * CAP as i32;
    let (mut idx, pool, t) = setup(CsiKind::Primary, n);
    // Kill all of group 0 and half of group 1 (keys load in order).
    for i in 0..(n - CAP as i32 / 2) {
        assert!(idx.delete(&Key::single(Value::Int32(i)), &pool, &t));
    }
    assert_eq!(idx.num_rowgroups(), 2, "deletes are bitmap-only");

    let step = idx.maintenance_step(usize::MAX, &pool, &t);
    assert_eq!(step.rowgroups_merged, 1);
    assert_eq!(step.rows_rewritten, CAP / 2);
    assert_eq!(idx.num_rowgroups(), 1);
    assert_eq!(
        idx.rowgroup(0).rows(),
        CAP / 2,
        "rewrite dropped the deleted positions"
    );
    assert_eq!(idx.active_rows(), CAP / 2);
    assert_eq!(
        visible_ids(&idx, &pool),
        (n - CAP as i32 / 2..n).collect::<Vec<_>>()
    );
}

/// A merge run is all-or-nothing under the budget: a run whose live-row
/// cost exceeds the remaining budget is deferred whole (no partial
/// rewrite), and the next increment with enough budget picks it up at the
/// same position.
#[test]
fn merge_respects_budget_and_resumes() {
    let (mut idx, pool, t) = setup(CsiKind::Primary, 0);
    faults::arm(faults::sites::TUPLE_MOVE_DEFER, u32::MAX);
    for i in 0..(CAP as i32 / 2) {
        idx.insert(row(i), &pool, &t);
    }
    faults::reset_charges();
    while !idx.maintenance_step(CAP / 8, &pool, &t).done {}
    assert_eq!(idx.num_rowgroups(), 4, "four CAP/8-sized groups");

    // The maximal mergeable run is all four groups (CAP/2 live rows);
    // half that budget must defer the merge, not split it.
    let step = idx.maintenance_step(CAP / 4, &pool, &t);
    assert_eq!(step.rowgroups_merged, 0);
    assert_eq!(idx.num_rowgroups(), 4);

    let step = idx.maintenance_step(CAP / 2, &pool, &t);
    assert_eq!(step.rowgroups_merged, 3);
    assert_eq!(step.rows_rewritten, CAP / 2);
    assert_eq!(idx.num_rowgroups(), 1);
    assert_eq!(
        visible_ids(&idx, &pool),
        (0..CAP as i32 / 2).collect::<Vec<_>>()
    );
}
