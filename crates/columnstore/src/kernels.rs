//! Encoded-domain scan kernels.
//!
//! These evaluate interval predicates **directly on encoded segments**,
//! without decoding: per-run on [`EncodedInts::Rle`] (O(#runs) instead of
//! O(rows)), word-at-a-time code comparisons on [`EncodedInts::BitPacked`],
//! and a tight loop on [`EncodedInts::Raw`]. Results are AND-ed into a packed
//! [`SelBitmap`], so a scan touches only positions that survive every
//! predicate — the compressed-execution technique the paper credits for SQL
//! Server's batch-mode advantage (§3) and the MonetDB/X100 selection-vector
//! style.
//!
//! Bounds must first be translated into the segment's normalized `i64` /
//! dictionary-code domain (see [`crate::Segment::translate_interval`]); a
//! [`Translated::Range`] here is always a *closed* `[lo, hi]` in that domain.

use hpd_common::SelBitmap;

use crate::encoding::EncodedInts;

/// An interval translated into a segment's encoded `i64` domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Translated {
    /// Every row matches; nothing to evaluate.
    All,
    /// No row can match.
    Empty,
    /// Closed range `[lo, hi]` in the normalized domain.
    Range { lo: i64, hi: i64 },
    /// The bound types don't map onto this segment's domain (e.g. a float
    /// bound on an integer column); the caller must fall back to comparing
    /// materialized [`hpd_common::Value`]s.
    Unsupported,
}

/// AND `sel` with "value in `[lo, hi]`" evaluated on the encoded stream.
/// `sel.len()` must equal `ints.len()`.
pub fn filter_range(ints: &EncodedInts, lo: i64, hi: i64, sel: &mut SelBitmap) {
    debug_assert_eq!(ints.len(), sel.len());
    match ints {
        EncodedInts::Rle(runs) => {
            // Whole runs are kept or cleared: O(#runs), independent of rows.
            let mut pos = 0usize;
            for &(v, c) in runs {
                let end = pos + c as usize;
                if v < lo || v > hi {
                    sel.clear_range(pos, end);
                }
                pos = end;
            }
        }
        EncodedInts::BitPacked {
            base,
            bit_width,
            len,
            data,
        } => {
            let n = *len;
            // Translate into the unsigned code domain; i128 avoids overflow
            // when `base` is near the i64 extremes.
            let lo_c = (lo as i128) - (*base as i128);
            let hi_c = (hi as i128) - (*base as i128);
            let bw = *bit_width as usize;
            let max_code: u64 = if bw == 0 { 0 } else { (1u64 << bw) - 1 };
            if hi_c < 0 || lo_c > max_code as i128 {
                sel.clear_range(0, n);
                return;
            }
            let lo_c = lo_c.max(0) as u64;
            let hi_c = hi_c.min(max_code as i128) as u64;
            if lo_c == 0 && hi_c == max_code {
                return; // every representable code qualifies
            }
            let mask: u64 = max_code;
            for (wi, w) in sel.words_mut().iter_mut().enumerate() {
                if *w == 0 {
                    continue; // already fully pruned by an earlier predicate
                }
                let start = wi * 64;
                let end = (start + 64).min(n);
                let mut m = 0u64;
                for i in start..end {
                    let code = (read_le_word(data, i * bw / 8) >> (i * bw % 8)) & mask;
                    m |= u64::from(code >= lo_c && code <= hi_c) << (i - start);
                }
                *w &= m;
            }
        }
        EncodedInts::Raw(vals) => {
            for (wi, w) in sel.words_mut().iter_mut().enumerate() {
                if *w == 0 {
                    continue;
                }
                let start = wi * 64;
                let end = (start + 64).min(vals.len());
                let mut m = 0u64;
                for (i, &v) in vals[start..end].iter().enumerate() {
                    m |= u64::from(v >= lo && v <= hi) << i;
                }
                *w &= m;
            }
        }
    }
}

/// Decode only the values at `positions` (late materialization). Positions
/// are expected in ascending order (the RLE cursor restarts on regressions,
/// which is correct but slower).
pub fn gather(ints: &EncodedInts, positions: &[usize]) -> Vec<i64> {
    let mut out = Vec::with_capacity(positions.len());
    match ints {
        EncodedInts::Rle(runs) => {
            let mut run_idx = 0usize;
            let mut run_start = 0usize;
            let mut run_end = runs.first().map_or(0, |&(_, c)| c as usize);
            for &p in positions {
                if p < run_start {
                    run_idx = 0;
                    run_start = 0;
                    run_end = runs[0].1 as usize;
                }
                while p >= run_end {
                    run_idx += 1;
                    run_start = run_end;
                    run_end += runs[run_idx].1 as usize;
                }
                out.push(runs[run_idx].0);
            }
        }
        EncodedInts::BitPacked {
            base,
            bit_width,
            len,
            data,
        } => {
            let bw = *bit_width as usize;
            if bw == 0 {
                out.extend(std::iter::repeat_n(*base, positions.len()));
                return out;
            }
            let mask: u64 = (1u64 << bw) - 1;
            for &p in positions {
                debug_assert!(p < *len);
                let code = (read_le_word(data, p * bw / 8) >> (p * bw % 8)) & mask;
                out.push(base.wrapping_add(code as i64));
            }
        }
        EncodedInts::Raw(vals) => {
            out.extend(positions.iter().map(|&p| vals[p]));
        }
    }
    out
}

/// Decode the single value at `pos` (point lookups). O(#runs) on RLE, O(1)
/// on the other encodings — never a full-segment decode.
pub fn value_at(ints: &EncodedInts, pos: usize) -> i64 {
    match ints {
        EncodedInts::Raw(vals) => vals[pos],
        _ => gather(ints, &[pos])[0],
    }
}

/// Read up to 8 little-endian bytes starting at `byte`. The bit-packed
/// stream is over-allocated by 8 bytes so the fast path almost always
/// applies; the tail loop keeps this safe regardless.
#[inline]
fn read_le_word(data: &[u8], byte: usize) -> u64 {
    if let Some(chunk) = data.get(byte..byte + 8) {
        u64::from_le_bytes(chunk.try_into().expect("8 bytes"))
    } else {
        let mut w = 0u64;
        for (j, b) in data[byte.min(data.len())..].iter().enumerate() {
            w |= (*b as u64) << (8 * j);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::encode_i64s;

    fn naive(vals: &[i64], lo: i64, hi: i64) -> Vec<usize> {
        vals.iter()
            .enumerate()
            .filter(|&(_, &v)| v >= lo && v <= hi)
            .map(|(i, _)| i)
            .collect()
    }

    fn check(ints: &EncodedInts, lo: i64, hi: i64) {
        let vals = ints.decode();
        let mut sel = SelBitmap::all_set(vals.len());
        filter_range(ints, lo, hi, &mut sel);
        assert_eq!(sel.positions(), naive(&vals, lo, hi), "lo={lo} hi={hi}");
    }

    #[test]
    fn all_encodings_match_naive_filter() {
        let sorted: Vec<i64> = (0..300).map(|i| i / 30).collect(); // RLE
        let small: Vec<i64> = (0..300).map(|i| (i * 7) % 16).collect(); // BitPacked
        let wide: Vec<i64> = (0..100)
            .map(|i| i64::MIN / 2 + i * 1_000_000_007 * 1_000_000)
            .collect(); // Raw (range exceeds the 56-bit bit-pack cap)
        for vals in [&sorted, &small, &wide] {
            let e = encode_i64s(vals);
            for (lo, hi) in [
                (i64::MIN, i64::MAX),
                (3, 7),
                (5, 5),
                (100, 50),
                (i64::MIN, 0),
                (0, i64::MIN),
            ] {
                check(&e, lo, hi);
            }
        }
        assert_eq!(encode_i64s(&sorted).encoding(), crate::IntEncoding::Rle);
        assert_eq!(
            encode_i64s(&small).encoding(),
            crate::IntEncoding::BitPacked
        );
        assert_eq!(encode_i64s(&wide).encoding(), crate::IntEncoding::Raw);
    }

    #[test]
    fn filter_ands_into_existing_selection() {
        let vals: Vec<i64> = (0..100).collect();
        let e = encode_i64s(&vals);
        let mut sel = SelBitmap::all_set(100);
        filter_range(&e, 10, 60, &mut sel);
        filter_range(&e, 50, 90, &mut sel);
        assert_eq!(sel.positions(), (50..=60).collect::<Vec<_>>());
    }

    #[test]
    fn gather_matches_decode_at_positions() {
        for vals in [
            (0..300).map(|i| i / 30).collect::<Vec<i64>>(),
            (0..300).map(|i| (i * 7) % 16).collect(),
            (0..100)
                .map(|i| i64::MIN / 2 + i * 1_000_000_007 * 1_000_000)
                .collect(),
        ] {
            let e = encode_i64s(&vals);
            let positions: Vec<usize> = (0..vals.len()).step_by(7).collect();
            let got = gather(&e, &positions);
            let want: Vec<i64> = positions.iter().map(|&p| vals[p]).collect();
            assert_eq!(got, want);
            assert_eq!(value_at(&e, vals.len() - 1), vals[vals.len() - 1]);
        }
    }

    #[test]
    fn bitpacked_near_extremes() {
        let vals: Vec<i64> = (0..100).map(|i| i64::MIN + i).collect();
        let e = encode_i64s(&vals);
        check(&e, i64::MIN + 10, i64::MIN + 20);
        check(&e, i64::MIN, i64::MAX);
        check(&e, 0, i64::MAX); // entirely above the code domain
    }
}
