//! Encoded-domain scan and aggregate kernels.
//!
//! These evaluate interval predicates **directly on encoded segments**,
//! without decoding: per-run on [`EncodedInts::Rle`] (O(#runs) instead of
//! O(rows)), word-at-a-time code comparisons on [`EncodedInts::BitPacked`],
//! frame-at-a-time prefix reconstruction on [`EncodedInts::ForDelta`] (one
//! 64-value frame per selection word, zero words skipped entirely),
//! code-space recursion on [`EncodedInts::Dict`], and a tight loop on
//! [`EncodedInts::Raw`]. Results are AND-ed into a packed [`SelBitmap`], so
//! a scan touches only positions that survive every predicate — the
//! compressed-execution technique the paper credits for SQL Server's
//! batch-mode advantage (§3) and the MonetDB/X100 selection-vector style.
//!
//! Bounds must first be translated into the segment's normalized `i64` /
//! dictionary-code domain (see [`crate::Segment::translate_interval`]); a
//! [`Translated::Range`] here is always a *closed* `[lo, hi]` in that domain.
//!
//! The masked aggregate kernels ([`sum_masked`], [`min_max_masked`],
//! [`for_each_masked`]) fold SUM/MIN/MAX over the encoded stream under a
//! selection without ever materializing values: run-arithmetic over RLE
//! (`sum += value × selected_run_len`), frame-arithmetic over FOR/delta,
//! and code-histogram folding over dictionaries.

use hpd_common::SelBitmap;

use crate::encoding::{read_packed, EncodedInts, FOR_DELTA_FRAME};

/// An interval translated into a segment's encoded `i64` domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Translated {
    /// Every row matches; nothing to evaluate.
    All,
    /// No row can match.
    Empty,
    /// Closed range `[lo, hi]` in the normalized domain.
    Range { lo: i64, hi: i64 },
    /// The bound types don't map onto this segment's domain (e.g. a float
    /// bound on an integer column); the caller must fall back to comparing
    /// materialized [`hpd_common::Value`]s.
    Unsupported,
}

/// AND `sel` with "value in `[lo, hi]`" evaluated on the encoded stream.
/// `sel.len()` must equal `ints.len()`.
pub fn filter_range(ints: &EncodedInts, lo: i64, hi: i64, sel: &mut SelBitmap) {
    debug_assert_eq!(ints.len(), sel.len());
    match ints {
        EncodedInts::Rle(runs) => {
            // Whole runs are kept or cleared: O(#runs), independent of rows.
            let mut pos = 0usize;
            for &(v, c) in runs {
                let end = pos + c as usize;
                if v < lo || v > hi {
                    sel.clear_range(pos, end);
                }
                pos = end;
            }
        }
        EncodedInts::BitPacked {
            base,
            bit_width,
            len,
            data,
        } => {
            let n = *len;
            // Translate into the unsigned code domain; i128 avoids overflow
            // when `base` is near the i64 extremes.
            let lo_c = (lo as i128) - (*base as i128);
            let hi_c = (hi as i128) - (*base as i128);
            let bw = *bit_width as usize;
            let max_code: u64 = if bw == 0 { 0 } else { (1u64 << bw) - 1 };
            if hi_c < 0 || lo_c > max_code as i128 {
                sel.clear_range(0, n);
                return;
            }
            let lo_c = lo_c.max(0) as u64;
            let hi_c = hi_c.min(max_code as i128) as u64;
            if lo_c == 0 && hi_c == max_code {
                return; // every representable code qualifies
            }
            for (wi, w) in sel.words_mut().iter_mut().enumerate() {
                if *w == 0 {
                    continue; // already fully pruned by an earlier predicate
                }
                let start = wi * 64;
                let end = (start + 64).min(n);
                *w &= packed_range_mask(data, start, end - start, bw, lo_c, hi_c);
            }
        }
        EncodedInts::ForDelta {
            len,
            anchors,
            min_delta,
            bit_width,
            data,
        } => {
            // One frame per selection word (FOR_DELTA_FRAME == 64): words
            // already pruned to zero skip their whole frame. Every delta
            // lies in `[min_delta, min_delta + mask]`, so the anchor bounds
            // each frame's value range with two multiplications — frames
            // entirely outside the interval clear without decoding, frames
            // entirely inside keep their selection without decoding, and
            // only straddling frames rebuild values with a running prefix
            // sum and a branch-free match mask.
            let n = *len;
            let bw = *bit_width as usize;
            let mask: u64 = if bw == 0 { 0 } else { (1u64 << bw) - 1 };
            let md = *min_delta;
            let (lo_w, hi_w) = (lo as i128, hi as i128);
            let min_step = md as i128;
            let max_step = md as i128 + mask as i128;
            for (wi, w) in sel.words_mut().iter_mut().enumerate() {
                if *w == 0 {
                    continue;
                }
                let start = wi * FOR_DELTA_FRAME;
                let end = (start + FOR_DELTA_FRAME).min(n);
                let steps = (end - start - 1) as i128;
                let anchor = anchors[wi] as i128;
                let frame_min = anchor + if min_step < 0 { steps * min_step } else { 0 };
                let frame_max = anchor + if max_step > 0 { steps * max_step } else { 0 };
                if frame_max < lo_w || frame_min > hi_w {
                    *w = 0;
                    continue;
                }
                if frame_min >= lo_w && frame_max <= hi_w {
                    continue;
                }
                let mut v = anchors[wi];
                let mut m = u64::from(v >= lo && v <= hi);
                let code_base = wi * (FOR_DELTA_FRAME - 1);
                for i in start + 1..end {
                    let code = if bw == 0 {
                        0
                    } else {
                        read_packed(data, code_base + (i - start - 1), bw, mask)
                    };
                    v = v.wrapping_add(md).wrapping_add(code as i64);
                    m |= u64::from(v >= lo && v <= hi) << (i - start);
                }
                *w &= m;
            }
        }
        EncodedInts::Dict { values, codes } => {
            // Translate the value bounds into the (order-preserving) code
            // domain with two binary searches, then filter the code stream.
            let lo_c = values.partition_point(|&v| v < lo);
            let hi_c = values.partition_point(|&v| v <= hi);
            if lo_c >= hi_c {
                sel.clear_range(0, codes.len());
            } else if lo_c > 0 || hi_c < values.len() {
                filter_range(codes, lo_c as i64, hi_c as i64 - 1, sel);
            }
        }
        EncodedInts::Raw(vals) => {
            for (wi, w) in sel.words_mut().iter_mut().enumerate() {
                if *w == 0 {
                    continue;
                }
                let start = wi * 64;
                let end = (start + 64).min(vals.len());
                let mut m = 0u64;
                for (i, &v) in vals[start..end].iter().enumerate() {
                    m |= u64::from(v >= lo && v <= hi) << i;
                }
                *w &= m;
            }
        }
    }
}

/// Decode only the values at `positions` (late materialization). Positions
/// are expected in ascending order (the RLE cursor restarts on regressions,
/// which is correct but slower).
pub fn gather(ints: &EncodedInts, positions: &[usize]) -> Vec<i64> {
    let mut out = Vec::with_capacity(positions.len());
    match ints {
        EncodedInts::Rle(runs) => {
            let mut run_idx = 0usize;
            let mut run_start = 0usize;
            let mut run_end = runs.first().map_or(0, |&(_, c)| c as usize);
            for &p in positions {
                if p < run_start {
                    run_idx = 0;
                    run_start = 0;
                    run_end = runs[0].1 as usize;
                }
                while p >= run_end {
                    run_idx += 1;
                    run_start = run_end;
                    run_end += runs[run_idx].1 as usize;
                }
                out.push(runs[run_idx].0);
            }
        }
        EncodedInts::BitPacked {
            base,
            bit_width,
            len,
            data,
        } => {
            let bw = *bit_width as usize;
            if bw == 0 {
                out.extend(std::iter::repeat_n(*base, positions.len()));
                return out;
            }
            let mask: u64 = (1u64 << bw) - 1;
            for &p in positions {
                debug_assert!(p < *len);
                let code = (read_le_word(data, p * bw / 8) >> (p * bw % 8)) & mask;
                out.push(base.wrapping_add(code as i64));
            }
        }
        EncodedInts::ForDelta {
            len,
            anchors,
            min_delta,
            bit_width,
            data,
        } => {
            // Frame-local cursor: consecutive positions within a frame
            // continue the prefix walk instead of restarting at the anchor,
            // and a persistent code buffer amortizes one load over every
            // delta code it holds even when the walk advances one step per
            // position (dense selections).
            let bw = *bit_width as usize;
            let mask: u64 = if bw == 0 { 0 } else { (1u64 << bw) - 1 };
            let mut cur_frame = usize::MAX;
            let mut cur_pos = 0usize;
            let mut cur_val = 0i64;
            let mut wbuf = 0u64;
            let mut wbuf_codes = 0usize;
            for &p in positions {
                debug_assert!(p < *len);
                let f = p / FOR_DELTA_FRAME;
                if f != cur_frame || p < cur_pos {
                    cur_frame = f;
                    cur_pos = f * FOR_DELTA_FRAME;
                    cur_val = anchors[f];
                    wbuf_codes = 0;
                }
                if bw == 0 {
                    // Constant deltas: jump straight to the position.
                    cur_val = cur_val.wrapping_add(min_delta.wrapping_mul((p - cur_pos) as i64));
                    cur_pos = p;
                }
                while cur_pos < p {
                    if wbuf_codes == 0 {
                        let idx = f * (FOR_DELTA_FRAME - 1) + (cur_pos - f * FOR_DELTA_FRAME);
                        let bit = idx * bw;
                        let r = bit % 8;
                        wbuf = read_le_word(data, bit / 8) >> r;
                        wbuf_codes = (64 - r) / bw;
                    }
                    let steps = wbuf_codes.min(p - cur_pos);
                    for _ in 0..steps {
                        cur_val = cur_val
                            .wrapping_add(*min_delta)
                            .wrapping_add((wbuf & mask) as i64);
                        wbuf >>= bw;
                    }
                    wbuf_codes -= steps;
                    cur_pos += steps;
                }
                out.push(cur_val);
            }
        }
        EncodedInts::Dict { values, codes } => {
            out.extend(
                gather(codes, positions)
                    .into_iter()
                    .map(|c| values[c as usize]),
            );
        }
        EncodedInts::Raw(vals) => {
            out.extend(positions.iter().map(|&p| vals[p]));
        }
    }
    out
}

/// Exact sum of the selected values as an `i128` (wide enough for any
/// 64-bit stream: |sum| ≤ 2^63 × 2^32 rows). Never materializes values:
/// RLE multiplies each run's value by its selected count, FOR/delta walks
/// only frames whose selection word is non-zero, dictionaries fold a code
/// histogram, bit-packed sums codes and adds `base × count` once.
pub fn sum_masked(ints: &EncodedInts, sel: &SelBitmap) -> i128 {
    debug_assert_eq!(ints.len(), sel.len());
    match ints {
        EncodedInts::Rle(runs) => {
            let mut pos = 0usize;
            let mut sum = 0i128;
            for &(v, c) in runs {
                let end = pos + c as usize;
                let n = sel.count_range(pos, end);
                if n > 0 {
                    sum += v as i128 * n as i128;
                }
                pos = end;
            }
            sum
        }
        EncodedInts::BitPacked {
            base,
            bit_width,
            data,
            ..
        } => {
            let bw = *bit_width as usize;
            let mask: u64 = if bw == 0 { 0 } else { (1u64 << bw) - 1 };
            let mut count = 0u64;
            let mut code_sum = 0u128;
            for (wi, &word) in sel.words().iter().enumerate() {
                let mut w = word;
                if w == 0 {
                    continue;
                }
                count += w.count_ones() as u64;
                if bw == 0 {
                    continue;
                }
                while w != 0 {
                    let i = wi * 64 + w.trailing_zeros() as usize;
                    code_sum += read_packed(data, i, bw, mask) as u128;
                    w &= w - 1;
                }
            }
            *base as i128 * count as i128 + code_sum as i128
        }
        EncodedInts::ForDelta {
            len,
            anchors,
            min_delta,
            bit_width,
            data,
        } => {
            let n = *len;
            let bw = *bit_width as usize;
            let mask: u64 = if bw == 0 { 0 } else { (1u64 << bw) - 1 };
            let md = *min_delta;
            let mut sum = 0i128;
            for (wi, &word) in sel.words().iter().enumerate() {
                if word == 0 {
                    continue;
                }
                let start = wi * FOR_DELTA_FRAME;
                let end = (start + FOR_DELTA_FRAME).min(n);
                let mut v = anchors[wi];
                if word & 1 != 0 {
                    sum += v as i128;
                }
                let code_base = wi * (FOR_DELTA_FRAME - 1);
                for i in start + 1..end {
                    let code = if bw == 0 {
                        0
                    } else {
                        read_packed(data, code_base + (i - start - 1), bw, mask)
                    };
                    v = v.wrapping_add(md).wrapping_add(code as i64);
                    if word & (1u64 << (i - start)) != 0 {
                        sum += v as i128;
                    }
                }
            }
            sum
        }
        EncodedInts::Dict { values, codes } => {
            let hist = code_histogram(codes, sel, values.len());
            values
                .iter()
                .zip(&hist)
                .map(|(&v, &n)| v as i128 * n as i128)
                .sum()
        }
        EncodedInts::Raw(vals) => {
            let mut sum = 0i128;
            for (wi, &word) in sel.words().iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    sum += vals[wi * 64 + w.trailing_zeros() as usize] as i128;
                    w &= w - 1;
                }
            }
            sum
        }
    }
}

/// Per-code selected-position counts for a dictionary's code stream —
/// O(#runs) on RLE codes, one pass over set bits otherwise.
fn code_histogram(codes: &EncodedInts, sel: &SelBitmap, n_codes: usize) -> Vec<u32> {
    let mut hist = vec![0u32; n_codes];
    match codes {
        EncodedInts::Rle(runs) => {
            let mut pos = 0usize;
            for &(v, c) in runs {
                let end = pos + c as usize;
                hist[v as usize] += sel.count_range(pos, end) as u32;
                pos = end;
            }
        }
        EncodedInts::BitPacked {
            base,
            bit_width,
            len,
            data,
        } => {
            let bw = *bit_width as usize;
            let mask: u64 = if bw == 0 { 0 } else { (1u64 << bw) - 1 };
            for (wi, &word) in sel.words().iter().enumerate() {
                if word == 0 {
                    continue;
                }
                let start = wi * 64;
                let end = (start + 64).min(*len);
                if bw == 0 {
                    hist[*base as usize] += word.count_ones();
                    continue;
                }
                // One load covers every code it holds (see
                // `packed_range_mask`'s wide-code path).
                let mut i = start;
                while i < end {
                    let bit = i * bw;
                    let r = bit % 8;
                    let mut w = read_le_word(data, bit / 8) >> r;
                    let avail = ((64 - r) / bw).min(end - i);
                    for j in 0..avail {
                        if word & (1u64 << (i + j - start)) != 0 {
                            hist[base.wrapping_add((w & mask) as i64) as usize] += 1;
                        }
                        w >>= bw;
                    }
                    i += avail;
                }
            }
        }
        _ => {
            sel.for_each_set(|p| hist[value_at(codes, p) as usize] += 1);
        }
    }
    hist
}

/// `(min, max)` of the selected values in the encoded domain, or `None`
/// when nothing is selected. Valid for any monotone normalization (so MIN
/// and MAX push down for every column type, including dictionary strings).
pub fn min_max_masked(ints: &EncodedInts, sel: &SelBitmap) -> Option<(i64, i64)> {
    debug_assert_eq!(ints.len(), sel.len());
    match ints {
        EncodedInts::Rle(runs) => {
            let mut pos = 0usize;
            let mut acc: Option<(i64, i64)> = None;
            for &(v, c) in runs {
                let end = pos + c as usize;
                if sel.count_range(pos, end) > 0 {
                    acc = Some(match acc {
                        Some((lo, hi)) => (lo.min(v), hi.max(v)),
                        None => (v, v),
                    });
                }
                pos = end;
            }
            acc
        }
        EncodedInts::Dict { values, codes } => {
            // Codes are order-preserving, so the extreme codes are the
            // extreme values.
            min_max_masked(codes, sel).map(|(lo, hi)| (values[lo as usize], values[hi as usize]))
        }
        _ => {
            let mut acc: Option<(i64, i64)> = None;
            for_each_masked(ints, sel, |v| {
                acc = Some(match acc {
                    Some((lo, hi)) => (lo.min(v), hi.max(v)),
                    None => (v, v),
                });
            });
            acc
        }
    }
}

/// Visit the selected values in position order without materializing a
/// vector — the order-sensitive fold path (float sums, AVG).
pub fn for_each_masked(ints: &EncodedInts, sel: &SelBitmap, mut f: impl FnMut(i64)) {
    for_each_masked_dyn(ints, sel, &mut f);
}

// Dynamic-dispatch core: the Dict arm recurses into the code stream with a
// wrapper closure, which must not mint a fresh monomorphization per level.
fn for_each_masked_dyn(ints: &EncodedInts, sel: &SelBitmap, f: &mut dyn FnMut(i64)) {
    debug_assert_eq!(ints.len(), sel.len());
    match ints {
        EncodedInts::Rle(runs) => {
            let mut pos = 0usize;
            for &(v, c) in runs {
                let end = pos + c as usize;
                for _ in 0..sel.count_range(pos, end) {
                    f(v);
                }
                pos = end;
            }
        }
        EncodedInts::BitPacked {
            base,
            bit_width,
            data,
            ..
        } => {
            let bw = *bit_width as usize;
            let mask: u64 = if bw == 0 { 0 } else { (1u64 << bw) - 1 };
            sel.for_each_set(|i| {
                let code = if bw == 0 {
                    0
                } else {
                    read_packed(data, i, bw, mask)
                };
                f(base.wrapping_add(code as i64));
            });
        }
        EncodedInts::ForDelta {
            len,
            anchors,
            min_delta,
            bit_width,
            data,
        } => {
            let n = *len;
            let bw = *bit_width as usize;
            let mask: u64 = if bw == 0 { 0 } else { (1u64 << bw) - 1 };
            for (wi, &word) in sel.words().iter().enumerate() {
                if word == 0 {
                    continue;
                }
                let start = wi * FOR_DELTA_FRAME;
                let end = (start + FOR_DELTA_FRAME).min(n);
                let mut v = anchors[wi];
                if word & 1 != 0 {
                    f(v);
                }
                let code_base = wi * (FOR_DELTA_FRAME - 1);
                for i in start + 1..end {
                    let code = if bw == 0 {
                        0
                    } else {
                        read_packed(data, code_base + (i - start - 1), bw, mask)
                    };
                    v = v.wrapping_add(*min_delta).wrapping_add(code as i64);
                    if word & (1u64 << (i - start)) != 0 {
                        f(v);
                    }
                }
            }
        }
        EncodedInts::Dict { values, codes } => {
            for_each_masked_dyn(codes, sel, &mut |c| f(values[c as usize]));
        }
        EncodedInts::Raw(vals) => {
            sel.for_each_set(|i| f(vals[i]));
        }
    }
}

/// Decode the single value at `pos` (point lookups). O(#runs) on RLE, O(1)
/// on the other encodings — never a full-segment decode.
pub fn value_at(ints: &EncodedInts, pos: usize) -> i64 {
    match ints {
        EncodedInts::Raw(vals) => vals[pos],
        _ => gather(ints, &[pos])[0],
    }
}

/// Match mask for packed codes `[first, first + count)` (`count` ≤ 64,
/// `bw` ≥ 1): bit `j` is set iff code `first + j` ∈ `[lo_c, hi_c]`.
///
/// Codes up to 8 bits wide are tested **word-parallel**: one `u64` load
/// yields a run of consecutive codes at stride `bw`; splitting its lanes by
/// parity widens each to `2·bw` bits, which leaves a guard bit above every
/// code, so a single subtraction per bound compares every lane at once
/// (borrows are absorbed by the guards and never cross lanes). Only lanes
/// whose guard survives both bounds are visited to scatter result bits —
/// non-matching codes cost O(1) per word, not O(1) per code. Wider codes
/// (≤ 3 lanes per parity, where the split cannot pay for itself) fall back
/// to a batched loop that still amortizes one load over every code it
/// holds.
fn packed_range_mask(
    data: &[u8],
    first: usize,
    count: usize,
    bw: usize,
    lo_c: u64,
    hi_c: u64,
) -> u64 {
    debug_assert!(count <= 64 && (1..=56).contains(&bw));
    let mask: u64 = (1u64 << bw) - 1;
    let mut out = 0u64;
    if bw > 8 {
        let mut i = 0usize;
        while i < count {
            let bit = (first + i) * bw;
            let r = bit % 8;
            let mut w = read_le_word(data, bit / 8) >> r;
            let avail = ((64 - r) / bw).min(count - i);
            for j in 0..avail {
                let code = w & mask;
                out |= u64::from(code >= lo_c && code <= hi_c) << (i + j);
                w >>= bw;
            }
            i += avail;
        }
        return out;
    }
    let f = 2 * bw; // lane width after the parity split
    let lanes = 64 / f;
    let (mut code_rep, mut lo_rep, mut hi_rep, mut guards) = (0u64, 0u64, 0u64, 0u64);
    for l in 0..lanes {
        code_rep |= mask << (l * f);
        lo_rep |= lo_c << (l * f);
        hi_rep |= hi_c << (l * f);
        guards |= 1u64 << (l * f + f - 1);
    }
    let mut i = 0usize;
    while i < count {
        let bit = (first + i) * bw;
        let r = bit % 8;
        let w = read_le_word(data, bit / 8) >> r;
        // Cap to the codes the parity lanes can hold (bw=3 fits 21 codes in
        // a load but only 2 × 10 lanes exist).
        let avail = ((64 - r) / bw).min(count - i).min(2 * lanes);
        for parity in 0..2usize {
            let n = (avail + 1 - parity) / 2; // lanes of this parity
            if n == 0 {
                continue;
            }
            let keep = if n * f >= 64 {
                u64::MAX
            } else {
                (1u64 << (n * f)) - 1
            };
            let x = (w >> (parity * bw)) & code_rep & keep;
            let g = guards & keep;
            let ge = ((x | g) - (lo_rep & keep)) & g;
            let le = (((hi_rep & keep) | g) - x) & g;
            let mut hits = ge & le;
            while hits != 0 {
                let lane = hits.trailing_zeros() as usize / f;
                out |= 1u64 << (i + 2 * lane + parity);
                hits &= hits - 1;
            }
        }
        i += avail;
    }
    out
}

/// Read up to 8 little-endian bytes starting at `byte`. The bit-packed
/// stream is over-allocated by 8 bytes so the fast path almost always
/// applies; the tail loop keeps this safe regardless.
#[inline]
fn read_le_word(data: &[u8], byte: usize) -> u64 {
    if let Some(chunk) = data.get(byte..byte + 8) {
        u64::from_le_bytes(chunk.try_into().expect("8 bytes"))
    } else {
        let mut w = 0u64;
        for (j, b) in data[byte.min(data.len())..].iter().enumerate() {
            w |= (*b as u64) << (8 * j);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::encode_i64s;

    fn naive(vals: &[i64], lo: i64, hi: i64) -> Vec<usize> {
        vals.iter()
            .enumerate()
            .filter(|&(_, &v)| v >= lo && v <= hi)
            .map(|(i, _)| i)
            .collect()
    }

    fn check(ints: &EncodedInts, lo: i64, hi: i64) {
        let vals = ints.decode();
        let mut sel = SelBitmap::all_set(vals.len());
        filter_range(ints, lo, hi, &mut sel);
        assert_eq!(sel.positions(), naive(&vals, lo, hi), "lo={lo} hi={hi}");
    }

    /// One stream per encoding family, in `IntEncoding` order.
    fn shapes() -> Vec<(Vec<i64>, crate::IntEncoding)> {
        vec![
            ((0..300).map(|i| i / 100).collect(), crate::IntEncoding::Rle),
            (
                (0..300).map(|i| (i * 7) % 16).collect(),
                crate::IntEncoding::BitPacked,
            ),
            (
                // Monotone, wide range, small irregular steps.
                (0..300i64)
                    .map(|i| i * 5 + (i % 7) + i64::MAX / 3)
                    .collect(),
                crate::IntEncoding::ForDelta,
            ),
            (
                // 8 distinct >56-bit values, adversarial order.
                (0..300i64)
                    .map(|i| (i.wrapping_mul(2_654_435_761) % 8) << 58)
                    .collect(),
                crate::IntEncoding::Dict,
            ),
            (
                // Pseudorandom full-width values defeat every compressor.
                (0..100i64)
                    .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15u64 as i64))
                    .collect(),
                crate::IntEncoding::Raw,
            ),
        ]
    }

    #[test]
    fn all_encodings_match_naive_filter() {
        for (vals, want_enc) in shapes() {
            let e = encode_i64s(&vals);
            assert_eq!(e.encoding(), want_enc);
            let (vmin, vmax) = (*vals.iter().min().unwrap(), *vals.iter().max().unwrap());
            for (lo, hi) in [
                (i64::MIN, i64::MAX),
                (3, 7),
                (5, 5),
                (100, 50),
                (i64::MIN, 0),
                (0, i64::MIN),
                (vmin, vmin),
                (vmin + 1, vmax - 1),
                (vmax, i64::MAX),
            ] {
                check(&e, lo, hi);
            }
        }
    }

    #[test]
    fn filter_ands_into_existing_selection() {
        let vals: Vec<i64> = (0..100).collect();
        let e = encode_i64s(&vals);
        let mut sel = SelBitmap::all_set(100);
        filter_range(&e, 10, 60, &mut sel);
        filter_range(&e, 50, 90, &mut sel);
        assert_eq!(sel.positions(), (50..=60).collect::<Vec<_>>());
    }

    #[test]
    fn gather_matches_decode_at_positions() {
        for (vals, _) in shapes() {
            let e = encode_i64s(&vals);
            for step in [1, 7, 63] {
                let positions: Vec<usize> = (0..vals.len()).step_by(step).collect();
                let got = gather(&e, &positions);
                let want: Vec<i64> = positions.iter().map(|&p| vals[p]).collect();
                assert_eq!(got, want, "{:?} step {step}", e.encoding());
            }
            assert_eq!(value_at(&e, vals.len() - 1), vals[vals.len() - 1]);
            assert_eq!(value_at(&e, 0), vals[0]);
        }
    }

    #[test]
    fn masked_aggregates_match_naive_fold() {
        for (vals, _) in shapes() {
            let e = encode_i64s(&vals);
            // Three selection shapes: everything, sparse, none.
            let mut sparse = SelBitmap::none_set(vals.len());
            for i in (0..vals.len()).step_by(5) {
                sparse.set(i);
            }
            for sel in [
                SelBitmap::all_set(vals.len()),
                sparse,
                SelBitmap::none_set(vals.len()),
            ] {
                let picked: Vec<i64> = sel.positions().iter().map(|&p| vals[p]).collect();
                let want_sum: i128 = picked.iter().map(|&v| v as i128).sum();
                assert_eq!(sum_masked(&e, &sel), want_sum, "{:?}", e.encoding());
                let want_mm = picked
                    .iter()
                    .fold(None, |acc: Option<(i64, i64)>, &v| match acc {
                        Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
                        None => Some((v, v)),
                    });
                assert_eq!(min_max_masked(&e, &sel), want_mm, "{:?}", e.encoding());
                let mut seen = Vec::new();
                for_each_masked(&e, &sel, |v| seen.push(v));
                assert_eq!(seen, picked, "{:?}", e.encoding());
            }
        }
    }

    #[test]
    fn masked_sum_survives_extreme_values() {
        // Sums beyond i64 range must be exact in i128.
        let vals = vec![i64::MAX, i64::MAX, i64::MIN, i64::MAX];
        let e = encode_i64s(&vals);
        let sel = SelBitmap::all_set(4);
        let want: i128 = vals.iter().map(|&v| v as i128).sum();
        assert_eq!(sum_masked(&e, &sel), want);
    }

    #[test]
    fn bitpacked_near_extremes() {
        let vals: Vec<i64> = (0..100).map(|i| i64::MIN + i).collect();
        let e = encode_i64s(&vals);
        check(&e, i64::MIN + 10, i64::MIN + 20);
        check(&e, i64::MIN, i64::MAX);
        check(&e, 0, i64::MAX); // entirely above the code domain
    }
}
