//! The delta store: a B+ tree of not-yet-compressed rows.
//!
//! Inserts into a columnstore land here (paper §2: "Inserts are handled via
//! delta stores which are implemented as B+ trees"). A tuple mover drains
//! chunks into compressed row groups. Rows are keyed by the owning index's
//! row key (the table primary key), so point deletes are a single B+ tree
//! seek rather than a delta scan.

use std::ops::Bound;

use hpd_btree::{BTree, BTreeConfig};
use hpd_common::{faults, Key, Row};
use hpd_storage::{BufferPool, IoTracker, StorageAllocator};

/// B+ tree-backed staging area for uncompressed columnstore rows.
pub struct DeltaStore {
    tree: BTree,
}

impl DeltaStore {
    pub fn new(row_width: usize, alloc: StorageAllocator) -> DeltaStore {
        DeltaStore {
            tree: BTree::new(BTreeConfig::for_entry_width(row_width + 8), alloc),
        }
    }

    pub fn len(&self) -> usize {
        self.tree.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Logical size in bytes (for what-if sizing).
    pub fn size_bytes(&self) -> usize {
        self.tree.size_bytes()
    }

    /// Stage a row under its row key (B+ tree insert cost — cheap, the
    /// point of the delta store).
    pub fn insert(&mut self, key: Key, row: Row, pool: &BufferPool, tracker: &IoTracker) {
        hpd_obs::global().counter("columnstore.delta.insert").inc();
        self.tree.insert(key, row, pool, tracker);
    }

    /// Remove the row with this key (single seek).
    pub fn delete_by_key(
        &mut self,
        key: &Key,
        pool: &BufferPool,
        tracker: &IoTracker,
    ) -> Option<Row> {
        self.tree.delete_first_where(key, |_| true, pool, tracker)
    }

    /// All rows currently staged, in key order.
    pub fn scan(&self, pool: &BufferPool, tracker: &IoTracker) -> Vec<Row> {
        self.tree
            .scan_range_collect(Bound::Unbounded, Bound::Unbounded, pool, tracker)
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    }

    /// Remove and return up to `n` rows, smallest keys first (tuple-mover
    /// drain; draining in key order also compresses well).
    pub fn drain(&mut self, n: usize, pool: &BufferPool, tracker: &IoTracker) -> Vec<Row> {
        hpd_obs::global().counter("columnstore.delta.drain").inc();
        // Injected interruption: hand back a short chunk, as if the mover
        // were preempted mid-drain. Callers must cope with partial drains.
        let n = if faults::fire(faults::sites::DELTA_DRAIN_PARTIAL) {
            (n / 2).max(1)
        } else {
            n
        };
        let mut out = Vec::with_capacity(n.min(self.tree.len()));
        let keys: Vec<Key> = {
            let mut cur = self.tree.cursor_seek(Bound::Unbounded, pool, tracker);
            let mut entries = Vec::new();
            while entries.len() < n {
                let before = entries.len();
                let exhausted = self.tree.cursor_fill(
                    &mut cur,
                    Bound::Unbounded,
                    n - entries.len(),
                    &mut entries,
                    pool,
                    tracker,
                );
                if exhausted || entries.len() == before {
                    break;
                }
            }
            entries.into_iter().map(|(k, _)| k).collect()
        };
        for k in keys {
            if let Some(row) = self.tree.delete_first_where(&k, |_| true, pool, tracker) {
                out.push(row);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpd_common::Value;
    use hpd_storage::DeviceProfile;

    fn setup() -> (DeltaStore, BufferPool, IoTracker) {
        (
            DeltaStore::new(8, StorageAllocator::new()),
            BufferPool::unbounded(DeviceProfile::ram()),
            IoTracker::new(),
        )
    }

    fn kv(v: i32) -> (Key, Row) {
        (
            Key::single(Value::Int32(v)),
            Row::new(vec![Value::Int32(v)]),
        )
    }

    #[test]
    fn insert_scan_key_order() {
        let (mut d, pool, t) = setup();
        for v in [5, 3, 9] {
            let (k, r) = kv(v);
            d.insert(k, r, &pool, &t);
        }
        let rows: Vec<i32> = d
            .scan(&pool, &t)
            .into_iter()
            .map(|r| r[0].as_i32().unwrap())
            .collect();
        assert_eq!(rows, vec![3, 5, 9], "delta is keyed, so scans are ordered");
    }

    #[test]
    fn delete_by_key_is_exact() {
        let (mut d, pool, t) = setup();
        for v in [1, 2, 3] {
            let (k, r) = kv(v);
            d.insert(k, r, &pool, &t);
        }
        let removed = d.delete_by_key(&Key::single(Value::Int32(2)), &pool, &t);
        assert_eq!(removed.unwrap()[0], Value::Int32(2));
        assert_eq!(d.len(), 2);
        assert!(d
            .delete_by_key(&Key::single(Value::Int32(42)), &pool, &t)
            .is_none());
    }

    #[test]
    fn drain_removes_smallest_first() {
        let (mut d, pool, t) = setup();
        for v in [9, 0, 5, 7, 2] {
            let (k, r) = kv(v);
            d.insert(k, r, &pool, &t);
        }
        let drained: Vec<i32> = d
            .drain(3, &pool, &t)
            .into_iter()
            .map(|r| r[0].as_i32().unwrap())
            .collect();
        assert_eq!(drained, vec![0, 2, 5]);
        assert_eq!(d.len(), 2);
        let rest = d.drain(100, &pool, &t);
        assert_eq!(rest.len(), 2);
        assert!(d.is_empty());
    }

    #[test]
    fn delete_cost_is_logarithmic_not_linear() {
        let (mut d, pool, t) = setup();
        for v in 0..10_000 {
            let (k, r) = kv(v);
            d.insert(k, r, &pool, &t);
        }
        let probe = IoTracker::new();
        d.delete_by_key(&Key::single(Value::Int32(5_000)), &pool, &probe);
        assert!(
            probe.snapshot().logical_reads < 20,
            "point delete must not scan the delta: {} reads",
            probe.snapshot().logical_reads
        );
    }
}
