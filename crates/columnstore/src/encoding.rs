//! Integer stream encodings: run-length, bit-packing, raw.
//!
//! Every column is normalized to an `i64` stream before encoding (strings go
//! through a dictionary first, see [`crate::segment`]). The encoder picks
//! the smallest of three physical representations, mirroring the "most
//! notable" techniques the paper lists for SQL Server: run-length encoding
//! and dictionary encoding, with bit-packing of the value domain.

use bytes::{Bytes, BytesMut};

/// Which physical encoding a segment chose (exposed for tests/ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntEncoding {
    Rle,
    BitPacked,
    Raw,
}

/// An encoded `i64` stream.
#[derive(Debug, Clone)]
pub enum EncodedInts {
    /// Maximal runs of identical values: `(value, run_length)`.
    Rle(Vec<(i64, u32)>),
    /// Offset-from-min values packed at a fixed bit width.
    BitPacked {
        base: i64,
        bit_width: u8,
        len: usize,
        data: Bytes,
    },
    /// Uncompressed little-endian values.
    Raw(Vec<i64>),
}

impl EncodedInts {
    pub fn encoding(&self) -> IntEncoding {
        match self {
            EncodedInts::Rle(_) => IntEncoding::Rle,
            EncodedInts::BitPacked { .. } => IntEncoding::BitPacked,
            EncodedInts::Raw(_) => IntEncoding::Raw,
        }
    }

    /// Number of logical values.
    pub fn len(&self) -> usize {
        match self {
            EncodedInts::Rle(runs) => runs.iter().map(|(_, n)| *n as usize).sum(),
            EncodedInts::BitPacked { len, .. } => *len,
            EncodedInts::Raw(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encoded size in bytes (the number the size-estimation problem of
    /// paper §4.4 is trying to predict).
    pub fn encoded_bytes(&self) -> usize {
        match self {
            // value (8) + run length (4) per run.
            EncodedInts::Rle(runs) => runs.len() * 12,
            EncodedInts::BitPacked { data, .. } => data.len() + 9,
            EncodedInts::Raw(v) => v.len() * 8,
        }
    }

    /// Number of maximal runs (RLE) — used to validate the advisor's
    /// run-count models.
    pub fn run_count(&self) -> usize {
        match self {
            EncodedInts::Rle(runs) => runs.len(),
            _ => count_runs_of(&self.decode()),
        }
    }

    /// Decode back to the plain stream.
    pub fn decode(&self) -> Vec<i64> {
        match self {
            EncodedInts::Rle(runs) => {
                let n = self.len();
                let mut out = Vec::with_capacity(n);
                for &(v, c) in runs {
                    out.extend(std::iter::repeat_n(v, c as usize));
                }
                out
            }
            EncodedInts::BitPacked {
                base,
                bit_width,
                len,
                data,
            } => {
                let mut out = Vec::with_capacity(*len);
                let bw = *bit_width as usize;
                if bw == 0 {
                    out.extend(std::iter::repeat_n(*base, *len));
                    return out;
                }
                let mask: u64 = if bw == 64 { u64::MAX } else { (1u64 << bw) - 1 };
                for i in 0..*len {
                    let bit = i * bw;
                    let byte = bit / 8;
                    let shift = bit % 8;
                    // Up to 9 bytes may contribute when bw > 56; we cap bw
                    // at 56 in `encode_i64s` so 8 bytes always suffice.
                    let mut word = 0u64;
                    for (j, b) in data[byte..(byte + 8).min(data.len())].iter().enumerate() {
                        word |= (*b as u64) << (8 * j);
                    }
                    let code = (word >> shift) & mask;
                    out.push(base.wrapping_add(code as i64));
                }
                out
            }
            EncodedInts::Raw(v) => v.clone(),
        }
    }

    /// Decode with a callback per value, avoiding a full materialization for
    /// aggregate-only consumers.
    pub fn for_each(&self, mut f: impl FnMut(i64)) {
        match self {
            EncodedInts::Rle(runs) => {
                for &(v, c) in runs {
                    for _ in 0..c {
                        f(v);
                    }
                }
            }
            _ => {
                for v in self.decode() {
                    f(v);
                }
            }
        }
    }
}

fn count_runs_of(values: &[i64]) -> usize {
    if values.is_empty() {
        return 0;
    }
    1 + values.windows(2).filter(|w| w[0] != w[1]).count()
}

fn rle_encode(values: &[i64]) -> Vec<(i64, u32)> {
    let mut runs: Vec<(i64, u32)> = Vec::new();
    for &v in values {
        match runs.last_mut() {
            Some((rv, c)) if *rv == v && *c < u32::MAX => *c += 1,
            _ => runs.push((v, 1)),
        }
    }
    runs
}

fn bitpack(values: &[i64]) -> Option<EncodedInts> {
    let (&min, &max) = (values.iter().min()?, values.iter().max()?);
    let range = (max as i128) - (min as i128);
    let bit_width = (128 - (range as u128).leading_zeros()) as usize;
    if bit_width > 56 {
        return None; // decode fast-path reads at most 8 bytes
    }
    let total_bits = values.len() * bit_width;
    let mut data = BytesMut::zeroed(total_bits.div_ceil(8) + 8);
    for (i, &v) in values.iter().enumerate() {
        let code = (v as i128 - min as i128) as u64;
        let bit = i * bit_width;
        let byte = bit / 8;
        let shift = bit % 8;
        // OR the code into the little-endian bit stream.
        let existing = u64::from_le_bytes(data[byte..byte + 8].try_into().expect("8 bytes"));
        let merged = existing | (code << shift);
        data[byte..byte + 8].copy_from_slice(&merged.to_le_bytes());
    }
    Some(EncodedInts::BitPacked {
        base: min,
        bit_width: bit_width as u8,
        len: values.len(),
        data: data.freeze(),
    })
}

/// Encode a stream, choosing the smallest representation.
pub fn encode_i64s(values: &[i64]) -> EncodedInts {
    if values.is_empty() {
        return EncodedInts::Raw(Vec::new());
    }
    let runs = rle_encode(values);
    let rle_bytes = runs.len() * 12;
    let packed = bitpack(values);
    let packed_bytes = packed
        .as_ref()
        .map(EncodedInts::encoded_bytes)
        .unwrap_or(usize::MAX);
    let raw_bytes = values.len() * 8;

    if rle_bytes <= packed_bytes && rle_bytes <= raw_bytes {
        EncodedInts::Rle(runs)
    } else if packed_bytes <= raw_bytes {
        packed.expect("packed_bytes finite implies Some")
    } else {
        EncodedInts::Raw(values.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_wins_on_constant_data() {
        let vals = vec![7i64; 10_000];
        let e = encode_i64s(&vals);
        assert_eq!(e.encoding(), IntEncoding::Rle);
        assert_eq!(e.run_count(), 1);
        assert!(e.encoded_bytes() < 100);
        assert_eq!(e.decode(), vals);
    }

    #[test]
    fn bitpack_wins_on_small_domain_random_data() {
        // Alternating 0..16: RLE has ~n runs, bit-pack needs 4 bits/value.
        let vals: Vec<i64> = (0..10_000).map(|i| (i * 7) % 16).collect();
        let e = encode_i64s(&vals);
        assert_eq!(e.encoding(), IntEncoding::BitPacked);
        assert!(e.encoded_bytes() < vals.len()); // < 1 byte per value
        assert_eq!(e.decode(), vals);
    }

    #[test]
    fn raw_wins_on_wide_random_data() {
        // Values spanning more than 56 bits cannot bit-pack; unique values
        // make RLE bigger than raw.
        let vals: Vec<i64> = (0..100)
            .map(|i| i64::MIN / 2 + i * 1_000_000_007 * 1_000_000)
            .collect();
        let e = encode_i64s(&vals);
        assert_eq!(e.encoding(), IntEncoding::Raw);
        assert_eq!(e.decode(), vals);
    }

    #[test]
    fn negative_values_round_trip_through_bitpack() {
        let vals: Vec<i64> = (-500..500).map(|i| i * 3).collect();
        let e = encode_i64s(&vals);
        assert_eq!(e.decode(), vals);
    }

    #[test]
    fn zero_bit_width_constant_via_bitpack_path() {
        // Force the bitpack branch by making RLE unattractive is impossible
        // for constants, so test bitpack(0 bit) directly.
        let vals = vec![42i64; 17];
        let packed = bitpack(&vals).unwrap();
        if let EncodedInts::BitPacked { bit_width, .. } = &packed {
            assert_eq!(*bit_width, 0);
        } else {
            panic!("expected bitpacked");
        }
        assert_eq!(packed.decode(), vals);
    }

    #[test]
    fn for_each_visits_all_values_in_order() {
        let vals = vec![1i64, 1, 2, 2, 2, 3];
        let e = EncodedInts::Rle(rle_encode(&vals));
        let mut seen = Vec::new();
        e.for_each(|v| seen.push(v));
        assert_eq!(seen, vals);
    }

    #[test]
    fn run_count_matches_definition() {
        let vals = vec![5i64, 5, 1, 1, 1, 5];
        assert_eq!(count_runs_of(&vals), 3);
        let e = encode_i64s(&vals);
        assert_eq!(e.run_count(), 3);
    }

    #[test]
    fn empty_stream() {
        let e = encode_i64s(&[]);
        assert!(e.is_empty());
        assert_eq!(e.decode(), Vec::<i64>::new());
        assert_eq!(e.run_count(), 0);
    }

    #[test]
    fn len_is_preserved_by_all_encodings() {
        for vals in [
            vec![1i64; 100],
            (0..100).collect::<Vec<i64>>(),
            (0..100).map(|i| i * i64::from(i32::MAX)).collect(),
        ] {
            let e = encode_i64s(&vals);
            assert_eq!(e.len(), vals.len());
        }
    }
}
