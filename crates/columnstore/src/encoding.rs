//! Integer stream encodings: run-length, bit-packing, frame-of-reference +
//! delta, numeric dictionary, raw.
//!
//! Every column is normalized to an `i64` stream before encoding (strings go
//! through a dictionary first, see [`crate::segment`]). The encoder picks
//! the smallest of five physical representations, mirroring the "most
//! notable" techniques the paper lists for SQL Server — run-length and
//! dictionary encoding with bit-packing of the value domain — plus the
//! frame-of-reference + delta scheme of *Compression Aware Physical
//! Database Design* for sorted/clustered wide-range columns.
//!
//! Sizes are *measured*, not modelled: `encode_i64s` computes the exact
//! byte count each candidate would produce (without building the losers)
//! and keeps the smallest. `HPD_FORCE_ENCODING=rle|bitpacked|fordelta|
//! dict|raw` overrides the choice when the requested encoding is feasible
//! (used by the differential harness to exercise every kernel).

use std::sync::OnceLock;

use bytes::{Bytes, BytesMut};

/// Which physical encoding a segment chose (exposed for tests/ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntEncoding {
    Rle,
    BitPacked,
    /// Frame-of-reference + delta over 64-value frames.
    ForDelta,
    /// Order-preserving dictionary over numeric values.
    Dict,
    Raw,
}

impl IntEncoding {
    pub fn name(self) -> &'static str {
        match self {
            IntEncoding::Rle => "rle",
            IntEncoding::BitPacked => "bitpacked",
            IntEncoding::ForDelta => "fordelta",
            IntEncoding::Dict => "dict",
            IntEncoding::Raw => "raw",
        }
    }
}

/// Values per FOR/delta frame. Matches the 64-bit words of
/// `hpd_common::SelBitmap`, so the interval kernel processes one selection
/// word per frame.
pub const FOR_DELTA_FRAME: usize = 64;

/// Heap bytes per RLE run: `size_of::<(i64, u32)>()` is 16 (the pair is
/// padded to 8-byte alignment), *not* the 12 bytes of useful payload.
pub const RLE_RUN_BYTES: usize = 16;

/// An encoded `i64` stream.
#[derive(Debug, Clone)]
pub enum EncodedInts {
    /// Maximal runs of identical values: `(value, run_length)`.
    Rle(Vec<(i64, u32)>),
    /// Offset-from-min values packed at a fixed bit width.
    BitPacked {
        base: i64,
        bit_width: u8,
        len: usize,
        data: Bytes,
    },
    /// Frame-of-reference + delta: the stream is cut into
    /// [`FOR_DELTA_FRAME`]-value frames; each frame stores its first value
    /// in `anchors`, and every later value as a packed code
    /// `delta - min_delta` where `delta` is the difference from the
    /// previous value. Wins on sorted/clustered data whose *steps* are
    /// small even when the *range* is too wide to bit-pack.
    ForDelta {
        len: usize,
        /// First value of each frame (`anchors[f]` = value at `f * 64`).
        anchors: Vec<i64>,
        /// Frame of reference for the deltas (global minimum delta).
        min_delta: i64,
        /// Bits per packed delta code (≤ 56).
        bit_width: u8,
        /// Packed codes, `FOR_DELTA_FRAME - 1` slots per frame.
        data: Bytes,
    },
    /// Order-preserving numeric dictionary: sorted distinct values plus a
    /// per-row code stream (itself encoded). Wins on low-cardinality
    /// columns whose values are too wide to bit-pack (e.g. dictionary
    /// float bit patterns, sparse wide integers).
    Dict {
        /// Sorted distinct values; codes are indexes into this.
        values: Vec<i64>,
        /// Per-row codes, encoded with one of the base encodings.
        codes: Box<EncodedInts>,
    },
    /// Uncompressed little-endian values.
    Raw(Vec<i64>),
}

impl EncodedInts {
    pub fn encoding(&self) -> IntEncoding {
        match self {
            EncodedInts::Rle(_) => IntEncoding::Rle,
            EncodedInts::BitPacked { .. } => IntEncoding::BitPacked,
            EncodedInts::ForDelta { .. } => IntEncoding::ForDelta,
            EncodedInts::Dict { .. } => IntEncoding::Dict,
            EncodedInts::Raw(_) => IntEncoding::Raw,
        }
    }

    /// Number of logical values.
    pub fn len(&self) -> usize {
        match self {
            EncodedInts::Rle(runs) => runs.iter().map(|(_, n)| *n as usize).sum(),
            EncodedInts::BitPacked { len, .. } => *len,
            EncodedInts::ForDelta { len, .. } => *len,
            EncodedInts::Dict { codes, .. } => codes.len(),
            EncodedInts::Raw(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encoded size in bytes (the number the size-estimation problem of
    /// paper §4.4 is trying to predict). Tracks real heap usage: RLE runs
    /// cost [`RLE_RUN_BYTES`] each (the pair is padded to 16 bytes), packed
    /// buffers count their actual allocation (including the 8-byte
    /// read-overrun pad), and fixed headers approximate the inline enum
    /// fields.
    pub fn encoded_bytes(&self) -> usize {
        match self {
            EncodedInts::Rle(runs) => runs.len() * RLE_RUN_BYTES,
            EncodedInts::BitPacked { data, .. } => data.len() + 9,
            EncodedInts::ForDelta { anchors, data, .. } => anchors.len() * 8 + data.len() + 17,
            EncodedInts::Dict { values, codes } => values.len() * 8 + codes.encoded_bytes() + 16,
            EncodedInts::Raw(v) => v.len() * 8,
        }
    }

    /// Number of maximal runs (RLE) — used to validate the advisor's
    /// run-count models.
    pub fn run_count(&self) -> usize {
        match self {
            EncodedInts::Rle(runs) => runs.len(),
            _ => count_runs_of(&self.decode()),
        }
    }

    /// Decode back to the plain stream.
    pub fn decode(&self) -> Vec<i64> {
        match self {
            EncodedInts::Rle(runs) => {
                let n = self.len();
                let mut out = Vec::with_capacity(n);
                for &(v, c) in runs {
                    out.extend(std::iter::repeat_n(v, c as usize));
                }
                out
            }
            EncodedInts::BitPacked {
                base,
                bit_width,
                len,
                data,
            } => {
                let mut out = Vec::with_capacity(*len);
                let bw = *bit_width as usize;
                if bw == 0 {
                    out.extend(std::iter::repeat_n(*base, *len));
                    return out;
                }
                let mask: u64 = if bw == 64 { u64::MAX } else { (1u64 << bw) - 1 };
                for i in 0..*len {
                    let code = read_packed(data, i, bw, mask);
                    out.push(base.wrapping_add(code as i64));
                }
                out
            }
            EncodedInts::ForDelta {
                len,
                anchors,
                min_delta,
                bit_width,
                data,
            } => {
                let mut out = Vec::with_capacity(*len);
                let bw = *bit_width as usize;
                let mask: u64 = if bw == 0 { 0 } else { (1u64 << bw) - 1 };
                for (f, &anchor) in anchors.iter().enumerate() {
                    let start = f * FOR_DELTA_FRAME;
                    let end = (start + FOR_DELTA_FRAME).min(*len);
                    let mut v = anchor;
                    out.push(v);
                    for p in start + 1..end {
                        let code = if bw == 0 {
                            0
                        } else {
                            read_packed(data, f * (FOR_DELTA_FRAME - 1) + (p - start - 1), bw, mask)
                        };
                        v = v.wrapping_add(*min_delta).wrapping_add(code as i64);
                        out.push(v);
                    }
                }
                out
            }
            EncodedInts::Dict { values, codes } => codes
                .decode()
                .into_iter()
                .map(|c| values[c as usize])
                .collect(),
            EncodedInts::Raw(v) => v.clone(),
        }
    }

    /// Decode with a callback per value, avoiding a full materialization for
    /// aggregate-only consumers.
    pub fn for_each(&self, mut f: impl FnMut(i64)) {
        match self {
            EncodedInts::Rle(runs) => {
                for &(v, c) in runs {
                    for _ in 0..c {
                        f(v);
                    }
                }
            }
            _ => {
                for v in self.decode() {
                    f(v);
                }
            }
        }
    }
}

/// Read packed code `idx` of width `bw` bits (≤ 56) from a buffer with at
/// least 8 readable bytes past the last code's first byte.
pub(crate) fn read_packed(data: &[u8], idx: usize, bw: usize, mask: u64) -> u64 {
    let bit = idx * bw;
    let byte = bit / 8;
    let shift = bit % 8;
    let mut word = 0u64;
    for (j, b) in data[byte..(byte + 8).min(data.len())].iter().enumerate() {
        word |= (*b as u64) << (8 * j);
    }
    (word >> shift) & mask
}

fn count_runs_of(values: &[i64]) -> usize {
    if values.is_empty() {
        return 0;
    }
    1 + values.windows(2).filter(|w| w[0] != w[1]).count()
}

fn rle_encode(values: &[i64]) -> Vec<(i64, u32)> {
    let mut runs: Vec<(i64, u32)> = Vec::new();
    for &v in values {
        match runs.last_mut() {
            Some((rv, c)) if *rv == v && *c < u32::MAX => *c += 1,
            _ => runs.push((v, 1)),
        }
    }
    runs.shrink_to_fit();
    runs
}

/// Bit width needed for codes spanning `range` (0 → 0 bits).
fn bits_for(range: u128) -> usize {
    (128 - range.leading_zeros()) as usize
}

/// Byte size of a packed buffer of `slots` codes at `bw` bits, including
/// the 8-byte read-overrun pad.
fn packed_buf_bytes(slots: usize, bw: usize) -> usize {
    (slots * bw).div_ceil(8) + 8
}

fn bitpack_plan(values: &[i64]) -> Option<(i64, usize)> {
    let (&min, &max) = (values.iter().min()?, values.iter().max()?);
    let bit_width = bits_for(((max as i128) - (min as i128)) as u128);
    if bit_width > 56 {
        return None; // decode fast-path reads at most 8 bytes
    }
    Some((min, bit_width))
}

fn bitpack(values: &[i64]) -> Option<EncodedInts> {
    let (min, bit_width) = bitpack_plan(values)?;
    let mut data = BytesMut::zeroed(packed_buf_bytes(values.len(), bit_width));
    for (i, &v) in values.iter().enumerate() {
        let code = (v as i128 - min as i128) as u64;
        let bit = i * bit_width;
        let byte = bit / 8;
        let shift = bit % 8;
        // OR the code into the little-endian bit stream.
        let existing = u64::from_le_bytes(data[byte..byte + 8].try_into().expect("8 bytes"));
        let merged = existing | (code << shift);
        data[byte..byte + 8].copy_from_slice(&merged.to_le_bytes());
    }
    Some(EncodedInts::BitPacked {
        base: min,
        bit_width: bit_width as u8,
        len: values.len(),
        data: data.freeze(),
    })
}

/// FOR/delta plan: global `(min_delta, bit_width)` over within-frame
/// deltas, or `None` when the delta domain is too wide to pack.
fn for_delta_plan(values: &[i64]) -> Option<(i64, usize)> {
    if values.is_empty() {
        return None;
    }
    let mut min_d = i128::MAX;
    let mut max_d = i128::MIN;
    for chunk in values.chunks(FOR_DELTA_FRAME) {
        for w in chunk.windows(2) {
            let d = w[1] as i128 - w[0] as i128;
            min_d = min_d.min(d);
            max_d = max_d.max(d);
        }
    }
    if min_d > max_d {
        // No within-frame deltas (a single value).
        (min_d, max_d) = (0, 0);
    }
    let bit_width = bits_for((max_d - min_d) as u128);
    if bit_width > 56 {
        return None;
    }
    Some((i64::try_from(min_d).ok()?, bit_width))
}

fn for_delta_size(values: &[i64], bw: usize) -> usize {
    let n_frames = values.len().div_ceil(FOR_DELTA_FRAME);
    n_frames * 8 + packed_buf_bytes(n_frames * (FOR_DELTA_FRAME - 1), bw) + 17
}

fn for_delta(values: &[i64]) -> Option<EncodedInts> {
    let (min_delta, bit_width) = for_delta_plan(values)?;
    let n_frames = values.len().div_ceil(FOR_DELTA_FRAME);
    let mut anchors = Vec::with_capacity(n_frames);
    let mut data = BytesMut::zeroed(packed_buf_bytes(
        n_frames * (FOR_DELTA_FRAME - 1),
        bit_width,
    ));
    for (f, chunk) in values.chunks(FOR_DELTA_FRAME).enumerate() {
        anchors.push(chunk[0]);
        if bit_width == 0 {
            continue;
        }
        for (j, w) in chunk.windows(2).enumerate() {
            let code = (w[1] as i128 - w[0] as i128 - min_delta as i128) as u64;
            let bit = (f * (FOR_DELTA_FRAME - 1) + j) * bit_width;
            let byte = bit / 8;
            let shift = bit % 8;
            let existing = u64::from_le_bytes(data[byte..byte + 8].try_into().expect("8 bytes"));
            let merged = existing | (code << shift);
            data[byte..byte + 8].copy_from_slice(&merged.to_le_bytes());
        }
    }
    Some(EncodedInts::ForDelta {
        len: values.len(),
        anchors,
        min_delta,
        bit_width: bit_width as u8,
        data: data.freeze(),
    })
}

/// Sorted distinct values, or `None` once more than `cap` are seen.
fn distinct_sorted(values: &[i64], cap: usize) -> Option<Vec<i64>> {
    let mut set = std::collections::BTreeSet::new();
    for &v in values {
        set.insert(v);
        if set.len() > cap {
            return None;
        }
    }
    Some(set.into_iter().collect())
}

/// Exact encoded size a dictionary over `distinct` values would produce,
/// given the stream's run count (codes RLE-compress exactly like values:
/// the mapping is bijective, so run boundaries coincide).
fn dict_size(len: usize, n_runs: usize, distinct: usize) -> usize {
    let code_bw = bits_for((distinct - 1) as u128);
    let codes_bytes = (n_runs * RLE_RUN_BYTES)
        .min(packed_buf_bytes(len, code_bw) + 9)
        .min(len * 8);
    distinct * 8 + codes_bytes + 16
}

fn dict_numeric(values: &[i64], cap: usize) -> Option<EncodedInts> {
    let dict = distinct_sorted(values, cap)?;
    let codes: Vec<i64> = values
        .iter()
        .map(|v| dict.partition_point(|d| d < v) as i64)
        .collect();
    Some(EncodedInts::Dict {
        values: dict,
        codes: Box::new(encode_base(&codes)),
    })
}

/// Pick the smallest of the three base encodings (no FOR/delta or dict
/// recursion — used for dictionary code streams).
fn encode_base(values: &[i64]) -> EncodedInts {
    if values.is_empty() {
        return EncodedInts::Raw(Vec::new());
    }
    let runs = rle_encode(values);
    let rle_bytes = runs.len() * RLE_RUN_BYTES;
    let packed_bytes = bitpack_plan(values)
        .map(|(_, bw)| packed_buf_bytes(values.len(), bw) + 9)
        .unwrap_or(usize::MAX);
    let raw_bytes = values.len() * 8;
    if rle_bytes <= packed_bytes && rle_bytes <= raw_bytes {
        EncodedInts::Rle(runs)
    } else if packed_bytes <= raw_bytes {
        bitpack(values).expect("packed_bytes finite implies Some")
    } else {
        EncodedInts::Raw(values.to_vec())
    }
}

/// `HPD_FORCE_ENCODING` override, parsed once.
fn forced_encoding() -> Option<IntEncoding> {
    static FORCED: OnceLock<Option<IntEncoding>> = OnceLock::new();
    *FORCED.get_or_init(
        || match std::env::var("HPD_FORCE_ENCODING").ok()?.as_str() {
            "rle" => Some(IntEncoding::Rle),
            "bitpacked" => Some(IntEncoding::BitPacked),
            "fordelta" => Some(IntEncoding::ForDelta),
            "dict" => Some(IntEncoding::Dict),
            "raw" => Some(IntEncoding::Raw),
            _ => None,
        },
    )
}

/// Encode as a specific encoding if feasible (used by the force knob).
fn encode_as(values: &[i64], enc: IntEncoding) -> Option<EncodedInts> {
    match enc {
        IntEncoding::Rle => Some(EncodedInts::Rle(rle_encode(values))),
        IntEncoding::BitPacked => bitpack(values),
        IntEncoding::ForDelta => for_delta(values),
        IntEncoding::Dict => dict_numeric(values, values.len()),
        IntEncoding::Raw => Some(EncodedInts::Raw(values.to_vec())),
    }
}

/// Encode a stream, choosing the representation with the smallest measured
/// size. Ties break toward the simpler/faster encoding in the order RLE,
/// bit-packed, FOR/delta, dict, raw.
pub fn encode_i64s(values: &[i64]) -> EncodedInts {
    if values.is_empty() {
        return EncodedInts::Raw(Vec::new());
    }
    if let Some(enc) = forced_encoding() {
        if let Some(e) = encode_as(values, enc) {
            return e;
        }
    }
    let runs = rle_encode(values);
    let rle_bytes = runs.len() * RLE_RUN_BYTES;
    let packed_bytes = bitpack_plan(values)
        .map(|(_, bw)| packed_buf_bytes(values.len(), bw) + 9)
        .unwrap_or(usize::MAX);
    let fd_bytes = for_delta_plan(values)
        .map(|(_, bw)| for_delta_size(values, bw))
        .unwrap_or(usize::MAX);
    // Dictionaries only pay off at low cardinality; cap the distinct scan
    // so high-cardinality streams bail out early.
    let dict_cap = (values.len() / 4).max(8);
    let dict_distinct = distinct_sorted(values, dict_cap).map(|d| d.len());
    let dict_bytes = dict_distinct
        .map(|d| dict_size(values.len(), runs.len(), d))
        .unwrap_or(usize::MAX);
    let raw_bytes = values.len() * 8;

    let best = rle_bytes
        .min(packed_bytes)
        .min(fd_bytes)
        .min(dict_bytes)
        .min(raw_bytes);
    if rle_bytes == best {
        EncodedInts::Rle(runs)
    } else if packed_bytes == best {
        bitpack(values).expect("packed_bytes finite implies Some")
    } else if fd_bytes == best {
        for_delta(values).expect("fd_bytes finite implies Some")
    } else if dict_bytes == best {
        dict_numeric(values, dict_cap).expect("dict_bytes finite implies Some")
    } else {
        EncodedInts::Raw(values.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_wins_on_constant_data() {
        let vals = vec![7i64; 10_000];
        let e = encode_i64s(&vals);
        assert_eq!(e.encoding(), IntEncoding::Rle);
        assert_eq!(e.run_count(), 1);
        assert!(e.encoded_bytes() < 100);
        assert_eq!(e.decode(), vals);
    }

    #[test]
    fn bitpack_wins_on_small_domain_random_data() {
        // Alternating 0..16: RLE has ~n runs, bit-pack needs 4 bits/value.
        let vals: Vec<i64> = (0..10_000).map(|i| (i * 7) % 16).collect();
        let e = encode_i64s(&vals);
        assert_eq!(e.encoding(), IntEncoding::BitPacked);
        assert!(e.encoded_bytes() < vals.len()); // < 1 byte per value
        assert_eq!(e.decode(), vals);
    }

    #[test]
    fn raw_wins_on_wide_random_data() {
        // Values spanning more than 56 bits cannot bit-pack; unique values
        // make RLE bigger than raw; huge irregular steps defeat FOR/delta;
        // 100 distinct in 100 values defeats the dictionary cap.
        let vals: Vec<i64> = (0..100i64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15u64 as i64))
            .collect();
        let e = encode_i64s(&vals);
        assert_eq!(e.encoding(), IntEncoding::Raw);
        assert_eq!(e.decode(), vals);
    }

    #[test]
    fn fordelta_wins_on_sorted_wide_range_small_steps() {
        // Monotone over a >56-bit range (no bit-pack), unique (no RLE),
        // high cardinality (no dict), but steps fit a few bits.
        let mut v = i64::MIN / 2;
        let vals: Vec<i64> = (0..10_000i64)
            .map(|i| {
                v += 3 + (i % 5);
                v.wrapping_add(i64::MAX / 3)
            })
            .collect();
        let e = encode_i64s(&vals);
        assert_eq!(e.encoding(), IntEncoding::ForDelta);
        assert!(e.encoded_bytes() < vals.len() * 2, "{}", e.encoded_bytes());
        assert_eq!(e.decode(), vals);
    }

    #[test]
    fn dict_wins_on_low_cardinality_wide_values() {
        // 16 distinct values spread over >56 bits, adversarial order (no
        // RLE, no bit-pack, irregular deltas).
        let wide: Vec<i64> = (0..16)
            .map(|i| (i as i64).wrapping_mul(1_152_921_504_606_846_977))
            .collect();
        let vals: Vec<i64> = (0..10_000)
            .map(|i| wide[((i * 2_654_435_761u64) % 16) as usize])
            .collect();
        let e = encode_i64s(&vals);
        assert_eq!(e.encoding(), IntEncoding::Dict);
        assert!(e.encoded_bytes() < vals.len() * 2);
        assert_eq!(e.decode(), vals);
    }

    #[test]
    fn dict_codes_are_order_preserving() {
        let vals = vec![30i64 << 40, 10 << 40, 20 << 40, 10 << 40, 30 << 40];
        let e = encode_as(&vals, IntEncoding::Dict).unwrap();
        if let EncodedInts::Dict { values, codes } = &e {
            assert_eq!(values.as_slice(), &[10i64 << 40, 20 << 40, 30 << 40]);
            assert_eq!(codes.decode(), vec![2, 0, 1, 0, 2]);
        } else {
            panic!("expected dict");
        }
        assert_eq!(e.decode(), vals);
    }

    #[test]
    fn fordelta_round_trips_unsorted_and_negative() {
        // FOR/delta is valid (if not optimal) on any stream whose deltas
        // fit; verify correctness on oscillating negatives.
        let vals: Vec<i64> = (0..1_000).map(|i| -(i % 97) * 13 + (i % 7)).collect();
        let e = encode_as(&vals, IntEncoding::ForDelta).unwrap();
        assert_eq!(e.encoding(), IntEncoding::ForDelta);
        assert_eq!(e.decode(), vals);
        assert_eq!(e.len(), vals.len());
    }

    #[test]
    fn fordelta_infeasible_on_extreme_deltas() {
        // A delta of (MAX - MIN) needs 65 bits.
        let vals = vec![i64::MIN, i64::MAX, i64::MIN];
        assert!(for_delta(&vals).is_none());
        // encode_i64s still works via another encoding.
        assert_eq!(encode_i64s(&vals).decode(), vals);
    }

    #[test]
    fn negative_values_round_trip_through_bitpack() {
        let vals: Vec<i64> = (-500..500).map(|i| i * 3).collect();
        let e = encode_i64s(&vals);
        assert_eq!(e.decode(), vals);
    }

    #[test]
    fn zero_bit_width_constant_via_bitpack_path() {
        // Force the bitpack branch by making RLE unattractive is impossible
        // for constants, so test bitpack(0 bit) directly.
        let vals = vec![42i64; 17];
        let packed = bitpack(&vals).unwrap();
        if let EncodedInts::BitPacked { bit_width, .. } = &packed {
            assert_eq!(*bit_width, 0);
        } else {
            panic!("expected bitpacked");
        }
        assert_eq!(packed.decode(), vals);
    }

    #[test]
    fn for_each_visits_all_values_in_order() {
        let vals = vec![1i64, 1, 2, 2, 2, 3];
        let e = EncodedInts::Rle(rle_encode(&vals));
        let mut seen = Vec::new();
        e.for_each(|v| seen.push(v));
        assert_eq!(seen, vals);
    }

    #[test]
    fn run_count_matches_definition() {
        let vals = vec![5i64, 5, 1, 1, 1, 5];
        assert_eq!(count_runs_of(&vals), 3);
        let e = encode_i64s(&vals);
        assert_eq!(e.run_count(), 3);
    }

    #[test]
    fn empty_stream() {
        let e = encode_i64s(&[]);
        assert!(e.is_empty());
        assert_eq!(e.decode(), Vec::<i64>::new());
        assert_eq!(e.run_count(), 0);
    }

    #[test]
    fn len_is_preserved_by_all_encodings() {
        for vals in [
            vec![1i64; 100],
            (0..100).collect::<Vec<i64>>(),
            (0..100).map(|i| i * i64::from(i32::MAX)).collect(),
            (0..100).map(|i| (i % 3) << 58).collect(),
        ] {
            for enc in [
                IntEncoding::Rle,
                IntEncoding::BitPacked,
                IntEncoding::ForDelta,
                IntEncoding::Dict,
                IntEncoding::Raw,
            ] {
                if let Some(e) = encode_as(&vals, enc) {
                    assert_eq!(e.len(), vals.len(), "{enc:?}");
                    assert_eq!(e.decode(), vals, "{enc:?}");
                }
            }
        }
    }

    /// Real heap bytes behind an encoding, from capacities and buffer
    /// lengths — the audit oracle for `encoded_bytes`.
    fn heap_bytes(e: &EncodedInts) -> usize {
        match e {
            EncodedInts::Rle(runs) => runs.capacity() * std::mem::size_of::<(i64, u32)>(),
            EncodedInts::BitPacked { data, .. } => data.len(),
            EncodedInts::ForDelta { anchors, data, .. } => anchors.capacity() * 8 + data.len(),
            EncodedInts::Dict { values, codes } => values.capacity() * 8 + heap_bytes(codes),
            EncodedInts::Raw(v) => v.capacity() * 8,
        }
    }

    #[test]
    fn encoded_bytes_tracks_real_heap_usage() {
        let shapes: Vec<Vec<i64>> = vec![
            vec![7; 4096],
            (0..4096).map(|i| (i * 7) % 16).collect(),
            (0..4096)
                .map(|i| i * 3 + (i % 5) + (i64::MAX / 3))
                .collect(),
            (0..4096)
                .map(|i| ((i * 2_654_435_761i64) % 16) << 58)
                .collect(),
            (0..257)
                .map(|i| (i64::MIN / 2).wrapping_add(i * 1_000_000_007 * 1_000_003))
                .collect(),
        ];
        for vals in &shapes {
            let e = encode_i64s(vals);
            let (enc, heap) = (e.encoded_bytes(), heap_bytes(&e));
            // encoded_bytes must cover the heap and not exceed it by more
            // than the small fixed headers (the pre-PR RLE estimate of
            // 12 B/run *undercounted* by 25%).
            assert!(
                enc + 64 >= heap,
                "{:?}: encoded {enc} < heap {heap}",
                e.encoding()
            );
            assert!(
                enc <= heap + 64,
                "{:?}: encoded {enc} overshoots heap {heap}",
                e.encoding()
            );
        }
    }

    #[test]
    fn measured_sizes_match_built_sizes() {
        // The analytic candidate sizes used for selection must equal the
        // built encodings' `encoded_bytes` exactly.
        let shapes: Vec<Vec<i64>> = vec![
            (0..4096).map(|i| i / 64).collect(),
            (0..4096).map(|i| (i * 31) % 100).collect(),
            (0..4096).map(|i| i * 5 + (i % 3)).collect(),
        ];
        for vals in &shapes {
            let runs = rle_encode(vals);
            if let Some((_, bw)) = bitpack_plan(vals) {
                assert_eq!(
                    packed_buf_bytes(vals.len(), bw) + 9,
                    bitpack(vals).unwrap().encoded_bytes()
                );
            }
            if let Some((_, bw)) = for_delta_plan(vals) {
                assert_eq!(
                    for_delta_size(vals, bw),
                    for_delta(vals).unwrap().encoded_bytes()
                );
            }
            if let Some(d) = distinct_sorted(vals, vals.len()) {
                assert_eq!(
                    dict_size(vals.len(), runs.len(), d.len()),
                    dict_numeric(vals, vals.len()).unwrap().encoded_bytes()
                );
            }
            assert_eq!(
                runs.len() * RLE_RUN_BYTES,
                EncodedInts::Rle(runs.clone()).encoded_bytes()
            );
        }
    }
}
