//! Column segments: one column of one row group, compressed, with min/max
//! small materialized aggregates.

use std::sync::Arc;

use hpd_common::interval::Bound;
use hpd_common::{ColumnVector, DataType, Interval, SelBitmap, Value};
use hpd_storage::{BlobId, BufferPool, IoTracker, StorageAllocator};

use crate::encoding::{encode_i64s, EncodedInts, IntEncoding};
use crate::kernels::{self, Translated};

/// A compressed column segment.
///
/// Non-string columns are normalized to an `i64` stream and encoded
/// directly. String columns are dictionary-encoded: sorted distinct strings
/// plus an encoded code stream (dictionary order makes codes order-preserving
/// so min/max elimination still works on the original values).
#[derive(Debug, Clone)]
pub struct Segment {
    dtype: DataType,
    ints: EncodedInts,
    /// Dictionary for `Utf8` columns, sorted ascending.
    dict: Option<Arc<[Arc<str>]>>,
    min: Value,
    max: Value,
    rows: usize,
    blob: BlobId,
}

impl Segment {
    /// Compress one column. `values` must be non-empty.
    pub fn build(column: &ColumnVector, alloc: &StorageAllocator) -> Segment {
        assert!(!column.is_empty(), "segments are never empty");
        let rows = column.len();
        let dtype = column.data_type();
        let blob = alloc.alloc_blob();
        match column {
            ColumnVector::Str(vals) => {
                let mut dict: Vec<Arc<str>> = vals.to_vec();
                dict.sort_unstable();
                dict.dedup();
                let codes: Vec<i64> = vals
                    .iter()
                    .map(|s| dict.binary_search(s).expect("value in dict") as i64)
                    .collect();
                let min = Value::Str(Arc::clone(&dict[0]));
                let max = Value::Str(Arc::clone(&dict[dict.len() - 1]));
                Segment {
                    dtype,
                    ints: encode_i64s(&codes),
                    dict: Some(dict.into()),
                    min,
                    max,
                    rows,
                    blob,
                }
            }
            ColumnVector::Float64(vals) => {
                // Order-preserving normalization keeps min/max correct.
                let ints: Vec<i64> = vals.iter().map(|&f| f.to_bits_i64()).collect();
                let (min_i, max_i) = (
                    *ints.iter().min().expect("non-empty"),
                    *ints.iter().max().expect("non-empty"),
                );
                Segment {
                    dtype,
                    ints: encode_i64s(&ints),
                    dict: None,
                    min: raw_to_value(dtype, min_i),
                    max: raw_to_value(dtype, max_i),
                    rows,
                    blob,
                }
            }
            _ => {
                let ints: Vec<i64> = (0..rows)
                    .map(|i| column.value(i).as_i64().expect("numeric column"))
                    .collect();
                let (min_i, max_i) = (
                    *ints.iter().min().expect("non-empty"),
                    *ints.iter().max().expect("non-empty"),
                );
                Segment {
                    dtype,
                    ints: encode_i64s(&ints),
                    dict: None,
                    min: raw_to_value(dtype, min_i),
                    max: raw_to_value(dtype, max_i),
                    rows,
                    blob,
                }
            }
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn data_type(&self) -> DataType {
        self.dtype
    }

    pub fn min(&self) -> &Value {
        &self.min
    }

    pub fn max(&self) -> &Value {
        &self.max
    }

    pub fn blob(&self) -> BlobId {
        self.blob
    }

    pub fn encoding(&self) -> IntEncoding {
        self.ints.encoding()
    }

    /// Number of maximal runs in the encoded stream (validation hook for the
    /// advisor's size-estimation models).
    pub fn run_count(&self) -> usize {
        self.ints.run_count()
    }

    /// Compressed size in bytes, including the dictionary.
    pub fn encoded_bytes(&self) -> usize {
        let dict_bytes: usize = self
            .dict
            .as_ref()
            .map(|d| d.iter().map(|s| s.len() + 4).sum())
            .unwrap_or(0);
        self.ints.encoded_bytes() + dict_bytes
    }

    /// Charge the segment's I/O (one blob access) without decoding. Scans
    /// call this once per segment they touch.
    pub fn charge_io(&self, pool: &BufferPool, tracker: &IoTracker) {
        pool.access_blob(self.blob, self.encoded_bytes() as u64, tracker);
    }

    /// Decode the segment into a column vector (does *not* charge I/O; call
    /// [`Segment::charge_io`] first).
    pub fn decode(&self) -> ColumnVector {
        self.raws_to_column(self.ints.decode())
    }

    /// Decode only the values at `positions` (ascending) — late
    /// materialization after predicate evaluation selected them.
    pub fn gather(&self, positions: &[usize]) -> ColumnVector {
        self.raws_to_column(kernels::gather(&self.ints, positions))
    }

    /// Decode the single value at `pos` without materializing the segment.
    pub fn value_at(&self, pos: usize) -> Value {
        let raw = kernels::value_at(&self.ints, pos);
        match self.dtype {
            DataType::Utf8 => {
                let dict = self.dict.as_ref().expect("utf8 segment has dictionary");
                Value::Str(Arc::clone(&dict[raw as usize]))
            }
            _ => raw_to_value(self.dtype, raw),
        }
    }

    /// Map normalized `i64`s back to the segment's logical type.
    fn raws_to_column(&self, ints: Vec<i64>) -> ColumnVector {
        match self.dtype {
            DataType::Int32 => ColumnVector::Int32(ints.into_iter().map(|v| v as i32).collect()),
            DataType::Date => ColumnVector::Date(ints.into_iter().map(|v| v as i32).collect()),
            DataType::Int64 => ColumnVector::Int64(ints),
            DataType::Decimal => ColumnVector::Decimal(ints),
            DataType::Float64 => {
                ColumnVector::Float64(ints.into_iter().map(f64::from_bits_i64).collect())
            }
            DataType::Utf8 => {
                let dict = self.dict.as_ref().expect("utf8 segment has dictionary");
                ColumnVector::Str(
                    ints.into_iter()
                        .map(|c| Arc::clone(&dict[c as usize]))
                        .collect(),
                )
            }
        }
    }

    /// Translate `interval` into this segment's encoded `i64` /
    /// dictionary-code domain, so kernels can evaluate it without decoding.
    ///
    /// Translation preserves [`Value`]'s comparison semantics exactly: bound
    /// types whose comparison against the column type is not a plain numeric
    /// promotion (e.g. a float bound on an integer column, which `Value`
    /// compares through f64 promotion) come back [`Translated::Unsupported`]
    /// and the caller falls back to comparing materialized values.
    pub fn translate_interval(&self, interval: &Interval) -> Translated {
        if self.dtype == DataType::Utf8 {
            return self.translate_str_interval(interval);
        }
        let lo = match &interval.lo {
            Bound::Unbounded => i64::MIN,
            Bound::Inclusive(v) => match normalize_bound(self.dtype, v) {
                Some(x) => x,
                None => return Translated::Unsupported,
            },
            Bound::Exclusive(v) => match normalize_bound(self.dtype, v) {
                // `> MAX` selects nothing; otherwise the exclusive bound is
                // the next representable point in the normalized domain
                // (for floats the bit-domain successor is the next float in
                // `total_cmp` order, so +1 stays exact).
                Some(i64::MAX) => return Translated::Empty,
                Some(x) => x + 1,
                None => return Translated::Unsupported,
            },
        };
        let hi = match &interval.hi {
            Bound::Unbounded => i64::MAX,
            Bound::Inclusive(v) => match normalize_bound(self.dtype, v) {
                Some(x) => x,
                None => return Translated::Unsupported,
            },
            Bound::Exclusive(v) => match normalize_bound(self.dtype, v) {
                Some(i64::MIN) => return Translated::Empty,
                Some(x) => x - 1,
                None => return Translated::Unsupported,
            },
        };
        if lo > hi {
            Translated::Empty
        } else if lo == i64::MIN && hi == i64::MAX {
            Translated::All
        } else {
            Translated::Range { lo, hi }
        }
    }

    /// String intervals translate to dictionary-code ranges: the dictionary
    /// is sorted, so codes are order-preserving and a binary search finds
    /// the qualifying code span.
    fn translate_str_interval(&self, interval: &Interval) -> Translated {
        let dict = self.dict.as_ref().expect("utf8 segment has dictionary");
        let lo = match &interval.lo {
            Bound::Unbounded => 0i64,
            Bound::Inclusive(Value::Str(s)) => {
                dict.partition_point(|d| d.as_ref() < s.as_ref()) as i64
            }
            Bound::Exclusive(Value::Str(s)) => {
                dict.partition_point(|d| d.as_ref() <= s.as_ref()) as i64
            }
            _ => return Translated::Unsupported,
        };
        let hi = match &interval.hi {
            Bound::Unbounded => dict.len() as i64 - 1,
            Bound::Inclusive(Value::Str(s)) => {
                dict.partition_point(|d| d.as_ref() <= s.as_ref()) as i64 - 1
            }
            Bound::Exclusive(Value::Str(s)) => {
                dict.partition_point(|d| d.as_ref() < s.as_ref()) as i64 - 1
            }
            _ => return Translated::Unsupported,
        };
        if lo > hi {
            Translated::Empty
        } else if lo == 0 && hi == dict.len() as i64 - 1 {
            Translated::All
        } else {
            Translated::Range { lo, hi }
        }
    }

    /// AND "this column satisfies `interval`" into `sel`, evaluated on the
    /// encoded stream. Returns `false` when the interval's bounds don't
    /// translate into this segment's domain — the caller must then apply
    /// the interval to materialized values instead.
    pub fn eval_interval(&self, interval: &Interval, sel: &mut SelBitmap) -> bool {
        match self.translate_interval(interval) {
            Translated::Unsupported => false,
            Translated::All => true,
            Translated::Empty => {
                sel.clear_range(0, self.rows);
                true
            }
            Translated::Range { lo, hi } => {
                kernels::filter_range(&self.ints, lo, hi, sel);
                true
            }
        }
    }

    /// True if this segment can be skipped for a predicate interval on this
    /// column (segment elimination via min/max).
    pub fn eliminated_by(&self, interval: &Interval) -> bool {
        !interval.overlaps_range(&self.min, &self.max)
    }
}

/// Normalize a comparison bound into the column's encoded `i64` domain.
/// Returns `None` when `Value`'s comparison of this bound type against the
/// column type is not a plain order-preserving numeric mapping.
fn normalize_bound(dtype: DataType, v: &Value) -> Option<i64> {
    match (dtype, v) {
        (DataType::Int32 | DataType::Int64, Value::Int32(_) | Value::Int64(_)) => v.as_i64(),
        (DataType::Date, Value::Date(d)) => Some(i64::from(*d)),
        (DataType::Decimal, Value::Decimal(x)) => Some(*x),
        (DataType::Float64, Value::Float64(f)) => Some(f.to_bits_i64()),
        // `Value` compares int-vs-float through f64 promotion; translate the
        // bound through the identical promotion so semantics match.
        (DataType::Float64, Value::Int32(_) | Value::Int64(_)) => v.as_f64().map(f64::to_bits_i64),
        _ => None,
    }
}

/// Convert the normalized `i64` representation back to a typed value.
fn raw_to_value(dtype: DataType, raw: i64) -> Value {
    match dtype {
        DataType::Int32 => Value::Int32(raw as i32),
        DataType::Date => Value::Date(raw as i32),
        DataType::Int64 => Value::Int64(raw),
        DataType::Decimal => Value::Decimal(raw),
        DataType::Float64 => Value::Float64(f64::from_bits_i64(raw)),
        DataType::Utf8 => unreachable!("strings use the dictionary path"),
    }
}

/// Order-preserving i64 <-> f64 mapping so floats share the integer encoding
/// machinery. The transform flips the sign-magnitude representation into a
/// monotone two's-complement integer.
trait FloatBits {
    fn to_bits_i64(self) -> i64;
    fn from_bits_i64(v: i64) -> f64;
}

impl FloatBits for f64 {
    fn to_bits_i64(self) -> i64 {
        let b = self.to_bits();
        if b >> 63 == 1 {
            // Negative float: flip all bits, then move into i64's negative
            // half. The mapping is monotone w.r.t. `total_cmp`.
            (!b ^ (1u64 << 63)) as i64
        } else {
            b as i64
        }
    }

    fn from_bits_i64(v: i64) -> f64 {
        if v >= 0 {
            f64::from_bits(v as u64)
        } else {
            f64::from_bits(!((v as u64) ^ (1u64 << 63)))
        }
    }
}

/// Public hook used by [`Segment::build`]'s float path.
impl Segment {
    /// Normalize a single value to the segment's `i64` domain (tests).
    pub fn normalize_value(v: &Value) -> i64 {
        match v {
            Value::Float64(f) => f.to_bits_i64(),
            other => other.as_i64().expect("numeric"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> StorageAllocator {
        StorageAllocator::new()
    }

    #[test]
    fn int_segment_round_trip_with_minmax() {
        let col = ColumnVector::Int32(vec![5, 1, 9, 3]);
        let s = Segment::build(&col, &alloc());
        assert_eq!(s.decode(), col);
        assert_eq!(s.min(), &Value::Int32(1));
        assert_eq!(s.max(), &Value::Int32(9));
        assert_eq!(s.rows(), 4);
    }

    #[test]
    fn string_segment_dictionary_round_trip() {
        let col = ColumnVector::Str(vec![
            Arc::from("pear"),
            Arc::from("apple"),
            Arc::from("pear"),
            Arc::from("fig"),
        ]);
        let s = Segment::build(&col, &alloc());
        assert_eq!(s.decode(), col);
        assert_eq!(s.min(), &Value::str("apple"));
        assert_eq!(s.max(), &Value::str("pear"));
        assert!(s.encoded_bytes() > 0);
    }

    #[test]
    fn decimal_and_date_round_trip() {
        let col = ColumnVector::Decimal(vec![10_000, -25_000, 0]);
        let s = Segment::build(&col, &alloc());
        assert_eq!(s.decode(), col);
        assert_eq!(s.min(), &Value::Decimal(-25_000));
        let col = ColumnVector::Date(vec![10, 20, 15]);
        let s = Segment::build(&col, &alloc());
        assert_eq!(s.decode(), col);
        assert_eq!(s.max(), &Value::Date(20));
    }

    #[test]
    fn float_round_trip_including_negatives() {
        let col = ColumnVector::Float64(vec![1.5, -2.25, 0.0, 1e300, -1e-300]);
        let s = Segment::build(&col, &alloc());
        assert_eq!(s.decode(), col);
        assert_eq!(s.min(), &Value::Float64(-2.25));
        assert_eq!(s.max(), &Value::Float64(1e300));
    }

    #[test]
    fn float_normalization_is_monotone() {
        let floats = [
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            -1e-300,
            -0.0,
            0.0,
            1e-300,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        let mono: Vec<i64> = floats.iter().map(|&f| f.to_bits_i64()).collect();
        assert!(mono.windows(2).all(|w| w[0] <= w[1]), "{mono:?}");
        for &f in &floats {
            assert_eq!(f64::from_bits_i64(f.to_bits_i64()).to_bits(), f.to_bits());
        }
    }

    #[test]
    fn elimination_uses_minmax() {
        let col = ColumnVector::Int32(vec![100, 150, 120]);
        let s = Segment::build(&col, &alloc());
        assert!(s.eliminated_by(&Interval::less_than(Value::Int32(100), false)));
        assert!(!s.eliminated_by(&Interval::less_than(Value::Int32(101), false)));
        assert!(s.eliminated_by(&Interval::point(Value::Int32(99))));
        assert!(!s.eliminated_by(&Interval::all()));
    }

    #[test]
    fn charge_io_hits_pool_cache_second_time() {
        let col = ColumnVector::Int32((0..10_000).collect());
        let s = Segment::build(&col, &alloc());
        let pool = BufferPool::unbounded(hpd_storage::DeviceProfile::hdd_raid());
        let t = IoTracker::new();
        s.charge_io(&pool, &t);
        s.charge_io(&pool, &t);
        let snap = t.snapshot();
        assert_eq!(snap.logical_reads, 2);
        assert_eq!(snap.physical_reads, 1);
        assert_eq!(snap.bytes_read, s.encoded_bytes() as u64);
    }

    #[test]
    fn low_cardinality_column_compresses_well() {
        // 25 distinct values over 100k rows, sorted: tiny RLE.
        let mut vals: Vec<i32> = (0..100_000).map(|i| i % 25).collect();
        vals.sort_unstable();
        let s = Segment::build(&ColumnVector::Int32(vals), &alloc());
        assert_eq!(s.encoding(), IntEncoding::Rle);
        assert_eq!(s.run_count(), 25);
        assert!(s.encoded_bytes() < 1000);
    }
}
